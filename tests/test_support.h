// Shared fixtures/helpers for the test suite.
#ifndef RTR_TESTS_TEST_SUPPORT_H
#define RTR_TESTS_TEST_SUPPORT_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/names.h"
#include "graph/apsp.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/scc.h"
#include "net/scheme.h"
#include "rt/metric.h"
#include "util/rng.h"

namespace rtr::testing {

/// A generated test instance: graph + adversarial names/ports + metric.
struct Instance {
  Digraph graph{0};
  NameAssignment names = NameAssignment::identity(0);
  std::shared_ptr<const RoundtripMetric> metric;

  [[nodiscard]] NodeId n() const { return graph.node_count(); }

  /// The instance as a registry BuildContext (scheme randomness from
  /// `scheme_seed`).  The graph is copied into shared ownership, so the
  /// context and anything built from it may outlive this Instance.
  [[nodiscard]] BuildContext context(std::uint64_t scheme_seed) const {
    return BuildContext::wrap(std::make_shared<const Digraph>(graph), metric,
                              names, scheme_seed);
  }
};

/// Process-lifetime memoized instance, keyed by the full generation recipe
/// (family, n, max_weight, seed).  Many fixtures across the suite ask for
/// the same instances; the APSP metric is the dominant cost of each, so
/// building every distinct recipe once cuts ctest wall time.  The cached
/// Instance is immutable; tests that mutate take a copy via make_instance.
inline std::shared_ptr<const Instance> shared_instance(Family family, NodeId n,
                                                       Weight max_weight,
                                                       std::uint64_t seed) {
  using Key = std::tuple<int, NodeId, Weight, std::uint64_t>;
  static std::mutex mutex;
  static auto& cache =
      *new std::map<Key, std::shared_ptr<const Instance>>();  // leaked: process-lifetime
  const Key key{static_cast<int>(family), n, max_weight, seed};
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  auto inst = std::make_shared<Instance>();
  Rng rng(seed);
  GraphBuilder builder = make_family(family, n, max_weight, rng);
  builder.assign_adversarial_ports(rng);
  inst->graph = builder.freeze();
  inst->names = NameAssignment::random(inst->graph.node_count(), rng);
  inst->metric = std::make_shared<DenseRoundtripMetric>(inst->graph);
  return cache.emplace(key, std::move(inst)).first->second;
}

/// Builds a family instance with adversarial (random) ports and names.
/// Served from the shared_instance cache; the returned copy is the caller's
/// to mutate (the heavyweight metric stays shared -- it is immutable).
inline Instance make_instance(Family family, NodeId n, Weight max_weight,
                              std::uint64_t seed) {
  return *shared_instance(family, n, max_weight, seed);
}

/// Parameter tuple for family sweeps: (family, n, seed).
using FamilyParam = std::tuple<Family, NodeId, std::uint64_t>;

inline std::string family_param_name(const FamilyParam& p) {
  auto [family, n, seed] = p;
  std::string name = family_name(family);
  for (auto& c : name) {
    if (c == '+' || c == '-') c = '_';
  }
  return name + "_n" + std::to_string(n) + "_s" + std::to_string(seed);
}

}  // namespace rtr::testing

#endif  // RTR_TESTS_TEST_SUPPORT_H
