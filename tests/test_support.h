// Shared fixtures/helpers for the test suite.
#ifndef RTR_TESTS_TEST_SUPPORT_H
#define RTR_TESTS_TEST_SUPPORT_H

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/names.h"
#include "graph/apsp.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/scc.h"
#include "net/scheme.h"
#include "rt/metric.h"
#include "util/rng.h"

namespace rtr::testing {

/// A generated test instance: graph + adversarial names/ports + metric.
struct Instance {
  Digraph graph{0};
  NameAssignment names = NameAssignment::identity(0);
  std::shared_ptr<RoundtripMetric> metric;

  [[nodiscard]] NodeId n() const { return graph.node_count(); }

  /// The instance as a registry BuildContext (scheme randomness from
  /// `scheme_seed`).  The graph is copied into shared ownership, so the
  /// context and anything built from it may outlive this Instance.
  [[nodiscard]] BuildContext context(std::uint64_t scheme_seed) const {
    return BuildContext::wrap(std::make_shared<const Digraph>(graph), metric,
                              names, scheme_seed);
  }
};

/// Builds a family instance with adversarial (random) ports and names.
inline Instance make_instance(Family family, NodeId n, Weight max_weight,
                              std::uint64_t seed) {
  Instance inst;
  Rng rng(seed);
  inst.graph = make_family(family, n, max_weight, rng);
  inst.graph.assign_adversarial_ports(rng);
  inst.names = NameAssignment::random(inst.graph.node_count(), rng);
  inst.metric = std::make_shared<RoundtripMetric>(inst.graph);
  return inst;
}

/// Parameter tuple for family sweeps: (family, n, seed).
using FamilyParam = std::tuple<Family, NodeId, std::uint64_t>;

inline std::string family_param_name(const FamilyParam& p) {
  auto [family, n, seed] = p;
  std::string name = family_name(family);
  for (auto& c : name) {
    if (c == '+' || c == '-') c = '_';
  }
  return name + "_n" + std::to_string(n) + "_s" + std::to_string(seed);
}

}  // namespace rtr::testing

#endif  // RTR_TESTS_TEST_SUPPORT_H
