#include <gtest/gtest.h>

#include <algorithm>

#include "graph/apsp.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/rng.h"

namespace rtr {
namespace {

GraphBuilder diamond_builder() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0; the 0->2->3 route is cheaper.
  GraphBuilder g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 3, 10);
  g.add_edge(0, 2, 3);
  g.add_edge(2, 3, 4);
  g.add_edge(3, 0, 1);
  return g;
}

Digraph diamond() { return diamond_builder().freeze(); }

TEST(Dijkstra, DistancesOnDiamond) {
  auto d = dijkstra_distances(diamond(), 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 10);
  EXPECT_EQ(d[2], 3);
  EXPECT_EQ(d[3], 7);
}

TEST(Dijkstra, OutTreeParentsFollowShortestPaths) {
  OutTree t = dijkstra_out_tree(diamond(), 0);
  EXPECT_EQ(t.parent[3], 2);  // via the cheap branch
  EXPECT_EQ(t.parent[2], 0);
  EXPECT_EQ(t.parent[0], kNoNode);
  auto path = out_tree_path(t, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Dijkstra, OutTreePortsMatchGraphEdges) {
  Rng rng(3);
  GraphBuilder b = diamond_builder();
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  OutTree t = dijkstra_out_tree(g, 0);
  for (NodeId v = 1; v < 4; ++v) {
    const Edge* e = g.edge_by_port(t.parent[static_cast<std::size_t>(v)],
                                   t.parent_port[static_cast<std::size_t>(v)]);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->to, v);
  }
}

TEST(Dijkstra, InTreeNextHopsReachRootWithExactDistance) {
  Rng rng(4);
  GraphBuilder b = random_strongly_connected(60, 3.0, 9, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  Digraph rev = g.reversed();
  InTree t = dijkstra_in_tree(g, rev, 7);
  for (NodeId v = 0; v < 60; ++v) {
    if (v == 7) {
      EXPECT_EQ(t.next[7], kNoNode);
      continue;
    }
    // Walk the next pointers; sum of weights must equal dist.
    Dist walked = 0;
    NodeId at = v;
    int guard = 0;
    while (at != 7 && guard++ < 100) {
      const Edge* e = g.edge_by_port(at, t.next_port[static_cast<std::size_t>(at)]);
      ASSERT_NE(e, nullptr);
      EXPECT_EQ(e->to, t.next[static_cast<std::size_t>(at)]);
      walked += e->weight;
      at = e->to;
    }
    EXPECT_EQ(at, 7);
    EXPECT_EQ(walked, t.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(Dijkstra, RestrictedTreeIgnoresOutsiders) {
  // Path 0 <-> 1 <-> 2, plus a shortcut 0 -> 3 -> 2 that is cheaper but
  // goes through a non-member.
  GraphBuilder b(4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 5);
  b.add_edge(1, 2, 5);
  b.add_edge(2, 1, 5);
  b.add_edge(0, 3, 1);
  b.add_edge(3, 2, 1);
  const Digraph g = b.freeze();
  std::vector<char> mask = {1, 1, 1, 0};
  OutTree t = dijkstra_out_tree_within(g, 0, mask);
  EXPECT_EQ(t.dist[2], 10);  // must take the member-only route
  EXPECT_EQ(t.dist[3], kInfDist);
  OutTree full = dijkstra_out_tree(g, 0);
  EXPECT_EQ(full.dist[2], 2);
}

TEST(Dijkstra, RestrictedSourceMustBeMember) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  const Digraph g = b.freeze();
  std::vector<char> mask = {0, 1};
  EXPECT_THROW(dijkstra_out_tree_within(g, 0, mask), std::invalid_argument);
}

// The arena fast paths (workspace reuse, the frozen graph's flat-arc CSR,
// Dial bucket queue) must return bit-identical distances to the seed
// implementation, preserved as dijkstra_distances_reference, on every
// generator family.
TEST(Dijkstra, ArenaPathsBitIdenticalToReferenceOnAllFamilies) {
  for (const Family family : all_families()) {
    Rng rng(17 + static_cast<std::uint64_t>(family));
    const Digraph g = make_family(family, 72, 9, rng).freeze();
    DijkstraWorkspace ws;  // one workspace across sources: reuse is the point
    std::vector<Dist> row(static_cast<std::size_t>(g.node_count()));
    for (NodeId src = 0; src < g.node_count(); src += 7) {
      const std::vector<Dist> ref = dijkstra_distances_reference(g, src);
      EXPECT_EQ(dijkstra_distances(g, src), ref) << family_name(family);
      dijkstra_distances_into(g, src, ws);
      EXPECT_EQ(ws.dist, ref) << family_name(family);
      dijkstra_distances_into(g, src, ws, row);
      EXPECT_EQ(row, ref) << family_name(family) << " (dial)";
    }
  }
}

TEST(Dijkstra, ArenaPathFallsBackToHeapOnHugeWeightsBitIdentically) {
  // Weights above the Dial threshold exercise the binary-heap branch of the
  // flat-arc runner; distances must still match the reference.
  Rng rng(5);
  const Digraph g = random_strongly_connected(60, 3.0, 100000, rng).freeze();
  ASSERT_GT(g.max_weight(), 64);
  DijkstraWorkspace ws;
  std::vector<Dist> row(static_cast<std::size_t>(g.node_count()));
  for (NodeId src = 0; src < g.node_count(); ++src) {
    dijkstra_distances_into(g, src, ws, row);
    EXPECT_EQ(row, dijkstra_distances_reference(g, src));
  }
}

TEST(Dijkstra, BoundedRunMatchesFullRunWithinLimit) {
  // The bounded runner must report exactly the nodes within the limit, with
  // exact global distances, and stay correct across reused workspaces.
  for (const Family family : all_families()) {
    Rng rng(23 + static_cast<std::uint64_t>(family));
    const Digraph g = make_family(family, 72, 9, rng).freeze();
    BoundedDijkstraWorkspace ws;  // reused across sources and limits
    std::vector<BoundedReach> reach;
    for (NodeId src = 0; src < g.node_count(); src += 5) {
      const std::vector<Dist> full = dijkstra_distances_reference(g, src);
      Dist max_finite = 0;
      for (const Dist d : full) {
        if (d != kInfDist) max_finite = std::max(max_finite, d);
      }
      for (const Dist limit : {Dist{0}, Dist{3}, max_finite / 2, max_finite}) {
        reach.clear();  // the runner appends by contract
        dijkstra_bounded(g, src, limit, ws, reach);
        std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
        for (const BoundedReach& r : reach) {
          EXPECT_EQ(r.dist, full[static_cast<std::size_t>(r.node)])
              << family_name(family) << " src=" << src << " limit=" << limit;
          EXPECT_LE(r.dist, limit);
          seen[static_cast<std::size_t>(r.node)] = 1;
        }
        for (NodeId v = 0; v < g.node_count(); ++v) {
          const bool within =
              full[static_cast<std::size_t>(v)] != kInfDist &&
              full[static_cast<std::size_t>(v)] <= limit;
          EXPECT_EQ(static_cast<bool>(seen[static_cast<std::size_t>(v)]),
                    within)
              << family_name(family) << " src=" << src << " limit=" << limit
              << " v=" << v;
        }
      }
    }
  }
}

TEST(Dijkstra, RoundtripBallBoundedMatchesReferenceBalls) {
  // The tandem pruned search must report exactly { u : r(src,u) <= budget },
  // each exactly once with exact one-way distances, across families, budgets,
  // and a reused (epoch-stamped) workspace.
  for (const Family family : all_families()) {
    Rng rng(41 + static_cast<std::uint64_t>(family));
    const Digraph g = make_family(family, 72, 9, rng).freeze();
    const Digraph rev = g.reversed();
    RoundtripBallWorkspace ws;  // reused across sources and budgets
    std::vector<RoundtripReach> ball;
    for (NodeId src = 0; src < g.node_count(); src += 7) {
      const std::vector<Dist> fwd = dijkstra_distances_reference(g, src);
      const std::vector<Dist> bwd = dijkstra_distances_reference(rev, src);
      Dist max_rt = 0;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        const auto vz = static_cast<std::size_t>(v);
        if (fwd[vz] != kInfDist && bwd[vz] != kInfDist) {
          max_rt = std::max(max_rt, fwd[vz] + bwd[vz]);
        }
      }
      for (const Dist budget :
           {Dist{-1}, Dist{0}, Dist{5}, max_rt / 4, max_rt / 2, max_rt}) {
        ball.clear();  // the runner appends by contract
        roundtrip_ball_bounded(g, rev, src, budget, ws, ball);
        std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
        for (const RoundtripReach& m : ball) {
          const auto mz = static_cast<std::size_t>(m.node);
          EXPECT_EQ(seen[mz], 0) << "duplicate member " << m.node;
          seen[mz] = 1;
          EXPECT_EQ(m.d_out, fwd[mz])
              << family_name(family) << " src=" << src << " budget=" << budget;
          EXPECT_EQ(m.d_in, bwd[mz])
              << family_name(family) << " src=" << src << " budget=" << budget;
          EXPECT_LE(m.d_out + m.d_in, budget);
        }
        for (NodeId v = 0; v < g.node_count(); ++v) {
          const auto vz = static_cast<std::size_t>(v);
          const bool member = fwd[vz] != kInfDist && bwd[vz] != kInfDist &&
                              fwd[vz] + bwd[vz] <= budget;
          EXPECT_EQ(static_cast<bool>(seen[vz]), member)
              << family_name(family) << " src=" << src << " budget=" << budget
              << " v=" << v;
        }
      }
    }
  }
}

TEST(Dijkstra, DialBudgetFallsBackOnWideWeightHighDiameterGraphs) {
  // Regression: a large weighted ring passes the Dial weight cap (weights
  // <= 64) but its empty-bucket scan is ~n * max_weight probes -- the
  // explicit scan budget must route it to the binary heap.  Distances stay
  // bit-identical either way; the budget check itself is pinned below.
  constexpr NodeId n = 20000;
  GraphBuilder b(n);
  Rng rng(7);
  for (NodeId v = 0; v < n; ++v) {
    const auto w = static_cast<Weight>(1 + rng.index(64));
    b.add_edge(v, (v + 1) % n, w);
    b.add_edge((v + 1) % n, v, w);
  }
  const Digraph g = b.freeze();
  ASSERT_LE(g.max_weight(), 64);
  // scan ~ max_weight * n greatly exceeds 8 * (m + n): heap path.
  ASSERT_GT(static_cast<std::int64_t>(g.max_weight()) * n,
            8 * (g.edge_count() + static_cast<std::int64_t>(n)));
  DijkstraWorkspace ws;
  std::vector<Dist> row(static_cast<std::size_t>(n));
  for (const NodeId src : {NodeId{0}, NodeId{n / 2}, NodeId{n - 1}}) {
    dijkstra_distances_into(g, src, ws, row);
    EXPECT_EQ(row, dijkstra_distances_reference(g, src)) << "src=" << src;
  }
  // A dense-enough graph with the same weight range stays within budget
  // (Dial path) and must agree with the reference too.
  Rng rng2(9);
  const Digraph dense = random_strongly_connected(256, 16.0, 12, rng2).freeze();
  ASSERT_LE(static_cast<std::int64_t>(dense.max_weight()) *
                static_cast<std::int64_t>(dense.node_count()),
            8 * (dense.edge_count() +
                 static_cast<std::int64_t>(dense.node_count())));
  std::vector<Dist> dense_row(static_cast<std::size_t>(dense.node_count()));
  for (NodeId src = 0; src < dense.node_count(); src += 50) {
    dijkstra_distances_into(dense, src, ws, dense_row);
    EXPECT_EQ(dense_row, dijkstra_distances_reference(dense, src))
        << "dense src=" << src;
  }
}

TEST(Dijkstra, WorkspaceTreesMatchTheSeedTreeShapes) {
  // Tree runs share the workspace heap buffer but must keep the seed's exact
  // tie-breaks (parents included), since routing tables are built from them.
  Rng rng(11);
  GraphBuilder b = random_strongly_connected(80, 3.0, 7, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  const Digraph rev = g.reversed();
  DijkstraWorkspace ws;
  for (NodeId root : {0, 13, 42}) {
    const OutTree fresh_out = dijkstra_out_tree(g, root);
    const OutTree ws_out = dijkstra_out_tree(g, root, ws);
    EXPECT_EQ(ws_out.dist, fresh_out.dist);
    EXPECT_EQ(ws_out.parent, fresh_out.parent);
    EXPECT_EQ(ws_out.parent_port, fresh_out.parent_port);
    const InTree fresh_in = dijkstra_in_tree(g, rev, root);
    const InTree ws_in = dijkstra_in_tree(g, rev, root, ws);
    EXPECT_EQ(ws_in.dist, fresh_in.dist);
    EXPECT_EQ(ws_in.next, fresh_in.next);
    EXPECT_EQ(ws_in.next_port, fresh_in.next_port);
  }
}

TEST(Apsp, MatchesFloydWarshallOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const Digraph g = random_strongly_connected(40, 3.0, 12, rng).freeze();
    DistMatrix a = all_pairs_shortest_paths(g);
    DistMatrix b = floyd_warshall(g);
    for (NodeId u = 0; u < 40; ++u) {
      for (NodeId v = 0; v < 40; ++v) {
        EXPECT_EQ(a.at(u, v), b.at(u, v)) << "pair " << u << "," << v;
      }
    }
  }
}

TEST(Apsp, UnreachablePairsAreInfinite) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  const Digraph g = b.freeze();
  DistMatrix m = all_pairs_shortest_paths(g);
  EXPECT_EQ(m.at(0, 1), 1);
  EXPECT_EQ(m.at(1, 0), kInfDist);
  EXPECT_EQ(m.at(2, 0), kInfDist);
  EXPECT_EQ(m.at(2, 2), 0);
}

// Parallel APSP must be bit-identical to the serial arena for every thread
// count (rows are independent; each row is computed by the same routine no
// matter which worker claims it).  This test also runs under the TSAN CI
// job, which checks the pool's synchronization (ticket + join) for races.
TEST(ApspParallel, BitIdenticalToSerialForAnyThreadCount) {
  for (const Family family : {Family::kRandom, Family::kRing}) {
    Rng rng(23 + static_cast<std::uint64_t>(family));
    const Digraph g = make_family(family, 96, 6, rng).freeze();
    const DistMatrix serial = all_pairs_shortest_paths_serial(g);
    for (const int threads : {1, 2, 3, 8}) {
      const DistMatrix parallel = all_pairs_shortest_paths(g, threads);
      ASSERT_EQ(parallel.size(), serial.size());
      for (NodeId u = 0; u < g.node_count(); ++u) {
        const auto srow = serial.row(u);
        const auto prow = parallel.row(u);
        ASSERT_TRUE(std::equal(srow.begin(), srow.end(), prow.begin()))
            << family_name(family) << " threads=" << threads << " row " << u;
      }
    }
  }
}

TEST(ApspParallel, MoreThreadsThanSourcesIsFine) {
  Rng rng(29);
  const Digraph g = ring_with_chords(5, 0, 1, rng).freeze();
  const DistMatrix serial = all_pairs_shortest_paths_serial(g);
  const DistMatrix wide = all_pairs_shortest_paths(g, 64);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto srow = serial.row(u);
    const auto wrow = wide.row(u);
    EXPECT_TRUE(std::equal(srow.begin(), srow.end(), wrow.begin()));
  }
}

TEST(ApspParallel, DefaultThreadsAreConfigurable) {
  set_default_apsp_threads(3);
  EXPECT_EQ(resolve_apsp_threads(0), 3);
  EXPECT_EQ(resolve_apsp_threads(5), 5);
  set_default_apsp_threads(0);
  EXPECT_GE(resolve_apsp_threads(0), 1);
}

TEST(Apsp, AsymmetryOnOneWayRing) {
  Rng rng(5);
  const Digraph g = ring_with_chords(10, 0, 1, rng).freeze();
  DistMatrix m = all_pairs_shortest_paths(g);
  // Going "forward" one step costs w(0,1); going back costs the rest of the
  // ring.  With unit weights d(0,1)=1 and d(1,0)=9.
  EXPECT_EQ(m.at(0, 1), 1);
  EXPECT_EQ(m.at(1, 0), 9);
}

}  // namespace
}  // namespace rtr
