// End-to-end cross-scheme checks: every scheme delivers on every family and
// respects its own bound, with one shared instance per family; plus the
// comparative facts the paper's Fig. 1 asserts (who uses how much space, who
// achieves what stretch).
#include <gtest/gtest.h>

#include <memory>

#include "baseline/full_table.h"
#include "core/exstretch.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "net/simulator.h"
#include "rtz/rtz3_scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class IntegrationTest : public ::testing::TestWithParam<FamilyParam> {
 protected:
  void SetUp() override {
    auto [family, n, seed] = GetParam();
    inst_ = make_instance(family, n, 4, seed);
    Rng rng(seed + 1000);
    rtz3_ = std::make_shared<Rtz3Scheme>(inst_.graph, *inst_.metric,
                                         inst_.names, rng);
    stretch6_ = std::make_shared<Stretch6Scheme>(inst_.graph, *inst_.metric,
                                                 inst_.names, rng);
    ExStretchScheme::Options ex_opts;
    ex_opts.k = 3;
    ex_ = std::make_shared<ExStretchScheme>(inst_.graph, *inst_.metric,
                                            inst_.names, rng, ex_opts);
    PolyStretchScheme::Options poly_opts;
    poly_opts.k = 3;
    poly_ = std::make_shared<PolyStretchScheme>(inst_.graph, *inst_.metric,
                                                inst_.names, poly_opts);
    baseline_ = std::make_shared<FullTableScheme>(inst_.graph, inst_.names);
  }

  template <typename S>
  double worst_stretch(const S& scheme) {
    double worst = 0;
    for (NodeId s = 0; s < inst_.n(); s += 2) {
      for (NodeId t = 0; t < inst_.n(); t += 3) {
        if (s == t) continue;
        auto res = simulate_roundtrip(inst_.graph, scheme, s, t,
                                      inst_.names.name_of(t));
        EXPECT_TRUE(res.ok()) << scheme.name() << " failed " << s << "->" << t;
        if (!res.ok()) return 1e9;
        worst = std::max(worst, static_cast<double>(res.roundtrip_length()) /
                                    static_cast<double>(inst_.metric->r(s, t)));
      }
    }
    return worst;
  }

  Instance inst_;
  std::shared_ptr<Rtz3Scheme> rtz3_;
  std::shared_ptr<Stretch6Scheme> stretch6_;
  std::shared_ptr<ExStretchScheme> ex_;
  std::shared_ptr<PolyStretchScheme> poly_;
  std::shared_ptr<FullTableScheme> baseline_;
};

TEST_P(IntegrationTest, EverySchemeMeetsItsOwnBound) {
  EXPECT_LE(worst_stretch(*baseline_), 1.0 + 1e-9);
  EXPECT_LE(worst_stretch(*rtz3_), 3.0 + 1e-9);
  EXPECT_LE(worst_stretch(*stretch6_), 6.0 + 1e-9);
  EXPECT_LE(worst_stretch(*ex_), ex_->stretch_bound() + 1e-9);
  EXPECT_LE(worst_stretch(*poly_), poly_->stretch_bound() + 1e-9);
}

TEST_P(IntegrationTest, CompactSchemesBeatBaselineSpace) {
  // Fig. 1's point: sublinear tables.  The compact schemes must use fewer
  // max entries than the full table on these sizes... except the k=2-ish
  // regimes where n is tiny; we therefore compare against 4n as the clearly
  // non-compact threshold for stretch6/rtz3 which are O~(sqrt n).
  const auto n = static_cast<double>(inst_.n());
  EXPECT_LT(static_cast<double>(rtz3_->table_stats().max_entries()), 4 * n);
  EXPECT_LT(static_cast<double>(stretch6_->table_stats().max_entries()), 4 * n);
  EXPECT_EQ(baseline_->table_stats().max_entries(), inst_.n() - 1);
}

TEST_P(IntegrationTest, StretchSixTighterThanItsBoundOnAverage) {
  // Mean stretch should sit well below the worst-case 6 on every family --
  // the "shape" claim of the reproduction.
  double total = 0;
  int count = 0;
  for (NodeId s = 0; s < inst_.n(); s += 2) {
    for (NodeId t = 0; t < inst_.n(); t += 3) {
      if (s == t) continue;
      auto res = simulate_roundtrip(inst_.graph, *stretch6_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok());
      total += static_cast<double>(res.roundtrip_length()) /
               static_cast<double>(inst_.metric->r(s, t));
      ++count;
    }
  }
  EXPECT_LT(total / count, 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, IntegrationTest,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 36, 3},
                      FamilyParam{Family::kScaleFree, 48, 4},
                      FamilyParam{Family::kBidirected, 36, 5}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

}  // namespace
}  // namespace rtr
