// End-to-end cross-scheme checks, driven through the unified runtime API:
// every scheme in the global SchemeRegistry is built by name on every family
// and run through the QueryEngine; each must deliver everywhere and respect
// its own stretch bound.  Plus the comparative facts the paper's Fig. 1
// asserts (who uses how much space, who achieves what stretch).
#include <gtest/gtest.h>

#include <memory>

#include "net/query_engine.h"
#include "net/scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class IntegrationTest : public ::testing::TestWithParam<FamilyParam> {
 protected:
  void SetUp() override {
    auto [family, n, seed] = GetParam();
    inst_ = make_instance(family, n, 4, seed);
    ctx_ = inst_.context(seed + 1000);
  }

  /// Deterministic strided pair grid (the seed suite's coverage pattern).
  [[nodiscard]] std::vector<RoundtripQuery> pair_grid() const {
    std::vector<RoundtripQuery> queries;
    for (NodeId s = 0; s < inst_.n(); s += 2) {
      for (NodeId t = 0; t < inst_.n(); t += 3) {
        if (s != t) queries.push_back({s, t});
      }
    }
    return queries;
  }

  [[nodiscard]] QueryEngine engine_for(const std::string& scheme_name) const {
    QueryEngineOptions opts;
    opts.threads = 2;
    return QueryEngine::from_registry(SchemeRegistry::global(), scheme_name,
                                      ctx_, opts);
  }

  Instance inst_;
  BuildContext ctx_;
};

TEST_P(IntegrationTest, EveryRegisteredSchemeMeetsItsOwnBound) {
  const auto queries = pair_grid();
  for (const auto& scheme_name : SchemeRegistry::global().names()) {
    SCOPED_TRACE(scheme_name);
    QueryEngine engine = engine_for(scheme_name);
    StretchReport report = engine.run_batch(queries);
    EXPECT_EQ(report.pairs, static_cast<std::int64_t>(queries.size()));
    EXPECT_EQ(report.failures, 0) << engine.scheme().name();
    const double bound = engine.scheme().stretch_bound();
    ASSERT_NE(bound, unbounded_stretch()) << engine.scheme().name();
    EXPECT_LE(report.max_stretch, bound + 1e-9) << engine.scheme().name();
  }
}

TEST_P(IntegrationTest, CompactSchemesBeatBaselineSpace) {
  // Fig. 1's point: sublinear tables.  The compact schemes must use fewer
  // max entries than the full table on these sizes... except the k=2-ish
  // regimes where n is tiny; we therefore compare against 4n as the clearly
  // non-compact threshold for stretch6/rtz3 which are O~(sqrt n).
  const auto n = static_cast<double>(inst_.n());
  auto max_entries = [&](const std::string& scheme_name) {
    return static_cast<double>(SchemeRegistry::global()
                                   .build(scheme_name, ctx_)
                                   ->table_stats()
                                   .max_entries());
  };
  EXPECT_LT(max_entries("rtz3"), 4 * n);
  EXPECT_LT(max_entries("stretch6"), 4 * n);
  EXPECT_EQ(max_entries("fulltable"), n - 1);
}

TEST_P(IntegrationTest, StretchSixTighterThanItsBoundOnAverage) {
  // Mean stretch should sit well below the worst-case 6 on every family --
  // the "shape" claim of the reproduction.
  QueryEngine engine = engine_for("stretch6");
  StretchReport report = engine.run_batch(pair_grid());
  ASSERT_EQ(report.failures, 0);
  EXPECT_LT(report.mean_stretch, 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, IntegrationTest,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 36, 3},
                      FamilyParam{Family::kScaleFree, 48, 4},
                      FamilyParam{Family::kBidirected, 36, 5}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

}  // namespace
}  // namespace rtr
