// Differential conformance suite for binary scheme snapshots: for every
// registered scheme, save -> load must (a) re-save byte-identically and
// (b) answer roundtrip queries exactly like the freshly built scheme.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "io/snapshot.h"
#include "net/scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::shared_instance;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "rtr_snapshot_" + tag + ".rtrsnap";
}

class SnapshotRoundtripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotRoundtripTest, ResaveIsByteIdenticalAndAnswersMatch) {
  const std::string scheme_name = GetParam();
  const auto inst = shared_instance(Family::kRandom, 64, 4, 2024);
  const BuildContext ctx = inst->context(7);
  SchemeHandle built(ctx.graph, ctx.names,
                     SchemeRegistry::global().build(scheme_name, ctx));

  const std::string path_a = temp_path(scheme_name + "_a");
  const std::string path_b = temp_path(scheme_name + "_b");
  save_snapshot(path_a, scheme_name, built);

  // Load and re-save: the bytes must not drift (canonical encoding -- all
  // associative state is serialized in sorted order).
  SchemeHandle loaded = load_snapshot(path_a, scheme_name);
  save_snapshot(path_b, scheme_name, loaded);
  EXPECT_EQ(read_file(path_a), read_file(path_b))
      << scheme_name << ": save -> load -> save changed the bytes";

  // The loaded handle serves the identical graph/naming.
  ASSERT_EQ(loaded.graph().node_count(), built.graph().node_count());
  EXPECT_EQ(loaded.names().names(), built.names().names());
  EXPECT_EQ(loaded.name(), built.name());

  // Identical table accounting (the stats are recomputed from the loaded
  // tables, so equality means the tables themselves survived).
  EXPECT_EQ(loaded.table_stats().max_bits(), built.table_stats().max_bits());
  EXPECT_DOUBLE_EQ(loaded.table_stats().mean_bits(),
                   built.table_stats().mean_bits());

  // Differential query check on 500 sampled pairs: loaded vs freshly built.
  Rng rng(99);
  const NodeId n = built.graph().node_count();
  for (int i = 0; i < 500; ++i) {
    auto s = static_cast<NodeId>(rng.index(n));
    auto t = static_cast<NodeId>(rng.index(n));
    if (s == t) t = static_cast<NodeId>((t + 1) % n);
    RouteResult a = built.roundtrip(s, t);
    RouteResult b = loaded.roundtrip(s, t);
    ASSERT_TRUE(a.ok()) << scheme_name << " built failed " << s << "->" << t;
    ASSERT_TRUE(b.ok()) << scheme_name << " loaded failed " << s << "->" << t;
    ASSERT_EQ(a.out_length, b.out_length) << scheme_name << " " << s << "->" << t;
    ASSERT_EQ(a.back_length, b.back_length) << scheme_name << " " << s << "->" << t;
    ASSERT_EQ(a.out_hops, b.out_hops) << scheme_name << " " << s << "->" << t;
    ASSERT_EQ(a.back_hops, b.back_hops) << scheme_name << " " << s << "->" << t;
    ASSERT_EQ(a.max_header_bits, b.max_header_bits)
        << scheme_name << " " << s << "->" << t;
  }

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_P(SnapshotRoundtripTest, V1ToV2RepackAndMappedLoadAnswerIdentically) {
  const std::string scheme_name = GetParam();
  const auto inst = shared_instance(Family::kRandom, 64, 4, 2024);
  const BuildContext ctx = inst->context(7);
  SchemeHandle built(ctx.graph, ctx.names,
                     SchemeRegistry::global().build(scheme_name, ctx));

  const std::string v1_path = temp_path(scheme_name + "_v1");
  const std::string v2_from_v1 = temp_path(scheme_name + "_v2a");
  const std::string v2_from_built = temp_path(scheme_name + "_v2b");

  // v1 stays writable and loadable (back-compat leg of the migration).
  save_snapshot(v1_path, scheme_name, built, SchemeRegistry::global(),
                kSnapshotVersionV1);
  ASSERT_EQ(inspect_snapshot(v1_path).version, kSnapshotVersionV1);
  SchemeHandle v1_loaded = load_snapshot(v1_path, scheme_name);

  // Repacking the v1-loaded handle as v2 must produce the SAME arena bytes
  // as saving the freshly built scheme: the v1 decode loses nothing.
  save_snapshot(v2_from_v1, scheme_name, v1_loaded, SchemeRegistry::global(),
                kSnapshotVersionV2);
  save_snapshot(v2_from_built, scheme_name, built, SchemeRegistry::global(),
                kSnapshotVersionV2);
  EXPECT_EQ(read_file(v2_from_v1), read_file(v2_from_built))
      << scheme_name << ": v1 -> v2 repack drifted from a direct v2 save";

  // All three load paths -- v1 decode, owned v2, zero-copy mapped v2 --
  // answer route-for-route and stat-for-stat like the built scheme.
  SchemeHandle v2_owned = load_snapshot(v2_from_v1, scheme_name);
  SchemeHandle v2_mapped = map_snapshot(v2_from_v1, scheme_name);
  for (const SchemeHandle* h : {&v1_loaded, &v2_owned, &v2_mapped}) {
    EXPECT_EQ(h->names().names(), built.names().names());
    EXPECT_EQ(h->table_stats().max_bits(), built.table_stats().max_bits());
    EXPECT_DOUBLE_EQ(h->table_stats().mean_bits(),
                     built.table_stats().mean_bits());
  }
  Rng rng(99);
  const NodeId n = built.graph().node_count();
  for (int i = 0; i < 300; ++i) {
    auto s = static_cast<NodeId>(rng.index(n));
    auto t = static_cast<NodeId>(rng.index(n));
    if (s == t) t = static_cast<NodeId>((t + 1) % n);
    const RouteResult a = built.roundtrip(s, t);
    for (const SchemeHandle* h : {&v1_loaded, &v2_owned, &v2_mapped}) {
      const RouteResult b = h->roundtrip(s, t);
      ASSERT_EQ(a.ok(), b.ok()) << scheme_name << " " << s << "->" << t;
      ASSERT_EQ(a.out_length, b.out_length)
          << scheme_name << " " << s << "->" << t;
      ASSERT_EQ(a.back_length, b.back_length)
          << scheme_name << " " << s << "->" << t;
      ASSERT_EQ(a.out_hops, b.out_hops) << scheme_name << " " << s << "->" << t;
      ASSERT_EQ(a.back_hops, b.back_hops)
          << scheme_name << " " << s << "->" << t;
      ASSERT_EQ(a.max_header_bits, b.max_header_bits)
          << scheme_name << " " << s << "->" << t;
    }
  }

  std::remove(v1_path.c_str());
  std::remove(v2_from_v1.c_str());
  std::remove(v2_from_built.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SnapshotRoundtripTest,
                         ::testing::ValuesIn(SchemeRegistry::global().names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SnapshotInspect, ReportsHeaderAndSections) {
  const auto inst = shared_instance(Family::kRandom, 32, 3, 11);
  const BuildContext ctx = inst->context(3);
  SchemeHandle built(ctx.graph, ctx.names,
                     SchemeRegistry::global().build("rtz3", ctx));
  const std::string path = temp_path("inspect");
  save_snapshot(path, "rtz3", built);

  SnapshotInfo info = inspect_snapshot(path);
  EXPECT_EQ(info.version, kSnapshotVersion);
  EXPECT_EQ(info.scheme, "rtz3");
  EXPECT_EQ(info.node_count, inst->n());
  EXPECT_EQ(info.edge_count, inst->graph.edge_count());
  // v2 arena sections: the graph CSR arrays, the name permutation, and at
  // least one scheme-owned section.
  auto has_section = [&](const std::string& name) {
    for (const auto& s : info.sections) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_section("graph/offset"));
  EXPECT_TRUE(has_section("graph/edges"));
  EXPECT_TRUE(has_section("names/name_of"));
  bool has_scheme = false;
  for (const auto& s : info.sections) {
    if (s.name.rfind("scheme/", 0) == 0) has_scheme = true;
  }
  EXPECT_TRUE(has_scheme);
  std::uint64_t section_bytes = 0;
  for (const auto& s : info.sections) section_bytes += s.bytes;
  EXPECT_LT(section_bytes, info.file_bytes);

  // The v1 encoding remains writable and inspectable on request.
  save_snapshot(path, "rtz3", built, SchemeRegistry::global(),
                kSnapshotVersionV1);
  SnapshotInfo v1 = inspect_snapshot(path);
  EXPECT_EQ(v1.version, kSnapshotVersionV1);
  EXPECT_EQ(v1.scheme, "rtz3");
  ASSERT_EQ(v1.sections.size(), 3u);
  EXPECT_EQ(v1.sections[0].name, "graph");
  EXPECT_EQ(v1.sections[1].name, "names");
  EXPECT_EQ(v1.sections[2].name, "scheme");
  std::remove(path.c_str());
}

TEST(BuildOrLoad, CacheMissBuildsAndSavesCacheHitSkipsConstruction) {
  const auto inst = shared_instance(Family::kRandom, 40, 4, 5);
  const std::string path = temp_path("build_or_load");
  std::remove(path.c_str());

  int ctx_builds = 0;
  auto make_ctx = [&]() {
    ++ctx_builds;
    return inst->context(13);
  };

  // Miss: builds, saves, returns the built handle.
  SchemeHandle first =
      SchemeRegistry::global().build_or_load("stretch6", make_ctx, path);
  EXPECT_EQ(ctx_builds, 1);
  EXPECT_EQ(inspect_snapshot(path).scheme, "stretch6");

  // Hit: construction is skipped entirely -- make_ctx is never called.
  SchemeHandle second =
      SchemeRegistry::global().build_or_load("stretch6", make_ctx, path);
  EXPECT_EQ(ctx_builds, 1) << "cache hit must not rebuild the context";

  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    auto s = static_cast<NodeId>(rng.index(inst->n()));
    auto t = static_cast<NodeId>(rng.index(inst->n()));
    if (s == t) continue;
    RouteResult a = first.roundtrip(s, t);
    RouteResult b = second.roundtrip(s, t);
    ASSERT_EQ(a.ok(), b.ok());
    ASSERT_EQ(a.roundtrip_length(), b.roundtrip_length());
  }
  std::remove(path.c_str());
}

TEST(BuildOrLoad, MappedModeHitsV2CachesAndFallsBackForV1) {
  const auto inst = shared_instance(Family::kRandom, 40, 4, 5);
  const std::string path = temp_path("mapped_build_or_load");
  std::remove(path.c_str());
  constexpr auto kMapped = SchemeRegistry::SnapshotLoadMode::kMapped;

  int ctx_builds = 0;
  auto make_ctx = [&]() {
    ++ctx_builds;
    return inst->context(13);
  };

  // Miss: builds and saves v2, exactly like owned mode.
  SchemeHandle first = SchemeRegistry::global().build_or_load(
      "stretch6", make_ctx, path, kMapped);
  EXPECT_EQ(ctx_builds, 1);

  // Hit: the v2 cache serves zero-copy; construction is skipped.
  SchemeHandle second = SchemeRegistry::global().build_or_load(
      "stretch6", make_ctx, path, kMapped);
  EXPECT_EQ(ctx_builds, 1) << "mapped cache hit must not rebuild";
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    auto s = static_cast<NodeId>(rng.index(inst->n()));
    auto t = static_cast<NodeId>(rng.index(inst->n()));
    if (s == t) continue;
    const RouteResult a = first.roundtrip(s, t);
    const RouteResult b = second.roundtrip(s, t);
    ASSERT_EQ(a.ok(), b.ok());
    ASSERT_EQ(a.roundtrip_length(), b.roundtrip_length());
  }

  // A v1 cache file cannot be mapped: mapped mode falls back to the owned
  // decode -- still a hit, never a rebuild.
  save_snapshot(path, "stretch6", first, SchemeRegistry::global(),
                kSnapshotVersionV1);
  SchemeHandle third = SchemeRegistry::global().build_or_load(
      "stretch6", make_ctx, path, kMapped);
  EXPECT_EQ(ctx_builds, 1) << "v1 fallback must use the owned load, not build";
  EXPECT_EQ(third.graph().node_count(), inst->n());
  std::remove(path.c_str());
}

TEST(BuildOrLoad, MismatchedCachedSchemeIsRebuiltAndOverwritten) {
  const auto inst = shared_instance(Family::kRandom, 40, 4, 5);
  const std::string path = temp_path("wrong_scheme_cache");
  std::remove(path.c_str());

  // Seed the cache file with a *different* scheme.
  (void)SchemeRegistry::global().build_or_load(
      "rtz3", [&] { return inst->context(13); }, path);
  ASSERT_EQ(inspect_snapshot(path).scheme, "rtz3");

  // Asking for fulltable at the same path must rebuild, not serve rtz3.
  SchemeHandle handle = SchemeRegistry::global().build_or_load(
      "fulltable", [&] { return inst->context(13); }, path);
  EXPECT_EQ(handle.name(), "full-table(stretch1)");
  EXPECT_EQ(inspect_snapshot(path).scheme, "fulltable");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtr
