#include <gtest/gtest.h>

#include <cmath>

#include "graph/scc.h"
#include "spanner/roundtrip_spanner.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

struct SpannerParam {
  Family family;
  NodeId n;
  int k;
  std::uint64_t seed;
};

class SpannerTest : public ::testing::TestWithParam<SpannerParam> {};

TEST_P(SpannerTest, StretchWithinBoundAndSparser) {
  const auto& p = GetParam();
  Instance inst = make_instance(p.family, p.n, 4, p.seed);
  SpannerResult res = build_roundtrip_spanner(inst.graph, *inst.metric, p.k);
  EXPECT_TRUE(is_strongly_connected(res.subgraph));
  EXPECT_LE(res.measured_stretch, res.stretch_bound);
  EXPECT_GE(res.measured_stretch, 1.0);
  EXPECT_LE(res.edges, inst.graph.edge_count());
  // Sparsity shape: O~(k n^{1+1/k} log RTDiam) with a generous constant.
  const double n = static_cast<double>(inst.n());
  const double logd =
      std::log2(static_cast<double>(inst.metric->rt_diameter()) + 2);
  EXPECT_LE(static_cast<double>(res.edges),
            4.0 * p.k * std::pow(n, 1.0 + 1.0 / p.k) * logd);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpannerTest,
    ::testing::Values(SpannerParam{Family::kRandom, 48, 2, 1},
                      SpannerParam{Family::kRandom, 48, 3, 2},
                      SpannerParam{Family::kGrid, 36, 2, 3},
                      SpannerParam{Family::kRing, 40, 3, 4},
                      SpannerParam{Family::kScaleFree, 48, 2, 5}),
    [](const ::testing::TestParamInfo<SpannerParam>& info) {
      return family_name(info.param.family).substr(0, 4) + "_n" +
             std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(Spanner, DenseGraphGetsMuchSparser) {
  // On a complete digraph the spanner should drop almost all edges.
  Rng rng(9);
  GraphBuilder b = complete_digraph(64, 4, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  DenseRoundtripMetric metric(g);
  SpannerResult res = build_roundtrip_spanner(g, metric, 2);
  EXPECT_LT(res.edges, g.edge_count() / 4);
  EXPECT_LE(res.measured_stretch, res.stretch_bound);
}

}  // namespace
}  // namespace rtr
