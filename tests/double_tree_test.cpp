#include <gtest/gtest.h>

#include "cover/double_tree.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/rng.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

TEST(DoubleTree, HeightEqualsMaxInducedRoundtrip) {
  Instance inst = make_instance(Family::kRandom, 50, 5, 1);
  const Digraph rev = inst.graph.reversed();
  auto members = inst.metric->ball(3, inst.metric->rt_diameter());  // all of V
  DoubleTree dt(inst.graph, rev, 3, members);
  EXPECT_EQ(dt.member_count(), inst.n());
  Dist expected = 0;
  for (NodeId v = 0; v < inst.n(); ++v) {
    expected = std::max(expected, inst.metric->r(3, v));
    EXPECT_EQ(dt.down_dist(v) + dt.up_dist(v), inst.metric->r(3, v))
        << "global tree distances must be exact";
  }
  EXPECT_EQ(dt.rt_height(), expected);
}

TEST(DoubleTree, UpPortsWalkToCenter) {
  Instance inst = make_instance(Family::kGrid, 36, 4, 2);
  const Digraph rev = inst.graph.reversed();
  auto members = inst.metric->ball(0, inst.metric->rt_diameter());
  DoubleTree dt(inst.graph, rev, 0, members);
  for (NodeId v : dt.members()) {
    NodeId at = v;
    Dist walked = 0;
    int guard = 0;
    while (at != 0 && guard++ < 200) {
      const Edge* e = inst.graph.edge_by_port(at, dt.up_port(at));
      ASSERT_NE(e, nullptr);
      walked += e->weight;
      at = e->to;
    }
    EXPECT_EQ(at, 0);
    EXPECT_EQ(walked, dt.up_dist(v));
  }
}

TEST(DoubleTree, RoundtripBallMembersStayConnected) {
  // Theorem 10's seed balls induce strongly connected subgraphs (every node
  // of a witnessed shortest cycle is in the ball); DoubleTree must accept
  // them for any radius.
  Instance inst = make_instance(Family::kRing, 40, 3, 3);
  const Digraph rev = inst.graph.reversed();
  for (Dist radius : {2, 5, 20, 1000}) {
    for (NodeId v = 0; v < inst.n(); v += 9) {
      auto members = inst.metric->ball(v, radius);
      DoubleTree dt(inst.graph, rev, v, members);
      EXPECT_LE(dt.rt_height(), std::max<Dist>(radius, 0) == 0 ? 0 : radius)
          << "ball double tree higher than the ball radius";
    }
  }
}

TEST(DoubleTree, RejectsCenterOutsideMembers) {
  Instance inst = make_instance(Family::kRandom, 20, 3, 4);
  const Digraph rev = inst.graph.reversed();
  EXPECT_THROW(DoubleTree(inst.graph, rev, 5, {1, 2, 3}), std::invalid_argument);
}

TEST(DoubleTree, RejectsDisconnectedMembers) {
  // 0 <-> 1 ... and an unrelated pair; the induced subgraph on {0, 3} is not
  // strongly connected.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 2, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 1, 1);
  const Digraph g = b.freeze();
  const Digraph rev = g.reversed();
  EXPECT_THROW(DoubleTree(g, rev, 0, {0, 3}), std::invalid_argument);
}

TEST(DoubleTree, SingletonCluster) {
  Instance inst = make_instance(Family::kRandom, 10, 3, 5);
  const Digraph rev = inst.graph.reversed();
  DoubleTree dt(inst.graph, rev, 4, {4});
  EXPECT_EQ(dt.rt_height(), 0);
  EXPECT_EQ(dt.member_count(), 1);
  EXPECT_TRUE(dt.contains(4));
  EXPECT_FALSE(dt.contains(5));
}

}  // namespace
}  // namespace rtr
