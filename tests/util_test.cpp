#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/bit_cost.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/text_table.h"

namespace rtr {
namespace {

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1 << 30), b.uniform(0, 1 << 30));
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(7);
  auto p = rng.permutation(257);
  std::set<std::int32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 256);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  for (std::int32_t k : {1, 5, 50, 99, 100}) {
    auto s = rng.sample_without_replacement(100, k);
    std::set<std::int32_t> seen(s.begin(), s.end());
    EXPECT_EQ(static_cast<std::int32_t>(seen.size()), k);
    for (auto v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(Rng, SampleRejectsBadArgs) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
  EXPECT_THROW(rng.sample_without_replacement(5, -1), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(BitCost, KnownValues) {
  EXPECT_EQ(bits_for(0), 1);
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(1024), 10);
  EXPECT_EQ(bits_for(1025), 11);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(0.5), std::logic_error);
}

TEST(Summary, PercentileAfterInterleavedAdds) {
  Summary s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 10.0);
  s.add(0.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  auto out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

}  // namespace
}  // namespace rtr
