#include <gtest/gtest.h>

#include <cmath>

#include "cover/hierarchy.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class HierarchyTest : public ::testing::TestWithParam<FamilyParam> {
 protected:
  void Build(int k) {
    auto [family, n, seed] = GetParam();
    inst_ = make_instance(family, n, 4, seed);
    rev_ = inst_.graph.reversed();
    hierarchy_ = std::make_unique<CoverHierarchy>(inst_.graph, rev_,
                                                  *inst_.metric, k);
    k_ = k;
  }

  Instance inst_;
  Digraph rev_{0};
  std::unique_ptr<CoverHierarchy> hierarchy_;
  int k_ = 0;
};

TEST_P(HierarchyTest, LevelsCoverTheDiameter) {
  Build(2);
  ASSERT_GT(hierarchy_->level_count(), 0);
  const auto& top = hierarchy_->level(hierarchy_->level_count() - 1);
  EXPECT_GE(top.radius, inst_.metric->rt_diameter());
  for (std::int32_t i = 0; i + 1 < hierarchy_->level_count(); ++i) {
    EXPECT_EQ(hierarchy_->level(i + 1).radius, 2 * hierarchy_->level(i).radius);
  }
  EXPECT_EQ(hierarchy_->level(0).radius, 2);
}

TEST_P(HierarchyTest, Theorem13Property1_HomeTreeSpansBall) {
  Build(3);
  for (std::int32_t i = 0; i < hierarchy_->level_count(); ++i) {
    const Dist radius = hierarchy_->level(i).radius;
    for (NodeId v = 0; v < inst_.n(); ++v) {
      const DoubleTree& home = hierarchy_->tree(hierarchy_->home(v, i));
      for (NodeId w : inst_.metric->ball(v, radius)) {
        EXPECT_TRUE(home.contains(w));
      }
    }
  }
}

TEST_P(HierarchyTest, Theorem13Property2_HeightBound) {
  Build(3);
  for (std::int32_t i = 0; i < hierarchy_->level_count(); ++i) {
    const HierarchyLevel& lvl = hierarchy_->level(i);
    for (const DoubleTree& t : lvl.trees) {
      EXPECT_LE(t.rt_height(), (2 * k_ - 1) * lvl.radius);
    }
  }
}

TEST_P(HierarchyTest, Theorem13Property3_MembershipBound) {
  Build(3);
  const double bound =
      2.0 * k_ * std::pow(static_cast<double>(inst_.n()), 1.0 / k_);
  for (std::int32_t i = 0; i < hierarchy_->level_count(); ++i) {
    const HierarchyLevel& lvl = hierarchy_->level(i);
    for (NodeId v = 0; v < inst_.n(); ++v) {
      EXPECT_LE(
          static_cast<double>(lvl.trees_of[static_cast<std::size_t>(v)].size()),
          bound);
    }
  }
}

TEST_P(HierarchyTest, LowestHomeContainingRespectsPairDistance) {
  Build(2);
  for (NodeId u = 0; u < inst_.n(); u += 3) {
    for (NodeId v = 0; v < inst_.n(); v += 5) {
      auto ref = hierarchy_->lowest_home_containing(v, u);
      ASSERT_TRUE(ref.has_value());
      // Guarantee: found level's radius < 2 r(u,v) unless level 0.
      const Dist radius = hierarchy_->level(ref->level).radius;
      if (ref->level > 0) {
        EXPECT_LT(radius / 2, std::max<Dist>(inst_.metric->r(u, v), 1) * 2);
      }
      EXPECT_TRUE(hierarchy_->tree(*ref).contains(u));
      EXPECT_TRUE(hierarchy_->tree(*ref).contains(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, HierarchyTest,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 40, 3},
                      FamilyParam{Family::kBidirected, 40, 4}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

}  // namespace
}  // namespace rtr
