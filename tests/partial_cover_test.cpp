#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cover/partial_cover.h"

namespace rtr {
namespace {

std::vector<SeedCluster> clusters_from(
    std::vector<std::vector<NodeId>> raw) {
  std::vector<SeedCluster> out;
  for (auto& members : raw) {
    SeedCluster c;
    c.seed = members.front();
    std::sort(members.begin(), members.end());
    c.members = std::move(members);
    out.push_back(std::move(c));
  }
  return out;
}

TEST(PartialCover, DisjointClustersPassThrough) {
  auto r = clusters_from({{0, 1}, {2, 3}, {4, 5}});
  std::vector<char> active(r.size(), 1);
  auto res = partial_cover(r, active, 6, 2);
  EXPECT_EQ(res.merged.size(), 3u);
  EXPECT_EQ(res.covered.size(), 3u);
  EXPECT_TRUE(res.consumed.empty());
  // Lemma 11(2): outputs pairwise disjoint.
  std::set<NodeId> seen;
  for (const auto& m : res.merged) {
    for (NodeId v : m.members) EXPECT_TRUE(seen.insert(v).second);
  }
}

TEST(PartialCover, CoveredClustersAreContained) {
  // Lemma 11(1): every covered cluster is inside its merged output.
  auto r = clusters_from({{0, 1, 2}, {2, 3}, {3, 4}, {7, 8}});
  std::vector<char> active(r.size(), 1);
  auto res = partial_cover(r, active, 9, 2);
  for (std::size_t i = 0; i < res.merged.size(); ++i) {
    for (std::int32_t c : res.merged[i].absorbed) {
      for (NodeId v : r[static_cast<std::size_t>(c)].members) {
        EXPECT_TRUE(std::binary_search(res.merged[i].members.begin(),
                                       res.merged[i].members.end(), v));
      }
    }
  }
  // Every input cluster is either covered or consumed (this instance has a
  // chain, so one pass handles all of it) -- and never both.
  std::set<std::int32_t> covered(res.covered.begin(), res.covered.end());
  std::set<std::int32_t> consumed(res.consumed.begin(), res.consumed.end());
  for (std::int32_t c : consumed) EXPECT_FALSE(covered.contains(c));
}

TEST(PartialCover, InactiveClustersUntouched) {
  auto r = clusters_from({{0, 1}, {1, 2}, {4, 5}});
  std::vector<char> active = {1, 0, 1};
  auto res = partial_cover(r, active, 6, 2);
  // Cluster 1 is inactive: never covered, never consumed.
  for (std::int32_t c : res.covered) EXPECT_NE(c, 1);
  for (std::int32_t c : res.consumed) EXPECT_NE(c, 1);
}

TEST(PartialCover, CenterIsSeedOfFirstCluster) {
  auto r = clusters_from({{5, 1}, {1, 2}});
  std::vector<char> active(r.size(), 1);
  auto res = partial_cover(r, active, 6, 2);
  ASSERT_FALSE(res.merged.empty());
  EXPECT_EQ(res.merged[0].center, 5);
}

TEST(PartialCover, ChainMergesRespectGrowthBound) {
  // A long chain of pairwise-overlapping clusters; with k=2 the growth
  // condition |Z| <= sqrt(|R|) |Y| stops the merge early, consuming the
  // boundary clusters without covering them.
  std::vector<std::vector<NodeId>> raw;
  for (NodeId i = 0; i < 16; ++i) raw.push_back({i, static_cast<NodeId>(i + 1)});
  auto r = clusters_from(std::move(raw));
  std::vector<char> active(r.size(), 1);
  auto res = partial_cover(r, active, 20, 2);
  EXPECT_FALSE(res.merged.empty());
  std::size_t processed = res.covered.size() + res.consumed.size();
  EXPECT_EQ(processed, r.size());  // the chain all intersects transitively
  EXPECT_LT(res.covered.size(), r.size());  // some were merely consumed
}

TEST(PartialCover, RejectsBadK) {
  auto r = clusters_from({{0}});
  std::vector<char> active = {1};
  EXPECT_THROW(partial_cover(r, active, 1, 1), std::invalid_argument);
}

TEST(PartialCover, EmptyActiveSetYieldsNothing) {
  auto r = clusters_from({{0, 1}});
  std::vector<char> active = {0};
  auto res = partial_cover(r, active, 2, 2);
  EXPECT_TRUE(res.merged.empty());
  EXPECT_TRUE(res.covered.empty());
}

}  // namespace
}  // namespace rtr
