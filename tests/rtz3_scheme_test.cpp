#include <gtest/gtest.h>

#include <cmath>

#include "io/snapshot_format.h"
#include "net/simulator.h"
#include "rtz/rtz3_scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class Rtz3Test : public ::testing::TestWithParam<FamilyParam> {
 protected:
  void Build() {
    auto [family, n, seed] = GetParam();
    inst_ = make_instance(family, n, 5, seed);
    Rng rng(seed + 31);
    scheme_ = std::make_unique<Rtz3Scheme>(inst_.graph, *inst_.metric,
                                           inst_.names, rng);
  }
  Instance inst_;
  std::unique_ptr<Rtz3Scheme> scheme_;
};

TEST_P(Rtz3Test, AllPairsDeliverWithLemma2Inequality) {
  Build();
  for (NodeId s = 0; s < inst_.n(); ++s) {
    for (NodeId t = 0; t < inst_.n(); ++t) {
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok()) << "undelivered " << s << "->" << t;
      const Dist r = inst_.metric->r(s, t);
      // Lemma 2's per-leg property: p(u,v) <= d(u,v) + r(u,v).
      EXPECT_LE(res.out_length, inst_.metric->d(s, t) + r);
      EXPECT_LE(res.back_length, inst_.metric->d(t, s) + r);
      // Roundtrip stretch 3.
      EXPECT_LE(res.roundtrip_length(), 3 * r);
    }
  }
}

TEST_P(Rtz3Test, TablesAreSublinearNearSqrtN) {
  Build();
  TableStats stats = scheme_->table_stats();
  const double n = static_cast<double>(inst_.n());
  const double budget = std::sqrt(n) * std::pow(std::log2(n) + 1, 2) * 8;
  EXPECT_LE(static_cast<double>(stats.max_entries()), budget)
      << "tables exceed O~(sqrt n) entry budget";
}

TEST_P(Rtz3Test, HeadersStayPolylog) {
  Build();
  const double log_n = std::log2(static_cast<double>(inst_.n())) + 1;
  for (NodeId s = 0; s < inst_.n(); s += 5) {
    for (NodeId t = 0; t < inst_.n(); t += 7) {
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_LE(static_cast<double>(res.max_header_bits), 80 * log_n * log_n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, Rtz3Test,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 40, 3},
                      FamilyParam{Family::kScaleFree, 48, 4},
                      FamilyParam{Family::kBidirected, 40, 5},
                      FamilyParam{Family::kRandom, 90, 6}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

TEST(Rtz3, GreedyCentersVariantAlsoDelivers) {
  Instance inst = make_instance(Family::kRandom, 40, 4, 11);
  Rng rng(12);
  Rtz3Scheme::Options opts;
  opts.greedy_centers = true;
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng, opts);
  for (NodeId s = 0; s < inst.n(); s += 2) {
    for (NodeId t = 0; t < inst.n(); t += 3) {
      auto res = simulate_roundtrip(inst.graph, scheme, s, t,
                                    inst.names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_LE(res.roundtrip_length(), 3 * inst.metric->r(s, t));
    }
  }
}

TEST(Rtz3, SelfRoundtripIsZero) {
  Instance inst = make_instance(Family::kRandom, 30, 3, 13);
  Rng rng(14);
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  auto res = simulate_roundtrip(inst.graph, scheme, 9, 9, inst.names.name_of(9));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.roundtrip_length(), 0);
  EXPECT_EQ(res.out_hops + res.back_hops, 0);
}

TEST(Rtz3, AddressLookupMatchesOwnAddress) {
  Instance inst = make_instance(Family::kGrid, 36, 3, 15);
  Rng rng(16);
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  for (NodeId v = 0; v < inst.n(); ++v) {
    const RtzAddress& by_name = scheme.address_of_name(inst.names.name_of(v));
    const RtzAddress& own = scheme.own_address(v);
    EXPECT_EQ(by_name.name, own.name);
    EXPECT_EQ(by_name.center_index, own.center_index);
  }
}

// Both dictionary layouts (SoA default and the retained AoS reference) must
// behave identically: same routes, same per-hop lookup results, same table
// accounting, same snapshot bytes.  The bench harness's rtz3-soa-dicts
// hot-path delta relies on this equivalence being airtight.
TEST(Rtz3, SoaAndAosDictionaryLayoutsAreEquivalent) {
  Instance inst = make_instance(Family::kRandom, 60, 4, 21);
  Rtz3Scheme::Options aos_opts;
  aos_opts.soa_dicts = false;
  Rtz3Scheme::Options soa_opts;
  soa_opts.soa_dicts = true;
  Rng rng_aos(22);
  Rtz3Scheme aos(inst.graph, *inst.metric, inst.names, rng_aos, aos_opts);
  Rng rng_soa(22);
  Rtz3Scheme soa(inst.graph, *inst.metric, inst.names, rng_soa, soa_opts);

  // Per-hop lookups agree probe for probe (hits and misses).
  for (NodeId at = 0; at < inst.n(); ++at) {
    for (NodeId w = 0; w < inst.n(); w += 3) {
      const NodeName key = inst.names.name_of(w);
      const TreeLabel* la = aos.find_ball_label(at, key);
      const TreeLabel* ls = soa.find_ball_label(at, key);
      ASSERT_EQ(la == nullptr, ls == nullptr);
      if (la != nullptr) EXPECT_EQ(la->dfs_in, ls->dfs_in);
      const Port* pa = aos.find_member_up_port(at, key);
      const Port* ps = soa.find_member_up_port(at, key);
      ASSERT_EQ(pa == nullptr, ps == nullptr);
      if (pa != nullptr) EXPECT_EQ(*pa, *ps);
    }
  }

  // Routes and table accounting agree.
  for (NodeId s = 0; s < inst.n(); s += 4) {
    for (NodeId t = 0; t < inst.n(); t += 5) {
      auto ra = simulate_roundtrip(inst.graph, aos, s, t, inst.names.name_of(t));
      auto rs = simulate_roundtrip(inst.graph, soa, s, t, inst.names.name_of(t));
      ASSERT_TRUE(ra.ok());
      ASSERT_TRUE(rs.ok());
      EXPECT_EQ(ra.roundtrip_length(), rs.roundtrip_length());
      EXPECT_EQ(ra.out_hops + ra.back_hops, rs.out_hops + rs.back_hops);
      EXPECT_EQ(ra.max_header_bits, rs.max_header_bits);
    }
  }
  EXPECT_EQ(aos.table_stats().mean_bits(), soa.table_stats().mean_bits());
  EXPECT_EQ(aos.table_stats().max_entries(), soa.table_stats().max_entries());

  // The on-disk encoding is layout-independent byte for byte.
  SnapshotWriter wa, ws;
  aos.save(wa);
  soa.save(ws);
  EXPECT_EQ(wa.bytes(), ws.bytes());
}

}  // namespace
}  // namespace rtr
