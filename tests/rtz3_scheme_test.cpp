#include <gtest/gtest.h>

#include <cmath>

#include "io/snapshot_format.h"
#include "net/simulator.h"
#include "rtz/rtz3_scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class Rtz3Test : public ::testing::TestWithParam<FamilyParam> {
 protected:
  void Build() {
    auto [family, n, seed] = GetParam();
    inst_ = make_instance(family, n, 5, seed);
    Rng rng(seed + 31);
    scheme_ = std::make_unique<Rtz3Scheme>(inst_.graph, *inst_.metric,
                                           inst_.names, rng);
  }
  Instance inst_;
  std::unique_ptr<Rtz3Scheme> scheme_;
};

TEST_P(Rtz3Test, AllPairsDeliverWithLemma2Inequality) {
  Build();
  for (NodeId s = 0; s < inst_.n(); ++s) {
    for (NodeId t = 0; t < inst_.n(); ++t) {
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok()) << "undelivered " << s << "->" << t;
      const Dist r = inst_.metric->r(s, t);
      // Lemma 2's per-leg property: p(u,v) <= d(u,v) + r(u,v).
      EXPECT_LE(res.out_length, inst_.metric->d(s, t) + r);
      EXPECT_LE(res.back_length, inst_.metric->d(t, s) + r);
      // Roundtrip stretch 3.
      EXPECT_LE(res.roundtrip_length(), 3 * r);
    }
  }
}

TEST_P(Rtz3Test, TablesAreSublinearNearSqrtN) {
  Build();
  TableStats stats = scheme_->table_stats();
  const double n = static_cast<double>(inst_.n());
  const double budget = std::sqrt(n) * std::pow(std::log2(n) + 1, 2) * 8;
  EXPECT_LE(static_cast<double>(stats.max_entries()), budget)
      << "tables exceed O~(sqrt n) entry budget";
}

TEST_P(Rtz3Test, HeadersStayPolylog) {
  Build();
  const double log_n = std::log2(static_cast<double>(inst_.n())) + 1;
  for (NodeId s = 0; s < inst_.n(); s += 5) {
    for (NodeId t = 0; t < inst_.n(); t += 7) {
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_LE(static_cast<double>(res.max_header_bits), 80 * log_n * log_n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, Rtz3Test,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 40, 3},
                      FamilyParam{Family::kScaleFree, 48, 4},
                      FamilyParam{Family::kBidirected, 40, 5},
                      FamilyParam{Family::kRandom, 90, 6}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

TEST(Rtz3, GreedyCentersVariantAlsoDelivers) {
  Instance inst = make_instance(Family::kRandom, 40, 4, 11);
  Rng rng(12);
  Rtz3Scheme::Options opts;
  opts.greedy_centers = true;
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng, opts);
  for (NodeId s = 0; s < inst.n(); s += 2) {
    for (NodeId t = 0; t < inst.n(); t += 3) {
      auto res = simulate_roundtrip(inst.graph, scheme, s, t,
                                    inst.names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_LE(res.roundtrip_length(), 3 * inst.metric->r(s, t));
    }
  }
}

TEST(Rtz3, SelfRoundtripIsZero) {
  Instance inst = make_instance(Family::kRandom, 30, 3, 13);
  Rng rng(14);
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  auto res = simulate_roundtrip(inst.graph, scheme, 9, 9, inst.names.name_of(9));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.roundtrip_length(), 0);
  EXPECT_EQ(res.out_hops + res.back_hops, 0);
}

TEST(Rtz3, AddressLookupMatchesOwnAddress) {
  Instance inst = make_instance(Family::kGrid, 36, 3, 15);
  Rng rng(16);
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  for (NodeId v = 0; v < inst.n(); ++v) {
    const RtzAddress& by_name = scheme.address_of_name(inst.names.name_of(v));
    const RtzAddress& own = scheme.own_address(v);
    EXPECT_EQ(by_name.name, own.name);
    EXPECT_EQ(by_name.center_index, own.center_index);
  }
}

// The flat CSR tables must behave identically whether they were flattened
// from the build path or from a v1 streamed decode: same routes, same
// per-hop lookup results, same table accounting, same snapshot bytes.  The
// bench harness's rtz3-flat-dicts hot-path delta relies on this equivalence
// being airtight.
TEST(Rtz3, V1RoundTripPreservesTablesProbeForProbe) {
  Instance inst = make_instance(Family::kRandom, 60, 4, 21);
  Rng rng(22);
  const Rtz3Scheme built(inst.graph, *inst.metric, inst.names, rng);

  SnapshotWriter w;
  built.save(w);
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  const Rtz3Scheme loaded(r, inst.graph);
  r.expect_exhausted("rtz3 v1 stream");

  // Per-hop lookups agree probe for probe (hits and misses).
  for (NodeId at = 0; at < inst.n(); ++at) {
    for (NodeId v = 0; v < inst.n(); v += 3) {
      const NodeName key = inst.names.name_of(v);
      const auto lb = built.find_ball_label(at, key);
      const auto ll = loaded.find_ball_label(at, key);
      ASSERT_EQ(lb.has_value(), ll.has_value());
      if (lb.has_value()) {
        EXPECT_EQ(lb->dfs_in, ll->dfs_in);
        EXPECT_EQ(lb->light_hops, ll->light_hops);
      }
      const Port* pb = built.find_member_up_port(at, key);
      const Port* pl = loaded.find_member_up_port(at, key);
      ASSERT_EQ(pb == nullptr, pl == nullptr);
      if (pb != nullptr) {
        EXPECT_EQ(*pb, *pl);
      }
      const TreeNodeTable* tb = built.find_member_table(at, key);
      const TreeNodeTable* tl = loaded.find_member_table(at, key);
      ASSERT_EQ(tb == nullptr, tl == nullptr);
      if (tb != nullptr) {
        EXPECT_EQ(tb->dfs_in, tl->dfs_in);
        EXPECT_EQ(tb->heavy_port, tl->heavy_port);
      }
    }
  }

  // Routes and table accounting agree.
  for (NodeId s = 0; s < inst.n(); s += 4) {
    for (NodeId t = 0; t < inst.n(); t += 5) {
      auto rb = simulate_roundtrip(inst.graph, built, s, t,
                                   inst.names.name_of(t));
      auto rl = simulate_roundtrip(inst.graph, loaded, s, t,
                                   inst.names.name_of(t));
      ASSERT_TRUE(rb.ok());
      ASSERT_TRUE(rl.ok());
      EXPECT_EQ(rb.roundtrip_length(), rl.roundtrip_length());
      EXPECT_EQ(rb.out_hops + rb.back_hops, rl.out_hops + rl.back_hops);
      EXPECT_EQ(rb.max_header_bits, rl.max_header_bits);
    }
  }
  EXPECT_EQ(built.table_stats().mean_bits(), loaded.table_stats().mean_bits());
  EXPECT_EQ(built.table_stats().max_entries(),
            loaded.table_stats().max_entries());

  // Re-saving the loaded scheme reproduces the stream byte for byte.
  SnapshotWriter w2;
  loaded.save(w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

}  // namespace
}  // namespace rtr
