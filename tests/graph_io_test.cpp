#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(GraphIo, RoundTripPreservesEdges) {
  Rng rng(1);
  const Digraph g = random_strongly_connected(30, 3.0, 5, rng).freeze();
  const Digraph h = from_edge_list(to_edge_list(g)).freeze();
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.out_edges(u)) {
      EXPECT_TRUE(h.has_edge(u, e.to));
    }
  }
}

TEST(GraphIo, ParsesCommentsAndBlankLines) {
  const Digraph g = from_edge_list(
      "# a tiny graph\n"
      "n 3\n"
      "\n"
      "0 1 5  # forward\n"
      "1 2 2\n"
      "2 0 1\n")
                        .freeze();
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(GraphIo, MissingHeaderThrows) {
  EXPECT_THROW(from_edge_list("0 1 5\n"), std::runtime_error);
  EXPECT_THROW(from_edge_list(""), std::runtime_error);
}

TEST(GraphIo, MalformedEdgeThrows) {
  EXPECT_THROW(from_edge_list("n 3\n0 1\n"), std::runtime_error);
}

TEST(GraphIo, OutOfRangeEdgeThrows) {
  EXPECT_THROW(from_edge_list("n 2\n0 5 1\n"), std::out_of_range);
}

}  // namespace
}  // namespace rtr
