#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/scc.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(Scc, SingleCycleIsOneComponent) {
  GraphBuilder b(5);
  for (NodeId i = 0; i < 5; ++i) b.add_edge(i, (i + 1) % 5, 1);
  const Digraph g = b.freeze();
  auto comp = strongly_connected_components(g);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(comp[static_cast<std::size_t>(v)], comp[0]);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, PathIsNotStronglyConnected) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  const Digraph g = b.freeze();
  EXPECT_FALSE(is_strongly_connected(g));
  auto comp = strongly_connected_components(g);
  // All four nodes in distinct components.
  EXPECT_NE(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(Scc, TwoCyclesWithOneWayBridge) {
  GraphBuilder b(6);
  for (NodeId i = 0; i < 3; ++i) b.add_edge(i, (i + 1) % 3, 1);
  for (NodeId i = 3; i < 6; ++i) b.add_edge(i, 3 + (i - 3 + 1) % 3, 1);
  b.add_edge(0, 3, 1);  // bridge, one way only
  const Digraph g = b.freeze();
  auto comp = strongly_connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, EmptyAndSingletonGraphs) {
  EXPECT_TRUE(is_strongly_connected(Digraph(0)));
  EXPECT_TRUE(is_strongly_connected(Digraph(1)));
  Digraph g2(2);
  EXPECT_FALSE(is_strongly_connected(g2));
}

TEST(Scc, DeepGraphDoesNotOverflowStack) {
  // 60k-node cycle: a recursive Tarjan would crash here.
  const NodeId n = 60000;
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n, 1);
  const Digraph g = b.freeze();
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(SccSubgraph, InducedSubgraphConnectivity) {
  // 0 <-> 1 <-> 2 with 3 hanging off one-way.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 1, 1);
  b.add_edge(0, 3, 1);
  const Digraph g = b.freeze();
  std::vector<char> all = {1, 1, 1, 0};
  EXPECT_TRUE(is_strongly_connected_subgraph(g, all));
  std::vector<char> with3 = {1, 1, 1, 1};
  EXPECT_FALSE(is_strongly_connected_subgraph(g, with3));
  // {0, 2} alone: the connecting node 1 is masked out.
  std::vector<char> gap = {1, 0, 1, 0};
  EXPECT_FALSE(is_strongly_connected_subgraph(g, gap));
  std::vector<char> single = {0, 1, 0, 0};
  EXPECT_TRUE(is_strongly_connected_subgraph(g, single));
}

TEST(Scc, GeneratorFamiliesAreStronglyConnected) {
  Rng rng(17);
  for (Family f : all_families()) {
    for (NodeId n : {16, 100}) {
      Digraph g = make_family(f, n, 8, rng).freeze();
      EXPECT_TRUE(is_strongly_connected(g)) << family_name(f) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace rtr
