#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cover/sparse_cover.h"
#include "graph/scc.h"
#include "rt/metric.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

struct CoverParam {
  Family family;
  NodeId n;
  int k;
  // Radius as a fraction of RTDiam (so the sweep is size-independent).
  double diam_fraction;
  std::uint64_t seed;
};

class SparseCoverTest : public ::testing::TestWithParam<CoverParam> {
 protected:
  void Build() {
    const auto& p = GetParam();
    inst_ = make_instance(p.family, p.n, 6, p.seed);
    d_ = std::max<Dist>(
        1, static_cast<Dist>(p.diam_fraction *
                             static_cast<double>(inst_.metric->rt_diameter())));
    cover_ = build_sparse_cover(*inst_.metric, p.k, d_);
  }

  Instance inst_;
  Dist d_ = 0;
  SparseCoverResult cover_;
};

TEST_P(SparseCoverTest, Theorem10Property1_HomeClusterContainsBall) {
  Build();
  for (NodeId v = 0; v < inst_.n(); ++v) {
    const std::int32_t home = cover_.home_of[static_cast<std::size_t>(v)];
    ASSERT_GE(home, 0);
    const auto& members = cover_.clusters[static_cast<std::size_t>(home)].members;
    for (NodeId w : inst_.metric->ball(v, d_)) {
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), w))
          << "ball of " << v << " leaks " << w;
    }
  }
}

TEST_P(SparseCoverTest, Theorem10Property2_InducedRadiusBound) {
  Build();
  const auto& p = GetParam();
  const Digraph rev = inst_.graph.reversed();
  for (const auto& cluster : cover_.clusters) {
    std::vector<char> mask(static_cast<std::size_t>(inst_.n()), 0);
    for (NodeId v : cluster.members) mask[static_cast<std::size_t>(v)] = 1;
    ASSERT_TRUE(is_strongly_connected_subgraph(inst_.graph, mask));
    auto induced = induced_roundtrip_from(inst_.graph, rev, cluster.center, mask);
    for (NodeId v : cluster.members) {
      ASSERT_LT(induced[static_cast<std::size_t>(v)], kInfDist);
      EXPECT_LE(induced[static_cast<std::size_t>(v)], (2 * p.k - 1) * d_)
          << "cluster radius blowup exceeds 2k-1";
    }
  }
}

TEST_P(SparseCoverTest, Theorem10Property3_OverlapBound) {
  Build();
  const auto& p = GetParam();
  const double bound =
      2.0 * p.k * std::pow(static_cast<double>(inst_.n()), 1.0 / p.k);
  for (std::int32_t c : cover_.membership_counts(inst_.n())) {
    EXPECT_LE(static_cast<double>(c), bound);
  }
  // Lemma 12's round bound implies the same quantity bounds rounds.
  EXPECT_LE(static_cast<double>(cover_.rounds), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseCoverTest,
    ::testing::Values(CoverParam{Family::kRandom, 60, 2, 0.25, 1},
                      CoverParam{Family::kRandom, 60, 3, 0.25, 2},
                      CoverParam{Family::kRandom, 60, 2, 0.75, 3},
                      CoverParam{Family::kGrid, 64, 2, 0.3, 4},
                      CoverParam{Family::kRing, 48, 3, 0.2, 5},
                      CoverParam{Family::kScaleFree, 60, 2, 0.3, 6},
                      CoverParam{Family::kBidirected, 50, 4, 0.3, 7}),
    [](const ::testing::TestParamInfo<CoverParam>& info) {
      return family_name(info.param.family).substr(0, 4) + "_n" +
             std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(SparseCover, TinyRadiusYieldsSingletonishClusters) {
  Instance inst = make_instance(Family::kRandom, 40, 6, 9);
  // Radius below the minimum roundtrip (2): every ball is a singleton.
  SparseCoverResult cover = build_sparse_cover(*inst.metric, 2, 1);
  for (NodeId v = 0; v < inst.n(); ++v) {
    const auto home = cover.home_of[static_cast<std::size_t>(v)];
    const auto& members = cover.clusters[static_cast<std::size_t>(home)].members;
    EXPECT_TRUE(std::binary_search(members.begin(), members.end(), v));
  }
}

TEST(SparseCover, DiameterRadiusYieldsOneClusterPerRound) {
  Instance inst = make_instance(Family::kRandom, 40, 6, 10);
  SparseCoverResult cover =
      build_sparse_cover(*inst.metric, 2, inst.metric->rt_diameter());
  // Every seed ball is V, so the very first merge covers everything.
  EXPECT_EQ(cover.rounds, 1);
  ASSERT_EQ(cover.clusters.size(), 1u);
  EXPECT_EQ(static_cast<NodeId>(cover.clusters[0].members.size()), inst.n());
}

TEST(SparseCover, RejectsBadArguments) {
  Instance inst = make_instance(Family::kRandom, 20, 4, 11);
  EXPECT_THROW(build_sparse_cover(*inst.metric, 1, 4), std::invalid_argument);
  EXPECT_THROW(build_sparse_cover(*inst.metric, 2, -1), std::invalid_argument);
}

}  // namespace
}  // namespace rtr
