// Model-level invariance properties.
//
// The TINN + fixed-port model makes two adversary claims the schemes must be
// immune to: names carry no topology, and port numbers carry no global
// structure.  A third property is metric-theoretic: scaling all weights by a
// constant scales every route by the same constant, leaving stretch intact.
#include <gtest/gtest.h>

#include "core/exstretch.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;

Digraph scaled_copy(const Digraph& g, Weight factor) {
  GraphBuilder out(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.out_edges(u)) out.add_edge(u, e.to, e.weight * factor);
  }
  return out.freeze();
}

TEST(Invariance, PortRelabelingDoesNotChangeRouteLengths) {
  // Same graph, same names, two different adversarial port assignments:
  // route lengths must match exactly (schemes must never interpret port
  // numbers).
  Rng base_rng(1);
  GraphBuilder b1 = random_strongly_connected(60, 3.5, 5, base_rng);
  GraphBuilder b2 = b1;  // identical topology
  Rng ports1(11), ports2(22);
  b1.assign_adversarial_ports(ports1);
  b2.assign_adversarial_ports(ports2);
  const Digraph g1 = b1.freeze(), g2 = b2.freeze();
  DenseRoundtripMetric m1(g1), m2(g2);
  auto names = NameAssignment::identity(60);
  Rng s1(33), s2(33);  // identical scheme randomness
  Stretch6Scheme scheme1(g1, m1, names, s1);
  Stretch6Scheme scheme2(g2, m2, names, s2);
  for (NodeId s = 0; s < 60; s += 4) {
    for (NodeId t = 0; t < 60; t += 5) {
      auto r1 = simulate_roundtrip(g1, scheme1, s, t, names.name_of(t));
      auto r2 = simulate_roundtrip(g2, scheme2, s, t, names.name_of(t));
      ASSERT_TRUE(r1.ok());
      ASSERT_TRUE(r2.ok());
      EXPECT_EQ(r1.roundtrip_length(), r2.roundtrip_length())
          << "port labels leaked into routing at pair " << s << "," << t;
    }
  }
}

TEST(Invariance, WeightScalingScalesRoutesLinearly) {
  Rng base_rng(2);
  GraphBuilder b = random_strongly_connected(50, 3.5, 5, base_rng);
  Rng ports(3);
  b.assign_adversarial_ports(ports);
  const Digraph g = b.freeze();
  Digraph g10 = scaled_copy(g, 10);
  DenseRoundtripMetric m(g), m10(g10);
  auto names = NameAssignment::identity(50);
  Rng s1(44), s2(44);
  Stretch6Scheme scheme(g, m, names, s1);
  Stretch6Scheme scheme10(g10, m10, names, s2);
  for (NodeId s = 0; s < 50; s += 3) {
    for (NodeId t = 0; t < 50; t += 7) {
      auto r1 = simulate_roundtrip(g, scheme, s, t, names.name_of(t));
      auto r2 = simulate_roundtrip(g10, scheme10, s, t, names.name_of(t));
      ASSERT_TRUE(r1.ok());
      ASSERT_TRUE(r2.ok());
      EXPECT_EQ(10 * r1.roundtrip_length(), r2.roundtrip_length());
    }
  }
}

TEST(Invariance, ExStretchBoundHoldsUnderEveryNaming) {
  Rng base_rng(4);
  GraphBuilder b = random_strongly_connected(40, 3.5, 4, base_rng);
  b.assign_adversarial_ports(base_rng);
  const Digraph g = b.freeze();
  DenseRoundtripMetric m(g);
  for (std::uint64_t name_seed : {1u, 2u, 3u, 4u}) {
    Rng rng(name_seed);
    auto names = NameAssignment::random(40, rng);
    ExStretchScheme scheme(g, m, names, rng);
    const double bound = scheme.stretch_bound();
    for (NodeId s = 0; s < 40; s += 3) {
      for (NodeId t = 0; t < 40; t += 4) {
        if (s == t) continue;
        auto res = simulate_roundtrip(g, scheme, s, t, names.name_of(t));
        ASSERT_TRUE(res.ok());
        EXPECT_LE(static_cast<double>(res.roundtrip_length()),
                  bound * static_cast<double>(m.r(s, t)));
      }
    }
  }
}

TEST(Invariance, PolyStretchBoundHoldsUnderEveryNaming) {
  Rng base_rng(5);
  GraphBuilder b = random_strongly_connected(40, 3.5, 4, base_rng);
  b.assign_adversarial_ports(base_rng);
  const Digraph g = b.freeze();
  DenseRoundtripMetric m(g);
  for (std::uint64_t name_seed : {1u, 2u, 3u}) {
    Rng rng(name_seed);
    auto names = NameAssignment::random(40, rng);
    PolyStretchScheme scheme(g, m, names);
    const double bound = scheme.stretch_bound();
    for (NodeId s = 0; s < 40; s += 2) {
      for (NodeId t = 0; t < 40; t += 5) {
        if (s == t) continue;
        auto res = simulate_roundtrip(g, scheme, s, t, names.name_of(t));
        ASSERT_TRUE(res.ok());
        EXPECT_LE(static_cast<double>(res.roundtrip_length()),
                  bound * static_cast<double>(m.r(s, t)));
      }
    }
  }
}

TEST(Invariance, HeaderBitsIndependentOfPairDistance) {
  // Headers must stay within their polylog budget whether the pair is
  // adjacent or diametral -- no distance-proportional state may leak in.
  Rng base_rng(6);
  GraphBuilder b = ring_with_chords(64, 10, 3, base_rng);
  b.assign_adversarial_ports(base_rng);
  const Digraph g = b.freeze();
  DenseRoundtripMetric m(g);
  Rng rng(7);
  auto names = NameAssignment::random(64, rng);
  Stretch6Scheme scheme(g, m, names, rng);
  std::int64_t min_bits = INT64_MAX, max_bits = 0;
  for (NodeId t = 1; t < 64; t += 3) {
    auto res = simulate_roundtrip(g, scheme, 0, t, names.name_of(t));
    ASSERT_TRUE(res.ok());
    min_bits = std::min(min_bits, res.max_header_bits);
    max_bits = std::max(max_bits, res.max_header_bits);
  }
  // Variation comes from label sizes only, never from path length: allow a
  // small constant factor.
  EXPECT_LE(max_bits, 3 * min_bits);
}

}  // namespace
}  // namespace rtr
