#include <gtest/gtest.h>

#include <cmath>

#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "treeroute/tree_router.h"
#include "util/rng.h"

namespace rtr {
namespace {

// Routes from the tree root to `target` by repeatedly applying the local
// forwarding rule, resolving ports against the graph; returns the weighted
// length, or -1 on any failure.
Dist route_in_tree(const Digraph& g, const TreeRouter& router, NodeId target) {
  TreeLabel label = router.label(target);
  NodeId at = router.root();
  Dist total = 0;
  for (int guard = 0; guard < 2 * g.node_count() + 4; ++guard) {
    Port p = tree_next_port(router.table(at), label);
    if (p == kNoPort) return at == target ? total : -1;
    const Edge* e = g.edge_by_port(at, p);
    if (e == nullptr) return -1;
    total += e->weight;
    at = e->to;
  }
  return -1;
}

class TreeRouterFamilyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeRouterFamilyTest, RoutesOptimallyToEveryNode) {
  Rng rng(GetParam());
  GraphBuilder b = random_strongly_connected(120, 3.0, 9, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  OutTree tree = dijkstra_out_tree(g, 0);
  TreeRouter router(tree);
  EXPECT_EQ(router.member_count(), 120);
  for (NodeId v = 0; v < 120; ++v) {
    EXPECT_EQ(route_in_tree(g, router, v), tree.dist[static_cast<std::size_t>(v)])
        << "target " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRouterFamilyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TreeRouter, LabelSizeLogarithmicLightHops) {
  Rng rng(7);
  GraphBuilder b = random_strongly_connected(500, 3.0, 9, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 3));
  const double log_n = std::log2(500.0);
  for (NodeId v = 0; v < 500; ++v) {
    EXPECT_LE(static_cast<double>(router.label(v).light_hops.size()), log_n)
        << "heavy-path decomposition bound violated";
  }
}

TEST(TreeRouter, PathGraphHasNoLightHops) {
  // A directed path: every child is the unique (hence heavy) child.
  GraphBuilder b(20);
  for (NodeId i = 0; i + 1 < 20; ++i) b.add_edge(i, i + 1, 1);
  b.add_edge(19, 0, 1);  // close the cycle for variety; tree ignores it
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 0));
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_TRUE(router.label(v).light_hops.empty());
  }
  EXPECT_EQ(route_in_tree(g, router, 19), 19);
}

TEST(TreeRouter, StarGraphLabelsUseLightEdges) {
  // Star: all but the heaviest child are light.
  GraphBuilder b(10);
  for (NodeId v = 1; v < 10; ++v) {
    b.add_edge(0, v, 1);
    b.add_edge(v, 0, 1);
  }
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 0));
  int light_labels = 0;
  for (NodeId v = 1; v < 10; ++v) {
    light_labels += router.label(v).light_hops.empty() ? 0 : 1;
    EXPECT_EQ(route_in_tree(g, router, v), 1);
  }
  EXPECT_EQ(light_labels, 8);  // exactly one heavy child
}

TEST(TreeRouter, RestrictedTreeSkipsNonMembers) {
  Rng rng(8);
  GraphBuilder b = random_strongly_connected(60, 3.0, 5, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  std::vector<char> mask(60, 0);
  for (NodeId v = 0; v < 30; ++v) mask[static_cast<std::size_t>(v)] = 1;
  OutTree tree = dijkstra_out_tree_within(g, 5, mask);
  TreeRouter router(tree);
  EXPECT_LE(router.member_count(), 30);
  for (NodeId v = 30; v < 60; ++v) EXPECT_FALSE(router.contains(v));
  for (NodeId v : router.members()) {
    EXPECT_EQ(route_in_tree(g, router, v), tree.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(TreeRouter, SingletonTree) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  const Digraph g = b.freeze();
  std::vector<char> mask = {1, 0, 0};
  TreeRouter router(dijkstra_out_tree_within(g, 0, mask));
  EXPECT_EQ(router.member_count(), 1);
  TreeLabel self = router.label(0);
  EXPECT_EQ(tree_next_port(router.table(0), self), kNoPort);
}

TEST(TreeRouter, LabelForNonMemberThrows) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  const Digraph g = b.freeze();
  std::vector<char> mask = {1, 1, 0};
  TreeRouter router(dijkstra_out_tree_within(g, 0, mask));
  EXPECT_THROW(router.label(2), std::invalid_argument);
}

TEST(TreeRouter, OffPathLeafThrows) {
  // Deliver at a leaf that is not the target: defensive logic_error.
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(1, 0, 1);
  b.add_edge(2, 0, 1);
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 0));
  TreeLabel to_1 = router.label(1);
  // Node 2 is a leaf not on the path to 1.
  EXPECT_THROW((void)tree_next_port(router.table(2), to_1), std::logic_error);
}

TEST(TreeRouter, LabelBitsAccounting) {
  TreeLabel label;
  label.dfs_in = 5;
  label.light_hops = {{1, 2}, {3, 4}};
  // 2 * id (dfs + length) + 2 hops * (id + port).
  EXPECT_EQ(tree_label_bits(label, 256, 1024), 8 + 8 + 2 * (8 + 10));
}

}  // namespace
}  // namespace rtr
