#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "io/snapshot_format.h"
#include "treeroute/tree_router.h"
#include "util/rng.h"

namespace rtr {
namespace {

// Routes from the tree root to `target` by repeatedly applying the local
// forwarding rule, resolving ports against the graph; returns the weighted
// length, or -1 on any failure.
Dist route_in_tree(const Digraph& g, const TreeRouter& router, NodeId target) {
  TreeLabel label = router.label(target);
  NodeId at = router.root();
  Dist total = 0;
  for (int guard = 0; guard < 2 * g.node_count() + 4; ++guard) {
    Port p = tree_next_port(router.table(at), label);
    if (p == kNoPort) return at == target ? total : -1;
    const Edge* e = g.edge_by_port(at, p);
    if (e == nullptr) return -1;
    total += e->weight;
    at = e->to;
  }
  return -1;
}

class TreeRouterFamilyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeRouterFamilyTest, RoutesOptimallyToEveryNode) {
  Rng rng(GetParam());
  GraphBuilder b = random_strongly_connected(120, 3.0, 9, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  OutTree tree = dijkstra_out_tree(g, 0);
  TreeRouter router(tree);
  EXPECT_EQ(router.member_count(), 120);
  for (NodeId v = 0; v < 120; ++v) {
    EXPECT_EQ(route_in_tree(g, router, v), tree.dist[static_cast<std::size_t>(v)])
        << "target " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRouterFamilyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TreeRouter, LabelSizeLogarithmicLightHops) {
  Rng rng(7);
  GraphBuilder b = random_strongly_connected(500, 3.0, 9, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 3));
  const double log_n = std::log2(500.0);
  for (NodeId v = 0; v < 500; ++v) {
    EXPECT_LE(static_cast<double>(router.label(v).light_hops.size()), log_n)
        << "heavy-path decomposition bound violated";
  }
}

TEST(TreeRouter, PathGraphHasNoLightHops) {
  // A directed path: every child is the unique (hence heavy) child.
  GraphBuilder b(20);
  for (NodeId i = 0; i + 1 < 20; ++i) b.add_edge(i, i + 1, 1);
  b.add_edge(19, 0, 1);  // close the cycle for variety; tree ignores it
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 0));
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_TRUE(router.label(v).light_hops.empty());
  }
  EXPECT_EQ(route_in_tree(g, router, 19), 19);
}

TEST(TreeRouter, StarGraphLabelsUseLightEdges) {
  // Star: all but the heaviest child are light.
  GraphBuilder b(10);
  for (NodeId v = 1; v < 10; ++v) {
    b.add_edge(0, v, 1);
    b.add_edge(v, 0, 1);
  }
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 0));
  int light_labels = 0;
  for (NodeId v = 1; v < 10; ++v) {
    light_labels += router.label(v).light_hops.empty() ? 0 : 1;
    EXPECT_EQ(route_in_tree(g, router, v), 1);
  }
  EXPECT_EQ(light_labels, 8);  // exactly one heavy child
}

TEST(TreeRouter, RestrictedTreeSkipsNonMembers) {
  Rng rng(8);
  GraphBuilder b = random_strongly_connected(60, 3.0, 5, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  std::vector<char> mask(60, 0);
  for (NodeId v = 0; v < 30; ++v) mask[static_cast<std::size_t>(v)] = 1;
  OutTree tree = dijkstra_out_tree_within(g, 5, mask);
  TreeRouter router(tree);
  EXPECT_LE(router.member_count(), 30);
  for (NodeId v = 30; v < 60; ++v) EXPECT_FALSE(router.contains(v));
  for (NodeId v : router.members()) {
    EXPECT_EQ(route_in_tree(g, router, v), tree.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(TreeRouter, SingletonTree) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  const Digraph g = b.freeze();
  std::vector<char> mask = {1, 0, 0};
  TreeRouter router(dijkstra_out_tree_within(g, 0, mask));
  EXPECT_EQ(router.member_count(), 1);
  TreeLabel self = router.label(0);
  EXPECT_EQ(tree_next_port(router.table(0), self), kNoPort);
}

TEST(TreeRouter, LabelForNonMemberThrows) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  const Digraph g = b.freeze();
  std::vector<char> mask = {1, 1, 0};
  TreeRouter router(dijkstra_out_tree_within(g, 0, mask));
  EXPECT_THROW(router.label(2), std::invalid_argument);
}

TEST(TreeRouter, OffPathLeafThrows) {
  // Deliver at a leaf that is not the target: defensive logic_error.
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(1, 0, 1);
  b.add_edge(2, 0, 1);
  const Digraph g = b.freeze();
  TreeRouter router(dijkstra_out_tree(g, 0));
  TreeLabel to_1 = router.label(1);
  // Node 2 is a leaf not on the path to 1.
  EXPECT_THROW((void)tree_next_port(router.table(2), to_1), std::logic_error);
}

TEST(TreeRouter, LabelBitsAccounting) {
  TreeLabel label;
  label.dfs_in = 5;
  label.light_hops = {{1, 2}, {3, 4}};
  // 2 * id (dfs + length) + 2 hops * (id + port).
  EXPECT_EQ(tree_label_bits(label, 256, 1024), 8 + 8 + 2 * (8 + 10));
}

// ------------------------------------------------- LightHops small buffer --

TEST(LightHops, SequenceSemanticsAcrossTheSpillBoundary) {
  LightHops hops;
  EXPECT_TRUE(hops.empty());
  // Fill well past the inline capacity; the sequence must stay contiguous
  // and ordered through the spill.
  const std::size_t count = 3 * LightHops::kInlineCapacity + 1;
  for (std::size_t i = 0; i < count; ++i) {
    hops.emplace_back(static_cast<std::int32_t>(i),
                      static_cast<Port>(100 + i));
  }
  ASSERT_EQ(hops.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hops[i].first, static_cast<std::int32_t>(i));
    EXPECT_EQ(hops[i].second, static_cast<Port>(100 + i));
  }
  // std::reverse over the pointer iterators (the label builder relies on it).
  std::reverse(hops.begin(), hops.end());
  EXPECT_EQ(hops[0].first, static_cast<std::int32_t>(count - 1));
  EXPECT_EQ(hops[count - 1].first, 0);
  // Copy and move preserve contents; equality is element-wise.
  LightHops copy = hops;
  EXPECT_EQ(copy, hops);
  LightHops moved = std::move(copy);
  EXPECT_EQ(moved, hops);
  // clear() returns to the inline representation and is reusable.
  hops.clear();
  EXPECT_TRUE(hops.empty());
  hops.emplace_back(7, 8);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], std::make_pair(std::int32_t{7}, Port{8}));
}

TEST(LightHops, SnapshotWireFormatIsPinned) {
  // The small-buffer change is storage-only: the on-disk encoding must stay
  // i32 dfs, u64 count, then (i32 tail_dfs, i32 port) per hop, all LE.
  TreeLabel label;
  label.dfs_in = 5;
  label.light_hops = {{1, 2}, {3, 4}};
  SnapshotWriter w;
  save_tree_label(w, label);
  const std::vector<std::uint8_t> expected = {
      5, 0, 0, 0,              // dfs_in
      2, 0, 0, 0, 0, 0, 0, 0,  // hop count (u64)
      1, 0, 0, 0, 2, 0, 0, 0,  // hop (1, 2)
      3, 0, 0, 0, 4, 0, 0, 0,  // hop (3, 4)
  };
  EXPECT_EQ(w.bytes(), expected);
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  const TreeLabel back = load_tree_label(r);
  EXPECT_EQ(back.dfs_in, label.dfs_in);
  EXPECT_EQ(back.light_hops, label.light_hops);
}

TEST(LightHops, DeepTreeLabelsSpillAndStillRouteAndRoundtrip) {
  // A complete binary tree of depth 12: every internal node has one heavy
  // and one light child, so the leaf reached by always taking light edges
  // carries 11 light hops -- past the inline capacity.  Routes, label bits,
  // and snapshot bytes must be unaffected by the spill.
  constexpr NodeId n = (1 << 12) - 1;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId c : {2 * v + 1, 2 * v + 2}) {
      if (c < n) {
        b.add_edge(v, c, 1);
        b.add_edge(c, v, 1);
      }
    }
  }
  const Digraph g = b.freeze();
  OutTree tree = dijkstra_out_tree(g, 0);
  TreeRouter router(tree);

  std::size_t max_hops = 0;
  NodeId deepest = 0;
  for (NodeId v = 0; v < n; ++v) {
    const TreeLabel label = router.label(v);
    if (label.light_hops.size() > max_hops) {
      max_hops = label.light_hops.size();
      deepest = v;
    }
  }
  ASSERT_GT(max_hops, LightHops::kInlineCapacity)
      << "test graph too shallow to exercise the spill path";

  // Routing to spilled-label targets walks the same tree paths.
  for (const NodeId target : {deepest, static_cast<NodeId>(n - 1)}) {
    EXPECT_EQ(route_in_tree(g, router, target),
              tree.dist[static_cast<std::size_t>(target)]);
  }

  // Save -> load -> save is byte-identical with spilled labels in play.
  const TreeLabel deep_label = router.label(deepest);
  SnapshotWriter wa;
  save_tree_label(wa, deep_label);
  SnapshotReader r(wa.bytes().data(), wa.bytes().size());
  const TreeLabel loaded = load_tree_label(r);
  EXPECT_EQ(loaded.light_hops, deep_label.light_hops);
  SnapshotWriter wb;
  save_tree_label(wb, loaded);
  EXPECT_EQ(wa.bytes(), wb.bytes());
  EXPECT_EQ(tree_label_bits(loaded, n, 4 * n),
            tree_label_bits(deep_label, n, 4 * n));
}

}  // namespace
}  // namespace rtr
