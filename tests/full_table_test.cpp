#include <gtest/gtest.h>

#include "baseline/full_table.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class FullTableTest : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(FullTableTest, AchievesStretchExactlyOne) {
  auto [family, n, seed] = GetParam();
  Instance inst = make_instance(family, n, 6, seed);
  FullTableScheme scheme(inst.graph, inst.names);
  for (NodeId s = 0; s < inst.n(); ++s) {
    for (NodeId t = 0; t < inst.n(); ++t) {
      auto res = simulate_roundtrip(inst.graph, scheme, s, t,
                                    inst.names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_EQ(res.out_length, inst.metric->d(s, t));
      EXPECT_EQ(res.back_length, inst.metric->d(t, s));
      EXPECT_EQ(res.roundtrip_length(), inst.metric->r(s, t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FullTableTest,
    ::testing::Values(FamilyParam{Family::kRandom, 40, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 32, 3}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

TEST(FullTable, TablesAreLinear) {
  Instance inst = make_instance(Family::kRandom, 50, 4, 9);
  FullTableScheme scheme(inst.graph, inst.names);
  TableStats stats = scheme.table_stats();
  EXPECT_EQ(stats.max_entries(), inst.n() - 1);
  EXPECT_EQ(stats.mean_entries(), static_cast<double>(inst.n() - 1));
}

TEST(FullTable, RejectsNonStronglyConnected) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Digraph g = b.freeze();
  auto names = NameAssignment::identity(3);
  EXPECT_THROW(FullTableScheme(g, names), std::invalid_argument);
}

}  // namespace
}  // namespace rtr
