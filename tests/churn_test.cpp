// churn_step contract: every epoch is strongly connected, keeps the node id
// set (name stability by construction), and actually changes the things it
// claims to change -- edges, weights, ports.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "graph/churn.h"
#include "graph/generators.h"
#include "graph/scc.h"
#include "io/snapshot.h"
#include "io/snapshot_format.h"
#include "test_support.h"

namespace rtr {
namespace {

std::multiset<std::tuple<NodeId, NodeId, Weight>> edge_multiset(
    const Digraph& g) {
  std::multiset<std::tuple<NodeId, NodeId, Weight>> edges;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.out_edges(u)) edges.insert({u, e.to, e.weight});
  }
  return edges;
}

TEST(Churn, EveryEpochIsStronglyConnectedWithTheSameNodeSet) {
  Rng rng(31);
  Digraph g = random_strongly_connected(80, 4.0, 6, rng).freeze();
  ChurnOptions opt;
  opt.rehome_nodes = 4;
  for (int epoch = 0; epoch < 6; ++epoch) {
    g = churn_step(g, opt, rng);
    EXPECT_EQ(g.node_count(), 80);
    EXPECT_TRUE(is_strongly_connected(g)) << "epoch " << epoch;
  }
}

TEST(Churn, TopologyActuallyChanges) {
  Rng rng(32);
  Digraph g = random_strongly_connected(60, 4.0, 6, rng).freeze();
  Digraph next = churn_step(g, ChurnOptions{}, rng);
  EXPECT_NE(edge_multiset(g), edge_multiset(next));
}

TEST(Churn, ZeroedKnobsPreserveTheEdgeSetButRelabelPorts) {
  Rng rng(33);
  Digraph g = random_strongly_connected(40, 3.0, 5, rng).freeze();
  ChurnOptions opt;
  opt.rewire_fraction = 0;
  opt.perturb_fraction = 0;
  opt.rehome_nodes = 0;
  Digraph next = churn_step(g, opt, rng);
  EXPECT_EQ(edge_multiset(g), edge_multiset(next));
  // Port labels are re-drawn by the adversary each epoch.
  bool any_port_changed = false;
  for (NodeId u = 0; u < g.node_count() && !any_port_changed; ++u) {
    for (const Edge& e : g.out_edges(u)) {
      if (next.port_of_edge(u, e.to) != e.port) {
        any_port_changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_port_changed);
}

TEST(Churn, PortStableModePreservesSurvivingPorts) {
  Rng rng(37);
  GraphBuilder builder = random_strongly_connected(40, 3.0, 5, rng);
  builder.assign_adversarial_ports(rng);
  Digraph g = builder.freeze();
  ChurnOptions opt;
  opt.rewire_fraction = 0;
  opt.perturb_fraction = 0.5;  // weight changes must not move ports
  opt.rehome_nodes = 0;
  opt.reassign_ports = false;
  Digraph next = churn_step(g, opt, rng);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.out_edges(u)) {
      EXPECT_EQ(next.port_of_edge(u, e.to), e.port)
          << "surviving edge " << u << " -> " << e.to;
    }
  }
  // And a rewiring epoch still yields valid per-tail-unique ports (checked
  // by Digraph::add_edges_with_ports, which throws on duplicates).
  opt.rewire_fraction = 0.4;
  opt.rehome_nodes = 6;
  EXPECT_NO_THROW((void)churn_step(next, opt, rng));
}

TEST(Churn, RehomedNodesKeepTheirIdsButLoseTheirAdjacency) {
  Rng rng(34);
  Digraph g = random_strongly_connected(50, 5.0, 4, rng).freeze();
  ChurnOptions opt;
  opt.rewire_fraction = 0;
  opt.perturb_fraction = 0;
  opt.rehome_nodes = 50;  // every node re-homed: a fully fresh topology
  Digraph next = churn_step(g, opt, rng);
  EXPECT_EQ(next.node_count(), 50);
  EXPECT_TRUE(is_strongly_connected(next));
  EXPECT_NE(edge_multiset(g), edge_multiset(next));
}

TEST(Churn, SelfLoopAndDuplicateFree) {
  Rng rng(35);
  Digraph g = random_strongly_connected(40, 4.0, 4, rng).freeze();
  ChurnOptions opt;
  opt.rewire_fraction = 0.5;
  opt.rehome_nodes = 8;
  for (int epoch = 0; epoch < 3; ++epoch) {
    g = churn_step(g, opt, rng);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      std::set<NodeId> heads;
      for (const Edge& e : g.out_edges(u)) {
        EXPECT_NE(e.to, u);
        EXPECT_GE(e.weight, 1);
        EXPECT_TRUE(heads.insert(e.to).second) << "duplicate edge at " << u;
      }
    }
  }
}

std::vector<std::uint8_t> graph_bytes(const Digraph& g) {
  SnapshotWriter w;
  save_digraph(w, g);
  return w.bytes();
}

// Builder/freeze round-trips must be loss-free at the byte level: thawing a
// frozen graph and freezing it again reproduces the identical snapshot
// encoding (row order and ports included), and a port-stable churn epoch
// with every mutation knob zeroed is the identity on those bytes.  This is
// what lets EpochManager's warm-start cache validate a snapshot against the
// epoch's exact topology across builder/freeze cycles.
TEST(Churn, FreezeRoundTripsAreSnapshotByteIdentical) {
  Rng rng(40);
  GraphBuilder builder = random_strongly_connected(50, 4.0, 5, rng);
  builder.assign_adversarial_ports(rng);
  const Digraph g = builder.freeze();
  const auto bytes = graph_bytes(g);

  // Thaw -> freeze is the identity.
  EXPECT_EQ(graph_bytes(GraphBuilder(g).freeze()), bytes);

  // A zero-mutation, port-stable churn epoch is the identity too.
  ChurnOptions opt;
  opt.rewire_fraction = 0;
  opt.perturb_fraction = 0;
  opt.rehome_nodes = 0;
  opt.reassign_ports = false;
  const Digraph next = churn_step(g, opt, rng);
  EXPECT_EQ(graph_bytes(next), bytes);

  // And the snapshot loader rebuilds the same bytes from them.
  SnapshotReader r(bytes.data(), bytes.size());
  const Digraph loaded = load_digraph(r);
  EXPECT_EQ(graph_bytes(loaded), bytes);
}

TEST(Churn, PortStableEpochChainStaysByteStableOnSurvivors) {
  // Across several port-stable epochs with weight perturbation only, the
  // edge set (and therefore every surviving port) is preserved, so the only
  // byte differences come from re-drawn weights.
  Rng rng(41);
  GraphBuilder builder = random_strongly_connected(40, 3.0, 5, rng);
  builder.assign_adversarial_ports(rng);
  Digraph g = builder.freeze();
  ChurnOptions opt;
  opt.rewire_fraction = 0;
  opt.perturb_fraction = 0.5;
  opt.rehome_nodes = 0;
  opt.reassign_ports = false;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const Digraph next = churn_step(g, opt, rng);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      const auto before = g.out_edges(u);
      const auto after = next.out_edges(u);
      ASSERT_EQ(before.size(), after.size());
      for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].to, after[i].to);
        EXPECT_EQ(before[i].port, after[i].port);
      }
    }
    g = next;
  }
}

TEST(Churn, TinyGraphsAreRejected) {
  Rng rng(36);
  Digraph g(1);
  EXPECT_THROW((void)churn_step(g, ChurnOptions{}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rtr
