// Corruption at the snapshot I/O boundary must surface as typed exceptions
// -- never a crash, a hang, or a half-loaded scheme (the
// failure_injection_test.cpp philosophy extended from packet headers to the
// persistence layer).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "io/snapshot.h"
#include "net/scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::shared_instance;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inst_ = shared_instance(Family::kRandom, 32, 3, 7);
    // Per-test path: ctest runs each TEST_F as its own process, possibly in
    // parallel, and they must not race on a shared scratch file.
    path_ = ::testing::TempDir() + "rtr_corruption_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".rtrsnap";
    const BuildContext ctx = inst_->context(9);
    SchemeHandle built(ctx.graph, ctx.names,
                       SchemeRegistry::global().build("stretch6", ctx));
    save_snapshot(path_, "stretch6", built);
    pristine_ = read_file(path_);
    ASSERT_GT(pristine_.size(), 64u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::shared_ptr<const ::rtr::testing::Instance> inst_;
  std::string path_;
  std::vector<std::uint8_t> pristine_;
};

TEST_F(SnapshotCorruptionTest, PristineFileLoads) {
  EXPECT_NO_THROW((void)load_snapshot(path_, "stretch6"));
}

TEST_F(SnapshotCorruptionTest, MissingFileIsAnIoError) {
  EXPECT_THROW((void)load_snapshot(path_ + ".does-not-exist"), SnapshotIoError);
  EXPECT_THROW((void)inspect_snapshot(path_ + ".does-not-exist"),
               SnapshotIoError);
}

TEST_F(SnapshotCorruptionTest, TruncationAnywhereIsDetected) {
  // Cut the file at several depths: inside the magic, the header, the
  // section table, and mid-payload.  Every prefix must throw a typed error
  // (truncation, or a checksum failure when the cut lands after a partially
  // covered region) -- never crash or succeed.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{10}, std::size_t{40},
        pristine_.size() / 2, pristine_.size() - 1}) {
    std::vector<std::uint8_t> cut(pristine_.begin(),
                                  pristine_.begin() + static_cast<long>(keep));
    write_file(path_, cut);
    EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotError)
        << "prefix of " << keep << " bytes";
    try {
      (void)load_snapshot(path_, "stretch6");
    } catch (const SnapshotFormatError&) {
      // Truncated (or structurally short) -- expected.
    } catch (const SnapshotChecksumError&) {
      // A cut section can also surface as a bad CRC -- acceptable and typed.
    }
  }
}

TEST_F(SnapshotCorruptionTest, FlippedMagicIsAFormatError) {
  auto bytes = pristine_;
  bytes[0] ^= 0xFF;
  write_file(path_, bytes);
  EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotFormatError);
}

TEST_F(SnapshotCorruptionTest, WrongVersionIsAVersionError) {
  auto bytes = pristine_;
  bytes[kSnapshotMagicSize] = static_cast<std::uint8_t>(kSnapshotVersion + 1);
  write_file(path_, bytes);
  EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotVersionError);
  EXPECT_THROW((void)inspect_snapshot(path_), SnapshotVersionError);
}

TEST_F(SnapshotCorruptionTest, BitFlipInAPayloadIsAChecksumError) {
  // Flip one byte deep inside the largest (scheme) section's payload.
  auto bytes = pristine_;
  bytes[bytes.size() - 64] ^= 0x01;
  write_file(path_, bytes);
  EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotChecksumError);
}

TEST_F(SnapshotCorruptionTest, BitFlipInTheHeaderIsAChecksumError) {
  // The scheme-name string sits right after magic+version; corrupting it
  // must fail the header CRC, not masquerade as a scheme mismatch.
  auto bytes = pristine_;
  bytes[kSnapshotMagicSize + 4 + 8] ^= 0xFF;  // first byte of the name
  write_file(path_, bytes);
  EXPECT_THROW((void)load_snapshot(path_), SnapshotChecksumError);
}

TEST_F(SnapshotCorruptionTest, SchemeNameMismatchIsTyped) {
  EXPECT_THROW((void)load_snapshot(path_, "rtz3"),
               SnapshotSchemeMismatchError);
  // And the sibling variant does not silently accept the base scheme's file.
  EXPECT_THROW((void)load_snapshot(path_, "stretch6-detour"),
               SnapshotSchemeMismatchError);
}

TEST_F(SnapshotCorruptionTest, EveryTypedErrorIsASnapshotError) {
  // Callers that just want "treat as cache miss" can catch the root type.
  auto bytes = pristine_;
  bytes[0] ^= 0xFF;
  write_file(path_, bytes);
  EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotError);
}

TEST_F(SnapshotCorruptionTest, BuildOrLoadDegradesWhenCacheDirIsUnwritable) {
  // A cache path whose parent "directory" is a regular file is unwritable
  // for every uid (ENOTDIR) -- unlike a chmod'd directory, which root would
  // happily write into, so this keeps the test honest under sudo/CI-root.
  const std::string blocker = ::testing::TempDir() + "rtr_not_a_dir_" +
                              ::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name();
  write_file(blocker, {0x00});
  const std::string cache_path = blocker + "/cache.rtrsnap";
  // Degrade to build-without-save: a working handle comes back, nothing
  // throws, and no snapshot file appears.
  SchemeHandle handle = SchemeRegistry::global().build_or_load(
      "stretch6", [&] { return inst_->context(9); }, cache_path);
  EXPECT_EQ(handle.graph().node_count(), inst_->n());
  EXPECT_TRUE(handle.roundtrip(1, 5).ok());
  EXPECT_THROW((void)load_snapshot(cache_path, "stretch6"), SnapshotIoError);
  std::remove(blocker.c_str());
}

TEST_F(SnapshotCorruptionTest, BuildOrLoadRecoversFromACorruptCache) {
  auto bytes = pristine_;
  bytes[bytes.size() - 100] ^= 0x10;
  write_file(path_, bytes);
  // The corrupt cache is a miss: rebuild, overwrite, serve.
  SchemeHandle handle = SchemeRegistry::global().build_or_load(
      "stretch6", [&] { return inst_->context(9); }, path_);
  EXPECT_EQ(handle.graph().node_count(), inst_->n());
  EXPECT_NO_THROW((void)load_snapshot(path_, "stretch6"));
  auto res = handle.roundtrip(1, 5);
  EXPECT_TRUE(res.ok());
}

}  // namespace
}  // namespace rtr
