#include <gtest/gtest.h>

#include <cmath>

#include "core/stretch6.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class Stretch6Test : public ::testing::TestWithParam<FamilyParam> {
 protected:
  void Build() {
    auto [family, n, seed] = GetParam();
    inst_ = make_instance(family, n, 5, seed);
    Rng rng(seed + 77);
    scheme_ = std::make_unique<Stretch6Scheme>(inst_.graph, *inst_.metric,
                                               inst_.names, rng);
  }
  Instance inst_;
  std::unique_ptr<Stretch6Scheme> scheme_;
};

TEST_P(Stretch6Test, AllPairsDeliverWithinStretchSix) {
  Build();
  for (NodeId s = 0; s < inst_.n(); ++s) {
    for (NodeId t = 0; t < inst_.n(); ++t) {
      if (s == t) continue;
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok()) << "undelivered " << s << "->" << t;
      EXPECT_LE(res.roundtrip_length(), 6 * inst_.metric->r(s, t))
          << "Lemma 3 stretch bound violated for " << s << "->" << t;
    }
  }
}

TEST_P(Stretch6Test, TablesNearSqrtN) {
  Build();
  TableStats stats = scheme_->table_stats();
  const double n = static_cast<double>(inst_.n());
  // O~(sqrt n): sqrt(n) * polylog with a generous constant.
  const double budget = std::sqrt(n) * std::pow(std::log2(n) + 1, 2) * 10;
  EXPECT_LE(static_cast<double>(stats.max_entries()), budget);
}

TEST_P(Stretch6Test, HeadersStayWithinLogSquared) {
  Build();
  const double log_n = std::log2(static_cast<double>(inst_.n())) + 1;
  for (NodeId s = 0; s < inst_.n(); s += 3) {
    for (NodeId t = 0; t < inst_.n(); t += 5) {
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_LE(static_cast<double>(res.max_header_bits), 100 * log_n * log_n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, Stretch6Test,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 40, 3},
                      FamilyParam{Family::kScaleFree, 48, 4},
                      FamilyParam{Family::kBidirected, 40, 5},
                      FamilyParam{Family::kRandom, 100, 6},
                      FamilyParam{Family::kRandom, 48, 7},
                      FamilyParam{Family::kGrid, 64, 8}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

TEST(Stretch6, SelfDeliveryImmediate) {
  Instance inst = make_instance(Family::kRandom, 30, 4, 21);
  Rng rng(22);
  Stretch6Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  auto res = simulate_roundtrip(inst.graph, scheme, 4, 4, inst.names.name_of(4));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.roundtrip_length(), 0);
}

// Routing behaviour must be invariant under re-naming: the TINN property.
TEST(Stretch6, DeliversUnderManyAdversarialNamings) {
  Rng graph_rng(23);
  GraphBuilder b = random_strongly_connected(40, 3.5, 5, graph_rng);
  b.assign_adversarial_ports(graph_rng);
  const Digraph g = b.freeze();
  DenseRoundtripMetric metric(g);
  for (std::uint64_t name_seed : {1u, 2u, 3u}) {
    Rng rng(name_seed);
    auto names = NameAssignment::random(40, rng);
    Stretch6Scheme scheme(g, metric, names, rng);
    for (NodeId s = 0; s < 40; s += 3) {
      for (NodeId t = 0; t < 40; t += 4) {
        auto res = simulate_roundtrip(g, scheme, s, t, names.name_of(t));
        ASSERT_TRUE(res.ok());
        EXPECT_LE(res.roundtrip_length(), 6 * metric.r(s, t));
      }
    }
  }
}

TEST(Stretch6, NeighborhoodSizeIsCeilSqrtN) {
  Instance inst = make_instance(Family::kRandom, 50, 4, 25);
  Rng rng(26);
  Stretch6Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  EXPECT_EQ(scheme.neighborhood_size(), 8);  // ceil(sqrt(50)) = 8
}

}  // namespace
}  // namespace rtr
