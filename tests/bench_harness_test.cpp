#include <gtest/gtest.h>

#include <atomic>

#include "bench_harness/bench_harness.h"
#include "util/json.h"

namespace rtr::bench_harness {
namespace {


BenchConfig tiny_config() {
  BenchConfig c;
  c.schemes = {"stretch6", "fulltable", "rtz3"};
  c.families = {Family::kRandom, Family::kGrid};
  c.sizes = {64};
  c.pair_budget = 400;
  c.latency_sample = 50;
  c.iterations.warmup_reps = 0;
  c.iterations.min_reps = 1;
  c.iterations.max_reps = 1;
  c.snapshot_phase = false;   // timing-only phase; not needed for determinism
  c.hot_path_deltas = false;  // measured separately below
  return c;
}

// Two runs with one config must agree on every workload-derived figure; the
// timer fields are the only run-to-run variance the harness permits.
TEST(BenchHarness, SuiteIsDeterministicForAFixedConfig) {
  const BenchConfig config = tiny_config();
  const SuiteResult a = run_suite(config);
  const SuiteResult b = run_suite(config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.cells.size(),
            config.schemes.size() * config.families.size() * config.sizes.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& x = a.cells[i];
    const CellResult& y = b.cells[i];
    EXPECT_EQ(x.scheme, y.scheme);
    EXPECT_EQ(x.family, y.family);
    EXPECT_EQ(x.n, y.n);
    // Iteration counts of the workload: same pairs routed, bit-identical
    // aggregates.
    EXPECT_EQ(x.pairs, y.pairs);
    EXPECT_EQ(x.failures, y.failures);
    EXPECT_EQ(x.invalid, y.invalid);
    EXPECT_EQ(x.mean_stretch, y.mean_stretch);
    EXPECT_EQ(x.p99_stretch, y.p99_stretch);
    EXPECT_EQ(x.max_stretch, y.max_stretch);
    EXPECT_EQ(x.max_header_bits, y.max_header_bits);
    EXPECT_EQ(x.table_entries_max, y.table_entries_max);
    EXPECT_EQ(x.bytes_per_node, y.bytes_per_node);
    EXPECT_EQ(x.first_error, y.first_error);
    EXPECT_GT(x.pairs, 0);
    EXPECT_EQ(x.failures, 0) << x.scheme << " " << x.family << ": "
                             << x.first_error;
  }
}

TEST(BenchHarness, JsonSchemaRoundTripsBitExactly) {
  BenchConfig config = tiny_config();
  config.schemes = {"stretch6"};
  config.families = {Family::kRandom};
  SuiteResult result = run_suite(config);
  // Exercise the optional fields too.
  result.cells[0].first_error = "no error, just \"quotes\" and\nnewlines";
  HotPathDelta d;
  d.name = "dijkstra-arena-dial";
  d.metric = "apsp_ms";
  d.family = "random";
  d.n = 64;
  d.before = 12.5;
  d.after = 3.75;
  d.improvement_pct = 70.0;
  result.deltas.push_back(d);

  const Json doc = suite_to_json(result, config, "test-rev");
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(doc, reparsed);
  EXPECT_EQ(reparsed.at("schema").as_string(), kSchemaVersion);
  EXPECT_EQ(reparsed.at("rev").as_string(), "test-rev");

  const std::vector<CellResult> cells = cells_from_json(reparsed);
  ASSERT_EQ(cells.size(), result.cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& x = result.cells[i];
    const CellResult& y = cells[i];
    EXPECT_EQ(x.scheme, y.scheme);
    EXPECT_EQ(x.family, y.family);
    EXPECT_EQ(x.n, y.n);
    // Doubles must round-trip bit-exactly (%.17g emission).
    EXPECT_EQ(x.qps, y.qps);
    EXPECT_EQ(x.build_ms, y.build_ms);
    EXPECT_EQ(x.apsp_ms, y.apsp_ms);
    EXPECT_EQ(x.snapshot_load_ms, y.snapshot_load_ms);
    EXPECT_EQ(x.p50_query_ns, y.p50_query_ns);
    EXPECT_EQ(x.p99_query_ns, y.p99_query_ns);
    EXPECT_EQ(x.mean_stretch, y.mean_stretch);
    EXPECT_EQ(x.p99_stretch, y.p99_stretch);
    EXPECT_EQ(x.max_stretch, y.max_stretch);
    EXPECT_EQ(x.bytes_per_node, y.bytes_per_node);
    EXPECT_EQ(x.pairs, y.pairs);
    EXPECT_EQ(x.failures, y.failures);
    EXPECT_EQ(x.max_header_bits, y.max_header_bits);
    EXPECT_EQ(x.table_entries_max, y.table_entries_max);
    EXPECT_EQ(x.first_error, y.first_error);
  }
  const std::vector<HotPathDelta> deltas = deltas_from_json(reparsed);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].name, d.name);
  EXPECT_EQ(deltas[0].before, d.before);
  EXPECT_EQ(deltas[0].after, d.after);
  EXPECT_EQ(deltas[0].improvement_pct, d.improvement_pct);
}

TEST(BenchHarness, SchemaVersionIsEnforcedOnParse) {
  Json doc{JsonObject{}};
  doc.set("schema", "rtr-bench/999");
  doc.set("cells", JsonArray{});
  EXPECT_THROW(cells_from_json(doc), JsonError);
}

// ----------------------------------------------------------------- gating --

Json doc_with_cell(double qps, double mean_stretch, std::int64_t failures) {
  CellResult c;
  c.scheme = "stretch6";
  c.family = "random";
  c.n = 128;
  c.qps = qps;
  c.mean_stretch = mean_stretch;
  c.failures = failures;
  c.first_error = failures > 0 ? "synthetic failure" : "";
  Json doc{JsonObject{}};
  doc.set("schema", kSchemaVersion);
  doc.set("cells", JsonArray{cell_to_json(c)});
  return doc;
}

TEST(BenchHarness, GatePassesWhenCurrentMatchesBaseline) {
  const Json base = doc_with_cell(1000.0, 1.5, 0);
  EXPECT_TRUE(compare_to_baseline(base, base).empty());
}

TEST(BenchHarness, GateToleratesQpsDropsWithinTolerance) {
  const Json base = doc_with_cell(1000.0, 1.5, 0);
  const Json ok = doc_with_cell(800.0, 1.5, 0);  // -20% < 25% tolerance
  EXPECT_TRUE(compare_to_baseline(base, ok).empty());
}

TEST(BenchHarness, GateFailsOnQpsRegressionBeyondTolerance) {
  const Json base = doc_with_cell(1000.0, 1.5, 0);
  const Json bad = doc_with_cell(700.0, 1.5, 0);  // -30% > 25% tolerance
  const auto violations = compare_to_baseline(base, bad);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("qps regressed"), std::string::npos);
}

TEST(BenchHarness, GateFailsOnAnyAvgStretchIncrease) {
  const Json base = doc_with_cell(1000.0, 1.5, 0);
  const Json bad = doc_with_cell(1000.0, 1.5001, 0);
  const auto violations = compare_to_baseline(base, bad);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("stretch increased"), std::string::npos);
}

TEST(BenchHarness, GateFailsOnFailedQueriesAndMissingCells) {
  const Json base = doc_with_cell(1000.0, 1.5, 0);
  const auto failed = compare_to_baseline(base, doc_with_cell(1000.0, 1.5, 3));
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_NE(failed[0].find("failed queries"), std::string::npos);

  Json empty{JsonObject{}};
  empty.set("schema", kSchemaVersion);
  empty.set("cells", JsonArray{});
  const auto missing = compare_to_baseline(base, empty);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_NE(missing[0].find("missing cell"), std::string::npos);
}

TEST(BenchHarness, GateSkipsQpsWhenHostsDiffer) {
  // Absolute throughput from different hardware is not comparable: the qps
  // check must disarm (with a note), while machine-independent checks --
  // stretch increases here -- still fire.
  Json base = doc_with_cell(1000.0, 1.5, 0);
  Json host_a{JsonObject{}};
  host_a.set("cpu", "cpu-model-a");
  base.set("host", host_a);
  Json cur = doc_with_cell(100.0, 1.6, 0);  // -90% qps AND higher stretch
  Json host_b{JsonObject{}};
  host_b.set("cpu", "cpu-model-b");
  cur.set("host", host_b);
  std::vector<std::string> notes;
  const auto violations = compare_to_baseline(base, cur, {}, &notes);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("stretch increased"), std::string::npos);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find("qps gate skipped"), std::string::npos);

  // Same host on both sides: the qps gate is armed again.
  cur.set("host", host_a);
  const auto armed = compare_to_baseline(base, cur);
  EXPECT_EQ(armed.size(), 2u);
}

TEST(BenchHarness, GateSkipsQpsWhenThreadCountsDiffer) {
  // Same CPU model but a different configured thread count: throughput is
  // not comparable, so the qps check disarms with a note.
  const auto with_host = [](Json doc, std::int64_t threads) {
    Json host{JsonObject{}};
    host.set("cpu", "cpu-model-a");
    host.set("threads_configured", threads);
    doc.set("host", host);
    return doc;
  };
  const Json base = with_host(doc_with_cell(1000.0, 1.5, 0), 8);
  const Json cur = with_host(doc_with_cell(100.0, 1.5, 0), 1);  // -90% qps
  std::vector<std::string> notes;
  EXPECT_TRUE(compare_to_baseline(base, cur, {}, &notes).empty());
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find("threads_configured"), std::string::npos);

  // Matching counts arm the gate.
  EXPECT_EQ(compare_to_baseline(base, with_host(doc_with_cell(100.0, 1.5, 0), 8))
                .size(),
            1u);
  // An unstamped (pre-stamp) document means the old fixed default,
  // threads=1: armed against a stamped threads=1 run, skipped against 8.
  Json unstamped = doc_with_cell(100.0, 1.5, 0);
  Json cpu_only{JsonObject{}};
  cpu_only.set("cpu", "cpu-model-a");
  unstamped.set("host", cpu_only);
  EXPECT_TRUE(compare_to_baseline(base, unstamped).empty());
  const Json base1 = with_host(doc_with_cell(1000.0, 1.5, 0), 1);
  EXPECT_EQ(compare_to_baseline(base1, unstamped).size(), 1u);
}

Json doc_with_snapshot_cell(double load_ms, double map_ms) {
  CellResult c;
  c.scheme = "stretch6";
  c.family = "random";
  c.n = 128;
  c.qps = 1000.0;
  c.mean_stretch = 1.5;
  c.snapshot_load_ms = load_ms;
  c.snapshot_map_ms = map_ms;
  Json doc{JsonObject{}};
  doc.set("schema", kSchemaVersion);
  doc.set("cells", JsonArray{cell_to_json(c)});
  return doc;
}

// Satellite of the arena PR: -1 is the "snapshot phase skipped" sentinel
// (no hooks, failed save, old baseline), not a time.  The gate must never
// feed it into a comparison -- on EITHER side -- else a skipped phase reads
// as an infinite speedup or an infinite regression.
TEST(BenchHarness, GateSkipsSnapshotSentinelsInsteadOfComparingThem) {
  // Sentinel baseline vs huge current time: comparing would scream
  // "regression"; skipping is correct.
  EXPECT_TRUE(compare_to_baseline(doc_with_snapshot_cell(-1, -1),
                                  doc_with_snapshot_cell(500.0, 500.0))
                  .empty());
  // Real baseline vs sentinel current: comparing would report a 100x
  // "speedup" (or, with the regression sign, fire spuriously); skip.
  EXPECT_TRUE(compare_to_baseline(doc_with_snapshot_cell(500.0, 500.0),
                                  doc_with_snapshot_cell(-1, -1))
                  .empty());
  // Both below the noise floor: single-shot sub-5ms times are scheduler
  // noise, not a regression signal.
  EXPECT_TRUE(compare_to_baseline(doc_with_snapshot_cell(2.0, 2.0),
                                  doc_with_snapshot_cell(4.5, 4.5))
                  .empty());
}

TEST(BenchHarness, GateFailsOnRealSnapshotRegressions) {
  // Both sides real and above the floor, current more than (1 + tolerance)x
  // the baseline: that IS a regression, proving the sentinel skip above is
  // a guard and not a dead gate.
  const auto violations =
      compare_to_baseline(doc_with_snapshot_cell(100.0, 50.0),
                          doc_with_snapshot_cell(250.0, 40.0));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("snapshot_load_ms regressed"),
            std::string::npos);
  const auto map_violations =
      compare_to_baseline(doc_with_snapshot_cell(100.0, 50.0),
                          doc_with_snapshot_cell(90.0, 150.0));
  ASSERT_EQ(map_violations.size(), 1u);
  EXPECT_NE(map_violations[0].find("snapshot_map_ms regressed"),
            std::string::npos);
}

TEST(BenchHarness, SnapshotMapColumnTolerantReadDefaultsToSentinel) {
  // Documents from before the mmap column must parse as "not measured"
  // (-1), not throw -- same contract as peak_rss_kb.
  CellResult c;
  c.scheme = "stretch6";
  c.family = "random";
  c.n = 128;
  c.snapshot_map_ms = 123.0;
  std::string dumped = cell_to_json(c).dump();
  const auto pos = dumped.find("\"snapshot_map_ms\"");
  ASSERT_NE(pos, std::string::npos) << dumped;
  const auto comma = dumped.find(',', pos);  // not the last field: has one
  ASSERT_NE(comma, std::string::npos) << dumped;
  dumped.erase(pos, comma - pos + 1);
  const CellResult reparsed = cell_from_json(Json::parse(dumped));
  EXPECT_EQ(reparsed.snapshot_map_ms, -1);
  EXPECT_EQ(reparsed.scheme, "stretch6");
}

TEST(BenchHarness, GateEnforcesHotPathDeltaFloor) {
  const Json base = doc_with_cell(1000.0, 1.5, 0);
  Json cur = doc_with_cell(1000.0, 1.5, 0);
  Json delta{JsonObject{}};
  delta.set("name", "query-batch-fast-walk");
  delta.set("metric", "qps");
  delta.set("scheme", "stretch6");
  delta.set("family", "random");
  delta.set("n", static_cast<std::int64_t>(128));
  delta.set("before", 100.0);
  delta.set("after", 104.0);
  delta.set("improvement_pct", 4.0);
  cur.set("hot_path_deltas", JsonArray{delta});
  GateOptions strict;
  strict.delta_floor_pct = 10.0;
  const auto violations = compare_to_baseline(base, cur, strict);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("below the"), std::string::npos);
  EXPECT_TRUE(compare_to_baseline(base, cur).empty());  // default floor: 0
}

// Synthetic full-sweep document for the growth gate: one scheme/family
// series across sizes with given bytes/node and build_ms columns.
Json doc_with_series(const std::string& scheme,
                     const std::vector<NodeId>& sizes,
                     const std::vector<double>& bytes_per_node,
                     const std::vector<double>& build_ms) {
  JsonArray cells;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    CellResult c;
    c.scheme = scheme;
    c.family = "random";
    c.n = sizes[i];
    c.qps = 1000.0;
    c.bytes_per_node = bytes_per_node[i];
    c.build_ms = build_ms[i];
    cells.push_back(cell_to_json(c));
  }
  Json doc{JsonObject{}};
  doc.set("schema", kSchemaVersion);
  doc.set("cells", std::move(cells));
  return doc;
}

TEST(BenchHarness, GrowthGatePassesOnSqrtNShapedSeries) {
  // bytes/node tracking ~sqrt(n) and build_ms tracking ~n sqrt(n) exactly.
  const Json doc = doc_with_series("rtz3", {256, 1024, 4096},
                                   {160.0, 320.0, 640.0},
                                   {50.0, 400.0, 3200.0});
  EXPECT_TRUE(check_growth_budgets(doc).empty());
}

TEST(BenchHarness, GrowthGateFailsOnLinearTableGrowth) {
  // bytes/node quadrupling per 4x size step is Theta(n)/node: a regression
  // for a sqrt-n scheme.
  const Json doc = doc_with_series("stretch6", {256, 1024, 4096},
                                   {160.0, 640.0, 2560.0},
                                   {50.0, 400.0, 3200.0});
  const auto violations = check_growth_budgets(doc);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("bytes/node grew"), std::string::npos);
}

TEST(BenchHarness, GrowthGateFailsOnSuperbudgetBuildTime) {
  // ~n^2.5 build growth (32x per 4x step) blows the n sqrt(n) budget even
  // with the generous timing slack.
  const Json doc = doc_with_series("rtz3", {256, 1024, 4096},
                                   {160.0, 320.0, 640.0},
                                   {50.0, 1600.0, 51200.0});
  const auto violations = check_growth_budgets(doc);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("build_ms grew"), std::string::npos);
}

TEST(BenchHarness, GrowthGateIgnoresUngatedSchemesAndTinyTimings) {
  // fulltable is Theta(n)-per-node by design: not gated.  Alongside a gated
  // in-budget series its linear growth must not trip the gate.
  const Json linear_fulltable = doc_with_series(
      "fulltable", {256, 1024}, {1000.0, 4000.0}, {50.0, 800.0});
  const Json in_budget = doc_with_series("rtz3", {256, 1024},
                                         {160.0, 320.0}, {50.0, 400.0});
  JsonArray mixed_cells = in_budget.at("cells").as_array();
  for (const Json& cell : linear_fulltable.at("cells").as_array()) {
    mixed_cells.push_back(cell);
  }
  Json mixed{JsonObject{}};
  mixed.set("schema", kSchemaVersion);
  mixed.set("cells", std::move(mixed_cells));
  EXPECT_TRUE(check_growth_budgets(mixed).empty());
  // Sub-threshold build_ms cells are timing noise: not gated (bytes still
  // are, but this series' bytes are in budget).
  const Json tiny = doc_with_series("rtz3", {256, 1024},
                                    {160.0, 320.0}, {0.5, 4.9});
  EXPECT_TRUE(check_growth_budgets(tiny).empty());
}

TEST(BenchHarness, GrowthGateSkipsSnapshotSentinelsButGatesRealSeries) {
  const auto with_snapshot_times = [](Json doc, double lo_ms, double hi_ms) {
    JsonArray cells = doc.at("cells").as_array();
    CellResult lo = cell_from_json(cells[0]);
    CellResult hi = cell_from_json(cells[1]);
    lo.snapshot_load_ms = lo_ms;
    hi.snapshot_load_ms = hi_ms;
    doc.set("cells", JsonArray{cell_to_json(lo), cell_to_json(hi)});
    return doc;
  };
  const Json in_budget = doc_with_series("rtz3", {256, 1024},
                                         {160.0, 320.0}, {50.0, 400.0});
  // A -1 endpoint is "phase skipped", not a time: no ratio, no violation,
  // regardless of which end carries it.
  EXPECT_TRUE(
      check_growth_budgets(with_snapshot_times(in_budget, -1, 900.0)).empty());
  EXPECT_TRUE(
      check_growth_budgets(with_snapshot_times(in_budget, 50.0, -1)).empty());
  // Both endpoints real and way past the O~(n sqrt n) budget (8x size ratio
  // allows ~n^1.5 * polylog * slack; 100x blows it): the gate fires.
  const auto violations =
      check_growth_budgets(with_snapshot_times(in_budget, 50.0, 5000.0));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("snapshot_load_ms grew"), std::string::npos);
}

TEST(BenchHarness, GrowthGateRefusesVacuousAndDegenerateSweeps) {
  // Only ungated schemes in the document: the gate would pass without
  // checking anything, so it raises the typed error instead of a pass.
  const Json ungated_only = doc_with_series(
      "fulltable", {256, 1024}, {1000.0, 4000.0}, {50.0, 800.0});
  EXPECT_THROW(check_growth_budgets(ungated_only), GrowthGateError);
  // A single-size sweep has no growth to measure: typed error, not a pass.
  const Json single_size =
      doc_with_series("rtz3", {1024}, {320.0}, {400.0});
  EXPECT_THROW(check_growth_budgets(single_size), GrowthGateError);
  // A zero-valued baseline cell would make every ratio infinite (or mask a
  // broken measurement): typed error naming the cell.
  const Json zero_base = doc_with_series("rtz3", {256, 1024},
                                         {0.0, 320.0}, {50.0, 400.0});
  EXPECT_THROW(check_growth_budgets(zero_base), GrowthGateError);
}

// ----------------------------------------------------------------- timing --

TEST(BenchHarness, IterationControllerHonorsRepBounds) {
  IterationPolicy policy;
  policy.warmup_reps = 2;
  policy.min_reps = 3;
  policy.max_reps = 6;
  policy.window = 3;
  policy.steady_rel_spread = 1e9;  // everything is "steady": stops at window
  std::atomic<int> calls{0};
  const TimedPhase steady = run_timed(policy, [&] { ++calls; });
  EXPECT_EQ(steady.reps, 3);  // window == 3 timed reps suffice
  EXPECT_TRUE(steady.steady);
  EXPECT_EQ(calls.load(), 2 + 3);  // warmup + timed

  policy.steady_rel_spread = 0.0;  // (hi-lo)/lo == 0 is still <= 0 only when
                                   // timings tie exactly; a busy loop won't
  calls = 0;
  const TimedPhase capped = run_timed(policy, [&] {
    ++calls;
    volatile int spin = 0;
    for (int i = 0; i < 10000; ++i) spin += i;
  });
  EXPECT_LE(capped.reps, 6);
  EXPECT_GE(capped.reps, 3);
  EXPECT_GT(capped.best_ms, 0.0);
  EXPECT_GE(capped.mean_ms, capped.best_ms);
}

TEST(BenchHarness, RssReadingWorksOnLinux) {
  const std::int64_t rss = current_rss_kb();
  // Procfs present (Linux CI): a live process has a positive RSS.
  if (rss >= 0) EXPECT_GT(rss, 0);
}

}  // namespace
}  // namespace rtr::bench_harness
