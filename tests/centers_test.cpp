#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rtz/centers.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

TEST(Centers, SampleIsDistinctSorted) {
  Rng rng(1);
  auto centers = sample_centers(100, 20, rng);
  EXPECT_EQ(centers.size(), 20u);
  std::set<NodeId> s(centers.begin(), centers.end());
  EXPECT_EQ(s.size(), 20u);
  EXPECT_TRUE(std::is_sorted(centers.begin(), centers.end()));
}

TEST(Centers, SampleRejectsBadSizes) {
  Rng rng(2);
  EXPECT_THROW(sample_centers(10, 0, rng), std::invalid_argument);
  EXPECT_THROW(sample_centers(10, 11, rng), std::invalid_argument);
}

TEST(Centers, DefaultCountScalesLikeSqrtNLogN) {
  EXPECT_GE(default_center_count(100), 10);
  EXPECT_LE(default_center_count(100), 100);
  // Monotone in n and sublinear.
  EXPECT_LE(default_center_count(100), default_center_count(1000));
  EXPECT_LT(default_center_count(10000), 1000);
}

TEST(Centers, GreedyHittingSetHitsEveryBall) {
  Instance inst = make_instance(Family::kRandom, 80, 5, 3);
  const auto hood = static_cast<NodeId>(
      std::ceil(std::sqrt(static_cast<double>(inst.n()))));
  std::vector<std::vector<NodeId>> balls;
  for (NodeId v = 0; v < inst.n(); ++v) {
    balls.push_back(inst.metric->neighborhood(v, hood, inst.names.names()));
  }
  auto centers = greedy_hitting_set(inst.n(), balls);
  std::set<NodeId> cs(centers.begin(), centers.end());
  for (const auto& ball : balls) {
    bool hit = false;
    for (NodeId v : ball) hit = hit || cs.contains(v);
    EXPECT_TRUE(hit);
  }
  // Greedy set-cover bound: |A| <= O(sqrt(n) ln n); assert generously.
  const double n = inst.n();
  EXPECT_LE(static_cast<double>(centers.size()),
            3.0 * std::sqrt(n) * (1.0 + std::log(n)));
}

TEST(Centers, GreedyThrowsOnEmptyBall) {
  std::vector<std::vector<NodeId>> balls = {{0, 1}, {}};
  EXPECT_THROW(greedy_hitting_set(3, balls), std::logic_error);
}

}  // namespace
}  // namespace rtr
