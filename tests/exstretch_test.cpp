#include <gtest/gtest.h>

#include <cmath>

#include "core/exstretch.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

struct ExParam {
  Family family;
  NodeId n;
  int k;
  std::uint64_t seed;
};

class ExStretchTest : public ::testing::TestWithParam<ExParam> {
 protected:
  void Build() {
    const auto& p = GetParam();
    inst_ = make_instance(p.family, p.n, 4, p.seed);
    Rng rng(p.seed + 5);
    ExStretchScheme::Options opts;
    opts.k = p.k;
    scheme_ = std::make_unique<ExStretchScheme>(inst_.graph, *inst_.metric,
                                                inst_.names, rng, opts);
  }
  Instance inst_;
  std::unique_ptr<ExStretchScheme> scheme_;
};

TEST_P(ExStretchTest, AllPairsDeliverWithinTheoremNineBound) {
  Build();
  const double bound = scheme_->stretch_bound();
  for (NodeId s = 0; s < inst_.n(); ++s) {
    for (NodeId t = 0; t < inst_.n(); ++t) {
      if (s == t) continue;
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok()) << "undelivered " << s << "->" << t;
      EXPECT_LE(static_cast<double>(res.roundtrip_length()),
                bound * static_cast<double>(inst_.metric->r(s, t)))
          << s << "->" << t;
    }
  }
}

TEST_P(ExStretchTest, HeaderStackBoundedByK) {
  Build();
  for (NodeId s = 0; s < inst_.n(); s += 3) {
    for (NodeId t = 0; t < inst_.n(); t += 5) {
      auto h = scheme_->make_packet(inst_.names.name_of(t));
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok());
      // o(k log^2 n) headers: generous constant.
      const double log_n = std::log2(static_cast<double>(inst_.n())) + 1;
      EXPECT_LE(static_cast<double>(res.max_header_bits),
                80 * (GetParam().k + 1) * log_n * log_n);
      (void)h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExStretchTest,
    ::testing::Values(ExParam{Family::kRandom, 48, 2, 1},
                      ExParam{Family::kRandom, 48, 3, 2},
                      ExParam{Family::kRandom, 64, 4, 3},
                      ExParam{Family::kGrid, 36, 3, 4},
                      ExParam{Family::kRing, 40, 3, 5},
                      ExParam{Family::kScaleFree, 48, 2, 6},
                      ExParam{Family::kBidirected, 40, 3, 7}),
    [](const ::testing::TestParamInfo<ExParam>& info) {
      return family_name(info.param.family).substr(0, 4) + "_n" +
             std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(ExStretch, SelfDelivery) {
  Instance inst = make_instance(Family::kRandom, 27, 3, 11);
  Rng rng(12);
  ExStretchScheme scheme(inst.graph, *inst.metric, inst.names, rng);
  auto res = simulate_roundtrip(inst.graph, scheme, 5, 5, inst.names.name_of(5));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.roundtrip_length(), 0);
}

TEST(ExStretch, StretchBoundFormula) {
  Instance inst = make_instance(Family::kRandom, 27, 3, 13);
  Rng rng(14);
  ExStretchScheme::Options opts;
  opts.k = 3;
  ExStretchScheme scheme(inst.graph, *inst.metric, inst.names, rng, opts);
  // beta(3) * (2^3 - 1) = 4*5 * 7 = 140.
  EXPECT_DOUBLE_EQ(scheme.stretch_bound(), 140.0);
}

TEST(ExStretch, WaypointPrefixesGrowMonotonically) {
  // Record the out path and verify the visited waypoint names match strictly
  // growing prefixes of the destination -- the Fig. 5 picture.
  Instance inst = make_instance(Family::kRandom, 64, 4, 15);
  Rng rng(16);
  ExStretchScheme::Options opts;
  opts.k = 3;
  ExStretchScheme scheme(inst.graph, *inst.metric, inst.names, rng, opts);
  const Alphabet& alpha = scheme.alphabet();
  SimOptions sim;
  sim.record_paths = true;
  int checked = 0;
  for (NodeId s = 0; s < inst.n() && checked < 30; s += 5) {
    for (NodeId t = 0; t < inst.n() && checked < 30; t += 7) {
      if (s == t) continue;
      auto res =
          simulate_roundtrip(inst.graph, scheme, s, t, inst.names.name_of(t), sim);
      ASSERT_TRUE(res.ok());
      ++checked;
      // The return path must end at the source.
      ASSERT_FALSE(res.back_path.empty());
      EXPECT_EQ(res.back_path.back(), s);
      (void)alpha;
    }
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace rtr
