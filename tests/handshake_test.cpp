#include <gtest/gtest.h>

#include "rtz/handshake.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class HandshakeTest : public ::testing::Test {
 protected:
  void Build(Family family, NodeId n, int k, std::uint64_t seed) {
    inst_ = make_instance(family, n, 4, seed);
    rev_ = inst_.graph.reversed();
    hierarchy_ =
        std::make_unique<CoverHierarchy>(inst_.graph, rev_, *inst_.metric, k);
    k_ = k;
  }

  // Drives a double-tree leg hop by hop; returns the weighted length, or -1.
  Dist drive(NodeId from, NodeId expect, DtLeg leg) {
    NodeId at = from;
    Dist total = 0;
    for (int guard = 0; guard < 8 * inst_.n() + 8; ++guard) {
      DtStep s = dt_step(*hierarchy_, at, leg);
      if (s.arrived) return at == expect ? total : -1;
      const Edge* e = inst_.graph.edge_by_port(at, s.port);
      if (e == nullptr) return -1;
      total += e->weight;
      at = e->to;
    }
    return -1;
  }

  Instance inst_;
  Digraph rev_{0};
  std::unique_ptr<CoverHierarchy> hierarchy_;
  int k_ = 0;
};

TEST_F(HandshakeTest, R2TripsDeliverBothWaysWithinBeta) {
  Build(Family::kRandom, 48, 2, 1);
  for (NodeId u = 0; u < inst_.n(); u += 3) {
    for (NodeId v = 0; v < inst_.n(); v += 7) {
      if (u == v) continue;
      R2Label r2 = compute_r2(*hierarchy_, u, v);
      Dist fwd = drive(u, v, DtLeg{r2.tree, r2.label_v, true});
      Dist back = drive(v, u, DtLeg{r2.tree, r2.label_u, true});
      ASSERT_GE(fwd, 0) << u << "->" << v;
      ASSERT_GE(back, 0) << v << "->" << u;
      const double beta = r2_beta(k_);
      EXPECT_LE(static_cast<double>(fwd + back),
                beta * static_cast<double>(inst_.metric->r(u, v)))
          << "R2 roundtrip exceeded beta(k) * r";
    }
  }
}

TEST_F(HandshakeTest, R2SelectsLowestWorkingLevel) {
  Build(Family::kGrid, 36, 3, 2);
  for (NodeId u = 0; u < inst_.n(); u += 5) {
    for (NodeId v = u + 1; v < inst_.n(); v += 5) {
      R2Label r2 = compute_r2(*hierarchy_, u, v);
      // No lower level has any tree containing both.
      for (std::int32_t lower = 0; lower < r2.tree.level; ++lower) {
        const HierarchyLevel& lvl = hierarchy_->level(lower);
        for (std::int32_t t :
             lvl.trees_of[static_cast<std::size_t>(u)]) {
          EXPECT_FALSE(lvl.trees[static_cast<std::size_t>(t)].contains(v));
        }
      }
    }
  }
}

TEST_F(HandshakeTest, DtStepRejectsOutsiders) {
  Build(Family::kRandom, 30, 2, 3);
  // Find a level-0 tree and a node outside it.
  const HierarchyLevel& lvl = hierarchy_->level(0);
  for (std::int32_t t = 0; t < static_cast<std::int32_t>(lvl.trees.size()); ++t) {
    const DoubleTree& tree = lvl.trees[static_cast<std::size_t>(t)];
    if (tree.member_count() == inst_.n()) continue;
    NodeId outsider = kNoNode;
    for (NodeId v = 0; v < inst_.n(); ++v) {
      if (!tree.contains(v)) {
        outsider = v;
        break;
      }
    }
    ASSERT_NE(outsider, kNoNode);
    DtLeg leg{TreeRef{0, t}, tree.out_router().label(tree.center()), true};
    EXPECT_THROW((void)dt_step(*hierarchy_, outsider, leg), std::logic_error);
    return;
  }
  GTEST_SKIP() << "all level-0 trees span V on this instance";
}

TEST_F(HandshakeTest, HierarchyNodeStatsArePositiveAndBounded) {
  Build(Family::kRandom, 48, 3, 4);
  TableStats stats = hierarchy_node_stats(*hierarchy_, inst_.n(),
                                          inst_.n(), inst_.graph.port_space());
  EXPECT_GT(stats.max_entries(), 0);
  // Every node is in >= 1 tree per level (its home), <= 2k n^{1/k}.
  const double per_level_bound =
      2.0 * k_ * std::pow(static_cast<double>(inst_.n()), 1.0 / k_) + 1;
  EXPECT_LE(static_cast<double>(stats.max_entries()),
            per_level_bound * hierarchy_->level_count());
}

TEST_F(HandshakeTest, R2LabelBitsPolylog) {
  Build(Family::kRandom, 48, 2, 5);
  R2Label r2 = compute_r2(*hierarchy_, 0, 7);
  std::int64_t bits = r2_label_bits(r2, inst_.n(), inst_.graph.port_space());
  EXPECT_GT(bits, 0);
  // o(log^2 n) scale: generous constant * log^2.
  const double log_n = std::log2(static_cast<double>(inst_.n()));
  EXPECT_LE(static_cast<double>(bits), 64 * log_n * log_n);
}

}  // namespace
}  // namespace rtr
