#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "graph/digraph.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(GraphBuilder, AddAndQueryEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 7);
  EXPECT_EQ(b.node_count(), 3);
  EXPECT_EQ(b.edge_count(), 2);
  const Digraph g = b.freeze();
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(2), 0);
}

TEST(GraphBuilder, RejectsBadEdges) {
  GraphBuilder g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_edge(0, 1, 0), std::invalid_argument);  // weight < 1
  EXPECT_THROW(g.add_edge(0, 3, 1), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 1, 1), std::out_of_range);
}

TEST(GraphBuilder, FreezeRejectsParallelEdges) {
  GraphBuilder g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 2);  // builder accepts; freeze validates
  EXPECT_THROW((void)g.freeze(), std::invalid_argument);
}

TEST(Digraph, SequentialPortsResolve) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(0, 3, 1);
  const Digraph g = b.freeze();
  const Edge* e = g.edge_by_port(0, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->to, 2);
  EXPECT_EQ(g.edge_by_port(0, 99), nullptr);
}

TEST(Digraph, AdversarialPortsAreUniquePerNodeAndResolve) {
  Rng rng(5);
  GraphBuilder b(50);
  for (NodeId i = 0; i < 50; ++i) {
    b.add_edge(i, (i + 1) % 50, 1);
    b.add_edge(i, (i + 7) % 50, 2);
  }
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  for (NodeId u = 0; u < 50; ++u) {
    std::set<Port> ports;
    for (const Edge& e : g.out_edges(u)) {
      EXPECT_GE(e.port, 0);
      EXPECT_LT(e.port, g.port_space());
      EXPECT_TRUE(ports.insert(e.port).second) << "duplicate port at " << u;
      const Edge* back = g.edge_by_port(u, e.port);
      ASSERT_NE(back, nullptr);
      EXPECT_EQ(back->to, e.to);
      // The indexed lookup and the retained linear reference agree edge for
      // edge.
      EXPECT_EQ(g.edge_by_port_linear(u, e.port), back);
    }
  }
}

TEST(Digraph, PortOfEdgeMatchesEdgeByPort) {
  Rng rng(6);
  GraphBuilder b(10);
  b.add_edge(3, 7, 2);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  Port p = g.port_of_edge(3, 7);
  ASSERT_NE(p, kNoPort);
  EXPECT_EQ(g.edge_by_port(3, p)->to, 7);
  EXPECT_EQ(g.port_of_edge(3, 4), kNoPort);
}

TEST(Digraph, ReversedFlipsEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 7);
  const Digraph g = b.freeze();
  Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_FALSE(r.has_edge(0, 1));
  EXPECT_EQ(r.edge_count(), 2);
}

TEST(Digraph, MaxWeight) {
  GraphBuilder b(3);
  EXPECT_EQ(b.freeze().max_weight(), 1);  // no edges
  b.add_edge(0, 1, 41);
  b.add_edge(1, 2, 7);
  EXPECT_EQ(b.freeze().max_weight(), 41);
}

TEST(Digraph, ThawFreezeRoundTripPreservesRowsAndPorts) {
  Rng rng(7);
  GraphBuilder b(30);
  for (NodeId i = 0; i < 30; ++i) {
    b.add_edge(i, (i + 1) % 30, 1 + i % 4);
    b.add_edge(i, (i + 11) % 30, 2);
  }
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  const Digraph again = GraphBuilder(g).freeze();
  ASSERT_EQ(again.node_count(), g.node_count());
  ASSERT_EQ(again.edge_count(), g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = g.out_edges(u);
    const auto row2 = again.out_edges(u);
    ASSERT_EQ(row.size(), row2.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(row[i].to, row2[i].to);
      EXPECT_EQ(row[i].weight, row2[i].weight);
      EXPECT_EQ(row[i].port, row2[i].port);
    }
  }
}

TEST(GraphBuilder, AddEdgeAfterThawNeverCollidesWithInheritedPorts) {
  // Adversarial ports are sparse in [0, 4n); sequential add_edge labels on a
  // thawed builder must continue past them, not restart at the row size.
  Rng rng(9);
  GraphBuilder b(12);
  for (NodeId i = 0; i < 12; ++i) b.add_edge(i, (i + 1) % 12, 1);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  GraphBuilder thawed(g);
  for (NodeId i = 0; i < 12; ++i) thawed.add_edge(i, (i + 5) % 12, 2);
  const Digraph again = thawed.freeze();  // throws on a port collision
  for (NodeId u = 0; u < again.node_count(); ++u) {
    std::set<Port> ports;
    for (const Edge& e : again.out_edges(u)) {
      EXPECT_TRUE(ports.insert(e.port).second) << "duplicate port at " << u;
    }
    // Inherited ports are untouched.
    for (const Edge& e : g.out_edges(u)) {
      EXPECT_EQ(again.port_of_edge(u, e.to), e.port);
    }
  }
}

TEST(GraphBuilder, AddEdgeStaysInsidePortSpaceAfterMaxPort) {
  // A row already holding the namespace's top label (possible on a thawed
  // adversarial graph) must not push sequential labels past port_space():
  // add_edge falls back to the smallest unused label.
  GraphBuilder b(3);  // port_space = 12
  b.add_edges_with_ports(0, {Edge{1, 11, 1}});
  b.add_edge(0, 2, 1);
  const Digraph g = b.freeze();
  for (const Edge& e : g.out_edges(0)) {
    EXPECT_GE(e.port, 0);
    EXPECT_LT(e.port, g.port_space());
  }
  EXPECT_EQ(g.port_of_edge(0, 1), 11);
  EXPECT_EQ(g.port_of_edge(0, 2), 0);
}

TEST(Digraph, FlatArcsMirrorTheEdgeRows) {
  Rng rng(8);
  GraphBuilder b(20);
  for (NodeId i = 0; i < 20; ++i) b.add_edge(i, (i + 3) % 20, 1 + i % 5);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = g.out_edges(u);
    ASSERT_EQ(g.arcs_end(u) - g.arcs_begin(u),
              static_cast<std::int64_t>(row.size()));
    for (std::int64_t i = g.arcs_begin(u); i < g.arcs_end(u); ++i) {
      const auto k = static_cast<std::size_t>(i - g.arcs_begin(u));
      EXPECT_EQ(g.arc_head(i), row[k].to);
      EXPECT_EQ(g.arc_weight(i), row[k].weight);
    }
  }
}

// The degree-skewed regression guard for the satellite "has_edge /
// port_of_edge / edge_by_port must stay sublinear": on a star whose hub
// degree grows 16x, the per-lookup cost of the O(log d) resolution tables
// grows ~1.2x while the retained linear scan grows ~16x.  Comparing the two
// growth RATIOS (not absolute times) keeps the test meaningful on any
// hardware and under sanitizers; the margin between log-growth (~1.2x) and
// linear growth (~16x) is wide enough that even noisy timers separate them.
TEST(Digraph, PortResolutionStaysSublinearInDegree) {
  const auto build_star = [](NodeId leaves) {
    Rng rng(42);
    GraphBuilder b(leaves + 1);
    for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v, 1);
    b.assign_adversarial_ports(rng);
    return b.freeze();
  };
  const auto probe_ns = [](const Digraph& g) {
    // Resolve every hub port several times; report ns per lookup.
    std::vector<Port> ports;
    for (const Edge& e : g.out_edges(0)) ports.push_back(e.port);
    std::int64_t lookups = 0;
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 6; ++rep) {
      for (const Port p : ports) {
        sink += g.edge_by_port(0, p)->to;
        sink += g.port_of_edge(0, g.edge_by_port(0, p)->to);
        sink += g.has_edge(0, static_cast<NodeId>(1 + (p % (g.node_count() - 1))))
                    ? 1
                    : 0;
        lookups += 3;
      }
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_NE(sink, -1);  // keep the loop observable
    return ns / static_cast<double>(lookups);
  };
  const Digraph small = build_star(512);
  const Digraph big = build_star(512 * 16);
  // log2(8192)/log2(512) = 1.44 in comparisons; linear would be >= 16x in
  // time (and worse once the 8192-entry rows stop fitting in cache).  The
  // cache penalty cuts the other way too -- the log-cost path measures ~8x
  // on small-cache hosts -- so gate at 12x, which still cleanly separates
  // the regimes, and re-measure up to 3 times (best-of-3 per attempt,
  // passing on any clean one) to shed ctest -j scheduler noise.
  double small_ns = 0, big_ns = 0;
  bool sublinear = false;
  for (int attempt = 0; attempt < 3 && !sublinear; ++attempt) {
    small_ns = probe_ns(small), big_ns = probe_ns(big);
    for (int i = 0; i < 2; ++i) {
      small_ns = std::min(small_ns, probe_ns(small));
      big_ns = std::min(big_ns, probe_ns(big));
    }
    sublinear = big_ns < small_ns * 12.0;
  }
  EXPECT_TRUE(sublinear)
      << "per-lookup cost grew ~linearly with degree (small=" << small_ns
      << "ns, big=" << big_ns << "ns)";
}

}  // namespace
}  // namespace rtr
