#include <gtest/gtest.h>

#include <set>

#include "graph/digraph.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(Digraph, AddAndQueryEdges) {
  Digraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 7);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(2), 0);
}

TEST(Digraph, RejectsBadEdges) {
  Digraph g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_edge(0, 1, 0), std::invalid_argument);  // weight < 1
  EXPECT_THROW(g.add_edge(0, 3, 1), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 1, 1), std::out_of_range);
}

TEST(Digraph, SequentialPortsResolve) {
  Digraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(0, 3, 1);
  const Edge* e = g.edge_by_port(0, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->to, 2);
  EXPECT_EQ(g.edge_by_port(0, 99), nullptr);
}

TEST(Digraph, AdversarialPortsAreUniquePerNodeAndResolve) {
  Rng rng(5);
  Digraph g(50);
  for (NodeId i = 0; i < 50; ++i) {
    g.add_edge(i, (i + 1) % 50, 1);
    g.add_edge(i, (i + 7) % 50, 2);
  }
  g.assign_adversarial_ports(rng);
  for (NodeId u = 0; u < 50; ++u) {
    std::set<Port> ports;
    for (const Edge& e : g.out_edges(u)) {
      EXPECT_GE(e.port, 0);
      EXPECT_LT(e.port, g.port_space());
      EXPECT_TRUE(ports.insert(e.port).second) << "duplicate port at " << u;
      const Edge* back = g.edge_by_port(u, e.port);
      ASSERT_NE(back, nullptr);
      EXPECT_EQ(back->to, e.to);
    }
  }
}

TEST(Digraph, PortOfEdgeMatchesEdgeByPort) {
  Rng rng(6);
  Digraph g(10);
  g.add_edge(3, 7, 2);
  g.assign_adversarial_ports(rng);
  Port p = g.port_of_edge(3, 7);
  ASSERT_NE(p, kNoPort);
  EXPECT_EQ(g.edge_by_port(3, p)->to, 7);
  EXPECT_EQ(g.port_of_edge(3, 4), kNoPort);
}

TEST(Digraph, ReversedFlipsEdges) {
  Digraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 7);
  Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_FALSE(r.has_edge(0, 1));
  EXPECT_EQ(r.edge_count(), 2);
}

TEST(Digraph, MaxWeight) {
  Digraph g(3);
  EXPECT_EQ(g.max_weight(), 1);  // no edges
  g.add_edge(0, 1, 41);
  g.add_edge(1, 2, 7);
  EXPECT_EQ(g.max_weight(), 41);
}

}  // namespace
}  // namespace rtr
