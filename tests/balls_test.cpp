#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dijkstra.h"
#include "rtz/balls.h"
#include "rtz/centers.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class BallSystemTest : public ::testing::Test {
 protected:
  void Build(Family f, NodeId n, std::uint64_t seed) {
    inst_ = make_instance(f, n, 5, seed);
    Rng rng(seed + 7);
    sys_ = build_ball_system(*inst_.metric,
                             sample_centers(inst_.n(), default_center_count(inst_.n()), rng));
  }
  Instance inst_;
  BallSystem sys_;
};

TEST_F(BallSystemTest, BallDefinitionExact) {
  Build(Family::kRandom, 60, 1);
  for (NodeId v = 0; v < inst_.n(); ++v) {
    const auto ball = sys_.ball(v);
    std::vector<char> in_ball(static_cast<std::size_t>(inst_.n()), 0);
    for (NodeId w : ball) in_ball[static_cast<std::size_t>(w)] = 1;
    for (NodeId w = 0; w < inst_.n(); ++w) {
      const bool expected =
          w == v ||
          inst_.metric->r(v, w) < sys_.r_to_centers[static_cast<std::size_t>(v)];
      EXPECT_EQ(in_ball[static_cast<std::size_t>(w)] != 0, expected);
    }
  }
}

TEST_F(BallSystemTest, NearestCenterAchievesRToA) {
  Build(Family::kGrid, 36, 2);
  for (NodeId v = 0; v < inst_.n(); ++v) {
    const auto ci = sys_.nearest_center[static_cast<std::size_t>(v)];
    ASSERT_GE(ci, 0);
    const NodeId a = sys_.centers[static_cast<std::size_t>(ci)];
    EXPECT_EQ(inst_.metric->r(v, a), sys_.r_to_centers[static_cast<std::size_t>(v)]);
    for (NodeId c : sys_.centers) {
      EXPECT_GE(inst_.metric->r(v, c), inst_.metric->r(v, a));
    }
  }
}

TEST_F(BallSystemTest, ClustersAreInverseBalls) {
  Build(Family::kRing, 40, 3);
  for (NodeId w = 0; w < inst_.n(); ++w) {
    for (NodeId v = 0; v < inst_.n(); ++v) {
      const auto ball = sys_.ball(v);
      const auto cluster = sys_.cluster(w);
      const bool in_ball = std::binary_search(ball.begin(), ball.end(), w);
      const bool in_cluster = std::binary_search(cluster.begin(), cluster.end(), v);
      EXPECT_EQ(in_ball, in_cluster);
    }
  }
}

TEST_F(BallSystemTest, CentersHaveSingletonBalls) {
  Build(Family::kRandom, 50, 4);
  for (NodeId a : sys_.centers) {
    EXPECT_EQ(sys_.r_to_centers[static_cast<std::size_t>(a)], 0);
    const auto ball = sys_.ball(a);
    ASSERT_EQ(ball.size(), 1u);
    EXPECT_EQ(ball[0], a);
  }
}

// The closure property Rtz3Scheme's correctness rests on: shortest paths
// between v and a ball member stay inside the ball, so the induced in/out
// trees realize exact global distances.
TEST_F(BallSystemTest, BallClosureRealizesExactDistances) {
  Build(Family::kScaleFree, 60, 5);
  const Digraph rev = inst_.graph.reversed();
  for (NodeId v = 0; v < inst_.n(); v += 3) {
    const auto ball = sys_.ball(v);
    std::vector<char> mask(static_cast<std::size_t>(inst_.n()), 0);
    for (NodeId w : ball) mask[static_cast<std::size_t>(w)] = 1;
    OutTree out = dijkstra_out_tree_within(inst_.graph, v, mask);
    InTree in = dijkstra_in_tree_within(inst_.graph, rev, v, mask);
    for (NodeId w : ball) {
      EXPECT_EQ(out.dist[static_cast<std::size_t>(w)], inst_.metric->d(v, w))
          << "induced out-distance inflated: ball not closed";
      EXPECT_EQ(in.dist[static_cast<std::size_t>(w)], inst_.metric->d(w, v))
          << "induced in-distance inflated: ball not closed";
    }
  }
}

TEST(BallSystem, RequiresCenters) {
  Instance inst = make_instance(Family::kRandom, 20, 3, 6);
  EXPECT_THROW(build_ball_system(*inst.metric, {}), std::invalid_argument);
}

TEST(BallSystem, SizeDiagnostics) {
  Instance inst = make_instance(Family::kRandom, 60, 3, 7);
  Rng rng(8);
  BallSystem sys = build_ball_system(
      *inst.metric, sample_centers(60, default_center_count(60), rng));
  EXPECT_GE(sys.max_ball_size(), 1);
  EXPECT_GE(sys.max_cluster_size(), 1);
  EXPECT_LE(sys.max_ball_size(), 60);
  EXPECT_LE(sys.max_cluster_size(), 60);
}

}  // namespace
}  // namespace rtr
