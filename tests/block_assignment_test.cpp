#include <gtest/gtest.h>

#include <cmath>

#include "dict/block_assignment.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

struct AssignParam {
  Family family;
  NodeId n;
  int k;
  std::uint64_t seed;
};

class BlockAssignmentTest : public ::testing::TestWithParam<AssignParam> {};

TEST_P(BlockAssignmentTest, CoverageAndLogSizeBound) {
  const auto& p = GetParam();
  Instance inst = make_instance(p.family, p.n, 6, p.seed);
  Alphabet alpha(inst.n(), p.k);
  Neighborhoods hoods = compute_neighborhoods(*inst.metric, inst.names);
  Rng rng(p.seed + 1);
  BlockAssignment a =
      assign_blocks(alpha, *inst.metric, inst.names, hoods, rng);

  // Lemma 1 / Lemma 4 coverage.
  EXPECT_TRUE(verify_coverage(alpha, hoods, inst.names, a));

  // O(log n) blocks per node: our constant is log_factor (3) with up to 1.5x
  // growth per retry; assert a loose but honest multiple.
  const double log_n = std::log2(std::max<double>(2.0, inst.n()));
  EXPECT_LE(static_cast<double>(a.max_blocks_per_node()),
            std::max(32.0 * log_n, static_cast<double>(alpha.relevant_block_count())));
  EXPECT_EQ(a.blocks_of.size(), static_cast<std::size_t>(inst.n()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockAssignmentTest,
    ::testing::Values(AssignParam{Family::kRandom, 64, 2, 1},
                      AssignParam{Family::kRandom, 100, 2, 2},
                      AssignParam{Family::kRandom, 64, 3, 3},
                      AssignParam{Family::kGrid, 64, 2, 4},
                      AssignParam{Family::kRing, 64, 3, 5},
                      AssignParam{Family::kScaleFree, 81, 3, 6},
                      AssignParam{Family::kBidirected, 64, 4, 7}),
    [](const ::testing::TestParamInfo<AssignParam>& info) {
      return family_name(info.param.family).substr(0, 4) + "_n" +
             std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(BlockAssignment, HoldsIsConsistentWithBlockLists) {
  Instance inst = make_instance(Family::kRandom, 49, 5, 11);
  Alphabet alpha(inst.n(), 2);
  Neighborhoods hoods = compute_neighborhoods(*inst.metric, inst.names);
  Rng rng(12);
  BlockAssignment a = assign_blocks(alpha, *inst.metric, inst.names, hoods, rng);
  for (NodeId v = 0; v < inst.n(); ++v) {
    for (BlockId b = 0; b < alpha.relevant_block_count(); ++b) {
      bool listed = false;
      for (BlockId held : a.blocks_of[static_cast<std::size_t>(v)]) {
        listed = listed || held == b;
      }
      EXPECT_EQ(listed, a.holds(v, b));
    }
  }
}

TEST(BlockAssignment, TinyInstancesHoldEverything) {
  Instance inst = make_instance(Family::kRandom, 8, 3, 13);
  Alphabet alpha(inst.n(), 2);
  Neighborhoods hoods = compute_neighborhoods(*inst.metric, inst.names);
  Rng rng(14);
  BlockAssignment a = assign_blocks(alpha, *inst.metric, inst.names, hoods, rng);
  EXPECT_TRUE(verify_coverage(alpha, hoods, inst.names, a));
}

TEST(BlockAssignment, NeighborhoodOrderSharedWithMetric) {
  Instance inst = make_instance(Family::kRing, 40, 4, 15);
  Neighborhoods hoods = compute_neighborhoods(*inst.metric, inst.names);
  for (NodeId v = 0; v < inst.n(); v += 5) {
    auto direct = inst.metric->init_order(v, inst.names.names());
    EXPECT_EQ(hoods.order[static_cast<std::size_t>(v)], direct);
    EXPECT_EQ(hoods.prefix(v, 5).size(), 5u);
  }
}

TEST(BlockAssignment, GreedyRepairTriggersWhenRandomizedBudgetTooSmall) {
  Instance inst = make_instance(Family::kRandom, 100, 5, 16);
  Alphabet alpha(inst.n(), 2);
  Neighborhoods hoods = compute_neighborhoods(*inst.metric, inst.names);
  Rng rng(17);
  BlockAssignmentOptions opts;
  opts.log_factor = 0.05;  // starve the randomized phase
  opts.max_tries = 1;
  BlockAssignment a =
      assign_blocks(alpha, *inst.metric, inst.names, hoods, rng, opts);
  // Coverage must hold regardless, via greedy repairs.
  EXPECT_TRUE(verify_coverage(alpha, hoods, inst.names, a));
  EXPECT_GT(a.greedy_repairs, 0);
}

}  // namespace
}  // namespace rtr
