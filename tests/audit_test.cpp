// Deep invariant auditor tests: every registered scheme passes a clean
// audit across graph families, and deliberately corrupted structures --
// unsorted dictionary, broken CSR row, dangling port resolution, cyclic
// tree parent, oversize ball, broken name bijection, damaged snapshot
// sections -- each fire their specific invariant.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "graph/dijkstra.h"
#include "io/snapshot.h"
#include "net/scheme.h"
#include "rtz/rtz3_scheme.h"
#include "test_support.h"
#include "treeroute/tree_router.h"

namespace rtr {

/// Test-only backdoor into the audited structures' privates: corruption is
/// injected directly into a built artifact, so each test proves the auditor
/// catches exactly the damage class it claims to.
struct AuditTestPeer {
  // Frozen structures store FlatVecs; corruption is injected by materializing
  // the array, damaging it, and assigning the damaged copy back.
  static FlatVec<std::int64_t>& offsets(Digraph& g) { return g.offset_; }
  static FlatVec<Edge>& edges(Digraph& g) { return g.edges_; }
  static FlatVec<std::int32_t>& port_slots(Digraph& g) {
    return g.port_slot_;
  }
  static FlatVec<NodeName>& names(NameAssignment& a) { return a.name_of_; }
  static std::vector<NodeId>& parents(TreeRouter& t) { return t.parent_; }
  static BallSystem& balls(Rtz3Scheme& s) { return s.balls_; }
  static FlatVec<std::int64_t>& ball_off(Rtz3Scheme& s) { return s.ball_off_; }
  static FlatVec<NodeName>& ball_keys(Rtz3Scheme& s) { return s.ball_key_; }
};

namespace {

using testing::Instance;
using testing::make_instance;

const AuditEntry* find_entry(const AuditReport& report,
                             const std::string& component,
                             const std::string& invariant) {
  for (const AuditEntry& e : report.entries()) {
    if (e.component == component && e.invariant == invariant) return &e;
  }
  return nullptr;
}

/// First entry whose component starts with the given prefix (v2 arena
/// section names are scheme-dependent, e.g. "snapshot/scheme/blob").
const AuditEntry* find_prefix_entry(const AuditReport& report,
                                    const std::string& component_prefix,
                                    const std::string& invariant) {
  for (const AuditEntry& e : report.entries()) {
    if (e.invariant == invariant &&
        e.component.rfind(component_prefix, 0) == 0) {
      return &e;
    }
  }
  return nullptr;
}

/// Expects exactly this invariant to have failed (others may fail too when
/// the damage cascades, but the named one must fire).
void expect_fired(const AuditReport& report, const std::string& component,
                  const std::string& invariant) {
  EXPECT_FALSE(report.ok()) << report.summary(true);
  const AuditEntry* e = find_entry(report, component, invariant);
  ASSERT_NE(e, nullptr) << "no entry " << component << " :: " << invariant
                        << "\n"
                        << report.summary(true);
  EXPECT_FALSE(e->ok) << component << " :: " << invariant
                      << " did not fire\n"
                      << report.summary(true);
}

// ---------------------------------------------------------------- clean ---

TEST(AuditClean, EveryRegisteredSchemePassesAcrossFamilies) {
  const auto& registry = SchemeRegistry::global();
  for (const Family family :
       {Family::kRandom, Family::kGrid, Family::kRing}) {
    const Instance inst = make_instance(family, 120, 4, 17);
    for (const std::string& scheme_name : registry.names()) {
      BuildContext ctx = inst.context(5);
      SchemeHandle handle(ctx.graph, ctx.names,
                          registry.build(scheme_name, ctx));
      AuditReport report;
      audit_handle(handle, report);
      EXPECT_TRUE(report.ok())
          << scheme_name << " x " << family_name(family) << ":\n"
          << report.summary(false);
    }
  }
}

TEST(AuditClean, ReportSerializesToJson) {
  const Instance inst = make_instance(Family::kRandom, 80, 4, 3);
  AuditReport report;
  inst.graph.audit(report);
  EXPECT_TRUE(report.ok());
  const std::string json = report.to_json_string();
  EXPECT_NE(json.find("\"schema\": \"rtr-audit/1\""), std::string::npos);
  EXPECT_NE(json.find("csr-row-monotone"), std::string::npos);
}

// ------------------------------------------------------------ corrupted ---

TEST(AuditCorruption, BrokenCsrRowFires) {
  Instance inst = make_instance(Family::kRandom, 100, 4, 11);
  auto& offsets = AuditTestPeer::offsets(inst.graph);
  ASSERT_GE(offsets.size(), 3u);
  auto damaged = offsets.to_vector();
  damaged[1] = damaged[2] + 1;  // row 1 now ends before it begins
  offsets = std::move(damaged);
  AuditReport report;
  inst.graph.audit(report);
  expect_fired(report, "graph", "csr-row-monotone");
}

TEST(AuditCorruption, DanglingEdgeHeadFires) {
  Instance inst = make_instance(Family::kRandom, 100, 4, 11);
  auto damaged = AuditTestPeer::edges(inst.graph).to_vector();
  damaged[0].to = inst.n() + 5;
  AuditTestPeer::edges(inst.graph) = std::move(damaged);
  AuditReport report;
  inst.graph.audit(report);
  expect_fired(report, "graph", "edges-in-range");
}

TEST(AuditCorruption, DanglingPortResolutionFires) {
  Instance inst = make_instance(Family::kRandom, 100, 4, 11);
  // Point one port-resolution slot at a different row slot: the key no
  // longer resolves to the edge carrying that port.
  auto& slots = AuditTestPeer::port_slots(inst.graph);
  ASSERT_GE(slots.size(), 2u);
  auto damaged = slots.to_vector();
  std::swap(damaged[0], damaged[1]);
  slots = std::move(damaged);
  AuditReport report;
  inst.graph.audit(report);
  expect_fired(report, "graph", "port-table-bijection");
}

TEST(AuditCorruption, BrokenNameBijectionFires) {
  Instance inst = make_instance(Family::kRandom, 100, 4, 11);
  auto& name_of = AuditTestPeer::names(inst.names);
  auto damaged = name_of.to_vector();
  std::swap(damaged[0], damaged[1]);  // id_of_ left stale
  name_of = std::move(damaged);
  AuditReport report;
  {
    auto scope = report.scope("names");
    inst.names.audit(report);
  }
  expect_fired(report, "names", "name-bijection");
}

TEST(AuditCorruption, UnsortedDictionaryFires) {
  const Instance inst = make_instance(Family::kRandom, 120, 4, 17);
  Rng rng(5);
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  // Find a node whose own-ball key row has two keys and unsort that row
  // inside the flat key array.
  const auto& off = AuditTestPeer::ball_off(scheme);
  auto keys = AuditTestPeer::ball_keys(scheme).to_vector();
  bool corrupted = false;
  for (NodeId v = 0; v < inst.n() && !corrupted; ++v) {
    const auto b = static_cast<std::size_t>(off[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(off[static_cast<std::size_t>(v) + 1]);
    if (e - b >= 2) {
      std::swap(keys[b], keys[e - 1]);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "no node with a 2+ entry ball dictionary";
  AuditTestPeer::ball_keys(scheme) = std::move(keys);
  AuditReport report;
  scheme.audit(report);
  expect_fired(report, "rtz3", "dicts-sorted-unique");
}

TEST(AuditCorruption, CyclicTreeParentFires) {
  const Instance inst = make_instance(Family::kRandom, 100, 4, 11);
  TreeRouter router(dijkstra_out_tree(inst.graph, 0));
  auto& parents = AuditTestPeer::parents(router);
  // A non-root member now points at itself: the root walk never terminates.
  const NodeId victim = router.members().back() != router.root()
                            ? router.members().back()
                            : router.members().front();
  parents[static_cast<std::size_t>(victim)] = victim;
  AuditReport report;
  router.audit(report);
  expect_fired(report, "tree", "parents-acyclic");
}

TEST(AuditCorruption, OversizeBallFires) {
  // n chosen so that n > ball_slack * sqrt(n ln n): an all-nodes ball must
  // overflow the Lemma 2 budget.
  const Instance inst = make_instance(Family::kRandom, 300, 4, 7);
  Rng rng(5);
  Rtz3Scheme scheme(inst.graph, *inst.metric, inst.names, rng);
  BallSystem& balls = AuditTestPeer::balls(scheme);
  // A non-center node whose ball swells to every node in the graph.
  NodeId victim = kNoNode;
  for (NodeId v = 0; v < inst.n(); ++v) {
    if (balls.center_index_of[static_cast<std::size_t>(v)] < 0) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode);
  std::vector<NodeId> everyone(static_cast<std::size_t>(inst.n()));
  for (NodeId v = 0; v < inst.n(); ++v) {
    everyone[static_cast<std::size_t>(v)] = v;
  }
  // Materialize the CSR rows, swell the victim's ball, and repack.
  std::vector<std::vector<NodeId>> ball_rows(static_cast<std::size_t>(inst.n()));
  std::vector<std::vector<NodeId>> cluster_rows(
      static_cast<std::size_t>(inst.n()));
  for (NodeId v = 0; v < inst.n(); ++v) {
    const auto b = balls.ball(v);
    ball_rows[static_cast<std::size_t>(v)].assign(b.begin(), b.end());
    const auto c = balls.cluster(v);
    cluster_rows[static_cast<std::size_t>(v)].assign(c.begin(), c.end());
  }
  ball_rows[static_cast<std::size_t>(victim)] = everyone;
  balls.adopt_rows(ball_rows, cluster_rows);
  AuditReport report;
  {
    auto scope = report.scope("rtz3");
    balls.audit(report);
  }
  expect_fired(report, "rtz3/balls", "ball-size");
}

TEST(AuditCorruption, SortedDictHelperCatchesDisorderAndDuplicates) {
  struct FakeDict {
    std::vector<NodeName> keys;
    [[nodiscard]] std::size_t size() const { return keys.size(); }
    [[nodiscard]] NodeName key_at(std::size_t i) const { return keys[i]; }
  };
  AuditReport report;
  audit_sorted_dict(report, "sorted", FakeDict{{1, 2, 3}});
  audit_sorted_dict(report, "unsorted", FakeDict{{3, 1, 2}});
  audit_sorted_dict(report, "duplicate", FakeDict{{1, 1, 2}});
  EXPECT_TRUE(find_entry(report, "", "sorted")->ok);
  EXPECT_FALSE(find_entry(report, "", "unsorted")->ok);
  EXPECT_FALSE(find_entry(report, "", "duplicate")->ok);
}

// -------------------------------------------------------------- snapshot ---

class AuditSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/rtr_audit_test_" + std::to_string(::getpid()) + ".rtrsnap";
    const Instance inst = make_instance(Family::kRandom, 80, 4, 3);
    BuildContext ctx = inst.context(5);
    SchemeHandle handle(ctx.graph, ctx.names,
                        SchemeRegistry::global().build("rtz3", ctx));
    save_snapshot(path_, "rtz3", handle);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// XORs one byte of the saved file.
  void flip_byte(std::size_t offset) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f);
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  std::string path_;
};

TEST_F(AuditSnapshotTest, CleanSnapshotPasses) {
  AuditReport report;
  audit_snapshot_file(path_, report);
  EXPECT_TRUE(report.ok()) << report.summary(false);
  EXPECT_NE(find_entry(report, "snapshot/graph/offset", "crc"), nullptr);
  EXPECT_NE(find_prefix_entry(report, "snapshot/scheme/", "crc"), nullptr);
}

TEST_F(AuditSnapshotTest, BadSectionCrcFires) {
  // Probe the intact file for a scheme-owned section's payload range, then
  // damage one byte inside it.
  const SnapshotFileStatus status = probe_snapshot(path_);
  ASSERT_TRUE(status.all_ok());
  const auto it = std::find_if(status.sections.begin(), status.sections.end(),
                               [](const SnapshotSectionStatus& s) {
                                 return s.name.rfind("scheme/", 0) == 0 &&
                                        s.bytes > 0;
                               });
  ASSERT_NE(it, status.sections.end());
  flip_byte(static_cast<std::size_t>(it->payload_offset + it->bytes / 2));

  AuditReport report;
  audit_snapshot_file(path_, report);
  expect_fired(report, "snapshot/" + it->name, "crc");
  // The untouched sections still audit clean.
  EXPECT_TRUE(find_entry(report, "snapshot/graph/offset", "crc")->ok);
  EXPECT_TRUE(find_entry(report, "snapshot/names/name_of", "crc")->ok);

  // The load path agrees: a damaged section is a checksum error.
  EXPECT_THROW(load_snapshot(path_), SnapshotChecksumError);
}

TEST_F(AuditSnapshotTest, TruncatedFileFires) {
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.close();
  std::vector<char> bytes(size / 2);
  std::ifstream re(path_, std::ios::binary);
  re.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  re.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  AuditReport report;
  audit_snapshot_file(path_, report);
  expect_fired(report, "snapshot", "framing");
}

TEST_F(AuditSnapshotTest, MissingFileIsAFailedReportNotAThrow) {
  AuditReport report;
  audit_snapshot_file("/tmp/rtr_no_such_file.rtrsnap", report);
  expect_fired(report, "snapshot", "readable");
}

}  // namespace
}  // namespace rtr
