// RouteServer integration tests over real loopback sockets: golden
// request/response pairs for both protocols, the malformed-input taxonomy
// (bad name, oversized URI, truncated binary frame), pipelined keep-alive,
// and -- the serving property this subsystem exists for -- zero dropped
// queries while the epoch swaps live under concurrent load.  The
// *RouteServerChurn* test is a ThreadSanitizer target CI runs with
// -fsanitize=thread.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "graph/churn.h"
#include "graph/generators.h"
#include "serve/epoch_manager.h"
#include "server/route_server.h"
#include "server/wire.h"
#include "util/json.h"
#include "test_support.h"

namespace rtr {
namespace {

Digraph small_graph(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  return random_strongly_connected(n, 4.0, 5, rng).freeze();
}

NameAssignment small_names(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  return NameAssignment::random(n, rng);
}

/// A blocking loopback client connection for driving the server in-process.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  [[nodiscard]] bool send_all(const std::string& data) const {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Appends available bytes to `buffer_`; false on orderly close or error.
  [[nodiscard]] bool recv_some() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  /// Reads one full HTTP response off the connection; false on close.
  [[nodiscard]] bool read_http_response(int& status, std::string& body) {
    std::size_t head_end = std::string::npos;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!recv_some()) return false;
    }
    const std::size_t sp = buffer_.find(' ');
    if (sp == std::string::npos || sp + 4 > head_end) return false;
    status = (buffer_[sp + 1] - '0') * 100 + (buffer_[sp + 2] - '0') * 10 +
             (buffer_[sp + 3] - '0');
    std::size_t content_length = 0;
    const std::string head = buffer_.substr(0, head_end);
    std::size_t at = head.find("Content-Length:");
    if (at == std::string::npos) return false;
    at += 15;
    while (at < head.size() && head[at] == ' ') ++at;
    while (at < head.size() && head[at] >= '0' && head[at] <= '9') {
      content_length =
          content_length * 10 + static_cast<std::size_t>(head[at] - '0');
      ++at;
    }
    while (buffer_.size() < head_end + 4 + content_length) {
      if (!recv_some()) return false;
    }
    body = buffer_.substr(head_end + 4, content_length);
    buffer_.erase(0, head_end + 4 + content_length);
    return true;
  }

  /// True when the peer has closed the connection (blocking read hits EOF
  /// with no buffered bytes left).
  [[nodiscard]] bool closed_by_peer() {
    return buffer_.empty() && !recv_some();
  }

  [[nodiscard]] std::string& buffer() { return buffer_; }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

[[nodiscard]] std::string route_request(NodeName src, NodeName dst,
                                        bool keep_alive = true) {
  std::string r = "GET /route?src=" + std::to_string(src) +
                  "&dst=" + std::to_string(dst) + " HTTP/1.1\r\nHost: t\r\n";
  if (!keep_alive) r += "Connection: close\r\n";
  r += "\r\n";
  return r;
}

class RouteServerTest : public ::testing::Test {
 protected:
  static constexpr NodeId kNodes = 48;
  RouteServerTest()
      : manager_("stretch6", small_names(kNodes, 11), small_graph(kNodes, 12)),
        source_(manager_),
        server_(source_) {}

  EpochManager manager_;
  ManagerServingSource source_;
  RouteServer server_;
};

TEST_F(RouteServerTest, HttpRouteGoldenResponse) {
  const auto& names = manager_.names();
  const NodeName src = names.name_of(2);
  const NodeName dst = names.name_of(9);
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all(route_request(src, dst)));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 200);

  // The body must be byte-identical to the shared JSON model's rendering of
  // the same ServingResult -- the golden-response contract.
  const Json doc = Json::parse(body);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").as_string(), "none");
  EXPECT_EQ(doc.at("src").as_int(), src);
  EXPECT_EQ(doc.at("dst").as_int(), dst);
  EXPECT_GT(doc.at("roundtrip_length").as_int(), 0);
  EXPECT_GT(doc.at("out_hops").as_int(), 0);
  const ServingResult expect = manager_.roundtrip_by_name(src, dst);
  EXPECT_EQ(body, route_response_json(src, dst, expect).dump());
}

TEST_F(RouteServerTest, HealthzAndStatsAnswerInline) {
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("GET /healthz HTTP/1.1\r\n\r\n"));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 200);
  Json health = Json::parse(body);
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("scheme").as_string(), "stretch6");
  EXPECT_EQ(health.at("nodes").as_int(), kNodes);

  ASSERT_TRUE(client.send_all("GET /stats HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 200);
  Json stats = Json::parse(body);
  EXPECT_EQ(stats.at("schema").as_string(), "rtr-stats/1");
  EXPECT_GE(stats.at("connections").as_int(), 1);
}

TEST_F(RouteServerTest, UnknownNameIs400InvalidName) {
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all(route_request(manager_.names().name_of(0),
                                            kNodes * 1000 + 17)));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 400);
  EXPECT_EQ(Json::parse(body).at("error").as_string(), "invalid_name");
}

TEST_F(RouteServerTest, MissingParamsAre400InvalidQuery) {
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("GET /route?src=1 HTTP/1.1\r\n\r\n"));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 400);
  EXPECT_EQ(Json::parse(body).at("error").as_string(), "invalid_query");
}

TEST_F(RouteServerTest, MalformedRequestLineIs400AndCloses) {
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("BOGUS\r\n\r\n"));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 400);
  EXPECT_TRUE(client.closed_by_peer());
}

TEST_F(RouteServerTest, OversizedUriIs414AndCloses) {
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  const std::string huge =
      "GET /route?src=" + std::string(8192, '1') + " HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(client.send_all(huge));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 414);
  EXPECT_TRUE(client.closed_by_peer());
}

TEST_F(RouteServerTest, UnknownPathAndMethod) {
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("GET /nope HTTP/1.1\r\n\r\n"));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 404);
  ASSERT_TRUE(client.send_all("POST /route HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 405);
}

TEST_F(RouteServerTest, PipelinedKeepAliveAnswersInOrder) {
  const auto& names = manager_.names();
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  // Three requests in one write; the middle one is an error -- responses
  // must come back in order on the same connection.
  std::string burst = route_request(names.name_of(1), names.name_of(2));
  burst += route_request(names.name_of(1), kNodes * 1000 + 3);
  burst += route_request(names.name_of(3), names.name_of(4));
  ASSERT_TRUE(client.send_all(burst));
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(Json::parse(body).at("dst").as_int(), names.name_of(2));
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 400);
  ASSERT_TRUE(client.read_http_response(status, body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(Json::parse(body).at("src").as_int(), names.name_of(3));
}

TEST_F(RouteServerTest, BinarySessionRoundTripsAndPipelines) {
  const auto& names = manager_.names();
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  std::string session(kWirePreamble, kWirePreambleBytes);
  session += encode_wire_request(WireRequest{names.name_of(5),
                                             names.name_of(11)});
  session += encode_wire_request(WireRequest{names.name_of(5), -999});
  ASSERT_TRUE(client.send_all(session));

  WireResponse response;
  WireParseStatus status = WireParseStatus::kNeedMore;
  while ((status = parse_wire_response(client.buffer(), response)) ==
         WireParseStatus::kNeedMore) {
    ASSERT_TRUE(client.recv_some());
  }
  ASSERT_EQ(status, WireParseStatus::kOk);
  EXPECT_TRUE(response.ok());
  EXPECT_GT(response.roundtrip_length, 0);

  while ((status = parse_wire_response(client.buffer(), response)) ==
         WireParseStatus::kNeedMore) {
    ASSERT_TRUE(client.recv_some());
  }
  ASSERT_EQ(status, WireParseStatus::kOk);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error,
            static_cast<std::uint32_t>(ServingError::kInvalidName));
}

TEST_F(RouteServerTest, TruncatedBinaryFrameClosesWithoutAnAnswer) {
  TestClient client(server_.port());
  ASSERT_TRUE(client.connected());
  std::string session(kWirePreamble, kWirePreambleBytes);
  // A frame claiming 64 payload bytes: not a legal request frame, so the
  // server must drop the session instead of waiting for the rest.
  append_u32le(session, 64);
  session += "partial";
  ASSERT_TRUE(client.send_all(session));
  EXPECT_TRUE(client.closed_by_peer());
  EXPECT_GE(server_.stats().protocol_errors, 1u);
}

// The availability property, asserted end to end: concurrent HTTP clients
// hammer /route while the topology churns and three epochs publish; every
// single query must come back with a definitive answer (200 with ok or
// unreachable -- never a dropped connection, never epoch_unavailable).
// ThreadSanitizer target: CI reruns this under -fsanitize=thread.
TEST(RouteServerChurn, ZeroDroppedQueriesAcrossLiveEpochSwaps) {
  const NodeId n = 48;
  Digraph graph = small_graph(n, 21);
  EpochManager manager("stretch6", small_names(n, 20), Digraph(graph));
  ManagerServingSource source(manager);
  RouteServer server(source);

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 120;
  std::atomic<std::int64_t> answered{0};
  std::atomic<std::int64_t> dropped{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server.port());
      if (!client.connected()) {
        dropped.fetch_add(kRequestsPerClient);
        return;
      }
      Rng rng(static_cast<std::uint64_t>(c) + 100);
      const auto& names = manager.names();
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto src = names.name_of(static_cast<NodeId>(rng.index(n)));
        const auto dst = names.name_of(static_cast<NodeId>(rng.index(n)));
        if (!client.send_all(route_request(src, dst))) {
          dropped.fetch_add(1);
          return;
        }
        int status = 0;
        std::string body;
        if (!client.read_http_response(status, body)) {
          dropped.fetch_add(1);
          return;
        }
        // src == dst draws are a legitimate 400; everything else must be a
        // served answer from SOME epoch.
        if (status != 200 && !(status == 400 && src == dst)) {
          dropped.fetch_add(1);
          return;
        }
        answered.fetch_add(1);
      }
    });
  }

  // Three live swaps racing the clients.
  Rng churn_rng(77);
  ChurnOptions churn;
  for (int swap = 0; swap < 3; ++swap) {
    graph = churn_step(graph, churn, churn_rng);
    manager.rebuild_now(Digraph(graph));
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(dropped.load(), 0);
  EXPECT_EQ(answered.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(manager.epoch(), 3u);
  const RouteServerStats stats = server.stats();
  EXPECT_EQ(stats.errors[static_cast<int>(ServingError::kEpochUnavailable)],
            0u)
      << "an epoch swap must never surface as unavailability";
  EXPECT_EQ(stats.errors[static_cast<int>(ServingError::kSchemeFailure)], 0u);
  server.stop();
}

}  // namespace
}  // namespace rtr
