#include <gtest/gtest.h>

#include "dict/alphabet.h"

namespace rtr {
namespace {

TEST(Alphabet, PerfectPowerUsesExactBase) {
  Alphabet a(64, 3);  // 4^3
  EXPECT_EQ(a.q(), 4);
  EXPECT_EQ(a.k(), 3);
}

TEST(Alphabet, NonPerfectPowerRoundsUp) {
  Alphabet a(100, 2);
  EXPECT_EQ(a.q(), 10);
  Alphabet b(101, 2);
  EXPECT_EQ(b.q(), 11);
  Alphabet c(30, 3);
  EXPECT_EQ(c.q(), 4);  // 3^3=27 < 30 <= 4^3
}

TEST(Alphabet, DigitsMostSignificantFirst) {
  Alphabet a(64, 3);  // q = 4
  // 57 = 3*16 + 2*4 + 1.
  EXPECT_EQ(a.digit(57, 0), 3);
  EXPECT_EQ(a.digit(57, 1), 2);
  EXPECT_EQ(a.digit(57, 2), 1);
  EXPECT_EQ(a.digit(5, 0), 0);  // leading zero padding
}

TEST(Alphabet, PrefixValues) {
  Alphabet a(64, 3);
  EXPECT_EQ(a.prefix_value(57, 0), 0);
  EXPECT_EQ(a.prefix_value(57, 1), 3);
  EXPECT_EQ(a.prefix_value(57, 2), 14);  // 3*4+2
  EXPECT_EQ(a.prefix_value(57, 3), 57);
}

TEST(Alphabet, LcpCountsSharedLeadingDigits) {
  Alphabet a(64, 3);
  EXPECT_EQ(a.lcp(57, 57), 3);
  EXPECT_EQ(a.lcp(57, 56), 2);  // 321 vs 320
  EXPECT_EQ(a.lcp(57, 49), 1);  // 321 vs 301
  EXPECT_EQ(a.lcp(57, 41), 0);  // 321 vs 221
  EXPECT_EQ(a.lcp(57, 5), 0);   // 321 vs 011
}

TEST(Alphabet, BlocksPartitionNames) {
  Alphabet a(100, 2);  // q=10; blocks of 10 consecutive names
  EXPECT_EQ(a.block_of(0), 0);
  EXPECT_EQ(a.block_of(9), 0);
  EXPECT_EQ(a.block_of(10), 1);
  EXPECT_EQ(a.block_of(99), 9);
  EXPECT_EQ(a.relevant_block_count(), 10);
  auto members = a.block_members(3);
  ASSERT_EQ(members.size(), 10u);
  EXPECT_EQ(members.front(), 30);
  EXPECT_EQ(members.back(), 39);
}

TEST(Alphabet, PartialLastBlock) {
  Alphabet a(23, 2);  // q=5; blocks 0..4, last holds 20..22
  EXPECT_EQ(a.relevant_block_count(), 5);
  auto members = a.block_members(4);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members.front(), 20);
  EXPECT_EQ(members.back(), 22);
}

TEST(Alphabet, BlockPrefixValues) {
  Alphabet a(64, 3);  // blocks are 2-digit strings
  // Block 14 = digits (3, 2).
  EXPECT_EQ(a.block_prefix_value(14, 0), 0);
  EXPECT_EQ(a.block_prefix_value(14, 1), 3);
  EXPECT_EQ(a.block_prefix_value(14, 2), 14);
}

TEST(Alphabet, RealizablePrefixCounts) {
  Alphabet a(30, 3);  // q=4, names 0..29
  EXPECT_EQ(a.realizable_prefix_count(0), 1);
  // Length-1 prefixes: names reach 29 = (1,3,1); prefixes 0 and 1.
  EXPECT_EQ(a.realizable_prefix_count(1), 2);
  // Length-2: ceil(30/4) = 8.
  EXPECT_EQ(a.realizable_prefix_count(2), 8);
  EXPECT_EQ(a.realizable_prefix_count(3), 30);
}

TEST(Alphabet, ComposeRespectsNameRange) {
  Alphabet a(30, 3);  // q=4
  EXPECT_EQ(a.compose(0, 3), 3);
  EXPECT_EQ(a.compose(7, 1), 29);
  EXPECT_EQ(a.compose(7, 2), kNoNode);  // 30 does not exist
  EXPECT_EQ(a.compose(7, 4), kNoNode);  // digit out of range
}

TEST(Alphabet, RejectsBadParameters) {
  EXPECT_THROW(Alphabet(0, 2), std::invalid_argument);
  EXPECT_THROW(Alphabet(10, 1), std::invalid_argument);
  EXPECT_THROW(Alphabet(10, 21), std::invalid_argument);
}

TEST(Alphabet, DigitBoundsChecked) {
  Alphabet a(64, 3);
  EXPECT_THROW((void)a.digit(5, 3), std::out_of_range);
  EXPECT_THROW((void)a.digit(5, -1), std::out_of_range);
  EXPECT_THROW((void)a.prefix_value(5, 4), std::out_of_range);
}

}  // namespace
}  // namespace rtr
