// EpochManager: continuous serving across topology churn.
//
// The invariants under test, in paper terms (Sections 1 and 6): the TINN
// naming is fixed once and survives every epoch (name-keyed sessions never
// re-resolve), topology-dependent substrate labels are free to change, and
// a query that started on epoch k completes coherently on epoch k even if
// epoch k+1 is published mid-flight.  The *EpochSwapHammer* tests are the
// ThreadSanitizer targets CI runs with -fsanitize=thread.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/names.h"
#include "core/stretch6.h"
#include "io/snapshot.h"
#include "net/scheme_adapter.h"
#include "graph/churn.h"
#include "graph/generators.h"
#include "rt/metric.h"
#include "serve/epoch_manager.h"
#include "test_support.h"

namespace rtr {
namespace {

Digraph initial_graph(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder g = random_strongly_connected(n, 4.0, 5, rng);
  g.assign_adversarial_ports(rng);
  return g.freeze();
}

NameAssignment fixed_names(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  return NameAssignment::random(n, rng);
}

TEST(EpochManager, ServesImmediatelyAfterConstruction) {
  const NodeId n = 40;
  EpochManager mgr("stretch6", fixed_names(n, 5), initial_graph(n, 6));
  EXPECT_EQ(mgr.epoch(), 0u);
  const auto& names = mgr.names();
  auto res = mgr.roundtrip_by_name(names.name_of(1), names.name_of(7));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(mgr.counters().queries, 1u);
  EXPECT_EQ(mgr.counters().failures, 0u);
}

// The dynamic_names.cpp invariant, promoted to an assertion: the same
// NameAssignment across every epoch, while the substrate's topology-
// dependent R3 labels are free to change.
TEST(EpochManager, NamesAreStableAcrossEpochsWhileR3LabelsChurn) {
  const NodeId n = 48;
  const NameAssignment names = fixed_names(n, 7);
  EpochManager mgr("stretch6", names, initial_graph(n, 8));

  Rng churn_rng(9);
  ChurnOptions churn;
  churn.rehome_nodes = 3;
  std::vector<RtzAddress> r3_of_node0;
  bool any_label_changed = false;
  for (int step = 0; step < 3; ++step) {
    auto epoch = mgr.current();
    // Name stability: every epoch serves the construction-time naming, as
    // the exact same permutation.
    EXPECT_EQ(epoch->handle.names().names(), names.names())
        << "epoch " << epoch->seq;
    EXPECT_EQ(mgr.names().names(), names.names());
    // The substrate's R3 address of (the node named by) name 0 is
    // topology-dependent state; record it per epoch.  Registry-built schemes
    // are wrapped in the template adapter, so unwrap to reach the substrate.
    const auto* adapter =
        dynamic_cast<const TemplateSchemeAdapter<Stretch6Scheme>*>(
            &epoch->handle.scheme());
    ASSERT_NE(adapter, nullptr);
    r3_of_node0.push_back(
        adapter->impl().substrate().address_of_name(names.name_of(0)));
    if (r3_of_node0.size() > 1) {
      const auto& prev = r3_of_node0[r3_of_node0.size() - 2];
      const auto& now = r3_of_node0.back();
      any_label_changed |= now.center_index != prev.center_index ||
                           now.center_label.dfs_in != prev.center_label.dfs_in;
    }
    if (step < 2) {
      mgr.rebuild_now(churn_step(epoch->handle.graph(), churn, churn_rng));
    }
  }
  EXPECT_EQ(mgr.epoch(), 2u);
  // Applications never see R3 labels, so they are ALLOWED to change -- and
  // with re-drawn ports, re-homed nodes, and fresh scheme randomness they
  // do change for this seed set (pinned so a regression that accidentally
  // freezes substrate state across epochs would trip it).
  EXPECT_TRUE(any_label_changed);
}

TEST(EpochManager, InFlightRebuildDoesNotBlockQueries) {
  // Big enough that the background APSP+build cannot finish between two
  // consecutive statements on the control thread (the single-flight probe
  // below would otherwise race a sub-millisecond rebuild).
  const NodeId n = 200;
  const NameAssignment names = fixed_names(n, 11);
  Digraph g0 = initial_graph(n, 12);
  EpochManager mgr("rtz3", names, g0);

  Rng churn_rng(13);
  Digraph g1 = churn_step(g0, ChurnOptions{}, churn_rng);
  ASSERT_TRUE(mgr.begin_rebuild(Digraph(g1)));
  // One rebuild in flight at a time; a benign graph, so even a lost race
  // could not poison last_error.
  EXPECT_FALSE(mgr.begin_rebuild(Digraph(g1)));
  // Queries served while the rebuild runs; every one must succeed.
  std::uint64_t served = 0;
  Rng qrng(14);
  do {
    NodeName a = static_cast<NodeName>(qrng.index(n));
    NodeName b = static_cast<NodeName>(qrng.index(n));
    if (a == b) continue;
    EXPECT_TRUE(mgr.roundtrip_by_name(a, b).ok());
    ++served;
  } while (mgr.rebuild_in_flight());
  mgr.wait_for_rebuild();
  EXPECT_EQ(mgr.last_error(), "");
  EXPECT_EQ(mgr.epoch(), 1u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(mgr.counters().failures, 0u);
}

TEST(EpochManager, FailedRebuildLeavesTheCurrentEpochServing) {
  const NodeId n = 32;
  EpochManager mgr("stretch6", fixed_names(n, 15), initial_graph(n, 16));
  // A disconnected next topology cannot be preprocessed (no APSP): the
  // rebuild fails, the error is readable, epoch 0 keeps serving.
  GraphBuilder disconnected(n);
  disconnected.add_edge(0, 1, 1);
  ASSERT_TRUE(mgr.begin_rebuild(disconnected.freeze()));
  mgr.wait_for_rebuild();
  EXPECT_NE(mgr.last_error(), "");
  EXPECT_EQ(mgr.epoch(), 0u);
  const auto& names = mgr.names();
  EXPECT_TRUE(mgr.roundtrip_by_name(names.name_of(3), names.name_of(9)).ok());
  // And a subsequent good rebuild clears the error.
  mgr.rebuild_now(initial_graph(n, 17));
  EXPECT_EQ(mgr.last_error(), "");
  EXPECT_EQ(mgr.epoch(), 1u);
}

TEST(EpochManager, WarmStartsFromTheSnapshotCacheKeyedByEpoch) {
  const NodeId n = 40;
  const NameAssignment names = fixed_names(n, 19);
  const std::string cache_dir = ::testing::TempDir() + "rtr_epoch_cache";
  (void)std::remove((cache_dir + "/stretch6_epoch0.rtrsnap").c_str());
  (void)std::remove((cache_dir + "/stretch6_epoch1.rtrsnap").c_str());
  ASSERT_EQ(::mkdir(cache_dir.c_str(), 0755) == 0 || errno == EEXIST, true);

  EpochManagerOptions opts;
  opts.cache_dir = cache_dir;
  Digraph g0 = initial_graph(n, 20);
  Rng churn_rng(21);
  Digraph g1 = churn_step(g0, ChurnOptions{}, churn_rng);

  // Cold pass: both epochs built, snapshots saved.
  {
    EpochManager mgr("stretch6", names, g0, opts);
    mgr.rebuild_now(Digraph(g1));
    EXPECT_EQ(mgr.counters().cache_hits, 0u);
  }
  // Warm pass over the same epoch sequence: both epochs load.
  {
    EpochManager mgr("stretch6", names, Digraph(g0), opts);
    EXPECT_TRUE(mgr.current()->loaded_from_cache);
    mgr.rebuild_now(Digraph(g1));
    EXPECT_EQ(mgr.counters().cache_hits, 2u);
    EXPECT_TRUE(mgr.current()->loaded_from_cache);
    const auto res = mgr.roundtrip_by_name(names.name_of(2), names.name_of(8));
    EXPECT_TRUE(res.ok());
  }
  // A DIFFERENT epoch-1 topology against the same cache key: the stale file
  // must be detected (topology mismatch) and rebuilt over, not served.
  {
    EpochManager mgr("stretch6", names, Digraph(g0), opts);
    Digraph other = churn_step(g0, ChurnOptions{}, churn_rng);
    mgr.rebuild_now(std::move(other));
    EXPECT_EQ(mgr.counters().cache_hits, 1u);  // epoch 0 hit, epoch 1 stale
    EXPECT_FALSE(mgr.current()->loaded_from_cache);
    EXPECT_EQ(mgr.counters().failures, 0u);
  }
}

// The tentpole warm-start path: mapped_snapshots mmaps the v2 cache file in
// place instead of decoding an owning copy, and must serve the exact same
// routes.  Behavior (hits, stale detection) is otherwise identical to the
// owned path by construction -- same build_or_load, different load mode.
TEST(EpochManager, MappedWarmStartServesIdenticallyToOwned) {
  const NodeId n = 40;
  const NameAssignment names = fixed_names(n, 31);
  const std::string cache_dir = ::testing::TempDir() + "rtr_epoch_map_cache";
  (void)std::remove((cache_dir + "/stretch6_epoch0.rtrsnap").c_str());
  ASSERT_EQ(::mkdir(cache_dir.c_str(), 0755) == 0 || errno == EEXIST, true);

  EpochManagerOptions opts;
  opts.cache_dir = cache_dir;
  Digraph g0 = initial_graph(n, 32);
  // Cold pass writes the v2 snapshot.
  {
    EpochManager mgr("stretch6", names, Digraph(g0), opts);
    EXPECT_FALSE(mgr.current()->loaded_from_cache);
  }
  // Owned and mapped warm starts answer identically.
  EpochManagerOptions mapped_opts = opts;
  mapped_opts.mapped_snapshots = true;
  EpochManager owned("stretch6", names, Digraph(g0), opts);
  EpochManager mapped("stretch6", names, Digraph(g0), mapped_opts);
  EXPECT_TRUE(owned.current()->loaded_from_cache);
  EXPECT_TRUE(mapped.current()->loaded_from_cache);
  for (NodeId s = 0; s < 10; ++s) {
    for (NodeId t = 10; t < 20; ++t) {
      const auto a = owned.roundtrip_by_name(names.name_of(s), names.name_of(t));
      const auto b = mapped.roundtrip_by_name(names.name_of(s), names.name_of(t));
      ASSERT_EQ(a.ok(), b.ok());
      ASSERT_EQ(a.route.roundtrip_length(), b.route.roundtrip_length());
      ASSERT_EQ(a.route.out_hops, b.route.out_hops);
    }
  }
  EXPECT_EQ(mapped.counters().failures, 0u);
}

// shm_prefix: each cached epoch is also published to a POSIX shared-memory
// object a sibling process can attach with map_snapshot_shm; the manager
// unlinks its objects at destruction.
TEST(EpochManager, ShmPrefixPublishesEpochsForSiblingProcesses) {
  const NodeId n = 40;
  const NameAssignment names = fixed_names(n, 37);
  const std::string cache_dir = ::testing::TempDir() + "rtr_epoch_shm_cache";
  (void)std::remove((cache_dir + "/stretch6_epoch0.rtrsnap").c_str());
  ASSERT_EQ(::mkdir(cache_dir.c_str(), 0755) == 0 || errno == EEXIST, true);

  EpochManagerOptions opts;
  opts.cache_dir = cache_dir;
  opts.shm_prefix = "rtr_test_epoch_" + std::to_string(::getpid());
  std::string shm_name;
  {
    EpochManager mgr("stretch6", names, initial_graph(n, 38), opts);
    if (mgr.counters().shm_published == 0) {
      GTEST_SKIP() << "POSIX shm unavailable in this environment";
    }
    shm_name = mgr.shm_name_for(0);
    // A sibling process would attach exactly like this: zero-copy, and the
    // answers match the manager's own serving path.
    SchemeHandle attached = map_snapshot_shm(shm_name, "stretch6");
    const auto via_mgr = mgr.roundtrip_by_name(names.name_of(3), names.name_of(9));
    const auto via_shm = attached.roundtrip(3, 9);
    EXPECT_EQ(via_mgr.ok(), via_shm.ok());
    EXPECT_EQ(via_mgr.route.roundtrip_length(), via_shm.roundtrip_length());
  }
  // Destruction unlinks: a fresh attach by name must now fail.
  EXPECT_THROW((void)map_snapshot_shm(shm_name, "stretch6"), SnapshotError);
}

// The concurrency acceptance test (and CI's ThreadSanitizer target): four
// query threads hammer name-keyed roundtrips nonstop while the control
// thread swaps >= 3 epochs under them, for EVERY registered scheme.  Zero
// failures allowed: an in-flight query must always see one coherent epoch.
void hammer_across_epoch_swaps(const std::string& scheme_name) {
  const NodeId n = 40;
  const int kSwaps = 3;
  const NameAssignment names = fixed_names(n, 23);
  Digraph g = initial_graph(n, 24);
  EpochManager mgr(scheme_name, names, Digraph(g));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> hammers;
  for (int w = 0; w < 4; ++w) {
    hammers.emplace_back([&, w] {
      Rng rng(100 + static_cast<std::uint64_t>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        NodeName a = static_cast<NodeName>(rng.index(n));
        NodeName b = static_cast<NodeName>(rng.index(n));
        if (a == b) continue;
        if (mgr.roundtrip_by_name(a, b).ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Rng churn_rng(25);
  ChurnOptions churn;
  churn.rehome_nodes = 2;
  for (int swap = 0; swap < kSwaps; ++swap) {
    g = churn_step(g, churn, churn_rng);
    ASSERT_TRUE(mgr.begin_rebuild(Digraph(g)));
    mgr.wait_for_rebuild();
    ASSERT_EQ(mgr.last_error(), "") << scheme_name << " swap " << swap;
  }
  stop.store(true);
  for (auto& t : hammers) t.join();

  EXPECT_EQ(mgr.epoch(), static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(failed.load(), 0u) << scheme_name;
  EXPECT_GT(ok.load(), 0u) << scheme_name;
  EXPECT_EQ(mgr.counters().failures, 0u);
}

class EpochSwapHammer : public ::testing::TestWithParam<std::string> {};

TEST_P(EpochSwapHammer, QueriesSurviveThreeEpochSwaps) {
  hammer_across_epoch_swaps(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EpochSwapHammer,
    ::testing::ValuesIn(SchemeRegistry::global().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rtr
