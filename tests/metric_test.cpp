#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "rt/metric.h"
#include "test_support.h"
#include "util/rng.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class MetricFamilyTest : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(MetricFamilyTest, RoundtripIsSymmetricPositiveAndTriangular) {
  auto [family, n, seed] = GetParam();
  Instance inst = make_instance(family, n, 8, seed);
  const RoundtripMetric& m = *inst.metric;
  const NodeId nn = m.node_count();
  for (NodeId u = 0; u < nn; ++u) {
    EXPECT_EQ(m.r(u, u), 0);
    for (NodeId v = 0; v < nn; ++v) {
      if (u != v) {
        EXPECT_GE(m.r(u, v), 2);  // two arcs, weights >= 1
      }
      EXPECT_EQ(m.r(u, v), m.r(v, u));
    }
  }
  // Triangle inequality on sampled triples (full n^3 is wasteful).
  Rng rng(seed + 100);
  for (int i = 0; i < 500; ++i) {
    auto a = static_cast<NodeId>(rng.index(nn));
    auto b = static_cast<NodeId>(rng.index(nn));
    auto c = static_cast<NodeId>(rng.index(nn));
    EXPECT_LE(m.r(a, c), m.r(a, b) + m.r(b, c));
  }
}

TEST_P(MetricFamilyTest, InitOrderIsATotalOrderStartingAtSelf) {
  auto [family, n, seed] = GetParam();
  Instance inst = make_instance(family, n, 8, seed);
  const RoundtripMetric& m = *inst.metric;
  for (NodeId v = 0; v < m.node_count(); v += 7) {
    auto order = m.init_order(v, inst.names.names());
    ASSERT_EQ(static_cast<NodeId>(order.size()), m.node_count());
    EXPECT_EQ(order[0], v) << "Init_v must start with v (r(v,v)=0)";
    // Non-decreasing in r; ties broken by (d(u,v), name) strictly.
    for (std::size_t i = 1; i < order.size(); ++i) {
      NodeId a = order[i - 1], b = order[i];
      Dist ra = m.r(v, a), rb = m.r(v, b);
      EXPECT_LE(ra, rb);
      if (ra == rb) {
        Dist da = m.d(a, v), db = m.d(b, v);
        EXPECT_LE(da, db);
        if (da == db) {
          EXPECT_LT(inst.names.name_of(a), inst.names.name_of(b));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MetricFamilyTest,
    ::testing::Values(FamilyParam{Family::kRandom, 60, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 48, 3},
                      FamilyParam{Family::kScaleFree, 60, 4},
                      FamilyParam{Family::kBidirected, 50, 5}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

TEST(Metric, RejectsNonStronglyConnectedGraphs) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Digraph g = b.freeze();
  EXPECT_THROW(DenseRoundtripMetric{g}, std::invalid_argument);
}

TEST(Metric, NeighborhoodPrefixSizes) {
  Rng rng(9);
  Digraph g = random_strongly_connected(50, 3.0, 5, rng).freeze();
  DenseRoundtripMetric m(g);
  auto names = NameAssignment::identity(50);
  auto hood = m.neighborhood(7, 10, names.names());
  EXPECT_EQ(hood.size(), 10u);
  EXPECT_EQ(hood[0], 7);
  auto all = m.neighborhood(7, 500, names.names());
  EXPECT_EQ(all.size(), 50u);
}

TEST(Metric, BallContainsExactlyCloseNodes) {
  Rng rng(10);
  Digraph g = random_strongly_connected(50, 3.0, 5, rng).freeze();
  DenseRoundtripMetric m(g);
  Dist radius = m.rt_diameter() / 2;
  auto ball = m.ball(11, radius);
  std::vector<char> in_ball(50, 0);
  for (NodeId v : ball) in_ball[static_cast<std::size_t>(v)] = 1;
  for (NodeId w = 0; w < 50; ++w) {
    EXPECT_EQ(in_ball[static_cast<std::size_t>(w)] != 0, m.r(11, w) <= radius);
  }
}

TEST(Metric, DiameterAndRadiusConsistency) {
  Rng rng(11);
  Digraph g = random_strongly_connected(40, 3.0, 6, rng).freeze();
  DenseRoundtripMetric m(g);
  Dist diam = m.rt_diameter();
  Dist max_rad = 0;
  for (NodeId v = 0; v < 40; ++v) max_rad = std::max(max_rad, m.rt_radius_from(v));
  EXPECT_EQ(diam, max_rad);
  EXPECT_GT(diam, 0);
}

TEST(Metric, InducedRoundtripAtLeastGlobal) {
  Rng rng(12);
  Digraph g = random_strongly_connected(40, 3.0, 6, rng).freeze();
  Digraph rev = g.reversed();
  DenseRoundtripMetric m(g);
  // Mask = a roundtrip ball; induced distances within it are defined and
  // at least the global ones.
  auto members = m.ball(5, m.rt_diameter());
  std::vector<char> mask(40, 0);
  for (NodeId v : members) mask[static_cast<std::size_t>(v)] = 1;
  auto induced = induced_roundtrip_from(g, rev, 5, mask);
  for (NodeId v : members) {
    EXPECT_GE(induced[static_cast<std::size_t>(v)], m.r(5, v));
  }
  EXPECT_EQ(induced[5], 0);
}

}  // namespace
}  // namespace rtr
