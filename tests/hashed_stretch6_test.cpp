// The Section 1.1.2 reduction: routing on self-chosen 64-bit names.
#include <gtest/gtest.h>

#include "core/hashed_stretch6.h"
#include "core/stretch6.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

TEST(ChosenNames, UniqueAndInvertible) {
  Rng rng(1);
  ChosenNames names = ChosenNames::random(200, rng);
  for (NodeId v = 0; v < 200; ++v) {
    EXPECT_EQ(names.id_of(names.of_id(v)), v);
    EXPECT_NE(names.of_id(v), 0u);
  }
  EXPECT_THROW((void)names.id_of(0), std::invalid_argument);
}

TEST(BucketHash, DeterministicAndInRange) {
  Rng rng(2);
  BucketHash h(97, rng);
  Rng name_rng(3);
  ChosenNames names = ChosenNames::random(500, name_rng);
  for (NodeId v = 0; v < 500; ++v) {
    NodeId b1 = h.bucket(names.of_id(v));
    NodeId b2 = h.bucket(names.of_id(v));
    EXPECT_EQ(b1, b2);
    EXPECT_GE(b1, 0);
    EXPECT_LT(b1, 97);
  }
}

TEST(BucketHash, LoadsConcentrate) {
  // Universality: no bucket should collect an outsized share.
  Rng rng(4);
  const NodeId n = 400;
  BucketHash h(n, rng);
  Rng name_rng(5);
  ChosenNames names = ChosenNames::random(n, name_rng);
  std::vector<int> load(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    ++load[static_cast<std::size_t>(h.bucket(names.of_id(v)))];
  }
  int mx = 0;
  for (int l : load) mx = std::max(mx, l);
  EXPECT_LE(mx, 8);  // ~ log n / log log n w.h.p.; 8 is generous at n=400
}

class HashedStretch6Test : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(HashedStretch6Test, DeliversOn64BitNamesWithinStretchSix) {
  auto [family, n, seed] = GetParam();
  Instance inst = make_instance(family, n, 5, seed);
  Rng rng(seed + 500);
  ChosenNames chosen = ChosenNames::random(inst.n(), rng);
  HashedStretch6Scheme scheme(inst.graph, *inst.metric, chosen, rng);
  // Drive the walk manually: make_packet takes a 64-bit chosen name, which
  // the NodeName-based simulate_roundtrip helper cannot carry.
  for (NodeId s = 0; s < inst.n(); s += 2) {
    for (NodeId t = 0; t < inst.n(); t += 3) {
      if (s == t) continue;
      auto h = scheme.make_packet(chosen.of_id(t));
      NodeId at = s;
      Dist out_len = 0, back_len = 0;
      bool ok_out = false, ok_back = false;
      for (int guard = 0; guard < 16 * inst.n(); ++guard) {
        Decision d = scheme.forward(at, h);
        if (d.deliver) {
          ok_out = at == t;
          break;
        }
        const Edge* e = inst.graph.edge_by_port(at, d.port);
        ASSERT_NE(e, nullptr);
        out_len += e->weight;
        at = e->to;
      }
      ASSERT_TRUE(ok_out) << s << "->" << t;
      scheme.prepare_return(h);
      for (int guard = 0; guard < 16 * inst.n(); ++guard) {
        Decision d = scheme.forward(at, h);
        if (d.deliver) {
          ok_back = at == s;
          break;
        }
        const Edge* e = inst.graph.edge_by_port(at, d.port);
        ASSERT_NE(e, nullptr);
        back_len += e->weight;
        at = e->to;
      }
      ASSERT_TRUE(ok_back) << "ack " << t << "->" << s;
      EXPECT_LE(out_len + back_len, 6 * inst.metric->r(s, t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, HashedStretch6Test,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 40, 3}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

TEST(HashedStretch6, ConstantBlowupOverPermutationNames) {
  // The reduction's space claim: 64-bit chosen names cost only a constant
  // factor over the permutation-name scheme on the same instance.
  Instance inst = make_instance(Family::kRandom, 100, 4, 9);
  Rng rng_a(10), rng_b(10);
  Stretch6Scheme base(inst.graph, *inst.metric, inst.names, rng_a);
  ChosenNames chosen = ChosenNames::random(inst.n(), rng_b);
  HashedStretch6Scheme hashed(inst.graph, *inst.metric, chosen, rng_b);
  const double base_bits = static_cast<double>(base.table_stats().max_bits());
  const double hashed_bits =
      static_cast<double>(hashed.table_stats().max_bits());
  EXPECT_LE(hashed_bits, 16.0 * base_bits);
}

}  // namespace
}  // namespace rtr
