// Differential conformance for the sparse roundtrip metric and the parallel
// scheme builders:
//
//  * The lazily-expanded SparseRoundtripMetric must be observationally
//    identical to the dense APSP-backed metric -- distances, init orders,
//    neighborhood prefixes, balls, radii -- on every family and size.
//  * Every registered scheme built on the sparse metric must produce
//    byte-identical snapshots to the same build on the dense metric (the
//    metric is construction-time scaffolding; tables cannot depend on it).
//  * Parallel construction (options["threads"]) must be byte-identical to
//    the serial build for any thread count, on both metric backends.  The
//    ParallelDeterminism suite runs under TSAN in CI, where the sparse
//    metric's per-row locking is exercised by concurrent builder threads.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "io/snapshot_format.h"
#include "net/scheme.h"
#include "rt/metric.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::family_param_name;
using ::rtr::testing::shared_instance;

class SparseMetricTest : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(SparseMetricTest, MatchesDenseMetricObservationally) {
  const auto [family, n, seed] = GetParam();
  const auto inst = shared_instance(family, n, 8, seed);
  const RoundtripMetric& dense = *inst->metric;
  const SparseRoundtripMetric sparse(
      std::make_shared<const Digraph>(inst->graph));

  ASSERT_EQ(sparse.node_count(), dense.node_count());
  EXPECT_EQ(sparse.rt_diameter(), dense.rt_diameter());

  // Sampled sources keep the n=2048 instantiation affordable; every row a
  // scheme would read (init order, neighborhoods, balls) is checked exactly.
  const NodeId stride = std::max<NodeId>(1, n / 64);
  for (NodeId v = 0; v < n; v += stride) {
    EXPECT_EQ(sparse.rt_radius_from(v), dense.rt_radius_from(v)) << "v=" << v;
    EXPECT_EQ(sparse.init_order(v, inst->names.names()),
              dense.init_order(v, inst->names.names()))
        << "v=" << v;
    for (const NodeId size : {NodeId{1}, NodeId{7}, n / 4, n}) {
      EXPECT_EQ(sparse.neighborhood(v, size, inst->names.names()),
                dense.neighborhood(v, size, inst->names.names()))
          << "v=" << v << " size=" << size;
    }
    const Dist rv = dense.rt_radius_from(v);
    for (const Dist radius : {Dist{0}, Dist{1}, rv / 4, rv / 2, rv}) {
      EXPECT_EQ(sparse.ball(v, radius), dense.ball(v, radius))
          << "v=" << v << " radius=" << radius;
    }
    for (NodeId u = 0; u < n; u += 3 * stride + 1) {
      EXPECT_EQ(sparse.d(v, u), dense.d(v, u)) << v << "->" << u;
      EXPECT_EQ(sparse.r(v, u), dense.r(v, u)) << v << "<->" << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SparseMetricTest,
    ::testing::Values(FamilyParam{Family::kRandom, 128, 1},
                      FamilyParam{Family::kGrid, 128, 2},
                      FamilyParam{Family::kRing, 128, 3},
                      FamilyParam{Family::kRandom, 512, 4},
                      FamilyParam{Family::kGrid, 512, 5},
                      FamilyParam{Family::kRing, 512, 6},
                      FamilyParam{Family::kRandom, 2048, 7},
                      FamilyParam{Family::kGrid, 2048, 8},
                      FamilyParam{Family::kRing, 2048, 9}),
    [](const auto& info) { return family_param_name(info.param); });

// Snapshot bytes of a scheme built from a context: the canonical encoding
// makes byte equality the strongest available "same tables" check.
std::vector<std::uint8_t> scheme_snapshot_bytes(const std::string& name,
                                                const BuildContext& ctx) {
  const std::shared_ptr<const Scheme> scheme =
      SchemeRegistry::global().build(name, ctx);
  SnapshotWriter w;
  SchemeRegistry::global().saver(name)(*scheme, w);
  return w.bytes();
}

class SparseSchemeDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SparseSchemeDifferentialTest, SnapshotBytesMatchDenseBuild) {
  const std::string scheme_name = GetParam();
  for (const Family family : {Family::kRandom, Family::kGrid, Family::kRing}) {
    const auto inst = shared_instance(family, 128, 6, 31);
    const auto graph = std::make_shared<const Digraph>(inst->graph);
    const auto sparse = std::make_shared<const SparseRoundtripMetric>(graph);
    const BuildContext dense_ctx =
        BuildContext::wrap(graph, inst->metric, inst->names, 17);
    const BuildContext sparse_ctx =
        BuildContext::wrap(graph, sparse, inst->names, 17);
    EXPECT_EQ(scheme_snapshot_bytes(scheme_name, dense_ctx),
              scheme_snapshot_bytes(scheme_name, sparse_ctx))
        << scheme_name << " on " << family_name(family)
        << ": sparse-metric build diverged from the dense build";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SparseSchemeDifferentialTest,
                         ::testing::ValuesIn(SchemeRegistry::global().names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SparseMetricMemory, ResidentRowsStaySublinearAfterSchemeBuild) {
  // Regression for the covered-radius blow-up: certifying the nearest-center
  // scan through per-node rows forced them to cover out to the centers,
  // which on the expander family meant near-full rows (~0.9 n entries per
  // node).  With the batch nearest_all sweeps and the budget-pruned ball
  // search, resident rows track roundtrip-ball sizes -- O~(sqrt(n ln n))
  // entries per node -- which is the whole memory story of the sparse
  // backend.  The budget has ~4x headroom over the measured value and sits
  // ~5x below the pre-fix failure mode.
  const NodeId n = 1024;
  const auto inst = shared_instance(Family::kRandom, n, 8, 77);
  const auto graph = std::make_shared<const Digraph>(inst->graph);
  const auto sparse = std::make_shared<const SparseRoundtripMetric>(graph);
  const BuildContext ctx = BuildContext::wrap(graph, sparse, inst->names, 17);
  (void)SchemeRegistry::global().build("rtz3", ctx);
  const double per_node =
      static_cast<double>(sparse->cached_entries()) / static_cast<double>(n);
  const double budget =
      8.0 * std::sqrt(static_cast<double>(n) * std::log(static_cast<double>(n)));
  EXPECT_LE(per_node, budget)
      << "resident sparse rows average " << per_node
      << " entries/node after an rtz3 build; sublinear budget is " << budget;
}

TEST(SparseMetricHint, PreparedNeighborhoodsMatchUnpreparedAnswers) {
  // Regression for the neighborhood budget ladder: prepare_neighborhoods
  // publishes a pilot radius that redirects expand_to_count's probe budgets
  // (one near-critical probe instead of a doubling ladder whose overshoot
  // budgets explore near-whole-graph one-directional balls).  The hint is a
  // pure performance channel: every neighborhood prefix, distance, and ball
  // must be identical to a metric that never saw the hint, including on rows
  // left warm by earlier pair queries (the bench's shared-metric shape).
  const NodeId n = 512;
  const auto inst = shared_instance(Family::kRandom, n, 8, 21);
  const auto graph = std::make_shared<const Digraph>(inst->graph);
  const SparseRoundtripMetric hinted(graph);
  const SparseRoundtripMetric plain(graph);
  const NodeId q = static_cast<NodeId>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  // Warm a few rows the way the query phase does before the hood pass.
  for (NodeId v = 0; v < n; v += 97) {
    (void)hinted.r(v, (v + n / 2) % n);
  }
  hinted.prepare_neighborhoods(q, 1);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(hinted.neighborhood(v, q, inst->names.names()),
              plain.neighborhood(v, q, inst->names.names()))
        << "v=" << v;
  }
  for (NodeId v = 0; v < n; v += 13) {
    EXPECT_EQ(hinted.ball(v, 3 * hinted.r(v, (v + 1) % n)),
              plain.ball(v, 3 * plain.r(v, (v + 1) % n)))
        << "v=" << v;
  }
}

class ParallelDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelDeterminismTest, SnapshotBytesMatchSerialForAnyThreadCount) {
  const std::string scheme_name = GetParam();
  const auto inst = shared_instance(Family::kRandom, 128, 6, 42);
  const auto graph = std::make_shared<const Digraph>(inst->graph);
  const auto sparse = std::make_shared<const SparseRoundtripMetric>(graph);
  const auto bytes_with = [&](std::shared_ptr<const RoundtripMetric> metric,
                              const std::string& threads) {
    const BuildContext ctx = BuildContext::wrap(graph, std::move(metric),
                                                inst->names, 23,
                                                {{"threads", threads}});
    return scheme_snapshot_bytes(scheme_name, ctx);
  };
  const std::vector<std::uint8_t> serial = bytes_with(inst->metric, "1");
  for (const char* threads : {"2", "5", "8"}) {
    EXPECT_EQ(bytes_with(inst->metric, threads), serial)
        << scheme_name << " threads=" << threads << " (dense metric)";
  }
  // The sparse metric adds concurrent lazy row expansion under the builder
  // threads (per-row mutexes; TSAN watches this instantiation in CI).
  EXPECT_EQ(bytes_with(sparse, "4"), serial)
      << scheme_name << " threads=4 (sparse metric)";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ParallelDeterminismTest,
                         ::testing::ValuesIn(SchemeRegistry::global().names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rtr
