#include <gtest/gtest.h>

#include "net/simulator.h"
#include "rtz/hierarchy_label_scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

struct HlParam {
  Family family;
  NodeId n;
  int k;
  std::uint64_t seed;
};

class HierarchyLabelTest : public ::testing::TestWithParam<HlParam> {
 protected:
  void Build() {
    const auto& p = GetParam();
    inst_ = make_instance(p.family, p.n, 4, p.seed);
    HierarchyLabelScheme::Options opts;
    opts.k = p.k;
    scheme_ = std::make_unique<HierarchyLabelScheme>(inst_.graph, *inst_.metric,
                                                     inst_.names, opts);
  }
  Instance inst_;
  std::unique_ptr<HierarchyLabelScheme> scheme_;
};

TEST_P(HierarchyLabelTest, AllPairsDeliverWithinBound) {
  Build();
  const double bound = scheme_->stretch_bound();  // 8(2k-1)
  for (NodeId s = 0; s < inst_.n(); ++s) {
    for (NodeId t = 0; t < inst_.n(); ++t) {
      if (s == t) continue;
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok()) << s << "->" << t;
      EXPECT_LE(static_cast<double>(res.roundtrip_length()),
                bound * static_cast<double>(inst_.metric->r(s, t)));
    }
  }
}

TEST_P(HierarchyLabelTest, LabelsCoverEveryLevel) {
  Build();
  for (NodeId v = 0; v < inst_.n(); ++v) {
    const HierarchyLabel& label = scheme_->label_of(v);
    EXPECT_EQ(static_cast<std::int32_t>(label.home_tree.size()),
              scheme_->hierarchy().level_count());
    EXPECT_EQ(label.home_address.size(), label.home_tree.size());
    EXPECT_EQ(label.name, inst_.names.name_of(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierarchyLabelTest,
    ::testing::Values(HlParam{Family::kRandom, 48, 2, 1},
                      HlParam{Family::kRandom, 48, 3, 2},
                      HlParam{Family::kGrid, 36, 3, 3},
                      HlParam{Family::kRing, 40, 2, 4}),
    [](const ::testing::TestParamInfo<HlParam>& info) {
      return family_name(info.param.family).substr(0, 4) + "_n" +
             std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(HierarchyLabel, SelfDelivery) {
  Instance inst = make_instance(Family::kRandom, 24, 3, 9);
  HierarchyLabelScheme scheme(inst.graph, *inst.metric, inst.names);
  auto res = simulate_roundtrip(inst.graph, scheme, 3, 3, inst.names.name_of(3));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.roundtrip_length(), 0);
}

}  // namespace
}  // namespace rtr
