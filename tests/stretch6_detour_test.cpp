// Section 2.2's remarked variant: "the algorithm could operate by routing
// from s to w and back to s, before routing to t and back.  This would be
// slightly simpler to analyze and would result in the same worst-case
// stretch.  However it can result in longer paths."
//
// We test exactly those three claims: correctness, the same <= 6 bound, and
// (on aggregate) paths at least as long as the direct variant's.
#include <gtest/gtest.h>

#include "core/stretch6.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::FamilyParam;
using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class Stretch6DetourTest : public ::testing::TestWithParam<FamilyParam> {
 protected:
  void Build() {
    auto [family, n, seed] = GetParam();
    inst_ = make_instance(family, n, 5, seed);
    // Identical substrate randomness for a fair direct-vs-detour comparison.
    Rng rng_a(seed + 99), rng_b(seed + 99);
    Stretch6Scheme::Options direct_opts;
    direct_ = std::make_unique<Stretch6Scheme>(inst_.graph, *inst_.metric,
                                               inst_.names, rng_a, direct_opts);
    Stretch6Scheme::Options detour_opts;
    detour_opts.detour_via_source = true;
    detour_ = std::make_unique<Stretch6Scheme>(inst_.graph, *inst_.metric,
                                               inst_.names, rng_b, detour_opts);
  }
  Instance inst_;
  std::unique_ptr<Stretch6Scheme> direct_;
  std::unique_ptr<Stretch6Scheme> detour_;
};

TEST_P(Stretch6DetourTest, DetourDeliversWithinStretchSix) {
  Build();
  for (NodeId s = 0; s < inst_.n(); ++s) {
    for (NodeId t = 0; t < inst_.n(); ++t) {
      if (s == t) continue;
      auto res = simulate_roundtrip(inst_.graph, *detour_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok()) << "undelivered " << s << "->" << t;
      EXPECT_LE(res.roundtrip_length(), 6 * inst_.metric->r(s, t));
    }
  }
}

TEST_P(Stretch6DetourTest, DetourNeverBeatsDirectInAggregate) {
  Build();
  Dist direct_total = 0, detour_total = 0;
  for (NodeId s = 0; s < inst_.n(); s += 2) {
    for (NodeId t = 0; t < inst_.n(); t += 3) {
      if (s == t) continue;
      auto res_direct = simulate_roundtrip(inst_.graph, *direct_, s, t,
                                           inst_.names.name_of(t));
      auto res_detour = simulate_roundtrip(inst_.graph, *detour_, s, t,
                                           inst_.names.name_of(t));
      ASSERT_TRUE(res_direct.ok());
      ASSERT_TRUE(res_detour.ok());
      direct_total += res_direct.roundtrip_length();
      detour_total += res_detour.roundtrip_length();
    }
  }
  EXPECT_LE(direct_total, detour_total)
      << "the paper predicts the detour variant yields longer paths";
}

INSTANTIATE_TEST_SUITE_P(
    Families, Stretch6DetourTest,
    ::testing::Values(FamilyParam{Family::kRandom, 48, 1},
                      FamilyParam{Family::kGrid, 36, 2},
                      FamilyParam{Family::kRing, 40, 3}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

}  // namespace
}  // namespace rtr
