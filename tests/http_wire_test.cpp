// Protocol-layer unit tests: the HTTP/1.1 request parser and the rtr-wire/1
// binary framing, exercised directly on byte buffers (no sockets).  The
// golden bytes here must stay in lockstep with docs/protocol.md.
#include <gtest/gtest.h>

#include <string>

#include "net/serving.h"
#include "server/http.h"
#include "server/wire.h"

namespace rtr {
namespace {

// ------------------------------------------------------------------ HTTP ---

TEST(HttpParser, GoldenRouteRequest) {
  std::string buffer =
      "GET /route?src=3&dst=17 HTTP/1.1\r\nHost: rtr\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(parse_http_request(buffer, request), HttpParseStatus::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/route");
  ASSERT_EQ(request.query.size(), 2u);
  EXPECT_EQ(request.query[0].first, "src");
  EXPECT_EQ(request.query[0].second, "3");
  EXPECT_EQ(request.query[1].first, "dst");
  EXPECT_EQ(request.query[1].second, "17");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_TRUE(buffer.empty()) << "head must be consumed on kOk";
}

TEST(HttpParser, NeedMoreOnPartialHead) {
  std::string buffer = "GET /healthz HTTP/1.1\r\nHost: rtr\r\n";
  HttpRequest request;
  EXPECT_EQ(parse_http_request(buffer, request), HttpParseStatus::kNeedMore);
  EXPECT_EQ(buffer, "GET /healthz HTTP/1.1\r\nHost: rtr\r\n")
      << "buffer untouched until a full head arrives";
  buffer += "\r\n";
  EXPECT_EQ(parse_http_request(buffer, request), HttpParseStatus::kOk);
  EXPECT_EQ(request.path, "/healthz");
}

TEST(HttpParser, PipelinedRequestsParseOneAtATime) {
  std::string buffer =
      "GET /route?src=1&dst=2 HTTP/1.1\r\n\r\n"
      "GET /stats HTTP/1.1\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(parse_http_request(buffer, request), HttpParseStatus::kOk);
  EXPECT_EQ(request.path, "/route");
  ASSERT_EQ(parse_http_request(buffer, request), HttpParseStatus::kOk);
  EXPECT_EQ(request.path, "/stats");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_EQ(parse_http_request(buffer, request), HttpParseStatus::kOk);
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_FALSE(request.keep_alive) << "Connection: close must be honored";
  EXPECT_TRUE(buffer.empty());
}

TEST(HttpParser, ConnectionHeaderIsCaseInsensitive) {
  std::string buffer = "GET / HTTP/1.1\r\nCONNECTION:  Close\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(parse_http_request(buffer, request), HttpParseStatus::kOk);
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpParser, Http10DefaultsToCloseUnlessKeepAlive) {
  std::string closing = "GET / HTTP/1.0\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(parse_http_request(closing, request), HttpParseStatus::kOk);
  EXPECT_FALSE(request.keep_alive);

  std::string keeping = "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
  ASSERT_EQ(parse_http_request(keeping, request), HttpParseStatus::kOk);
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpParser, PercentDecodingAppliesToPathAndQuery) {
  std::string buffer = "GET /rou%74e?s%72c=4&dst=%35 HTTP/1.1\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(parse_http_request(buffer, request), HttpParseStatus::kOk);
  EXPECT_EQ(request.path, "/route");
  ASSERT_EQ(request.query.size(), 2u);
  EXPECT_EQ(request.query[0].first, "src");
  EXPECT_EQ(request.query[0].second, "4");
  EXPECT_EQ(request.query[1].second, "5");
}

TEST(HttpParser, RejectsMalformedRequestLines) {
  for (const char* bad : {
           "\r\n\r\n",                       // empty request line
           "GET\r\n\r\n",                    // no URI
           "GET /route\r\n\r\n",             // no version
           "GET route HTTP/1.1\r\n\r\n",     // URI without leading slash
           "GET /route HTTP/2.0\r\n\r\n",    // unsupported version
       }) {
    std::string buffer = bad;
    HttpRequest request;
    EXPECT_EQ(parse_http_request(buffer, request),
              HttpParseStatus::kBadRequest)
        << "input: " << bad;
  }
}

TEST(HttpParser, OversizedRequestLineIs414) {
  HttpLimits limits;
  limits.max_request_line = 64;
  std::string buffer =
      "GET /route?src=1&dst=" + std::string(100, '9') + " HTTP/1.1\r\n\r\n";
  HttpRequest request;
  EXPECT_EQ(parse_http_request(buffer, request, limits),
            HttpParseStatus::kUriTooLong);
}

TEST(HttpParser, OversizedHeadIs431) {
  HttpLimits limits;
  limits.max_head_bytes = 128;
  std::string buffer = "GET / HTTP/1.1\r\nX-Pad: " +
                       std::string(200, 'x') + "\r\n\r\n";
  HttpRequest request;
  EXPECT_EQ(parse_http_request(buffer, request, limits),
            HttpParseStatus::kHeadersTooLarge);
}

TEST(HttpParser, LimitsApplyEvenBeforeHeadCompletes) {
  // An attacker streaming an endless request line must be cut off without
  // waiting for CRLFCRLF that never comes.
  HttpLimits limits;
  limits.max_request_line = 64;
  std::string buffer = "GET /" + std::string(200, 'a');  // no CRLF yet
  HttpRequest request;
  EXPECT_EQ(parse_http_request(buffer, request, limits),
            HttpParseStatus::kUriTooLong);
}

TEST(HttpResponse, GoldenFormatting) {
  const std::string response = make_http_response(200, "{}", true);
  EXPECT_EQ(response,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: 2\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
            "{}");
  EXPECT_NE(make_http_response(404, "{}", false).find("Connection: close"),
            std::string::npos);
}

TEST(HttpResponse, StatusReasonsCoverTheServedCodes) {
  EXPECT_STREQ(http_status_reason(200), "OK");
  EXPECT_STREQ(http_status_reason(400), "Bad Request");
  EXPECT_STREQ(http_status_reason(404), "Not Found");
  EXPECT_STREQ(http_status_reason(405), "Method Not Allowed");
  EXPECT_STREQ(http_status_reason(414), "URI Too Long");
  EXPECT_STREQ(http_status_reason(431), "Request Header Fields Too Large");
  EXPECT_STREQ(http_status_reason(500), "Internal Server Error");
  EXPECT_STREQ(http_status_reason(503), "Service Unavailable");
}

TEST(PercentDecode, MalformedEscapesPassThrough) {
  EXPECT_EQ(percent_decode("%4"), "%4");
  EXPECT_EQ(percent_decode("%zz"), "%zz");
  EXPECT_EQ(percent_decode("a%20b"), "a b");
}

// ------------------------------------------------------------------ wire ---

TEST(Wire, GoldenRequestFrame) {
  const std::string frame = encode_wire_request(WireRequest{3, 258});
  // u32le len=8 | i32le src=3 | i32le dst=258 (0x102).
  const unsigned char expect[] = {8, 0, 0, 0, 3, 0, 0, 0, 2, 1, 0, 0};
  ASSERT_EQ(frame.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(frame[i]), expect[i]) << "byte " << i;
  }
}

TEST(Wire, RequestRoundTrip) {
  std::string buffer = encode_wire_request(WireRequest{-5, 1 << 30});
  WireRequest out;
  ASSERT_EQ(parse_wire_request(buffer, out), WireParseStatus::kOk);
  EXPECT_EQ(out.src, -5);
  EXPECT_EQ(out.dst, 1 << 30);
  EXPECT_TRUE(buffer.empty());
}

TEST(Wire, ResponseRoundTripCarriesTheServingResult) {
  RouteResult route;
  route.delivered_out = true;
  route.delivered_back = true;
  route.out_length = 41;
  route.back_length = 59;
  route.out_hops = 3;
  route.back_hops = 4;
  route.max_header_bits = 777;
  ServingResult served = ServingResult::success(route, 12);

  std::string buffer = encode_wire_response(served);
  ASSERT_EQ(buffer.size(), 4 + kWireResponsePayloadBytes);
  WireResponse out;
  ASSERT_EQ(parse_wire_response(buffer, out), WireParseStatus::kOk);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.epoch, 12u);
  EXPECT_EQ(out.roundtrip_length, 100);
  EXPECT_EQ(out.out_hops, 3);
  EXPECT_EQ(out.back_hops, 4);
  EXPECT_EQ(out.max_header_bits, 777);
}

TEST(Wire, ErrorResponseCarriesTheTypedCode) {
  std::string buffer = encode_wire_response(
      ServingResult::failure(ServingError::kInvalidName, "unknown name 9"));
  WireResponse out;
  ASSERT_EQ(parse_wire_response(buffer, out), WireParseStatus::kOk);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error,
            static_cast<std::uint32_t>(ServingError::kInvalidName));
}

TEST(Wire, TruncatedFramesAskForMoreWithoutConsuming) {
  const std::string full = encode_wire_request(WireRequest{1, 2});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::string buffer = full.substr(0, cut);
    WireRequest out;
    EXPECT_EQ(parse_wire_request(buffer, out), WireParseStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(buffer.size(), cut) << "truncated frame must not be consumed";
  }
}

TEST(Wire, BadLengthIsMalformed) {
  std::string buffer;
  append_u32le(buffer, 12);  // request frames are exactly 8 payload bytes
  buffer.append(12, '\0');
  WireRequest out;
  EXPECT_EQ(parse_wire_request(buffer, out), WireParseStatus::kMalformed);

  std::string response;
  append_u32le(response, kWireResponsePayloadBytes - 1);
  response.append(kWireResponsePayloadBytes - 1, '\0');
  WireResponse rout;
  EXPECT_EQ(parse_wire_response(response, rout), WireParseStatus::kMalformed);
}

TEST(Wire, PipelinedFramesParseInOrder)
{
  std::string buffer = encode_wire_request(WireRequest{1, 2});
  buffer += encode_wire_request(WireRequest{3, 4});
  WireRequest out;
  ASSERT_EQ(parse_wire_request(buffer, out), WireParseStatus::kOk);
  EXPECT_EQ(out.src, 1);
  ASSERT_EQ(parse_wire_request(buffer, out), WireParseStatus::kOk);
  EXPECT_EQ(out.src, 3);
  EXPECT_EQ(out.dst, 4);
  EXPECT_TRUE(buffer.empty());
}

TEST(Wire, LittleEndianHelpersRoundTrip) {
  std::string buffer;
  append_u32le(buffer, 0xDEADBEEFu);
  append_u64le(buffer, 0x0123456789ABCDEFull);
  EXPECT_EQ(read_u32le(buffer, 0), 0xDEADBEEFu);
  EXPECT_EQ(read_u64le(buffer, 4), 0x0123456789ABCDEFull);
}

}  // namespace
}  // namespace rtr
