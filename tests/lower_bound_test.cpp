#include <gtest/gtest.h>

#include "baseline/full_table.h"
#include "core/lower_bound.h"
#include "core/stretch6.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;

TEST(LowerBound, GadgetFamilyIsDistanceSymmetric) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    Digraph g = lower_bound_gadget(32, 0.4, rng).freeze();
    DenseRoundtripMetric m(g);
    EXPECT_TRUE(is_distance_symmetric(m));
    // r(u,v) = 2 d(u,v) in the bidirected regime.
    for (NodeId u = 0; u < g.node_count(); u += 3) {
      for (NodeId v = 0; v < g.node_count(); v += 5) {
        EXPECT_EQ(m.r(u, v), 2 * m.d(u, v));
      }
    }
  }
}

TEST(LowerBound, AsymmetricFamilyIsNot) {
  Rng rng(4);
  Digraph g = ring_with_chords(20, 5, 3, rng).freeze();
  DenseRoundtripMetric m(g);
  EXPECT_FALSE(is_distance_symmetric(m));
}

TEST(LowerBound, FullTableBeatsTheBoundByPayingLinearSpace) {
  // The Theorem 15 frontier: stretch < 2 is achievable -- with Omega(n)
  // tables.  The baseline gets stretch 1 and linear tables on the gadget.
  Rng rng(5);
  GraphBuilder b = lower_bound_gadget(24, 0.4, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  auto names = NameAssignment::random(g.node_count(), rng);
  DenseRoundtripMetric m(g);
  FullTableScheme scheme(g, names);
  for (NodeId s = 0; s < g.node_count(); s += 2) {
    for (NodeId t = 0; t < g.node_count(); t += 3) {
      auto res = simulate_roundtrip(g, scheme, s, t, names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_EQ(res.roundtrip_length(), m.r(s, t));
    }
  }
  EXPECT_EQ(scheme.table_stats().max_entries(), g.node_count() - 1);
}

TEST(LowerBound, CompactSchemeStillMeetsItsUpperBoundOnGadget) {
  // The gadget does not break the compact schemes -- they just cannot go
  // below stretch 2 in the worst case.  Verify the stretch-6 scheme's upper
  // bound holds here too (the lower bound speaks to any scheme's *worst*
  // pair, not to feasibility).
  Rng rng(6);
  GraphBuilder b = lower_bound_gadget(24, 0.4, rng);
  b.assign_adversarial_ports(rng);
  const Digraph g = b.freeze();
  auto names = NameAssignment::random(g.node_count(), rng);
  DenseRoundtripMetric m(g);
  Rng scheme_rng(7);
  Stretch6Scheme scheme(g, m, names, scheme_rng);
  double worst = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      auto res = simulate_roundtrip(g, scheme, s, t, names.name_of(t));
      ASSERT_TRUE(res.ok());
      double stretch = static_cast<double>(res.roundtrip_length()) /
                       static_cast<double>(m.r(s, t));
      worst = std::max(worst, stretch);
      EXPECT_LE(stretch, 6.0);
    }
  }
  EXPECT_GE(worst, 1.0);
}

}  // namespace
}  // namespace rtr
