#include <gtest/gtest.h>

#include <cmath>

#include "core/polystretch.h"
#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

struct PolyParam {
  Family family;
  NodeId n;
  int k;
  std::uint64_t seed;
};

class PolyStretchTest : public ::testing::TestWithParam<PolyParam> {
 protected:
  void Build() {
    const auto& p = GetParam();
    inst_ = make_instance(p.family, p.n, 4, p.seed);
    PolyStretchScheme::Options opts;
    opts.k = p.k;
    scheme_ = std::make_unique<PolyStretchScheme>(inst_.graph, *inst_.metric,
                                                  inst_.names, opts);
  }
  Instance inst_;
  std::unique_ptr<PolyStretchScheme> scheme_;
};

TEST_P(PolyStretchTest, AllPairsDeliverWithinPolynomialBound) {
  Build();
  const double bound = scheme_->stretch_bound();  // 8k^2 + 4k - 4
  for (NodeId s = 0; s < inst_.n(); ++s) {
    for (NodeId t = 0; t < inst_.n(); ++t) {
      if (s == t) continue;
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok()) << "undelivered " << s << "->" << t;
      EXPECT_LE(static_cast<double>(res.roundtrip_length()),
                bound * static_cast<double>(inst_.metric->r(s, t)))
          << s << "->" << t;
    }
  }
}

TEST_P(PolyStretchTest, HeadersStayPolylog) {
  Build();
  const double log_n = std::log2(static_cast<double>(inst_.n())) + 1;
  for (NodeId s = 0; s < inst_.n(); s += 4) {
    for (NodeId t = 0; t < inst_.n(); t += 5) {
      auto res = simulate_roundtrip(inst_.graph, *scheme_, s, t,
                                    inst_.names.name_of(t));
      ASSERT_TRUE(res.ok());
      EXPECT_LE(static_cast<double>(res.max_header_bits), 100 * log_n * log_n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolyStretchTest,
    ::testing::Values(PolyParam{Family::kRandom, 48, 2, 1},
                      PolyParam{Family::kRandom, 48, 3, 2},
                      PolyParam{Family::kGrid, 36, 3, 3},
                      PolyParam{Family::kRing, 40, 2, 4},
                      PolyParam{Family::kScaleFree, 48, 3, 5},
                      PolyParam{Family::kBidirected, 40, 4, 6}),
    [](const ::testing::TestParamInfo<PolyParam>& info) {
      return family_name(info.param.family).substr(0, 4) + "_n" +
             std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(PolyStretch, SelfDelivery) {
  Instance inst = make_instance(Family::kRandom, 30, 3, 11);
  PolyStretchScheme scheme(inst.graph, *inst.metric, inst.names);
  auto res = simulate_roundtrip(inst.graph, scheme, 8, 8, inst.names.name_of(8));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.roundtrip_length(), 0);
}

TEST(PolyStretch, StretchBoundFormula) {
  Instance inst = make_instance(Family::kRandom, 30, 3, 12);
  PolyStretchScheme::Options opts;
  opts.k = 3;
  PolyStretchScheme scheme(inst.graph, *inst.metric, inst.names, opts);
  EXPECT_DOUBLE_EQ(scheme.stretch_bound(), 8 * 9 + 12 - 4);  // 80
}

TEST(PolyStretch, CloseAndFarPairsUseDifferentLevels) {
  // Record paths: close pairs should be resolved without visiting many
  // nodes, far pairs escalate.  We only assert the sanity direction: hops
  // for the closest pair do not exceed hops for the farthest pair by more
  // than the escalation overhead allows.
  Instance inst = make_instance(Family::kRing, 48, 1, 13);
  PolyStretchScheme scheme(inst.graph, *inst.metric, inst.names);
  NodeId close_t = kNoNode, far_t = kNoNode;
  Dist close_r = kInfDist, far_r = 0;
  for (NodeId t = 1; t < inst.n(); ++t) {
    Dist r = inst.metric->r(0, t);
    if (r < close_r) {
      close_r = r;
      close_t = t;
    }
    if (r > far_r) {
      far_r = r;
      far_t = t;
    }
  }
  auto res_close = simulate_roundtrip(inst.graph, scheme, 0, close_t,
                                      inst.names.name_of(close_t));
  auto res_far = simulate_roundtrip(inst.graph, scheme, 0, far_t,
                                    inst.names.name_of(far_t));
  ASSERT_TRUE(res_close.ok());
  ASSERT_TRUE(res_far.ok());
  EXPECT_LT(res_close.roundtrip_length(), res_far.roundtrip_length());
}

}  // namespace
}  // namespace rtr
