// Structural corruption of the v2 relocatable arena must surface as typed
// exceptions on the ZERO-COPY path: a mapped view trusts offsets and counts
// from the file, so every way those can lie -- misalignment, out-of-bounds,
// overlap, CRC-valid-but-inconsistent headers -- has to be rejected during
// framing validation, before any table is dereferenced.
//
// The tampering helpers re-stamp the directory and header CRCs after each
// mutation: these tests target the STRUCTURAL validators, and a checksum
// error would mask the check actually under test.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "io/arena.h"
#include "io/snapshot.h"
#include "net/scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::shared_instance;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

constexpr std::size_t kHeaderOffset = kArenaMagicSize + 8;

ArenaFileHeader header_of(const std::vector<std::uint8_t>& bytes) {
  ArenaFileHeader h;
  std::memcpy(&h, bytes.data() + kHeaderOffset, sizeof h);
  return h;
}

std::vector<ArenaDirEntry> dir_of(const std::vector<std::uint8_t>& bytes,
                                  const ArenaFileHeader& h) {
  std::vector<ArenaDirEntry> dir(h.dir_count);
  std::memcpy(dir.data(), bytes.data() + h.dir_offset,
              h.dir_count * sizeof(ArenaDirEntry));
  return dir;
}

/// Writes back a (possibly mutated) directory and re-stamps dir + header
/// CRCs, so only the mutation under test is observable to the loader.
void restamp(std::vector<std::uint8_t>& bytes, ArenaFileHeader h,
             const std::vector<ArenaDirEntry>& dir) {
  std::memcpy(bytes.data() + h.dir_offset, dir.data(),
              dir.size() * sizeof(ArenaDirEntry));
  h.dir_crc = crc32(bytes.data() + h.dir_offset,
                    dir.size() * sizeof(ArenaDirEntry));
  h.header_crc = 0;
  h.header_crc = crc32(reinterpret_cast<const std::uint8_t*>(&h), sizeof h);
  std::memcpy(bytes.data() + kHeaderOffset, &h, sizeof h);
}

class ArenaCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inst_ = shared_instance(Family::kRandom, 32, 3, 7);
    path_ = ::testing::TempDir() + "rtr_arena_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".rtrsnap";
    const BuildContext ctx = inst_->context(9);
    SchemeHandle built(ctx.graph, ctx.names,
                       SchemeRegistry::global().build("stretch6", ctx));
    save_snapshot(path_, "stretch6", built);
    pristine_ = read_file(path_);
    header_ = header_of(pristine_);
    dir_ = dir_of(pristine_, header_);
    ASSERT_GE(dir_.size(), 3u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Index of a named section in the pristine directory.
  std::size_t index_of(const std::string& name) const {
    for (std::size_t i = 0; i < dir_.size(); ++i) {
      if (dir_[i].name_str() == name) return i;
    }
    ADD_FAILURE() << "section not found: " << name;
    return 0;
  }

  std::shared_ptr<const ::rtr::testing::Instance> inst_;
  std::string path_;
  std::vector<std::uint8_t> pristine_;
  ArenaFileHeader header_{};
  std::vector<ArenaDirEntry> dir_;
};

TEST_F(ArenaCorruptionTest, PristineFileMapsAndServes) {
  const SchemeHandle mapped = map_snapshot(path_, "stretch6");
  EXPECT_EQ(mapped.graph().node_count(), inst_->n());
  const RouteResult res = mapped.roundtrip(0, 5);
  EXPECT_TRUE(res.ok());
}

TEST_F(ArenaCorruptionTest, MisalignedSectionOffsetIsTyped) {
  // Nudging a section off the 8-byte grid would hand the views misaligned
  // element pointers -- UB the validator must refuse up front.
  auto bytes = pristine_;
  auto dir = dir_;
  dir[1].offset += 4;
  restamp(bytes, header_, dir);
  write_file(path_, bytes);
  EXPECT_THROW((void)map_snapshot(path_, "stretch6"), SnapshotArenaError);
  EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotArenaError);
}

TEST_F(ArenaCorruptionTest, SectionOffsetPastRegionEndIsTyped) {
  auto bytes = pristine_;
  auto dir = dir_;
  // Aligned (so alignment is not what fires) but entirely past the mapping.
  dir[1].offset = (bytes.size() + kArenaAlign) & ~(kArenaAlign - 1);
  restamp(bytes, header_, dir);
  write_file(path_, bytes);
  EXPECT_THROW((void)map_snapshot(path_, "stretch6"), SnapshotArenaError);
}

TEST_F(ArenaCorruptionTest, SectionRunningOffTheEndIsTyped) {
  // In-bounds offset whose count*elem_size runs past EOF: the other way an
  // out-of-bounds read hides.
  auto bytes = pristine_;
  auto dir = dir_;
  dir[1].count = (bytes.size() / dir[1].elem_size) + 1;
  restamp(bytes, header_, dir);
  write_file(path_, bytes);
  EXPECT_THROW((void)map_snapshot(path_, "stretch6"), SnapshotArenaError);
}

TEST_F(ArenaCorruptionTest, OverlappingSectionsAreTyped) {
  // Two directory entries claiming the same bytes: individually in bounds
  // and aligned, so only the overlap scan can catch it.
  auto bytes = pristine_;
  auto dir = dir_;
  dir[1].offset = dir[0].offset;
  dir[1].count = dir[0].count;
  dir[1].elem_size = dir[0].elem_size;
  dir[1].crc = dir[0].crc;
  restamp(bytes, header_, dir);
  write_file(path_, bytes);
  EXPECT_THROW((void)map_snapshot(path_, "stretch6"), SnapshotArenaError);
}

TEST_F(ArenaCorruptionTest, CrcValidButCountMismatchedHeaderIsTyped) {
  // Shrink graph/offset by one element and re-stamp EVERY checksum,
  // including the section's own payload CRC: the file is now fully
  // CRC-consistent but internally inconsistent (the header's node count
  // implies n+1 offsets).  Only the cross-structure count check can refuse
  // it -- and must, on the mapped path, which skips payload CRCs entirely.
  auto bytes = pristine_;
  auto dir = dir_;
  const std::size_t g = index_of("graph/offset");
  dir[g].count -= 1;
  dir[g].crc = crc32(bytes.data() + dir[g].offset,
                     static_cast<std::size_t>(dir[g].count) * dir[g].elem_size);
  restamp(bytes, header_, dir);
  write_file(path_, bytes);
  EXPECT_THROW((void)map_snapshot(path_, "stretch6"), SnapshotArenaError);
  EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotArenaError);
}

TEST_F(ArenaCorruptionTest, PayloadBitFlipPassesMappedFramingButFailsOwned) {
  // The documented integrity split: a payload flip (CRCs NOT re-stamped)
  // is invisible to the mapped fast path's O(1) framing check but caught
  // by the owned load and by verify_section_crcs -- the publisher-grade
  // sweep shm distribution runs before exposing bytes to other processes.
  auto bytes = pristine_;
  bytes[dir_[1].offset] ^= 0x01;
  write_file(path_, bytes);
  EXPECT_NO_THROW((void)map_snapshot(path_, "stretch6"));
  EXPECT_THROW((void)load_snapshot(path_, "stretch6"), SnapshotChecksumError);
  const ArenaView view{map_arena_file(path_)};
  EXPECT_THROW(view.verify_section_crcs(), SnapshotChecksumError);
}

TEST_F(ArenaCorruptionTest, EveryArenaErrorIsASnapshotError) {
  // The cache-miss fallback in build_or_load catches SnapshotError; a typed
  // arena error escaping that net would take down serving instead of
  // triggering a rebuild.
  auto bytes = pristine_;
  auto dir = dir_;
  dir[1].offset += 4;
  restamp(bytes, header_, dir);
  write_file(path_, bytes);
  EXPECT_THROW((void)map_snapshot(path_, "stretch6"), SnapshotError);
  // And build_or_load (mapped mode) rebuilds over it rather than throwing.
  int ctx_builds = 0;
  const SchemeHandle rebuilt = SchemeRegistry::global().build_or_load(
      "stretch6",
      [&] {
        ++ctx_builds;
        return inst_->context(9);
      },
      path_, SchemeRegistry::SnapshotLoadMode::kMapped);
  EXPECT_EQ(ctx_builds, 1);
  EXPECT_EQ(rebuilt.graph().node_count(), inst_->n());
}

TEST_F(ArenaCorruptionTest, ShmPublishAttachServesOnePhysicalCopy) {
  // PID-suffixed: parallel ctest invocations must not share an object.
  const std::string shm_name = "rtr_test_shm_" + std::to_string(::getpid());
  try {
    const std::string scheme = publish_snapshot_shm(path_, shm_name);
    EXPECT_EQ(scheme, "stretch6");
  } catch (const SnapshotIoError&) {
    GTEST_SKIP() << "POSIX shm unavailable in this environment";
  }
  SchemeHandle attached = map_snapshot_shm(shm_name, "stretch6");
  SchemeHandle owned = load_snapshot(path_, "stretch6");
  ASSERT_EQ(attached.graph().node_count(), owned.graph().node_count());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    auto s = static_cast<NodeId>(rng.index(inst_->n()));
    auto t = static_cast<NodeId>(rng.index(inst_->n()));
    if (s == t) continue;
    const RouteResult a = attached.roundtrip(s, t);
    const RouteResult b = owned.roundtrip(s, t);
    ASSERT_EQ(a.ok(), b.ok());
    ASSERT_EQ(a.roundtrip_length(), b.roundtrip_length());
    ASSERT_EQ(a.out_hops, b.out_hops);
    ASSERT_EQ(a.back_hops, b.back_hops);
  }
  unlink_arena_shm(shm_name);
  // A publish of a damaged file must refuse BEFORE exposing bytes: other
  // processes attach with payload CRCs unverified by design.
  auto bytes = pristine_;
  bytes[dir_[1].offset] ^= 0x01;
  write_file(path_, bytes);
  EXPECT_THROW((void)publish_snapshot_shm(path_, shm_name),
               SnapshotChecksumError);
}

// The checked-in fixture that the CI hygiene gate also runs `rtr_cli
// snapshot map-info` over: a v2 arena written by a past revision must keep
// mapping and serving on every future one, or the on-disk format has
// silently broken compatibility.
TEST(CommittedFixture, V2ArenaStillMapsAndServes) {
  const std::string path =
      std::string(RTR_SOURCE_DIR) + "/tests/data/stretch6_n32_v2.rtrsnap";
  if (!std::ifstream(path).good()) {
    GTEST_SKIP() << "fixture not present at " << path;
  }
  const ArenaView view{map_arena_file(path)};
  EXPECT_NO_THROW(view.verify_section_crcs());
  const SchemeHandle mapped = map_snapshot(path, "stretch6");
  EXPECT_EQ(mapped.graph().node_count(), 32);
  Rng rng(5);
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    auto s = static_cast<NodeId>(rng.index(32));
    auto t = static_cast<NodeId>(rng.index(32));
    if (s == t) continue;
    if (mapped.roundtrip(s, t).ok()) ++ok;
  }
  EXPECT_GT(ok, 0);
}

}  // namespace
}  // namespace rtr
