// The unified-API contract: every scheme registered with the global
// SchemeRegistry is constructible by name on every generator family and
// routes correctly through the QueryEngine within its own stretch bound;
// the virtual (type-erased) path drives routes identical to the template
// fast path over the same tables; Packet enforces header-type safety; and
// SchemeHandle owns enough to outlive the scope that built it.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/stretch6.h"
#include "net/query_engine.h"
#include "net/scheme.h"
#include "net/scheme_adapter.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

TEST(SchemeRegistry, ListsEveryBuiltinScheme) {
  const auto names = SchemeRegistry::global().names();
  for (const std::string& expected :
       {"stretch6", "stretch6-detour", "exstretch", "polystretch", "rtz3",
        "fulltable", "hashed64"}) {
    EXPECT_TRUE(SchemeRegistry::global().contains(expected)) << expected;
    EXPECT_FALSE(SchemeRegistry::global().summary(expected).empty());
  }
  EXPECT_GE(names.size(), 7u);
}

TEST(SchemeRegistry, UnknownNameThrowsListingWhatExists) {
  Instance inst = make_instance(Family::kRandom, 12, 3, 7);
  try {
    (void)SchemeRegistry::global().build("no-such-scheme", inst.context(1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stretch6"), std::string::npos);
  }
}

TEST(SchemeRegistry, DuplicateRegistrationThrows) {
  SchemeRegistry registry;
  register_builtin_schemes(registry);
  EXPECT_THROW(registry.add("stretch6", "dup",
                            [](const BuildContext&) {
                              return std::shared_ptr<const Scheme>();
                            }),
               std::invalid_argument);
}

TEST(SchemeRegistry, OptionsReachTheFactory) {
  Instance inst = make_instance(Family::kRandom, 24, 3, 11);
  auto ctx = inst.context(5);
  ctx.options["k"] = "4";
  auto ex = SchemeRegistry::global().build("exstretch", ctx);
  EXPECT_NE(ex->name().find("k=4"), std::string::npos);
}

/// Every registered scheme, on every family: build by name, run sampled
/// pairs through the engine, assert delivery and the scheme's own bound.
class RegistryFamilyTest
    : public ::testing::TestWithParam<::rtr::testing::FamilyParam> {};

TEST_P(RegistryFamilyTest, EverySchemeBuildsRoutesAndMeetsItsBound) {
  auto [family, n, seed] = GetParam();
  Instance inst = make_instance(family, n, 4, seed);
  const auto ctx = inst.context(seed + 99);
  QueryEngineOptions opts;
  opts.threads = 2;
  for (const std::string& scheme_name : SchemeRegistry::global().names()) {
    SCOPED_TRACE(scheme_name);
    QueryEngine engine = QueryEngine::from_registry(SchemeRegistry::global(),
                                                    scheme_name, ctx, opts);
    StretchReport report = engine.run_sampled(
        {.pair_budget = 80, .seed = static_cast<std::uint64_t>(seed) + 7});
    EXPECT_EQ(report.pairs, 80);
    EXPECT_EQ(report.failures, 0) << engine.scheme().name();
    const double bound = engine.scheme().stretch_bound();
    ASSERT_NE(bound, unbounded_stretch()) << engine.scheme().name();
    EXPECT_LE(report.max_stretch, bound + 1e-9) << engine.scheme().name();
    EXPECT_GT(report.max_header_bits, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, RegistryFamilyTest,
    ::testing::Values(::rtr::testing::FamilyParam{Family::kRandom, 32, 21},
                      ::rtr::testing::FamilyParam{Family::kGrid, 36, 22},
                      ::rtr::testing::FamilyParam{Family::kRing, 32, 23},
                      ::rtr::testing::FamilyParam{Family::kScaleFree, 32, 24},
                      ::rtr::testing::FamilyParam{Family::kBidirected, 32, 25}),
    [](const ::testing::TestParamInfo<::rtr::testing::FamilyParam>& info) {
      return ::rtr::testing::family_param_name(info.param);
    });

/// The virtual path must route exactly like the template fast path when both
/// run over the same preprocessed tables.
TEST(SchemeAdapter, VirtualPathMatchesTemplatePathForStretch6) {
  Instance inst = make_instance(Family::kRandom, 40, 4, 31);
  Rng rng(77);
  auto impl = std::make_shared<const Stretch6Scheme>(inst.graph, *inst.metric,
                                                     inst.names, rng);
  auto adapted = adapt_scheme(impl);  // shares the same tables
  for (NodeId s = 0; s < inst.n(); s += 2) {
    for (NodeId t = 0; t < inst.n(); t += 3) {
      if (s == t) continue;
      RouteResult tmpl = simulate_roundtrip(inst.graph, *impl, s, t,
                                            inst.names.name_of(t));
      RouteResult virt = simulate_roundtrip(
          inst.graph, static_cast<const Scheme&>(*adapted), s, t,
          inst.names.name_of(t));
      // Unqualified call on the adapter: resolves to the template walk over
      // Scheme::Header = Packet, i.e. the identical virtual-dispatch route.
      RouteResult direct = simulate_roundtrip(inst.graph, *adapted, s, t,
                                              inst.names.name_of(t));
      ASSERT_EQ(tmpl.ok(), virt.ok()) << s << "->" << t;
      EXPECT_EQ(tmpl.out_length, virt.out_length);
      EXPECT_EQ(tmpl.back_length, virt.back_length);
      EXPECT_EQ(tmpl.out_hops, virt.out_hops);
      EXPECT_EQ(tmpl.back_hops, virt.back_hops);
      EXPECT_EQ(tmpl.max_header_bits, virt.max_header_bits);
      EXPECT_EQ(tmpl.out_length, direct.out_length);
      EXPECT_EQ(tmpl.back_length, direct.back_length);
    }
  }
}

TEST(Packet, TypeMismatchThrowsBadCast) {
  struct HeaderA {
    int x = 1;
  };
  struct HeaderB {
    int y = 2;
  };
  Packet p{HeaderA{}};
  EXPECT_EQ(p.as<HeaderA>().x, 1);
  EXPECT_THROW((void)p.as<HeaderB>(), std::bad_cast);
  Packet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)empty.as<HeaderA>(), std::logic_error);
}

TEST(Packet, CopiesAndMovesPreserveThePayload) {
  struct BigHeader {
    std::vector<int> trail;
  };
  Packet p{BigHeader{{1, 2, 3}}};
  Packet copy = p;
  copy.as<BigHeader>().trail.push_back(4);
  EXPECT_EQ(p.as<BigHeader>().trail.size(), 3u);
  EXPECT_EQ(copy.as<BigHeader>().trail.size(), 4u);
  Packet moved = std::move(copy);
  EXPECT_EQ(moved.as<BigHeader>().trail.size(), 4u);
  EXPECT_TRUE(copy.empty());  // NOLINT(bugprone-use-after-move): asserts the contract
}

/// Registry-built schemes internally reference the context's graph/metric
/// (e.g. Rtz3Scheme holds `const Digraph&`); the factories retain shared
/// ownership so a bare scheme pointer stays valid after its context dies.
TEST(SchemeRegistry, BuiltSchemeOutlivesItsBuildContext) {
  for (const std::string& scheme_name : SchemeRegistry::global().names()) {
    SCOPED_TRACE(scheme_name);
    std::shared_ptr<const Scheme> scheme;
    std::shared_ptr<const Digraph> graph;
    NameAssignment names = NameAssignment::identity(0);
    {
      Instance inst = make_instance(Family::kRandom, 24, 3, 61);
      BuildContext ctx = inst.context(19);
      scheme = SchemeRegistry::global().build(scheme_name, ctx);
      graph = ctx.graph;  // kept only to drive the walk below
      names = ctx.names;
    }  // Instance and BuildContext destroyed
    auto res = simulate_roundtrip(*graph, *scheme, 2, 9, names.name_of(9));
    EXPECT_TRUE(res.ok()) << scheme->name();
  }
}

/// The seed API captured the graph by reference inside SchemeHandle's lambda;
/// a handle outliving its builder scope dangled.  The redesigned handle holds
/// shared ownership, so this pattern is now safe by construction.
TEST(SchemeHandle, SafelyOutlivesItsBuilderScope) {
  std::unique_ptr<SchemeHandle> handle;
  {
    BuildContext ctx;
    {
      Instance inst = make_instance(Family::kRandom, 24, 3, 41);
      ctx = inst.context(13);
    }  // Instance gone; ctx holds shared copies
    auto scheme = SchemeRegistry::global().build("stretch6", ctx);
    handle = std::make_unique<SchemeHandle>(ctx.graph, ctx.names, scheme);
  }  // builder scope gone
  auto res = handle->roundtrip(0, 5);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(handle->table_stats().node_count(), handle->graph().node_count());
  EXPECT_NE(handle->name().find("stretch6"), std::string::npos);
}

}  // namespace
}  // namespace rtr
