// Incremental epoch repair: the differential proof of the repair contract.
//
// SchemeRegistry::repair() promises a repaired scheme indistinguishable
// from a pinned-seed from-scratch build on the post-churn graph --
// identical snapshot bytes, identical routes, identical per-node table
// stats.  These tests prove it differentially across churn scripts for
// every scheme with a repair hook (rtz3, fulltable), and pin the
// EpochManager policy edges: an empty delta is a no-op, an over-threshold
// delta (e.g. the adversary relabeling every port) falls back to a full
// build, and repaired epochs serve the exact same answers a full rebuild
// would.  The *Repair* suites are ThreadSanitizer targets alongside the
// *EpochSwapHammer* tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/names.h"
#include "graph/churn.h"
#include "graph/churn_delta.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "io/snapshot_format.h"
#include "net/scheme.h"
#include "rt/metric.h"
#include "serve/epoch_manager.h"
#include "test_support.h"
#include "util/rng.h"

namespace rtr {
namespace {

Digraph initial_graph(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder g = random_strongly_connected(n, 4.0, 5, rng);
  g.assign_adversarial_ports(rng);
  return g.freeze();
}

NameAssignment fixed_names(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  return NameAssignment::random(n, rng);
}

std::vector<std::uint8_t> scheme_bytes(const std::string& scheme_name,
                                       const Scheme& scheme) {
  SnapshotWriter w;
  SchemeRegistry::global().saver(scheme_name)(scheme, w);
  return w.bytes();
}

BuildContext context_for(std::shared_ptr<const Digraph> graph,
                         const NameAssignment& names, std::uint64_t seed,
                         MetricMode mode) {
  auto metric = make_roundtrip_metric(graph, mode);
  return BuildContext::wrap(std::move(graph), std::move(metric), names, seed);
}

// Runs `epochs` churn steps; at each epoch repairs the previous scheme onto
// the new graph AND builds it from scratch with the same pinned seed, then
// requires bitwise-identical snapshots, identical per-node table stats, and
// identical routes on a sample of pairs.  The repaired scheme becomes the
// next epoch's base, so later epochs also exercise repair-of-a-repair.
// Returns how many epochs actually took the repair path (the hook may
// decline); callers assert it is non-zero so a permanently-declining hook
// cannot pass vacuously.
using ChurnStepFn = std::function<Digraph(const Digraph&, Rng&)>;

int run_differential(const std::string& scheme_name, NodeId n,
                     const ChurnStepFn& step, std::uint64_t seed, int epochs,
                     MetricMode full_build_mode, double shadow_fraction = 0.0) {
  const NameAssignment names = fixed_names(n, seed + 1);
  const auto& registry = SchemeRegistry::global();
  Digraph start = initial_graph(n, seed);
  if (shadow_fraction > 0) {
    Rng shadow_rng(seed + 5);
    start = add_shadowed_links(start, shadow_fraction, shadow_rng);
  }
  auto old_graph = std::make_shared<const Digraph>(std::move(start));
  std::shared_ptr<const Scheme> old_scheme = registry.build(
      scheme_name, context_for(old_graph, names, seed, MetricMode::kSparse));

  Rng churn_rng(seed + 3);
  int repaired_epochs = 0;
  for (int e = 1; e <= epochs; ++e) {
    auto new_graph =
        std::make_shared<const Digraph>(step(*old_graph, churn_rng));
    const ChurnDelta delta = diff_graphs(*old_graph, *new_graph);

    // Separate contexts: repair and build each consume draws from their own
    // fresh Rng(seed), exactly like two independent pinned-seed epochs.
    auto repaired = registry.repair(
        scheme_name, *old_scheme, *old_graph,
        context_for(new_graph, names, seed, MetricMode::kSparse), delta);
    auto full = registry.build(
        scheme_name, context_for(new_graph, names, seed, full_build_mode));

    if (repaired != nullptr) {
      // An empty delta splices trivially; only a real delta counts toward
      // the non-vacuousness bar the callers assert.
      if (!delta.empty()) ++repaired_epochs;
      EXPECT_EQ(scheme_bytes(scheme_name, *repaired),
                scheme_bytes(scheme_name, *full))
          << scheme_name << " epoch " << e << ": snapshot bytes diverged";

      const TableStats rs = repaired->table_stats();
      const TableStats fs = full->table_stats();
      EXPECT_EQ(rs.node_count(), fs.node_count());
      for (NodeId v = 0; v < std::min(rs.node_count(), fs.node_count()); ++v) {
        EXPECT_EQ(rs.entries(v), fs.entries(v)) << "node " << v;
        EXPECT_EQ(rs.bits(v), fs.bits(v)) << "node " << v;
      }

      Rng pair_rng(seed + 17 + static_cast<std::uint64_t>(e));
      for (int q = 0; q < 50; ++q) {
        const NodeId s = static_cast<NodeId>(pair_rng.index(n));
        NodeId t = static_cast<NodeId>(pair_rng.index(n));
        if (t == s) t = (t + 1) % n;
        const RouteResult a =
            repaired->simulate(*new_graph, s, t, names.name_of(t));
        const RouteResult b =
            full->simulate(*new_graph, s, t, names.name_of(t));
        EXPECT_EQ(a.ok(), b.ok()) << s << "->" << t;
        EXPECT_EQ(a.roundtrip_length(), b.roundtrip_length()) << s << "->" << t;
        EXPECT_EQ(a.out_hops, b.out_hops) << s << "->" << t;
        EXPECT_EQ(a.back_hops, b.back_hops) << s << "->" << t;
        EXPECT_EQ(a.max_header_bits, b.max_header_bits) << s << "->" << t;
      }
      old_scheme = repaired;
    } else {
      old_scheme = full;
    }
    old_graph = new_graph;
  }
  return repaired_epochs;
}

int run_differential(const std::string& scheme_name, NodeId n,
                     const ChurnOptions& churn, std::uint64_t seed, int epochs,
                     MetricMode full_build_mode) {
  return run_differential(
      scheme_name, n,
      [&churn](const Digraph& g, Rng& rng) { return churn_step(g, churn, rng); },
      seed, epochs, full_build_mode);
}

// Port-stable gentle churn: the regime incremental repair is built for.
ChurnOptions gentle_churn() {
  ChurnOptions churn;
  churn.rewire_fraction = 0.02;
  churn.perturb_fraction = 0.05;
  churn.reassign_ports = false;
  return churn;
}

// Weight-only churn: the topology (and every port) is frozen; only link
// costs move.  Every delta entry is "modified".
ChurnOptions weight_only_churn() {
  ChurnOptions churn;
  churn.rewire_fraction = 0.0;
  churn.perturb_fraction = 0.30;
  churn.reassign_ports = false;
  return churn;
}

// Heavier structural churn, still port-stable on surviving edges.
ChurnOptions rewire_churn() {
  ChurnOptions churn;
  churn.rewire_fraction = 0.05;
  churn.perturb_fraction = 0.10;
  churn.reassign_ports = false;
  return churn;
}

// --- Script 1: gentle mixed churn ----------------------------------------

TEST(RepairDifferential, Rtz3GentleChurn) {
  EXPECT_GE(run_differential("rtz3", 160, gentle_churn(), 101, 3,
                             MetricMode::kSparse),
            1);
}

TEST(RepairDifferential, FullTableGentleChurn) {
  EXPECT_GE(run_differential("fulltable", 160, gentle_churn(), 102, 3,
                             MetricMode::kSparse),
            1);
}

// --- Script 2: weight-only churn ------------------------------------------

TEST(RepairDifferential, Rtz3WeightOnlyChurn) {
  EXPECT_GE(run_differential("rtz3", 120, weight_only_churn(), 201, 3,
                             MetricMode::kSparse),
            1);
}

TEST(RepairDifferential, FullTableWeightOnlyChurn) {
  EXPECT_GE(run_differential("fulltable", 120, weight_only_churn(), 202, 3,
                             MetricMode::kSparse),
            1);
}

// --- Script 3: structural rewires, cross-checked against the DENSE metric
// backend.  The full build here uses the dense APSP matrix while the repair
// path always runs against sparse rows, so byte equality additionally pins
// the dense/sparse backend equivalence the repair path relies on.

TEST(RepairDifferential, Rtz3RewireChurnDenseCrossCheck) {
  EXPECT_GE(run_differential("rtz3", 120, rewire_churn(), 301, 3,
                             MetricMode::kDense),
            1);
}

TEST(RepairDifferential, FullTableRewireChurnDenseCrossCheck) {
  EXPECT_GE(run_differential("fulltable", 120, rewire_churn(), 302, 3,
                             MetricMode::kDense),
            1);
}

// --- Script 4: slack re-pricing (the bench's non-disruptive regime) --------
//
// The instance carries shadowed backup links (add_shadowed_links), and
// slack_jitter_step only raises weights of edges an existing strictly
// shorter detour already bypasses, so the delta certifies as strictly slack
// and rtz3's repair takes the O(affected region) fast path: every
// full-graph tree is spliced wholesale and only balls whose mask contains
// both endpoints of a changed edge are rechecked.  Byte equality here holds
// the fast path to the same contract as the general path.

Digraph slack_jitter(const Digraph& g, Rng& rng) {
  return slack_jitter_step(g, 0.05, rng);
}

TEST(RepairDifferential, Rtz3SlackJitter) {
  EXPECT_GE(run_differential("rtz3", 160, slack_jitter, 901, 3,
                             MetricMode::kSparse, /*shadow_fraction=*/0.10),
            1);
}

TEST(RepairDifferential, FullTableSlackJitter) {
  EXPECT_GE(run_differential("fulltable", 160, slack_jitter, 902, 3,
                             MetricMode::kSparse, /*shadow_fraction=*/0.10),
            1);
}

// --- Edge case: targeted adversarial port relabeling ----------------------
//
// The adversary renumbers the ports of a handful of edges without touching
// topology or weights.  Routing tables store port numbers, so a spliced
// substructure that forwards over a relabeled edge would be silently wrong:
// the repair must treat port-only changes as real churn.  (A GLOBAL
// relabel -- reassign_ports=true -- changes every edge and is covered by
// the EpochManager fallback test below.)
TEST(RepairDifferential, TargetedPortRelabelIsRealChurn) {
  const NodeId n = 96;
  const std::uint64_t seed = 401;
  const NameAssignment names = fixed_names(n, seed + 1);
  auto old_graph = std::make_shared<const Digraph>(initial_graph(n, seed));

  // Relabel the ports of node 0's out-edges by rotating them one slot:
  // same heads, same weights, different port numbers.
  GraphBuilder thawed(n);
  for (NodeId u = 0; u < n; ++u) {
    auto row = old_graph->out_edges(u);
    std::vector<Edge> edges(row.begin(), row.end());
    if (u == 0 && edges.size() >= 2) {
      const Port first = edges.front().port;
      for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
        edges[i].port = edges[i + 1].port;
      }
      edges.back().port = first;
    }
    thawed.add_edges_with_ports(u, edges);
  }
  auto new_graph = std::make_shared<const Digraph>(thawed.freeze());

  const ChurnDelta delta = diff_graphs(*old_graph, *new_graph);
  ASSERT_FALSE(delta.empty());
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(static_cast<NodeId>(delta.modified.size()),
            old_graph->out_degree(0));
  for (const EdgeChange& c : delta.modified) {
    EXPECT_EQ(c.tail, 0);
    EXPECT_EQ(c.old_weight, c.new_weight);
    EXPECT_NE(c.old_port, c.new_port);
  }

  const auto& registry = SchemeRegistry::global();
  for (const std::string scheme_name : {"rtz3", "fulltable"}) {
    auto old_scheme = registry.build(
        scheme_name, context_for(old_graph, names, seed, MetricMode::kSparse));
    auto repaired = registry.repair(
        scheme_name, *old_scheme, *old_graph,
        context_for(new_graph, names, seed, MetricMode::kSparse), delta);
    auto full = registry.build(
        scheme_name, context_for(new_graph, names, seed, MetricMode::kSparse));
    ASSERT_NE(repaired, nullptr) << scheme_name;
    EXPECT_EQ(scheme_bytes(scheme_name, *repaired),
              scheme_bytes(scheme_name, *full))
        << scheme_name << ": port relabel not honored";
  }
}

// --- EpochManager policy edges --------------------------------------------

TEST(RepairEpochManager, EmptyDeltaIsNoOp) {
  const NodeId n = 64;
  Digraph g = initial_graph(n, 501);
  EpochManagerOptions opt;
  opt.enable_repair = true;
  EpochManager mgr("rtz3", fixed_names(n, 502), Digraph(g), opt);

  const auto before = mgr.current();
  ASSERT_TRUE(mgr.begin_rebuild(Digraph(g)));  // identical topology
  mgr.wait_for_rebuild();

  // Nothing was published: the exact same epoch object keeps serving.
  EXPECT_EQ(mgr.current().get(), before.get());
  EXPECT_EQ(mgr.epoch(), 0u);
  EXPECT_EQ(mgr.last_error(), "");
  const auto c = mgr.counters();
  EXPECT_EQ(c.epochs_built, 0u);
  EXPECT_EQ(c.repairs, 0u);
  EXPECT_EQ(c.repair_fallbacks, 0u);
}

TEST(RepairEpochManager, GlobalPortRelabelFallsBackToFullBuild) {
  const NodeId n = 64;
  Digraph g = initial_graph(n, 601);
  EpochManagerOptions opt;
  opt.enable_repair = true;
  opt.repair_max_fraction = 0.05;
  EpochManager mgr("rtz3", fixed_names(n, 602), Digraph(g), opt);

  // reassign_ports=true renumbers EVERY port, so the delta touches every
  // edge -- far past any sane repair threshold.
  ChurnOptions churn;  // defaults: reassign_ports = true
  Rng churn_rng(603);
  mgr.rebuild_now(churn_step(g, churn, churn_rng));

  EXPECT_EQ(mgr.epoch(), 1u);
  const auto c = mgr.counters();
  EXPECT_EQ(c.epochs_built, 1u);
  EXPECT_EQ(c.repairs, 0u);
  EXPECT_EQ(c.repair_fallbacks, 1u);
  EXPECT_GT(c.last_rebuild_ms, 0.0);
  const auto& names = mgr.names();
  EXPECT_TRUE(mgr.roundtrip_by_name(names.name_of(1), names.name_of(5)).ok());
}

// Two managers over the same pinned seed and the same churn sequence: one
// repairs, the other is forced to full-rebuild every epoch
// (repair_max_fraction = 0 declines every non-empty delta).  Every query
// must answer identically -- the serving-level restatement of the byte
// equality proved above.
TEST(RepairEpochManager, RepairedEpochsServeIdenticalRoutes) {
  const NodeId n = 96;
  const NameAssignment names = fixed_names(n, 702);
  Digraph g = initial_graph(n, 701);

  EpochManagerOptions repair_opt;
  repair_opt.enable_repair = true;
  repair_opt.repair_max_fraction = 0.25;
  EpochManagerOptions full_opt = repair_opt;
  full_opt.repair_max_fraction = 0.0;  // pinned-seed full rebuild every epoch

  EpochManager repaired("rtz3", names, Digraph(g), repair_opt);
  EpochManager rebuilt("rtz3", names, Digraph(g), full_opt);

  ChurnOptions churn = gentle_churn();
  Rng churn_rng(703);
  Rng pair_rng(704);
  for (int e = 1; e <= 3; ++e) {
    g = churn_step(g, churn, churn_rng);
    repaired.rebuild_now(Digraph(g));
    rebuilt.rebuild_now(Digraph(g));
    for (int q = 0; q < 40; ++q) {
      const NodeId s = static_cast<NodeId>(pair_rng.index(n));
      NodeId t = static_cast<NodeId>(pair_rng.index(n));
      if (t == s) t = (t + 1) % n;
      const ServingResult a =
          repaired.roundtrip_by_name(names.name_of(s), names.name_of(t));
      const ServingResult b =
          rebuilt.roundtrip_by_name(names.name_of(s), names.name_of(t));
      ASSERT_TRUE(a.ok() && b.ok()) << s << "->" << t;
      EXPECT_EQ(a.route.roundtrip_length(), b.route.roundtrip_length());
      EXPECT_EQ(a.route.out_hops, b.route.out_hops);
      EXPECT_EQ(a.route.back_hops, b.route.back_hops);
      EXPECT_EQ(a.route.max_header_bits, b.route.max_header_bits);
    }
  }
  // The comparison is only meaningful if the two managers actually took
  // different paths: every epoch repaired on one side, none on the other.
  const auto cr = repaired.counters();
  const auto cf = rebuilt.counters();
  EXPECT_GE(cr.repairs, 1u);
  EXPECT_EQ(cr.repair_fallbacks + cr.repairs, 3u);
  EXPECT_GT(cr.last_repair_ms, 0.0);
  EXPECT_EQ(cf.repairs, 0u);
  EXPECT_EQ(cf.repair_fallbacks, 3u);
}

// ThreadSanitizer target: queries hammer across repair-published epoch
// swaps, exactly like the full-rebuild EpochSwapHammer tests.  CI's TSAN
// job runs --gtest_filter='*EpochSwapHammer*:*Repair*'.
TEST(RepairEpochManager, RepairSwapHammer) {
  const NodeId n = 64;
  const NameAssignment names = fixed_names(n, 802);
  Digraph g = initial_graph(n, 801);
  EpochManagerOptions opt;
  opt.enable_repair = true;
  opt.repair_max_fraction = 0.25;
  EpochManager mgr("rtz3", names, Digraph(g), opt);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(900 + static_cast<std::uint64_t>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId s = static_cast<NodeId>(rng.index(n));
        NodeId t = static_cast<NodeId>(rng.index(n));
        if (t == s) t = (t + 1) % n;
        if (mgr.roundtrip_by_name(names.name_of(s), names.name_of(t)).ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ChurnOptions churn = gentle_churn();
  Rng churn_rng(803);
  for (int e = 1; e <= 3; ++e) {
    g = churn_step(g, churn, churn_rng);
    mgr.rebuild_now(Digraph(g));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(mgr.counters().epochs_built, 3u);
  EXPECT_GE(mgr.counters().repairs, 1u);
  EXPECT_EQ(mgr.counters().failures, 0u);
}

}  // namespace
}  // namespace rtr
