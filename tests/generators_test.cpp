#include <gtest/gtest.h>

#include <cmath>

#include "core/lower_bound.h"
#include "graph/generators.h"
#include "graph/scc.h"
#include "rt/metric.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(Generators, RandomHasRequestedDensity) {
  Rng rng(1);
  Digraph g = random_strongly_connected(200, 4.0, 10, rng).freeze();
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_GE(g.edge_count(), 200);                 // at least the backbone
  EXPECT_LE(g.edge_count(), 4 * 200 + 8);         // no overshoot
  EXPECT_GE(g.edge_count(), 4 * 200 * 9 / 10);    // near target
}

TEST(Generators, WeightsWithinRange) {
  Rng rng(2);
  Digraph g = random_strongly_connected(100, 3.0, 7, rng).freeze();
  for (NodeId u = 0; u < 100; ++u) {
    for (const Edge& e : g.out_edges(u)) {
      EXPECT_GE(e.weight, 1);
      EXPECT_LE(e.weight, 7);
    }
  }
}

TEST(Generators, GridDimensionsRoundedToEven) {
  Rng rng(3);
  Digraph g = one_way_grid(5, 5, 4, rng).freeze();  // becomes 6x6
  EXPECT_EQ(g.node_count(), 36);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Generators, GridIsStronglyConnectedAcrossSizes) {
  Rng rng(4);
  for (NodeId side : {2, 4, 8, 10}) {
    Digraph g = one_way_grid(side, side, 3, rng).freeze();
    EXPECT_TRUE(is_strongly_connected(g)) << side;
  }
}

TEST(Generators, RingChordCount) {
  Rng rng(5);
  Digraph g = ring_with_chords(50, 20, 5, rng).freeze();
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_EQ(g.edge_count(), 50 + 20);
}

TEST(Generators, ScaleFreeHasHeavyTail) {
  Rng rng(6);
  Digraph g = scale_free(300, 3, 4, rng).freeze();
  EXPECT_TRUE(is_strongly_connected(g));
  // In-degree spread: max should well exceed the mean under preferential
  // attachment.
  std::vector<int> indeg(300, 0);
  for (NodeId u = 0; u < 300; ++u) {
    for (const Edge& e : g.out_edges(u)) ++indeg[static_cast<std::size_t>(e.to)];
  }
  int mx = 0;
  for (int d : indeg) mx = std::max(mx, d);
  double mean = static_cast<double>(g.edge_count()) / 300.0;
  EXPECT_GT(mx, 2 * mean);
}

TEST(Generators, BidirectedIsDistanceSymmetric) {
  Rng rng(7);
  Digraph g = bidirected_random(80, 3.0, 6, rng).freeze();
  EXPECT_TRUE(is_strongly_connected(g));
  DenseRoundtripMetric m(g);
  EXPECT_TRUE(is_distance_symmetric(m));
}

TEST(Generators, LowerBoundGadgetSymmetricAndConnected) {
  Rng rng(8);
  Digraph g = lower_bound_gadget(40, 0.3, rng).freeze();
  EXPECT_TRUE(is_strongly_connected(g));
  DenseRoundtripMetric m(g);
  EXPECT_TRUE(is_distance_symmetric(m));
  // Matched pairs are at distance <= 2; some bipartite pair should be at
  // distance exactly 1 (a present adjacency bit) at density 0.3.
  bool found_adjacent = false;
  for (NodeId i = 0; i < 20 && !found_adjacent; ++i) {
    for (NodeId j = 20; j < 40 && !found_adjacent; ++j) {
      if (m.d(i, j) == 1) found_adjacent = true;
    }
  }
  EXPECT_TRUE(found_adjacent);
}

TEST(Generators, CompleteDigraphEdgeCount) {
  Rng rng(9);
  Digraph g = complete_digraph(12, 3, rng).freeze();
  EXPECT_EQ(g.edge_count(), 12 * 11);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Generators, MakeFamilyApproximatesRequestedSize) {
  Rng rng(10);
  for (Family f : all_families()) {
    Digraph g = make_family(f, 144, 8, rng).freeze();
    EXPECT_GE(g.node_count(), 100) << family_name(f);
    EXPECT_LE(g.node_count(), 200) << family_name(f);
  }
}

TEST(Generators, RejectsDegenerateSizes) {
  Rng rng(11);
  EXPECT_THROW((void)random_strongly_connected(1, 2.0, 3, rng), std::invalid_argument);
  EXPECT_THROW(ring_with_chords(1, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(scale_free(2, 1, 1, rng), std::invalid_argument);
  EXPECT_THROW(complete_digraph(1, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rtr
