// QueryEngine behavior: batch aggregation must be exact and independent of
// the worker count; sampling must be deterministic per (seed, thread count);
// scheme bugs must surface as counted failures, not crashed workers; and the
// pool must actually scale when the hardware has cores to offer.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "net/query_engine.h"
#include "net/scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

std::vector<RoundtripQuery> all_pairs(NodeId n) {
  std::vector<RoundtripQuery> queries;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) queries.push_back({s, t});
    }
  }
  return queries;
}

QueryEngine make_engine(const BuildContext& ctx, const std::string& scheme,
                        int threads) {
  QueryEngineOptions opts;
  opts.threads = threads;
  return QueryEngine::from_registry(SchemeRegistry::global(), scheme, ctx,
                                    opts);
}

void expect_same_report(const StretchReport& a, const StretchReport& b) {
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_DOUBLE_EQ(a.p99_stretch, b.p99_stretch);
  EXPECT_DOUBLE_EQ(a.max_stretch, b.max_stretch);
  EXPECT_EQ(a.max_header_bits, b.max_header_bits);
}

TEST(QueryEngine, BatchAggregateIndependentOfWorkerCount) {
  Instance inst = make_instance(Family::kRandom, 32, 4, 51);
  const auto ctx = inst.context(9);
  const auto queries = all_pairs(inst.n());
  auto scheme = SchemeRegistry::global().build("stretch6", ctx);
  StretchReport reference;
  for (int threads : {1, 2, 3, 4}) {
    QueryEngineOptions opts;
    opts.threads = threads;
    QueryEngine engine(ctx.graph, ctx.metric, ctx.names, scheme, opts);
    StretchReport report = engine.run_batch(queries);
    EXPECT_EQ(report.pairs, static_cast<std::int64_t>(queries.size()));
    EXPECT_EQ(report.failures, 0);
    if (threads == 1) {
      reference = report;
    } else {
      expect_same_report(reference, report);
    }
  }
}

TEST(QueryEngine, BatchMatchesTheSerialReferenceLoop) {
  Instance inst = make_instance(Family::kGrid, 36, 4, 52);
  const auto ctx = inst.context(10);
  QueryEngine engine = make_engine(ctx, "rtz3", 4);
  const auto queries = all_pairs(inst.n());
  expect_same_report(engine.run_serial(queries), engine.run_batch(queries));
}

TEST(QueryEngine, SampledBudgetCoveringAllPairsIsExhaustive) {
  Instance inst = make_instance(Family::kRing, 24, 4, 53);
  const auto ctx = inst.context(11);
  QueryEngine engine = make_engine(ctx, "fulltable", 2);
  const auto n = static_cast<std::int64_t>(inst.n());
  StretchReport report = engine.run_sampled(n * (n - 1) + 5, 3);
  EXPECT_EQ(report.pairs, n * (n - 1));
  EXPECT_EQ(report.failures, 0);
  EXPECT_DOUBLE_EQ(report.max_stretch, 1.0);  // full tables route optimally
}

TEST(QueryEngine, SamplingIsDeterministicPerSeedAndThreadCount) {
  Instance inst = make_instance(Family::kRandom, 40, 4, 54);
  const auto ctx = inst.context(12);
  QueryEngine engine = make_engine(ctx, "stretch6", 3);
  expect_same_report(engine.run_sampled(200, 17), engine.run_sampled(200, 17));
}

// Regression lock on the static-sharding contract (net/query_engine.h):
// run_sampled(budget, seed) must produce the same StretchReport -- pairs,
// failures, and bit-identical stretch aggregates -- for every worker count,
// in both the sampled and the exhaustive regime.
TEST(QueryEngine, SampledReportIndependentOfWorkerCount) {
  Instance inst = make_instance(Family::kRandom, 48, 4, 58);
  const auto ctx = inst.context(16);
  auto scheme = SchemeRegistry::global().build("stretch6", ctx);

  const auto n = static_cast<std::int64_t>(inst.n());
  // One budget below n(n-1) (sampled branch), one above (exhaustive branch).
  for (std::int64_t budget : {std::int64_t{500}, n * (n - 1) + 1}) {
    StretchReport reference;
    for (int threads : {1, 2, 8}) {
      QueryEngineOptions opts;
      opts.threads = threads;
      QueryEngine engine(ctx.graph, ctx.metric, ctx.names, scheme, opts);
      StretchReport report = engine.run_sampled(budget, 23);
      EXPECT_GT(report.pairs, 0);
      if (threads == 1) {
        reference = report;
      } else {
        expect_same_report(reference, report);
      }
    }
  }
}

TEST(QueryEngine, RoundtripRunsOneQueryOnTheCallerThread) {
  Instance inst = make_instance(Family::kRandom, 24, 4, 55);
  const auto ctx = inst.context(13);
  QueryEngine engine = make_engine(ctx, "stretch6", 4);
  auto res = engine.roundtrip(1, 7);
  EXPECT_TRUE(res.ok());
  EXPECT_LE(static_cast<double>(res.roundtrip_length()),
            6.0 * static_cast<double>(inst.metric->r(1, 7)) + 1e-9);
}

/// A scheme that emits an unknown port must surface as counted failures, not
/// as an exception escaping a worker thread.
class BrokenPortScheme final : public Scheme {
 public:
  struct Header {
    NodeName dest = kNoNode;
  };
  [[nodiscard]] std::string name() const override { return "broken-port"; }
  [[nodiscard]] Packet make_packet(NodeName dest) const override {
    return Packet(Header{dest});
  }
  void prepare_return(Packet&) const override {}
  [[nodiscard]] Decision forward(NodeId, Packet&) const override {
    return Decision::forward_on(999999);
  }
  [[nodiscard]] std::int64_t header_bits(const Packet&) const override {
    return 8;
  }
  [[nodiscard]] TableStats table_stats() const override { return TableStats{}; }
};

TEST(QueryEngine, SchemeBugsAreCountedAsFailures) {
  Instance inst = make_instance(Family::kRandom, 16, 3, 56);
  const auto ctx = inst.context(14);
  QueryEngineOptions opts;
  opts.threads = 2;
  QueryEngine engine(ctx.graph, ctx.metric, ctx.names,
                     std::make_shared<const BrokenPortScheme>(), opts);
  StretchReport report = engine.run_batch(all_pairs(inst.n()));
  EXPECT_EQ(report.failures, report.pairs);
}

/// The acceptance-scale perf check: a 10k-pair batch on a 512-node instance
/// across 4 workers vs the serial loop.  Meaningful only when the hardware
/// has cores to parallelize over, so it skips on single-core runners (the
/// aggregate-equality tests above pin down correctness there).
TEST(QueryEngine, FourWorkersBeatTheSerialLoopOnBigBatches) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads to demonstrate speedup";
  }
  Instance inst = make_instance(Family::kRandom, 512, 4, 57);
  const auto ctx = inst.context(15);
  QueryEngine engine = make_engine(ctx, "stretch6", 4);
  std::vector<RoundtripQuery> queries;
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    auto s = static_cast<NodeId>(rng.index(inst.n()));
    auto t = static_cast<NodeId>(rng.index(inst.n()));
    if (s == t) t = static_cast<NodeId>((t + 1) % inst.n());
    queries.push_back({s, t});
  }
  StretchReport serial = engine.run_serial(queries);
  StretchReport parallel = engine.run_batch(queries);
  expect_same_report(serial, parallel);
  EXPECT_LT(parallel.wall_seconds, serial.wall_seconds)
      << "4 workers should beat the serial loop on a 10k-pair batch";
}

}  // namespace
}  // namespace rtr
