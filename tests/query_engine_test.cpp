// QueryEngine behavior: batch aggregation must be exact and independent of
// the worker count; sampling must be deterministic per (seed, thread count);
// scheme bugs must surface as counted failures, not crashed workers; and the
// pool must actually scale when the hardware has cores to offer.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "net/query_engine.h"
#include "net/scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

std::vector<RoundtripQuery> all_pairs(NodeId n) {
  std::vector<RoundtripQuery> queries;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) queries.push_back({s, t});
    }
  }
  return queries;
}

QueryEngine make_engine(const BuildContext& ctx, const std::string& scheme,
                        int threads) {
  QueryEngineOptions opts;
  opts.threads = threads;
  return QueryEngine::from_registry(SchemeRegistry::global(), scheme, ctx,
                                    opts);
}

void expect_same_report(const StretchReport& a, const StretchReport& b) {
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.invalid, b.invalid);
  EXPECT_DOUBLE_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_DOUBLE_EQ(a.p99_stretch, b.p99_stretch);
  EXPECT_DOUBLE_EQ(a.max_stretch, b.max_stretch);
  EXPECT_EQ(a.max_header_bits, b.max_header_bits);
  EXPECT_EQ(a.first_error, b.first_error);
}

TEST(QueryEngine, BatchAggregateIndependentOfWorkerCount) {
  Instance inst = make_instance(Family::kRandom, 32, 4, 51);
  const auto ctx = inst.context(9);
  const auto queries = all_pairs(inst.n());
  auto scheme = SchemeRegistry::global().build("stretch6", ctx);
  StretchReport reference;
  for (int threads : {1, 2, 3, 4}) {
    QueryEngineOptions opts;
    opts.threads = threads;
    QueryEngine engine(ctx.graph, ctx.metric, ctx.names, scheme, opts);
    StretchReport report = engine.run_batch(queries);
    EXPECT_EQ(report.pairs, static_cast<std::int64_t>(queries.size()));
    EXPECT_EQ(report.failures, 0);
    if (threads == 1) {
      reference = report;
    } else {
      expect_same_report(reference, report);
    }
  }
}

TEST(QueryEngine, BatchMatchesTheSerialReferenceLoop) {
  Instance inst = make_instance(Family::kGrid, 36, 4, 52);
  const auto ctx = inst.context(10);
  QueryEngine engine = make_engine(ctx, "rtz3", 4);
  const auto queries = all_pairs(inst.n());
  expect_same_report(engine.run_serial(queries), engine.run_batch(queries));
}

// The batch fast path (SoA layout, one-dispatch adapter walk, header-size
// hints) must agree with the seed reference loop on EVERY registered scheme
// -- in particular max_header_bits, which pins that a forward_same_size hint
// is never emitted on a step that actually changed the encoded size.
TEST(QueryEngine, FastBatchWalkMatchesReferenceForEveryScheme) {
  Instance inst = make_instance(Family::kRandom, 40, 4, 53);
  const auto ctx = inst.context(11);
  const auto queries = all_pairs(inst.n());
  for (const std::string& name : SchemeRegistry::global().names()) {
    QueryEngine engine = make_engine(ctx, name, 2);
    const StretchReport reference = engine.run_serial(queries);
    const StretchReport fast = engine.run_batch(queries);
    EXPECT_EQ(reference.failures, 0) << name;
    expect_same_report(reference, fast);
  }
}

TEST(QueryEngine, SampledBudgetCoveringAllPairsIsExhaustive) {
  Instance inst = make_instance(Family::kRing, 24, 4, 53);
  const auto ctx = inst.context(11);
  QueryEngine engine = make_engine(ctx, "fulltable", 2);
  const auto n = static_cast<std::int64_t>(inst.n());
  StretchReport report = engine.run_sampled(
      {.pair_budget = n * (n - 1) + 5, .seed = 3});
  EXPECT_EQ(report.pairs, n * (n - 1));
  EXPECT_EQ(report.failures, 0);
  EXPECT_DOUBLE_EQ(report.max_stretch, 1.0);  // full tables route optimally
}

TEST(QueryEngine, SamplingIsDeterministicPerSeedAndThreadCount) {
  Instance inst = make_instance(Family::kRandom, 40, 4, 54);
  const auto ctx = inst.context(12);
  QueryEngine engine = make_engine(ctx, "stretch6", 3);
  expect_same_report(engine.run_sampled({.pair_budget = 200, .seed = 17}),
                     engine.run_sampled({.pair_budget = 200, .seed = 17}));
}

// Regression lock on the static-sharding contract (net/query_engine.h):
// run_sampled with the same BatchOptions must produce the same StretchReport -- pairs,
// failures, and bit-identical stretch aggregates -- for every worker count,
// in both the sampled and the exhaustive regime.
TEST(QueryEngine, SampledReportIndependentOfWorkerCount) {
  Instance inst = make_instance(Family::kRandom, 48, 4, 58);
  const auto ctx = inst.context(16);
  auto scheme = SchemeRegistry::global().build("stretch6", ctx);

  const auto n = static_cast<std::int64_t>(inst.n());
  // One budget below n(n-1) (sampled branch), one above (exhaustive branch).
  for (std::int64_t budget : {std::int64_t{500}, n * (n - 1) + 1}) {
    StretchReport reference;
    for (int threads : {1, 2, 8}) {
      QueryEngineOptions opts;
      opts.threads = threads;
      QueryEngine engine(ctx.graph, ctx.metric, ctx.names, scheme, opts);
      StretchReport report = engine.run_sampled({.pair_budget = budget, .seed = 23});
      EXPECT_GT(report.pairs, 0);
      if (threads == 1) {
        reference = report;
      } else {
        expect_same_report(reference, report);
      }
    }
  }
}

// The previous sampler remapped a collision (s == t) to (s, (s+1) mod n),
// which silently double-weighted those n pairs.  Rejection sampling must be
// self-pair-free AND uniform over all ordered pairs.
TEST(QueryEngine, SampledPairsAreSelfFreeAndUniform) {
  // The sampled branch only runs below the exhaustive threshold
  // (budget < n(n-1)), so aggregate many under-budget draws across seeds.
  const NodeId n = 4;
  const std::int64_t budget = 11;  // n(n-1) - 1: always the sampled branch
  std::map<std::pair<NodeId, NodeId>, std::int64_t> freq;
  std::int64_t total = 0;
  for (std::uint64_t seed = 0; seed < 6000; ++seed) {
    auto pairs = QueryEngine::sample_pairs(n, budget, seed);
    ASSERT_EQ(pairs.size(), static_cast<std::size_t>(budget));
    for (const auto& q : pairs) {
      ASSERT_NE(q.src, q.dst);
      ASSERT_GE(q.src, 0);
      ASSERT_LT(q.src, n);
      ASSERT_GE(q.dst, 0);
      ASSERT_LT(q.dst, n);
      ++freq[{q.src, q.dst}];
      ++total;
    }
  }
  ASSERT_EQ(freq.size(), 12u);  // all n(n-1) ordered pairs hit
  // Expected count per pair is total/12 = 5500; the neighbour-remap bug gave
  // the (s, s+1 mod n) pairs double weight (ratio 2.0 between the heaviest
  // and lightest pairs).  A uniform sampler at this volume stays well inside
  // +-5%.
  std::int64_t lo = total, hi = 0;
  for (const auto& [pair, count] : freq) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  const std::int64_t expected = total / 12;
  EXPECT_GT(lo, expected * 95 / 100);
  EXPECT_LT(hi, expected * 105 / 100);
}

TEST(QueryEngine, SampledPairsExhaustiveWhenBudgetCoversAll) {
  auto pairs = QueryEngine::sample_pairs(5, 100, 3);
  EXPECT_EQ(pairs.size(), 20u);
  EXPECT_TRUE(QueryEngine::sample_pairs(1, 100, 3).empty());
  EXPECT_TRUE(QueryEngine::sample_pairs(5, 0, 3).empty());
}

TEST(QueryEngine, BatchCountsInvalidQueriesAsTypedFailures) {
  Instance inst = make_instance(Family::kRandom, 16, 3, 59);
  const auto ctx = inst.context(17);
  QueryEngine engine = make_engine(ctx, "stretch6", 2);
  const NodeId n = inst.n();
  // Self pair, both ids out of range (low and high), plus two valid queries.
  const std::vector<RoundtripQuery> queries = {
      {3, 3}, {-1, 2}, {4, n}, {kNoNode, kNoNode}, {0, 1}, {2, 5}};
  StretchReport report = engine.run_batch(queries);
  EXPECT_EQ(report.pairs, 6);
  EXPECT_EQ(report.invalid, 4);
  EXPECT_EQ(report.failures, 4);  // invalid counts as failed, nothing crashed
  EXPECT_NE(report.first_error.find("invalid query"), std::string::npos)
      << report.first_error;
  EXPECT_NE(report.first_error.find("src == dst"), std::string::npos)
      << "first failure in batch order is the self pair: "
      << report.first_error;
}

TEST(QueryEngine, RoundtripThrowsOnOutOfRangeIds) {
  Instance inst = make_instance(Family::kRandom, 16, 3, 59);
  const auto ctx = inst.context(17);
  QueryEngine engine = make_engine(ctx, "stretch6", 1);
  EXPECT_THROW((void)engine.roundtrip(-1, 2), std::out_of_range);
  EXPECT_THROW((void)engine.roundtrip(0, inst.n()), std::out_of_range);
}

TEST(QueryEngine, RoundtripRunsOneQueryOnTheCallerThread) {
  Instance inst = make_instance(Family::kRandom, 24, 4, 55);
  const auto ctx = inst.context(13);
  QueryEngine engine = make_engine(ctx, "stretch6", 4);
  auto res = engine.roundtrip(1, 7);
  EXPECT_TRUE(res.ok());
  EXPECT_LE(static_cast<double>(res.roundtrip_length()),
            6.0 * static_cast<double>(inst.metric->r(1, 7)) + 1e-9);
}

/// A scheme that emits an unknown port must surface as counted failures, not
/// as an exception escaping a worker thread.
class BrokenPortScheme final : public Scheme {
 public:
  struct Header {
    NodeName dest = kNoNode;
  };
  [[nodiscard]] std::string name() const override { return "broken-port"; }
  [[nodiscard]] Packet make_packet(NodeName dest) const override {
    return Packet(Header{dest});
  }
  void prepare_return(Packet&) const override {}
  [[nodiscard]] Decision forward(NodeId, Packet&) const override {
    return Decision::forward_on(999999);
  }
  [[nodiscard]] std::int64_t header_bits(const Packet&) const override {
    return 8;
  }
  [[nodiscard]] TableStats table_stats() const override { return TableStats{}; }
};

TEST(QueryEngine, SchemeBugsAreCountedAsFailures) {
  Instance inst = make_instance(Family::kRandom, 16, 3, 56);
  const auto ctx = inst.context(14);
  QueryEngineOptions opts;
  opts.threads = 2;
  QueryEngine engine(ctx.graph, ctx.metric, ctx.names,
                     std::make_shared<const BrokenPortScheme>(), opts);
  StretchReport report = engine.run_batch(all_pairs(inst.n()));
  EXPECT_EQ(report.failures, report.pairs);
  // The anonymous-swallow regression: the batch report must carry WHAT
  // broke, not just how often.
  EXPECT_NE(report.first_error.find("unknown port"), std::string::npos)
      << report.first_error;
}

// first_error is keyed by batch index, so it is the same message no matter
// how the batch was sharded across workers.
TEST(QueryEngine, FirstErrorIndependentOfWorkerCount) {
  Instance inst = make_instance(Family::kRandom, 16, 3, 56);
  const auto ctx = inst.context(14);
  auto scheme = std::make_shared<const BrokenPortScheme>();
  const auto queries = all_pairs(inst.n());
  StretchReport reference;
  for (int threads : {1, 2, 5}) {
    QueryEngineOptions opts;
    opts.threads = threads;
    QueryEngine engine(ctx.graph, ctx.metric, ctx.names, scheme, opts);
    StretchReport report = engine.run_batch(queries);
    EXPECT_FALSE(report.first_error.empty());
    if (threads == 1) {
      reference = report;
    } else {
      expect_same_report(reference, report);
    }
  }
}

/// The acceptance-scale perf check: a 10k-pair batch on a 512-node instance
/// across 4 workers vs the serial loop.  Meaningful only when the hardware
/// has cores to parallelize over, so it skips on single-core runners (the
/// aggregate-equality tests above pin down correctness there).
TEST(QueryEngine, FourWorkersBeatTheSerialLoopOnBigBatches) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads to demonstrate speedup";
  }
  Instance inst = make_instance(Family::kRandom, 512, 4, 57);
  const auto ctx = inst.context(15);
  QueryEngine engine = make_engine(ctx, "stretch6", 4);
  std::vector<RoundtripQuery> queries;
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    auto s = static_cast<NodeId>(rng.index(inst.n()));
    auto t = static_cast<NodeId>(rng.index(inst.n()));
    if (s == t) t = static_cast<NodeId>((t + 1) % inst.n());
    queries.push_back({s, t});
  }
  StretchReport serial = engine.run_serial(queries);
  StretchReport parallel = engine.run_batch(queries);
  expect_same_report(serial, parallel);
  EXPECT_LT(parallel.wall_seconds, serial.wall_seconds)
      << "4 workers should beat the serial loop on a 10k-pair batch";
}

}  // namespace
}  // namespace rtr
