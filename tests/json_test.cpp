// Round-trip tests for the shared JSON model (src/util/json.h) now that it
// backs both the bench artifacts and the rtr_routed wire responses.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/json.h"

namespace rtr {
namespace {

TEST(JsonTest, ScalarRoundTrip) {
  Json doc{JsonObject{}};
  doc.set("null", Json{nullptr});
  doc.set("true", true);
  doc.set("false", false);
  doc.set("int", static_cast<std::int64_t>(-1234567890123LL));
  doc.set("double", 3.25);
  doc.set("string", std::string("hello \"world\"\n"));

  const Json back = Json::parse(doc.dump());
  EXPECT_TRUE(back.at("null").is_null());
  EXPECT_EQ(back.at("true").as_bool(), true);
  EXPECT_EQ(back.at("false").as_bool(), false);
  EXPECT_EQ(back.at("int").as_int(), -1234567890123LL);
  EXPECT_EQ(back.at("double").as_double(), 3.25);
  EXPECT_EQ(back.at("string").as_string(), "hello \"world\"\n");
  EXPECT_EQ(back, doc);
}

TEST(JsonTest, Int64ExtremesSurviveRoundTrip) {
  Json doc{JsonObject{}};
  doc.set("min", std::numeric_limits<std::int64_t>::min());
  doc.set("max", std::numeric_limits<std::int64_t>::max());
  const Json back = Json::parse(doc.dump());
  EXPECT_TRUE(back.at("min").is_int());
  EXPECT_TRUE(back.at("max").is_int());
  EXPECT_EQ(back.at("min").as_int(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(back.at("max").as_int(), std::numeric_limits<std::int64_t>::max());
}

TEST(JsonTest, DoublesKeepTypeMarker) {
  // Integral-valued doubles must re-parse as doubles, not int64 -- the bench
  // gate compares qps cells numerically and relies on this.
  Json doc{JsonObject{}};
  doc.set("qps", 125000.0);
  const std::string text = doc.dump();
  const Json back = Json::parse(text);
  EXPECT_TRUE(back.at("qps").is_double());
  EXPECT_EQ(back.at("qps").as_double(), 125000.0);
}

TEST(JsonTest, NestedContainersRoundTrip) {
  JsonArray arr;
  arr.emplace_back(static_cast<std::int64_t>(1));
  arr.emplace_back("two");
  Json inner{JsonObject{}};
  inner.set("k", true);
  arr.emplace_back(std::move(inner));

  Json doc{JsonObject{}};
  doc.set("list", Json{std::move(arr)});
  doc.set("empty_list", Json{JsonArray{}});
  doc.set("empty_obj", Json{JsonObject{}});

  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back, doc);
  EXPECT_EQ(back.at("list").as_array().size(), 3u);
  EXPECT_EQ(back.at("list").as_array()[2].at("k").as_bool(), true);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json doc{JsonObject{}};
  doc.set("zeta", 1);
  doc.set("alpha", 2);
  doc.set("mid", 3);
  const std::string text = doc.dump();
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mid"));
  EXPECT_EQ(Json::parse(text), doc);
}

TEST(JsonTest, EscapesControlAndUnicode) {
  Json doc{JsonObject{}};
  doc.set("ctl", std::string("\x01\x02 tab\t"));
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\t"), std::string::npos);
  EXPECT_EQ(Json::parse(text).at("ctl").as_string(), "\x01\x02 tab\t");
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
}

TEST(JsonTest, SetReplacesExistingKey) {
  Json doc{JsonObject{}};
  doc.set("k", 1);
  doc.set("k", 2);
  EXPECT_EQ(doc.as_object().size(), 1u);
  EXPECT_EQ(doc.at("k").as_int(), 2);
}

TEST(JsonTest, AtThrowsOnMissingKeyAndHasReports) {
  Json doc{JsonObject{}};
  doc.set("present", 1);
  EXPECT_TRUE(doc.has("present"));
  EXPECT_FALSE(doc.has("absent"));
  EXPECT_THROW(static_cast<void>(doc.at("absent")), JsonError);
}

}  // namespace
}  // namespace rtr
