#include <gtest/gtest.h>

#include "net/simulator.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

// A deliberately broken scheme for failure-injection tests: forwards in a
// two-node cycle forever, or emits an unknown port.
struct BrokenScheme {
  enum class Failure { kLoop, kBadPort };
  Failure failure;
  const Digraph* g;

  struct Header {
    NodeName dest = kNoNode;
  };
  Header make_packet(NodeName dest) const { return Header{dest}; }
  void prepare_return(Header&) const {}
  std::int64_t header_bits(const Header&) const { return 8; }
  Decision forward(NodeId at, Header&) const {
    if (failure == Failure::kBadPort) return Decision::forward_on(999999);
    // Loop: always take the first out edge.
    return Decision::forward_on(g->out_edges(at)[0].port);
  }
};

TEST(Simulator, HopBudgetCatchesForwardingLoops) {
  Instance inst = make_instance(Family::kRandom, 20, 3, 1);
  BrokenScheme scheme{BrokenScheme::Failure::kLoop, &inst.graph};
  auto res = simulate_roundtrip(inst.graph, scheme, 0, 5, inst.names.name_of(5));
  EXPECT_FALSE(res.ok());
  EXPECT_FALSE(res.delivered_out);
}

TEST(Simulator, UnknownPortThrows) {
  Instance inst = make_instance(Family::kRandom, 20, 3, 2);
  BrokenScheme scheme{BrokenScheme::Failure::kBadPort, &inst.graph};
  EXPECT_THROW(simulate_roundtrip(inst.graph, scheme, 0, 5, inst.names.name_of(5)),
               std::logic_error);
}

// A correct trivial scheme on a two-node graph used to probe the simulator's
// bookkeeping precisely.
struct TwoNodeScheme {
  const Digraph* g;
  struct Header {
    NodeName dest;
    NodeName src = kNoNode;
    bool returning = false;
  };
  Header make_packet(NodeName dest) const { return Header{dest, kNoNode, false}; }
  void prepare_return(Header& h) const { h.returning = true; }
  std::int64_t header_bits(const Header&) const { return 17; }
  Decision forward(NodeId at, Header& h) const {
    if (h.src == kNoNode) h.src = at == 0 ? 0 : 1;  // identity names
    NodeName target = h.returning ? h.src : h.dest;
    if (at == target) return Decision::deliver_here();
    return Decision::forward_on(g->out_edges(at)[0].port);
  }
};

TEST(Simulator, CountsHopsAndLengthsPerLeg) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 7);
  Digraph g = b.freeze();
  TwoNodeScheme scheme{&g};
  auto res = simulate_roundtrip(g, scheme, 0, 1, 1);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.out_length, 5);
  EXPECT_EQ(res.back_length, 7);
  EXPECT_EQ(res.out_hops, 1);
  EXPECT_EQ(res.back_hops, 1);
  EXPECT_EQ(res.max_header_bits, 17);
}

TEST(Simulator, RecordsPathsWhenAsked) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 7);
  Digraph g = b.freeze();
  TwoNodeScheme scheme{&g};
  SimOptions opt;
  opt.record_paths = true;
  auto res = simulate_roundtrip(g, scheme, 0, 1, 1, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.out_path, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(res.back_path, (std::vector<NodeId>{1, 0}));
}

TEST(Simulator, SchemeHandleTypeErasure) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 7);
  Digraph g = b.freeze();
  auto scheme = std::make_shared<TwoNodeScheme>(TwoNodeScheme{&g});
  // TwoNodeScheme has no table_stats; wrap manually instead.
  auto run = [&](NodeId s, NodeId t) {
    return simulate_roundtrip(g, *scheme, s, t, static_cast<NodeName>(t));
  };
  auto res = run(0, 1);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.roundtrip_length(), 12);
}

}  // namespace
}  // namespace rtr
