// Failure injection at the scheme boundary: corrupted headers and misuse
// must surface as exceptions (or clean non-delivery), never as silent
// forwarding loops.
#include <gtest/gtest.h>

#include "core/exstretch.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "net/simulator.h"
#include "rtz/rtz3_scheme.h"
#include "test_support.h"

namespace rtr {
namespace {

using ::rtr::testing::Instance;
using ::rtr::testing::make_instance;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inst_ = make_instance(Family::kRandom, 40, 4, 77);
    Rng rng(78);
    s6_ = std::make_unique<Stretch6Scheme>(inst_.graph, *inst_.metric,
                                           inst_.names, rng);
    ex_ = std::make_unique<ExStretchScheme>(inst_.graph, *inst_.metric,
                                            inst_.names, rng);
    poly_ = std::make_unique<PolyStretchScheme>(inst_.graph, *inst_.metric,
                                                inst_.names);
    rtz_ = std::make_unique<Rtz3Scheme>(inst_.graph, *inst_.metric,
                                        inst_.names, rng);
  }
  Instance inst_;
  std::unique_ptr<Stretch6Scheme> s6_;
  std::unique_ptr<ExStretchScheme> ex_;
  std::unique_ptr<PolyStretchScheme> poly_;
  std::unique_ptr<Rtz3Scheme> rtz_;
};

TEST_F(FailureInjectionTest, CorruptModeThrowsEverywhere) {
  {
    auto h = s6_->make_packet(inst_.names.name_of(5));
    h.mode = static_cast<Stretch6Scheme::Mode>(200);
    EXPECT_THROW((void)s6_->forward(0, h), std::logic_error);
  }
  {
    auto h = ex_->make_packet(inst_.names.name_of(5));
    h.mode = static_cast<ExStretchScheme::Mode>(200);
    EXPECT_THROW((void)ex_->forward(0, h), std::logic_error);
  }
  {
    auto h = poly_->make_packet(inst_.names.name_of(5));
    h.mode = static_cast<PolyStretchScheme::Mode>(200);
    EXPECT_THROW((void)poly_->forward(0, h), std::logic_error);
  }
  {
    auto h = rtz_->make_packet(inst_.names.name_of(5));
    h.mode = static_cast<Rtz3Scheme::Mode>(200);
    EXPECT_THROW((void)rtz_->forward(0, h), std::logic_error);
  }
}

TEST_F(FailureInjectionTest, ForeignTreeLegIsRejected) {
  // Hand the poly scheme a leg naming a tree the current node is not in.
  auto h = poly_->make_packet(inst_.names.name_of(5));
  (void)poly_->forward(0, h);  // establish real state at the source
  // Find a node outside the leg's tree and make it "receive" the packet.
  const DoubleTree& tree = poly_->hierarchy().tree(h.leg.tree);
  NodeId outsider = kNoNode;
  for (NodeId v = 0; v < inst_.n(); ++v) {
    if (!tree.contains(v)) {
      outsider = v;
      break;
    }
  }
  if (outsider == kNoNode) GTEST_SKIP() << "level tree spans V here";
  EXPECT_THROW((void)poly_->forward(outsider, h), std::logic_error);
}

TEST_F(FailureInjectionTest, TamperedWaypointStackFailsLoudly) {
  // Route a packet to its destination normally, then corrupt the return
  // stack: the inbound trip must throw or fail to deliver, never loop.
  NodeId s = 0, t = 17;
  auto h = ex_->make_packet(inst_.names.name_of(t));
  NodeId at = s;
  for (int guard = 0; guard < 16 * inst_.n(); ++guard) {
    Decision d = ex_->forward(at, h);
    if (d.deliver) break;
    const Edge* e = inst_.graph.edge_by_port(at, d.port);
    ASSERT_NE(e, nullptr);
    at = e->to;
  }
  ASSERT_EQ(at, t);
  ex_->prepare_return(h);
  if (h.stack.empty()) GTEST_SKIP() << "local-only chain, nothing to corrupt";
  h.stack.back().back_label.dfs_in += 9999;  // corrupt the retrace label
  bool threw = false;
  bool delivered_at_source = false;
  for (int guard = 0; guard < 16 * inst_.n(); ++guard) {
    Decision d{};
    try {
      d = ex_->forward(at, h);
    } catch (const std::logic_error&) {
      threw = true;
      break;
    }
    if (d.deliver) {
      delivered_at_source = at == s;
      break;
    }
    const Edge* e = inst_.graph.edge_by_port(at, d.port);
    if (e == nullptr) {
      threw = true;
      break;
    }
    at = e->to;
  }
  EXPECT_TRUE(threw || !delivered_at_source)
      << "corrupted stack silently produced a correct-looking delivery";
}

TEST_F(FailureInjectionTest, UnknownNameIsRejectedAtPacketCreation) {
  EXPECT_THROW((void)rtz_->make_packet(static_cast<NodeName>(1 << 20)),
               std::out_of_range);
}

}  // namespace
}  // namespace rtr
