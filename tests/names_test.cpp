#include <gtest/gtest.h>

#include "core/names.h"

namespace rtr {
namespace {

TEST(Names, IdentityRoundTrips) {
  auto names = NameAssignment::identity(10);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(names.name_of(v), v);
    EXPECT_EQ(names.id_of(v), v);
  }
}

TEST(Names, RandomIsABijection) {
  Rng rng(1);
  auto names = NameAssignment::random(100, rng);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(names.id_of(names.name_of(v)), v);
  }
}

TEST(Names, ExplicitPermutation) {
  NameAssignment names({2, 0, 1});
  EXPECT_EQ(names.name_of(0), 2);
  EXPECT_EQ(names.id_of(2), 0);
  EXPECT_EQ(names.id_of(0), 1);
}

TEST(Names, RejectsNonPermutations) {
  EXPECT_THROW(NameAssignment({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(NameAssignment({0, 3, 1}), std::invalid_argument);
  EXPECT_THROW(NameAssignment({-1, 0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace rtr
