// Live-churn serving: the dynamic_names.cpp story without stopping the
// world.
//
// dynamic_names.cpp rebuilds tables between epochs with no traffic in
// flight.  Here the EpochManager (src/serve) keeps answering name-keyed
// roundtrips WHILE the next epoch's tables are preprocessed on a background
// thread: sessions address peers by their topology-independent names the
// whole time, never observe a rebuild, and never re-resolve an address --
// the paper's Section 6 claim as an availability property.
#include <atomic>
#include <iostream>
#include <thread>

#include "core/names.h"
#include "graph/churn.h"
#include "graph/generators.h"
#include "serve/epoch_manager.h"

int main() {
  using namespace rtr;

  const NodeId n = 150;
  Rng name_rng(7);
  // Names chosen once; every epoch serves this exact permutation.
  NameAssignment names = NameAssignment::random(n, name_rng);

  Rng topo_rng(100);
  GraphBuilder builder = random_strongly_connected(n, 4.0, 6, topo_rng);
  builder.assign_adversarial_ports(topo_rng);
  Digraph g = builder.freeze();

  EpochManager mgr("stretch6", names, Digraph(g));

  // A client thread that never pauses: roundtrips addressed by NAME.  Every
  // answer is a typed ServingResult -- when something fails, the client sees
  // *why* (invalid_name vs unreachable vs scheme_failure), not just a count.
  std::atomic<bool> stop{false};
  std::thread client([&] {
    Rng rng(8);
    while (!stop.load(std::memory_order_relaxed)) {
      auto a = static_cast<NodeName>(rng.index(n));
      auto b = static_cast<NodeName>(rng.index(n));
      if (a == b) continue;
      const ServingResult res = mgr.roundtrip_by_name(a, b);
      if (!res.ok()) {
        std::cerr << "query (" << a << ", " << b << ") failed in epoch "
                  << res.epoch << ": " << serving_error_name(res.error) << " -- "
                  << res.message << "\n";
      }
    }
  });

  Rng churn_rng(9);
  ChurnOptions churn;
  churn.rehome_nodes = 3;
  for (int epoch = 1; epoch <= 3; ++epoch) {
    g = churn_step(g, churn, churn_rng);
    const auto before = mgr.counters().queries;
    mgr.rebuild_now(Digraph(g));
    const auto during = mgr.counters().queries - before;
    std::cout << "epoch " << mgr.epoch() << ": topology churned, rebuilt in "
              << mgr.current()->build_seconds << " s, " << during
              << " queries served during the rebuild\n";
  }

  stop.store(true);
  client.join();

  const auto c = mgr.counters();
  std::cout << "\nserved " << c.queries << " name-keyed roundtrips across "
            << mgr.epoch() + 1 << " epochs, " << c.failures
            << " failures;\nno session ever re-resolved an address -- names "
               "are decoupled from topology.\n";
  return c.failures == 0 ? 0 : 1;
}
