// Two-process serving from ONE physical copy of the routing tables.
//
// The v2 snapshot payload is a relocatable arena: the publisher puts those
// exact bytes into a POSIX shared-memory object, and any number of serving
// processes mmap(2) it read-only and answer roundtrips directly out of the
// shared pages -- no per-process deserialization, no per-process table RAM.
// This is the distribution path EpochManagerOptions::shm_prefix automates;
// here the two halves are spelled out with an explicit fork():
//
//   parent: build -> save v2 snapshot -> publish_snapshot_shm (full CRC
//           sweep, so damaged bytes are never exposed) -> wait for child
//   child:  map_snapshot_shm -> serve roundtrips from the shared mapping,
//           checking every answer against the parent's in-memory tables
//           (inherited copy-on-write, so the comparison is independent)
//
// Exits 0 with a message if this host has no usable POSIX shm (some
// sandboxes), so it stays runnable as a smoke test anywhere.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "graph/generators.h"
#include "io/snapshot.h"
#include "net/scheme.h"

int main() {
  using namespace rtr;

  const NodeId n = 120;
  Rng rng(2003);
  BuildContext ctx = BuildContext::for_graph(
      random_strongly_connected(n, 4.0, 8, rng), /*seed=*/41);
  SchemeHandle built(ctx.graph, ctx.names,
                     SchemeRegistry::global().build("stretch6", ctx));

  const std::string path = "/tmp/rtr_shm_serving_demo.rtrsnap";
  save_snapshot(path, "stretch6", built);  // v2: payload IS the arena

  const std::string shm_name =
      "rtr_demo_epoch_" + std::to_string(::getpid());
  std::string scheme;
  try {
    scheme = publish_snapshot_shm(path, shm_name);
  } catch (const SnapshotIoError& e) {
    std::cout << "skipped: POSIX shm unavailable (" << e.what() << ")\n";
    std::remove(path.c_str());
    return 0;
  }
  std::cout << "publisher: " << path << " -> shm '" << shm_name << "' ("
            << scheme << ", n=" << n << ")\n";
  std::cout.flush();  // or the child inherits (and re-emits) this buffer

  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    unlink_arena_shm(shm_name);
    return 1;
  }

  if (child == 0) {
    // --- serving process: zero-copy attach, O(ms) at any n ---------------
    int status = 0;
    try {
      SchemeHandle attached = map_snapshot_shm(shm_name, "stretch6");
      Rng pick(7);
      int served = 0;
      for (int i = 0; i < 500; ++i) {
        auto s = static_cast<NodeId>(pick.index(n));
        auto t = static_cast<NodeId>(pick.index(n));
        if (s == t) continue;
        const RouteResult shared_ans = attached.roundtrip(s, t);
        const RouteResult local_ans = built.roundtrip(s, t);
        if (!shared_ans.ok() ||
            shared_ans.roundtrip_length() != local_ans.roundtrip_length() ||
            shared_ans.out_hops != local_ans.out_hops ||
            shared_ans.back_hops != local_ans.back_hops) {
          std::cerr << "server: mismatch on " << s << " -> " << t << "\n";
          status = 1;
          break;
        }
        ++served;
      }
      if (status == 0) {
        std::cout << "server (pid " << ::getpid() << "): served " << served
                  << " roundtrips from the shared mapping, all identical to "
                     "the builder's answers\n";
      }
    } catch (const SnapshotError& e) {
      std::cerr << "server: attach failed: " << e.what() << "\n";
      status = 1;
    }
    std::cout.flush();
    std::cerr.flush();
    _exit(status);  // not exit(): no double-run of the parent's atexit state
  }

  int wstatus = 0;
  (void)waitpid(child, &wstatus, 0);
  // Unlink AFTER the server exits purely for demo tidiness: POSIX keeps the
  // pages alive until the last unmap, so a real publisher unlinks as soon as
  // every serving process has attached.
  unlink_arena_shm(shm_name);
  std::remove(path.c_str());

  const bool ok = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
  std::cout << "publisher: server exited " << (ok ? "clean" : "DIRTY")
            << ", shm unlinked\n";
  return ok ? 0 : 1;
}
