// The packet/acknowledgment scenario from the paper's introduction: "This
// would account for a packet and its acknowledgment, for example."
//
// On a Manhattan-street one-way grid (maximally asymmetric: you often cannot
// return the way you came), we run a reliable-delivery protocol: DATA out,
// ACK back, with the roundtrip bounded by the scheme's stretch against the
// best possible tour.  We compare the three TINN schemes on identical
// traffic.
#include <iostream>

#include "core/exstretch.h"
#include "core/names.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "rt/metric.h"
#include "util/stats.h"
#include "util/text_table.h"

namespace {

template <typename Scheme>
void study(const rtr::Digraph& g, const rtr::RoundtripMetric& metric,
           const rtr::NameAssignment& names, const Scheme& scheme,
           double bound, rtr::TextTable& table) {
  using namespace rtr;
  Summary stretch;
  Rng traffic(99);
  int failures = 0;
  for (int i = 0; i < 400; ++i) {
    auto s = static_cast<NodeId>(traffic.index(g.node_count()));
    auto t = static_cast<NodeId>(traffic.index(g.node_count()));
    if (s == t) continue;
    auto res = simulate_roundtrip(g, scheme, s, t, names.name_of(t));
    if (!res.ok()) {
      ++failures;
      continue;
    }
    stretch.add(static_cast<double>(res.roundtrip_length()) /
                static_cast<double>(metric.r(s, t)));
  }
  table.add_row({scheme.name(), fmt_double(stretch.mean()),
                 fmt_double(stretch.max()), fmt_double(bound, 0),
                 fmt_int(scheme.table_stats().max_entries()),
                 fmt_int(failures)});
}

}  // namespace

int main() {
  using namespace rtr;

  Rng rng(31);
  GraphBuilder grid_builder = one_way_grid(14, 14, 4, rng);
  grid_builder.assign_adversarial_ports(rng);
  const Digraph grid = grid_builder.freeze();
  NameAssignment names = NameAssignment::random(grid.node_count(), rng);
  DenseRoundtripMetric metric(grid);

  std::cout << "DATA/ACK roundtrips on a " << grid.node_count()
            << "-node one-way grid (d(u,v) != d(v,u) almost everywhere)\n\n";

  TextTable table({"scheme", "mean stretch", "max stretch", "bound",
                   "max tbl entries", "failures"});

  Stretch6Scheme s6(grid, metric, names, rng);
  study(grid, metric, names, s6, 6, table);

  ExStretchScheme::Options ex_opts;
  ex_opts.k = 3;
  ExStretchScheme ex(grid, metric, names, rng, ex_opts);
  study(grid, metric, names, ex, ex.stretch_bound(), table);

  PolyStretchScheme::Options poly_opts;
  poly_opts.k = 3;
  PolyStretchScheme poly(grid, metric, names, poly_opts);
  study(grid, metric, names, poly, poly.stretch_bound(), table);

  std::cout << table.render();
  return 0;
}
