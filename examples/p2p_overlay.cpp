// Peer-to-peer overlay scenario (the paper's Section 6 motivation: "some of
// the techniques developed here could perhaps be applied to ... routing and
// searching in peer-to-peer networks").
//
// We model an overlay of peers whose link directions and costs are
// asymmetric (upload != download paths), peers self-select arbitrary ids
// (the TINN property -- ids carry no topology), and lookups need an answer
// back (roundtrip).  The stretch-6 scheme plays the role of the overlay's
// routing fabric; we issue a batch of lookups from random requesters to
// random object holders and summarize latency overhead vs an oracle.
#include <iostream>

#include "core/names.h"
#include "core/stretch6.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "rt/metric.h"
#include "util/stats.h"

int main() {
  using namespace rtr;

  // A scale-free overlay: hubs emerge, as in real unstructured overlays.
  Rng rng(77);
  GraphBuilder overlay_builder = scale_free(300, 3, 10, rng);
  overlay_builder.assign_adversarial_ports(rng);
  const Digraph overlay = overlay_builder.freeze();
  NameAssignment peer_ids = NameAssignment::random(overlay.node_count(), rng);
  DenseRoundtripMetric metric(overlay);
  Stretch6Scheme fabric(overlay, metric, peer_ids, rng);

  Summary stretch;
  Summary hops;
  int failures = 0;
  const int lookups = 500;
  for (int i = 0; i < lookups; ++i) {
    auto requester = static_cast<NodeId>(rng.index(overlay.node_count()));
    auto holder = static_cast<NodeId>(rng.index(overlay.node_count()));
    if (requester == holder) continue;
    auto res = simulate_roundtrip(overlay, fabric, requester, holder,
                                  peer_ids.name_of(holder));
    if (!res.ok()) {
      ++failures;
      continue;
    }
    stretch.add(static_cast<double>(res.roundtrip_length()) /
                static_cast<double>(metric.r(requester, holder)));
    hops.add(static_cast<double>(res.out_hops + res.back_hops));
  }

  std::cout << "p2p overlay lookup study (300 peers, " << lookups
            << " lookups)\n"
            << "  failures:          " << failures << "\n"
            << "  lookup stretch:    " << stretch.brief() << "\n"
            << "  lookup hops:       " << hops.brief() << "\n"
            << "  per-peer state:    " << fabric.table_stats().brief() << "\n"
            << "\nEvery peer keeps O~(sqrt n) state yet any peer can reach "
               "any self-chosen id\nwith a bounded round trip -- the paper's "
               "pitch for dynamic networks.\n";
  return failures == 0 ? 0 : 1;
}
