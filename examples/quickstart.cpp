// Quickstart: build a strongly connected digraph, construct the paper's
// stretch-6 TINN scheme, and route a packet (plus its acknowledgment) from a
// source to a destination identified ONLY by its topology-independent name.
// Then the same through the unified runtime API: build any registered scheme
// by name and serve a query batch across the QueryEngine worker pool.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/names.h"
#include "core/stretch6.h"
#include "graph/generators.h"
#include "net/query_engine.h"
#include "net/scheme.h"
#include "net/simulator.h"
#include "rt/metric.h"

int main() {
  using namespace rtr;

  // 1. A 100-node random strongly connected digraph with weights in [1, 8].
  Rng rng(2003);  // PODC 2003
  GraphBuilder builder = random_strongly_connected(100, 4.0, 8, rng);

  // 2. The adversary picks port numbers, then the graph is frozen into its
  //    immutable CSR form (the TINN model; tables build against the frozen
  //    topology).
  builder.assign_adversarial_ports(rng);
  const Digraph graph = builder.freeze();
  NameAssignment names = NameAssignment::random(graph.node_count(), rng);

  // 3. Preprocess: roundtrip metric (APSP) + scheme construction.
  DenseRoundtripMetric metric(graph);
  Stretch6Scheme scheme(graph, metric, names, rng);

  // 4. Route.  The packet enters the network carrying nothing but the
  //    destination's name; tables do the rest, and the ack comes back.
  const NodeId src = 3, dst = 42;
  auto result = simulate_roundtrip(graph, scheme, src, dst, names.name_of(dst));

  std::cout << "routed " << src << " (name " << names.name_of(src) << ") -> "
            << dst << " (name " << names.name_of(dst) << ") and back\n"
            << "  delivered:        " << (result.ok() ? "yes" : "NO") << "\n"
            << "  roundtrip length: " << result.roundtrip_length()
            << " (optimal " << metric.r(src, dst) << ")\n"
            << "  stretch:          "
            << static_cast<double>(result.roundtrip_length()) /
                   static_cast<double>(metric.r(src, dst))
            << "  (paper bound: 6)\n"
            << "  header bits used: " << result.max_header_bits << "\n"
            << "  table sizes:      " << scheme.table_stats().brief() << "\n";

  // 5. The same, production-style: a registry BuildContext over a fresh
  //    instance, any scheme by name, and a parallel query batch.
  BuildContext ctx = BuildContext::for_graph(
      random_strongly_connected(100, 4.0, 8, rng), /*seed=*/2003);
  QueryEngineOptions engine_opts;
  engine_opts.threads = 4;
  QueryEngine engine = QueryEngine::from_registry(
      SchemeRegistry::global(), "stretch6", ctx, engine_opts);
  rtr::BatchOptions batch;
  batch.pair_budget = 2000;
  batch.seed = 1;
  StretchReport report = engine.run_sampled(batch);
  std::cout << "engine batch (" << engine.worker_count() << " workers): "
            << report.pairs << " pairs, " << report.failures << " failures, "
            << "mean stretch " << report.mean_stretch << ", max "
            << report.max_stretch << " (bound "
            << engine.scheme().stretch_bound() << ")\n";
  return result.ok() && report.failures == 0 ? 0 : 1;
}
