// Fig. 10 reproduction: a PolynomialStretch route inside one cluster, always
// through the cluster center.
//
// The paper's Fig. 10 shows the packet visiting intermediate nodes v_0, v_1,
// ... inside a double-tree, with every hop passing through the (shaded)
// center.  We route on a one-way grid, record the node sequence, and mark
// every visit to a cluster center.
#include <iostream>

#include "core/names.h"
#include "core/polystretch.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "rt/metric.h"

int main() {
  using namespace rtr;

  Rng rng(10);
  GraphBuilder builder = one_way_grid(10, 10, 3, rng);
  builder.assign_adversarial_ports(rng);
  const Digraph graph = builder.freeze();
  NameAssignment names = NameAssignment::random(graph.node_count(), rng);
  DenseRoundtripMetric metric(graph);

  PolyStretchScheme::Options opts;
  opts.k = 3;
  PolyStretchScheme scheme(graph, metric, names, opts);
  const CoverHierarchy& hierarchy = scheme.hierarchy();

  // Collect every cluster center in the hierarchy for display.
  std::vector<char> is_center(static_cast<std::size_t>(graph.node_count()), 0);
  for (std::int32_t level = 0; level < hierarchy.level_count(); ++level) {
    for (const DoubleTree& t : hierarchy.level(level).trees) {
      is_center[static_cast<std::size_t>(t.center())] = 1;
    }
  }

  const NodeId src = 0, dst = graph.node_count() - 1;
  SimOptions sim;
  sim.record_paths = true;
  auto result =
      simulate_roundtrip(graph, scheme, src, dst, names.name_of(dst), sim);

  std::cout << "outbound route on the 10x10 one-way grid (" << result.out_hops
            << " hops; '(C)' marks double-tree centers):\n  ";
  for (std::size_t i = 0; i < result.out_path.size(); ++i) {
    NodeId v = result.out_path[i];
    std::cout << v << (is_center[static_cast<std::size_t>(v)] ? "(C)" : "");
    if (i + 1 < result.out_path.size()) std::cout << " -> ";
    if (i % 8 == 7) std::cout << "\n  ";
  }
  std::cout << "\n\nroundtrip length " << result.roundtrip_length()
            << " vs optimal " << metric.r(src, dst) << " => stretch "
            << static_cast<double>(result.roundtrip_length()) /
                   static_cast<double>(metric.r(src, dst))
            << " (bound " << scheme.stretch_bound() << ")\n"
            << "hierarchy levels: " << hierarchy.level_count() << "\n";
  return result.ok() ? 0 : 1;
}
