// The paper's core motivation (Section 1 and Section 6): "the strength of
// the TINN model is that node names are decoupled from network topology".
//
// We simulate topology churn: the same 120 nodes with the same self-kept
// names, while the link structure is re-drawn three times (an ISP re-homing
// circuits, an overlay re-peering).  After each change the routing tables
// are rebuilt -- but NO packet source ever learns a new address for its
// peers: destinations are still named by the same topology-independent
// names.  A topology-DEPENDENT scheme would have invalidated every address
// at every step (we show this with the substrate's R3 labels, which do
// change).
#include <iostream>

#include "core/names.h"
#include "core/stretch6.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "rt/metric.h"
#include "util/stats.h"

int main() {
  using namespace rtr;

  const NodeId n = 120;
  Rng name_rng(7);
  // Names chosen once, kept across every topology epoch.
  NameAssignment names = NameAssignment::random(n, name_rng);

  // Traffic matrix fixed up-front, expressed in NAMES (what applications
  // hold): pairs (requester, responder).
  Rng traffic_rng(8);
  std::vector<std::pair<NodeName, NodeName>> sessions;
  for (int i = 0; i < 200; ++i) {
    sessions.emplace_back(static_cast<NodeName>(traffic_rng.index(n)),
                          static_cast<NodeName>(traffic_rng.index(n)));
  }

  RtzAddress previous_epoch_r3{};
  for (int epoch = 0; epoch < 3; ++epoch) {
    Rng topo_rng(100 + static_cast<std::uint64_t>(epoch));
    GraphBuilder builder = random_strongly_connected(n, 4.0, 6, topo_rng);
    builder.assign_adversarial_ports(topo_rng);
    Digraph g = builder.freeze();
    DenseRoundtripMetric metric(g);
    Rng scheme_rng(200 + static_cast<std::uint64_t>(epoch));
    Stretch6Scheme scheme(g, metric, names, scheme_rng);

    Summary stretch;
    int delivered = 0;
    int eligible = 0;
    for (auto [src_name, dst_name] : sessions) {
      if (src_name == dst_name) continue;
      ++eligible;
      NodeId src = names.id_of(src_name), dst = names.id_of(dst_name);
      auto res = simulate_roundtrip(g, scheme, src, dst, dst_name);
      if (!res.ok()) continue;
      ++delivered;
      stretch.add(static_cast<double>(res.roundtrip_length()) /
                  static_cast<double>(metric.r(src, dst)));
    }

    const RtzAddress& r3_now = scheme.substrate().address_of_name(names.name_of(0));
    const bool label_changed =
        epoch > 0 && (r3_now.center_index != previous_epoch_r3.center_index ||
                      r3_now.center_label.dfs_in != previous_epoch_r3.center_label.dfs_in);
    previous_epoch_r3 = r3_now;

    std::cout << "epoch " << epoch << ": topology re-drawn, tables rebuilt\n"
              << "  sessions delivered by NAME: " << delivered << "/"
              << eligible << "\n"
              << "  stretch: " << stretch.brief() << "\n"
              << "  node 0's topology-dependent R3 label "
              << (epoch == 0 ? "recorded"
                             : (label_changed ? "CHANGED (as expected)"
                                              : "unchanged by luck"))
              << " -- applications never saw it\n";
  }
  std::cout << "\nApplications addressed peers by stable TINN names across "
               "every epoch;\nall topology-dependent state stayed inside the "
               "routing tables.\n";
  return 0;
}
