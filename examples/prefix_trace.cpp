// Fig. 5 reproduction: the ExStretch waypoint chain with growing matched
// prefixes.
//
// The paper's Fig. 5 shows a packet for destination "2357" hopping between
// dictionary nodes whose held blocks match prefixes "2", "23", "235", then
// the destination.  This example routes a packet with k = 4 digits, records
// the waypoints it visits, and prints each one's name in base-q digits with
// the matched prefix highlighted.
#include <iomanip>
#include <iostream>

#include "core/exstretch.h"
#include "core/names.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "rt/metric.h"

namespace {

std::string digits_of(const rtr::Alphabet& alpha, rtr::NodeName u) {
  std::string out;
  for (int i = 0; i < alpha.k(); ++i) {
    out += std::to_string(alpha.digit(u, i));
  }
  return out;
}

}  // namespace

int main() {
  using namespace rtr;

  Rng rng(5);
  GraphBuilder builder = random_strongly_connected(256, 4.0, 4, rng);
  builder.assign_adversarial_ports(rng);
  const Digraph graph = builder.freeze();
  NameAssignment names = NameAssignment::random(graph.node_count(), rng);
  DenseRoundtripMetric metric(graph);

  ExStretchScheme::Options opts;
  opts.k = 4;  // 4-digit names, as in the figure
  ExStretchScheme scheme(graph, metric, names, rng, opts);
  const Alphabet& alpha = scheme.alphabet();

  const NodeId src = 11, dst = 200;
  SimOptions sim;
  sim.record_paths = true;
  auto result = simulate_roundtrip(graph, scheme, src, dst, names.name_of(dst),
                                   sim);
  std::cout << "destination name " << names.name_of(dst) << " = digits "
            << digits_of(alpha, names.name_of(dst)) << " (base " << alpha.q()
            << ")\n\noutbound node visits (waypoints are where the matched "
               "prefix grows):\n";
  int best_match = -1;
  for (NodeId v : result.out_path) {
    const NodeName vn = names.name_of(v);
    const int match = alpha.lcp(vn, names.name_of(dst));
    const bool waypoint = match > best_match;
    if (waypoint) best_match = match;
    std::cout << "  " << (waypoint ? "* " : "  ") << std::setw(5) << vn
              << "  digits " << digits_of(alpha, vn) << "  matched prefix "
              << match << (waypoint ? "  <-- waypoint" : "") << "\n";
  }
  std::cout << "\nroundtrip stretch: "
            << static_cast<double>(result.roundtrip_length()) /
                   static_cast<double>(metric.r(src, dst))
            << " (scheme bound " << scheme.stretch_bound() << ")\n";
  return result.ok() ? 0 : 1;
}
