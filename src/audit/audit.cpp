#include "audit/audit.h"

#include <utility>

#include "util/json.h"
#include "net/scheme.h"

namespace rtr {

void AuditReport::check(const std::string& invariant, bool ok,
                        std::string detail) {
  AuditEntry e;
  e.component = current_component();
  e.invariant = invariant;
  e.ok = ok;
  e.detail = std::move(detail);
  if (!ok) ++failed_;
  entries_.push_back(std::move(e));
}

void AuditReport::measure(const std::string& invariant, double measured,
                          double budget, std::string detail) {
  AuditEntry e;
  e.component = current_component();
  e.invariant = invariant;
  e.ok = measured <= budget;
  e.has_measure = true;
  e.measured = measured;
  e.budget = budget;
  e.detail = std::move(detail);
  if (!e.ok) ++failed_;
  entries_.push_back(std::move(e));
}

void AuditReport::push_component(std::string name) {
  component_stack_.push_back(std::move(name));
}

void AuditReport::pop_component() { component_stack_.pop_back(); }

std::string AuditReport::current_component() const {
  std::string joined;
  for (const std::string& c : component_stack_) {
    if (!joined.empty()) joined += '/';
    joined += c;
  }
  return joined;
}

std::string AuditReport::summary(bool verbose) const {
  std::string out;
  for (const AuditEntry& e : entries_) {
    if (e.ok && !verbose) continue;
    out += e.ok ? "  ok   " : "  FAIL ";
    out += e.component + " :: " + e.invariant;
    if (e.has_measure) {
      out += " (measured " + std::to_string(e.measured) + ", budget " +
             std::to_string(e.budget) + ")";
    }
    if (!e.detail.empty()) out += " -- " + e.detail;
    out += '\n';
  }
  out += "audit: " + std::to_string(total_count() - failed_count()) + "/" +
         std::to_string(total_count()) + " invariants hold";
  if (failed_count() > 0) {
    out += ", " + std::to_string(failed_count()) + " FAILED";
  }
  out += '\n';
  return out;
}

std::string AuditReport::to_json_string() const {
  Json doc{JsonObject{}};
  doc.set("schema", "rtr-audit/1");
  doc.set("ok", ok());
  doc.set("checks", total_count());
  doc.set("failures", failed_count());
  JsonArray entries;
  entries.reserve(entries_.size());
  for (const AuditEntry& e : entries_) {
    Json je{JsonObject{}};
    je.set("component", e.component);
    je.set("invariant", e.invariant);
    je.set("ok", e.ok);
    if (e.has_measure) {
      je.set("measured", e.measured);
      je.set("budget", e.budget);
    }
    if (!e.detail.empty()) je.set("detail", e.detail);
    entries.push_back(std::move(je));
  }
  doc.set("entries", std::move(entries));
  return doc.dump();
}

void audit_handle(const SchemeHandle& handle, AuditReport& report) {
  handle.graph().audit(report);
  {
    auto s = report.scope("names");
    handle.names().audit(report);
  }
  {
    auto s = report.scope("handle");
    report.check("names-match-graph",
                 handle.names().node_count() == handle.graph().node_count(),
                 "name permutation size vs graph node count");
  }
  handle.scheme().audit(report);
}

}  // namespace rtr
