// Snapshot-file audit: framing, per-section CRC, and cross-section
// referential integrity, all without constructing the scheme (the scheme
// section's payload is validated by its CRC here and decoded only by a real
// load).  Corruption never throws -- it becomes failed report entries, so
// one damaged section does not hide the health of the others.
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "core/names.h"
#include "graph/digraph.h"
#include "io/snapshot.h"

namespace rtr {

namespace {

/// Decodes one CRC-valid section payload into a structure, translating any
/// decode exception into a failed entry.  Empty optional on failure.
template <typename F>
auto decode_section(AuditReport& report, const std::string& section_name,
                    const std::vector<std::uint8_t>& payload, F decode)
    -> std::optional<decltype(decode(std::declval<SnapshotReader&>()))> {
  try {
    SnapshotReader r(payload.data(), payload.size());
    auto out = decode(r);
    r.expect_exhausted(section_name + " section");
    report.check("decodes", true);
    return out;
  } catch (const std::exception& e) {
    report.check("decodes", false, e.what());
    return std::nullopt;
  }
}

/// Re-reads one section's payload bytes at the offset the probe recorded.
/// Empty optional-style return: `ok` false when the file shrank or the read
/// failed (a racing writer) -- the caller records that, not an exception.
bool read_payload(const std::string& path, const SnapshotSectionStatus& s,
                  std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.resize(static_cast<std::size_t>(s.bytes));
  in.seekg(static_cast<std::streamoff>(s.payload_offset));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  return static_cast<bool>(in);
}

}  // namespace

void audit_snapshot_file(const std::string& path, AuditReport& report) {
  auto scope = report.scope("snapshot");

  SnapshotFileStatus status;
  try {
    status = probe_snapshot(path);
  } catch (const SnapshotError& e) {
    report.check("readable", false, e.what());
    return;
  }
  report.check("readable", true);
  report.check("framing", status.framing_ok, status.framing_error);

  // Per-section CRC entries even when framing died mid-walk: whatever the
  // probe reached is reported.
  for (const auto& s : status.sections) {
    auto sec = report.scope(s.name);
    report.check("crc", s.crc_ok,
                 s.crc_ok ? ""
                          : "stored " + std::to_string(s.stored_crc) +
                                " != actual " + std::to_string(s.actual_crc));
  }
  if (!status.framing_ok) return;

  const SnapshotSectionStatus* graph_sec = nullptr;
  const SnapshotSectionStatus* names_sec = nullptr;
  const SnapshotSectionStatus* scheme_sec = nullptr;
  for (const auto& s : status.sections) {
    if (s.name == "graph") graph_sec = &s;
    if (s.name == "names") names_sec = &s;
    if (s.name == "scheme") scheme_sec = &s;
  }
  report.check("sections-complete",
               graph_sec != nullptr && names_sec != nullptr &&
                   scheme_sec != nullptr,
               "a v1 snapshot carries graph, names, and scheme sections");

  // Cross-section integrity: decode the graph and names sections (cheap
  // relative to scheme construction), run their own structural audits, and
  // cross-check the header's advertised counts.
  std::optional<Digraph> graph;
  if (graph_sec != nullptr && graph_sec->crc_ok) {
    std::vector<std::uint8_t> payload;
    if (read_payload(path, *graph_sec, payload)) {
      auto sec_scope = report.scope("graph");
      graph = decode_section(report, graph_sec->name, payload,
                             [](SnapshotReader& r) { return load_digraph(r); });
    } else {
      auto sec_scope = report.scope("graph");
      report.check("decodes", false, "file changed while auditing");
    }
    // Digraph::audit scopes itself as "graph", so run it un-nested.
    if (graph) graph->audit(report);
  }

  std::optional<NameAssignment> names;
  if (names_sec != nullptr && names_sec->crc_ok) {
    auto sec_scope = report.scope("names");
    std::vector<std::uint8_t> payload;
    if (read_payload(path, *names_sec, payload)) {
      names = decode_section(
          report, names_sec->name, payload,
          [](SnapshotReader& r) { return NameAssignment::load(r); });
      if (names) names->audit(report);
    } else {
      report.check("decodes", false, "file changed while auditing");
    }
  }

  if (graph) {
    report.check(
        "header-counts-match-graph",
        graph->node_count() == status.node_count &&
            graph->edge_count() == status.edge_count,
        "header advertises n=" + std::to_string(status.node_count) + " m=" +
            std::to_string(status.edge_count) + ", graph section holds n=" +
            std::to_string(graph->node_count()) + " m=" +
            std::to_string(graph->edge_count()));
  }
  if (graph && names) {
    report.check("names-match-graph",
                 names->node_count() == graph->node_count(),
                 "name permutation size vs graph section node count");
  }
}

}  // namespace rtr
