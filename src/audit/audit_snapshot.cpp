// Snapshot-file audit: framing, per-section CRC, and cross-section
// referential integrity, all without constructing the scheme (the scheme
// section's payload is validated by its CRC here and decoded only by a real
// load).  Corruption never throws -- it becomes failed report entries, so
// one damaged section does not hide the health of the others.
//
// v1 files are probed and decoded section by section (owned buffers -- the
// streamed format cannot be viewed in place).  v2 files are mmap(2)'d and
// audited entirely through FlatVec views over the mapping: CRCs recompute
// against the mapped bytes and the graph/names structural audits run on
// view-backed structures, so the auditor never materializes an owning copy
// of the arena.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "core/names.h"
#include "graph/digraph.h"
#include "io/arena.h"
#include "io/snapshot.h"

namespace rtr {

namespace {

/// Decodes one CRC-valid section payload into a structure, translating any
/// decode exception into a failed entry.  Empty optional on failure.
template <typename F>
auto decode_section(AuditReport& report, const std::string& section_name,
                    const std::vector<std::uint8_t>& payload, F decode)
    -> std::optional<decltype(decode(std::declval<SnapshotReader&>()))> {
  try {
    SnapshotReader r(payload.data(), payload.size());
    auto out = decode(r);
    r.expect_exhausted(section_name + " section");
    report.check("decodes", true);
    return out;
  } catch (const std::exception& e) {
    report.check("decodes", false, e.what());
    return std::nullopt;
  }
}

/// Re-reads one section's payload bytes at the offset the probe recorded.
/// Empty optional-style return: `ok` false when the file shrank or the read
/// failed (a racing writer) -- the caller records that, not an exception.
bool read_payload(const std::string& path, const SnapshotSectionStatus& s,
                  std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.resize(static_cast<std::size_t>(s.bytes));
  in.seekg(static_cast<std::streamoff>(s.payload_offset));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  return static_cast<bool>(in);
}

/// Reads the version field of the file's prologue, or 0 when the file is
/// unreadable, too short, or does not start with the snapshot magic (those
/// all fall through to the v1 probe path, which reports the exact problem).
std::uint32_t peek_file_version(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::uint8_t buf[kArenaMagicSize + 4];
  in.read(reinterpret_cast<char*>(buf), sizeof(buf));
  if (!in) return 0;
  if (std::memcmp(buf, snapshot_magic(), kArenaMagicSize) != 0) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | buf[kArenaMagicSize + static_cast<std::size_t>(i)];
  }
  return v;
}

/// The v2 branch: audits the arena through the file mapping alone.  Every
/// CRC recomputes against the mapped bytes and the graph/names structural
/// audits run on from_arena views -- no owned copy of any section is made.
void audit_arena_snapshot(const std::string& path, AuditReport& report) {
  std::shared_ptr<const ArenaStorage> storage;
  try {
    storage = map_arena_file(path);
  } catch (const SnapshotError& e) {
    report.check("readable", false, e.what());
    return;
  }
  report.check("readable", true);

  ArenaView view;
  try {
    view = ArenaView(storage);
  } catch (const SnapshotError& e) {
    report.check("framing", false, e.what());
    return;
  }
  report.check("framing", true);

  // Per-section CRC entries straight off the mapping.
  for (const ArenaDirEntry& e : view.entries()) {
    auto sec = report.scope(e.name_str());
    const std::uint32_t actual =
        crc32(storage->data() + e.offset,
              static_cast<std::size_t>(e.byte_size()));
    report.check("crc", actual == e.crc,
                 "stored " + std::to_string(e.crc) + " != actual " +
                     std::to_string(actual));
  }

  // A v2 snapshot carries the graph arrays, the name permutation, and at
  // least one scheme-owned section (arena tables or the "scheme/blob"
  // v1-encoded fallback).
  bool has_scheme = false;
  for (const ArenaDirEntry& e : view.entries()) {
    if (e.name_str().rfind("scheme/", 0) == 0) has_scheme = true;
  }
  report.check(
      "sections-complete",
      view.has("graph/offset") && view.has("names/name_of") && has_scheme,
      "a v2 snapshot carries graph/*, names/*, and scheme/* sections");

  // Structural audits over zero-copy views.  from_arena validates counts
  // against the header, so "decodes" here also covers the v1 path's
  // header-counts-match-graph cross-check.
  std::optional<Digraph> graph;
  {
    auto sec_scope = report.scope("graph");
    try {
      graph = Digraph::from_arena(view);
      report.check("decodes", true);
    } catch (const std::exception& e) {
      report.check("decodes", false, e.what());
    }
  }
  // Digraph::audit scopes itself as "graph", so run it un-nested.
  if (graph) graph->audit(report);

  std::optional<NameAssignment> names;
  {
    auto sec_scope = report.scope("names");
    try {
      names = NameAssignment::from_arena(view);
      report.check("decodes", true);
    } catch (const std::exception& e) {
      report.check("decodes", false, e.what());
    }
    if (names) names->audit(report);
  }

  if (graph) {
    report.check(
        "header-counts-match-graph",
        static_cast<std::uint32_t>(graph->node_count()) ==
                view.header().node_count &&
            static_cast<std::uint64_t>(graph->edge_count()) ==
                view.header().edge_count,
        "header advertises n=" + std::to_string(view.header().node_count) +
            " m=" + std::to_string(view.header().edge_count) +
            ", graph sections hold n=" + std::to_string(graph->node_count()) +
            " m=" + std::to_string(graph->edge_count()));
  }
  if (graph && names) {
    report.check("names-match-graph",
                 names->node_count() == graph->node_count(),
                 "name permutation size vs graph section node count");
  }
}

}  // namespace

void audit_snapshot_file(const std::string& path, AuditReport& report) {
  auto scope = report.scope("snapshot");

  if (peek_file_version(path) == kSnapshotVersionV2) {
    audit_arena_snapshot(path, report);
    return;
  }

  SnapshotFileStatus status;
  try {
    status = probe_snapshot(path);
  } catch (const SnapshotError& e) {
    report.check("readable", false, e.what());
    return;
  }
  report.check("readable", true);
  report.check("framing", status.framing_ok, status.framing_error);

  // Per-section CRC entries even when framing died mid-walk: whatever the
  // probe reached is reported.
  for (const auto& s : status.sections) {
    auto sec = report.scope(s.name);
    report.check("crc", s.crc_ok,
                 s.crc_ok ? ""
                          : "stored " + std::to_string(s.stored_crc) +
                                " != actual " + std::to_string(s.actual_crc));
  }
  if (!status.framing_ok) return;

  const SnapshotSectionStatus* graph_sec = nullptr;
  const SnapshotSectionStatus* names_sec = nullptr;
  const SnapshotSectionStatus* scheme_sec = nullptr;
  for (const auto& s : status.sections) {
    if (s.name == "graph") graph_sec = &s;
    if (s.name == "names") names_sec = &s;
    if (s.name == "scheme") scheme_sec = &s;
  }
  report.check("sections-complete",
               graph_sec != nullptr && names_sec != nullptr &&
                   scheme_sec != nullptr,
               "a v1 snapshot carries graph, names, and scheme sections");

  // Cross-section integrity: decode the graph and names sections (cheap
  // relative to scheme construction), run their own structural audits, and
  // cross-check the header's advertised counts.
  std::optional<Digraph> graph;
  if (graph_sec != nullptr && graph_sec->crc_ok) {
    std::vector<std::uint8_t> payload;
    if (read_payload(path, *graph_sec, payload)) {
      auto sec_scope = report.scope("graph");
      graph = decode_section(report, graph_sec->name, payload,
                             [](SnapshotReader& r) { return load_digraph(r); });
    } else {
      auto sec_scope = report.scope("graph");
      report.check("decodes", false, "file changed while auditing");
    }
    // Digraph::audit scopes itself as "graph", so run it un-nested.
    if (graph) graph->audit(report);
  }

  std::optional<NameAssignment> names;
  if (names_sec != nullptr && names_sec->crc_ok) {
    auto sec_scope = report.scope("names");
    std::vector<std::uint8_t> payload;
    if (read_payload(path, *names_sec, payload)) {
      names = decode_section(
          report, names_sec->name, payload,
          [](SnapshotReader& r) { return NameAssignment::load(r); });
      if (names) names->audit(report);
    } else {
      report.check("decodes", false, "file changed while auditing");
    }
  }

  if (graph) {
    report.check(
        "header-counts-match-graph",
        graph->node_count() == status.node_count &&
            graph->edge_count() == status.edge_count,
        "header advertises n=" + std::to_string(status.node_count) + " m=" +
            std::to_string(status.edge_count) + ", graph section holds n=" +
            std::to_string(graph->node_count()) + " m=" +
            std::to_string(graph->edge_count()));
  }
  if (graph && names) {
    report.check("names-match-graph",
                 names->node_count() == graph->node_count(),
                 "name permutation size vs graph section node count");
  }
}

}  // namespace rtr
