// The deep invariant auditor: static verification that a built scheme (or an
// on-disk snapshot) actually satisfies the paper's structural guarantees
// before it is allowed to serve traffic.
//
// The paper's bounds are *structural* -- O~(sqrt n) ball sizes, O~(sqrt n)-bit
// dictionaries, well-formed double trees, port-consistent CSR adjacency --
// but end-to-end query stretch is the only thing the serving path can observe.
// This subsystem closes that gap: every scheme substructure implements the
// Auditable contract
//
//     void audit(AuditReport& report) const;
//
// recording one typed entry per invariant (pass/fail, and measured-vs-budget
// numbers for the quantitative ones), so
//
//   * `rtr_cli audit <scheme>|<file.rtrsnap>` proves an artifact internally
//     consistent with a non-zero exit on any violation,
//   * the debug-build RTR_AUDIT_ON_BUILD hook audits every registry-built or
//     snapshot-loaded scheme for free in the test suite, and
//   * `rtr_bench --audit` archives invariant headroom (measured vs budget)
//     as AUDIT_<rev>.json next to the nightly BENCH_full_*.json.
//
// Budgets are configurable (AuditBudgets): the defaults mirror the
// construction-time slack constants, so a freshly built scheme always passes
// while a corrupted or stale artifact does not.
#ifndef RTR_AUDIT_AUDIT_H
#define RTR_AUDIT_AUDIT_H

#include <cstdint>
#include <string>
#include <vector>

namespace rtr {

class SchemeHandle;

/// Quantitative budgets the auditor checks measured structure sizes against.
/// Defaults mirror the builders' own slack constants (a freshly built scheme
/// passes by construction); tighten them to probe headroom, or loosen them
/// when auditing schemes built with non-default options.
struct AuditBudgets {
  /// Balls and clusters must have <= ball_slack * sqrt(n ln n) members
  /// (Lemma 2's O~(sqrt n); the rtz3 builder resamples centers until its
  /// own size_slack -- default 6.0 -- holds, so this is not vacuous).
  double ball_slack = 6.0;
  /// Each node joins <= tree_slack * 2k n^{1/k} double trees per hierarchy
  /// level (Theorem 13(3)).
  double tree_slack = 2.0;
  /// Each node holds <= block_slack * log2(max(n,2)) dictionary blocks
  /// (Lemma 1 / Lemma 4's O(log n); the builder starts at 1.25x and
  /// densifies by 1.5x per retry, so 8x covers every realized assignment).
  double block_slack = 8.0;
  /// Lemma 14 addresses list <= label_slack * floor(log2 n) light hops.
  double label_slack = 1.0;
};

/// One audited invariant: a component path, the invariant's name, pass/fail,
/// and -- for quantitative checks -- the measured value and its budget.
struct AuditEntry {
  std::string component;  // e.g. "graph/csr", "rtz3/balls", "snapshot/graph"
  std::string invariant;  // e.g. "row-monotone", "ball-size"
  bool ok = false;
  bool has_measure = false;
  double measured = 0.0;  // meaningful when has_measure
  double budget = 0.0;    // meaningful when has_measure
  std::string detail;     // first observed violation, or a short note
};

/// Collects audit entries with a component-path context stack.  Checks are
/// cheap to record; the report owns presentation (summary text and the JSON
/// document CI archives).
class AuditReport {
 public:
  AuditReport() = default;
  explicit AuditReport(AuditBudgets budgets) : budgets_(budgets) {}

  [[nodiscard]] const AuditBudgets& budgets() const { return budgets_; }

  /// Scoped component path segment: entries recorded while the scope lives
  /// are prefixed with `name` (joined by '/').
  class Scope {
   public:
    Scope(AuditReport& report, std::string name) : report_(report) {
      report_.push_component(std::move(name));
    }
    ~Scope() { report_.pop_component(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    AuditReport& report_;
  };
  [[nodiscard]] Scope scope(std::string name) {
    return Scope(*this, std::move(name));
  }

  /// Records a boolean invariant.  `detail` should describe the first
  /// violation when ok is false (it is kept verbatim in the JSON document).
  void check(const std::string& invariant, bool ok, std::string detail = {});

  /// Records a quantitative invariant: passes iff measured <= budget.  The
  /// measured/budget pair is archived so CI can track invariant headroom.
  void measure(const std::string& invariant, double measured, double budget,
               std::string detail = {});

  [[nodiscard]] bool ok() const { return failed_ == 0; }
  [[nodiscard]] std::int64_t total_count() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  [[nodiscard]] std::int64_t failed_count() const { return failed_; }
  [[nodiscard]] const std::vector<AuditEntry>& entries() const {
    return entries_;
  }

  /// Human-readable report: one line per failure (or per entry when
  /// `verbose`), then a pass/fail tally.
  [[nodiscard]] std::string summary(bool verbose = false) const;

  /// The serialized rtr-audit/1 JSON document (same writer as BENCH_*.json):
  /// {schema, ok, checks, failures, entries:[{component, invariant, ok,
  /// measured?, budget?, detail?}]}.
  [[nodiscard]] std::string to_json_string() const;

 private:
  friend class Scope;
  void push_component(std::string name);
  void pop_component();
  [[nodiscard]] std::string current_component() const;

  AuditBudgets budgets_;
  std::vector<std::string> component_stack_;
  std::vector<AuditEntry> entries_;
  std::int64_t failed_ = 0;
};

/// Audits any sorted-key dictionary exposing size()/key_at(i): keys must be
/// strictly ascending (sortedness + uniqueness), the probe contract every
/// binary-searched table in the repo relies on.
template <typename Dict>
void audit_sorted_dict(AuditReport& report, const std::string& invariant,
                       const Dict& dict) {
  bool sorted = true;
  bool unique = true;
  std::string detail;
  for (std::size_t i = 1; i < dict.size(); ++i) {
    if (dict.key_at(i) < dict.key_at(i - 1)) {
      sorted = false;
      detail = "key[" + std::to_string(i) + "] out of order";
      break;
    }
    if (dict.key_at(i) == dict.key_at(i - 1)) {
      unique = false;
      detail = "duplicate key at index " + std::to_string(i);
      break;
    }
  }
  report.check(invariant, sorted && unique, std::move(detail));
}

/// Audits a full built artifact: graph, naming, and the scheme's own tables
/// (Scheme::audit, which concrete schemes override with their deep checks).
void audit_handle(const SchemeHandle& handle, AuditReport& report);

/// Audits a snapshot file *without* fully deserializing it: framing, every
/// section's CRC, and cross-section referential integrity (header counts vs
/// the graph section's actual structure, names permutation bijectivity).
/// Never throws on corrupt content -- corruption becomes failed entries.
void audit_snapshot_file(const std::string& path, AuditReport& report);

}  // namespace rtr

#endif  // RTR_AUDIT_AUDIT_H
