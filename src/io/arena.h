// The relocatable snapshot arena: snapshot format v2's payload layer.
//
// A v2 snapshot is ONE pointer-free, offset-based, 8-byte-aligned region:
//
//   offset  field
//   ------  ------------------------------------------------------------
//   0       magic: the 8 bytes "RTRSNAP\0" (same as v1)
//   8       format version (u32) = 2
//   12      padding (u32) = 0
//   16      ArenaFileHeader (fixed-size POD, CRC'd):
//             scheme name (64 bytes, NUL padded), ABI layout tag,
//             node/edge counts, directory offset/count, directory CRC
//   120     sections: raw typed element arrays, each 8-byte aligned,
//             in directory order, zero-padded between
//   ...     directory: dir_count x ArenaDirEntry
//             {name[32], offset, count, elem_size, crc}
//
// Because every reference is a file offset and every array element is a
// fixed-width POD, the region is *relocatable*: load-in-place is open +
// mmap + header/CRC check + fixup of offsets into FlatVec views -- O(ms) at
// any n.  The same bytes can live in an owned heap buffer (today's path), a
// file mapping, or a POSIX shared-memory object that multiple serving
// processes attach read-only (epoch swap = remap; one physical copy).
//
// Integrity policy: the mapped fast path verifies the header and directory
// CRCs only (O(1)); owned loads and tooling (`rtr_cli snapshot map-info`,
// the snapshot auditor) additionally verify every section CRC
// (verify_section_crcs).  The layout tag pins the host ABI -- endianness and
// the sizes of the fundamental types the views reinterpret -- so a file from
// an incompatible host fails loudly instead of misreading.
#ifndef RTR_IO_ARENA_H
#define RTR_IO_ARENA_H

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "io/snapshot_format.h"
#include "util/flat_vec.h"

namespace rtr {

inline constexpr std::uint32_t kArenaFormatVersion = 2;
inline constexpr std::size_t kArenaAlign = 8;
inline constexpr std::size_t kArenaMagicSize = 8;
inline constexpr std::size_t kArenaSectionNameMax = 31;
inline constexpr std::size_t kArenaSchemeNameMax = 63;

/// The 8 magic bytes every snapshot (v1 and v2) starts with: "RTRSNAP\0".
[[nodiscard]] const std::uint8_t* snapshot_magic();

/// A structurally invalid arena region: misaligned or out-of-bounds section
/// offset, overlapping sections, bad directory, ABI mismatch.  Subtype of
/// SnapshotFormatError so cache-miss fallbacks keep catching the root type.
class SnapshotArenaError final : public SnapshotFormatError {
 public:
  using SnapshotFormatError::SnapshotFormatError;
};

/// ABI fingerprint baked into every v2 file: little-endian byte order plus
/// the fixed sizes of the fundamental types the views reinterpret.  A file
/// written by an incompatible host fails the tag check up front.
[[nodiscard]] std::uint32_t arena_layout_tag();

/// On-disk directory entry (POD, written verbatim).
struct ArenaDirEntry {
  char name[32];           // section name, NUL padded
  std::uint64_t offset;    // from file start; kArenaAlign-aligned
  std::uint64_t count;     // element count
  std::uint32_t elem_size; // bytes per element
  std::uint32_t crc;       // CRC-32 over the count*elem_size payload bytes

  [[nodiscard]] std::string name_str() const;
  [[nodiscard]] std::uint64_t byte_size() const {
    return count * static_cast<std::uint64_t>(elem_size);
  }
};
static_assert(sizeof(ArenaDirEntry) == 56);
static_assert(std::is_trivially_copyable_v<ArenaDirEntry>);

/// On-disk file header at offset 16 (POD, written verbatim, CRC'd with the
/// header_crc field zeroed).
struct ArenaFileHeader {
  char scheme[64];          // registry scheme name, NUL padded
  std::uint32_t layout_tag; // must equal arena_layout_tag()
  std::uint32_t node_count;
  std::uint64_t edge_count;
  std::uint64_t dir_offset; // from file start
  std::uint32_t dir_count;
  std::uint32_t dir_crc;    // CRC-32 over the directory entries
  std::uint32_t header_crc;
  std::uint32_t pad;

  [[nodiscard]] std::string scheme_str() const;
};
static_assert(sizeof(ArenaFileHeader) == 104);
static_assert(std::is_trivially_copyable_v<ArenaFileHeader>);

/// Byte offset where sections begin (magic + version + pad + header).
inline constexpr std::size_t kArenaSectionStart =
    kArenaMagicSize + 8 + sizeof(ArenaFileHeader);

/// Owner of arena bytes: an owned heap buffer, a file mapping, or a shared
/// memory mapping.  Classes holding FlatVec views over an arena keep a
/// shared_ptr to the storage so the bytes outlive every view.
class ArenaStorage {
 public:
  virtual ~ArenaStorage() = default;
  ArenaStorage(const ArenaStorage&) = delete;
  ArenaStorage& operator=(const ArenaStorage&) = delete;

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// True for mmap-backed storage (file or shm), false for owned buffers.
  [[nodiscard]] virtual bool is_mapped() const = 0;

 protected:
  ArenaStorage(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  const std::uint8_t* data_;
  std::size_t size_;
};

/// Wraps a heap buffer (the bit-compatible owning backend).
[[nodiscard]] std::shared_ptr<const ArenaStorage> make_owned_arena(
    std::vector<std::uint8_t> bytes);

/// mmap(2)s a file read-only (load-in-place).  Throws SnapshotIoError.
[[nodiscard]] std::shared_ptr<const ArenaStorage> map_arena_file(
    const std::string& path);

/// Attaches a POSIX shared-memory object read-only (MAP_SHARED): multiple
/// processes serve from one physical copy.  Throws SnapshotIoError.
[[nodiscard]] std::shared_ptr<const ArenaStorage> map_arena_shm(
    const std::string& shm_name);

/// Creates/overwrites a POSIX shared-memory object with the given bytes
/// (the publishing side of shm distribution).  Throws SnapshotIoError.
void publish_arena_shm(const std::string& shm_name, const std::uint8_t* data,
                       std::size_t size);

/// Removes a published shared-memory object (best effort; missing is fine).
void unlink_arena_shm(const std::string& shm_name);

/// Builds an arena image section by section.  Sections are appended in call
/// order (deterministic bytes for deterministic inputs), 8-aligned with zero
/// padding, and CRC'd individually.
class ArenaWriter {
 public:
  ArenaWriter();

  /// Appends `count` elements of a trivially copyable type with alignment
  /// <= kArenaAlign.  Section names are unique, non-empty, and at most
  /// kArenaSectionNameMax bytes.
  template <typename T>
  void add(const std::string& name, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= kArenaAlign);
    add_raw(name, reinterpret_cast<const std::uint8_t*>(data),
            count, sizeof(T));
  }
  template <typename T>
  void add(const std::string& name, const FlatVec<T>& v) {
    add(name, v.data(), v.size());
  }
  template <typename T>
  void add(const std::string& name, const std::vector<T>& v) {
    add(name, v.data(), v.size());
  }
  /// A byte-blob section (elem_size 1), e.g. a nested v1-encoded payload.
  void add_bytes(const std::string& name, const std::uint8_t* data,
                 std::size_t size) {
    add_raw(name, data, size, 1);
  }

  /// Stamps header + directory and returns the complete file image.
  [[nodiscard]] std::vector<std::uint8_t> finalize(const std::string& scheme,
                                                   std::int64_t node_count,
                                                   std::int64_t edge_count);

 private:
  void add_raw(const std::string& name, const std::uint8_t* data,
               std::size_t count, std::size_t elem_size);

  std::vector<std::uint8_t> bytes_;  // prologue placeholder + sections
  std::vector<ArenaDirEntry> dir_;
};

/// A parsed, validated arena: resolves named sections to FlatVec views.
/// Construction validates the *framing* -- magic, version, layout tag,
/// header CRC, directory bounds/CRC, per-section alignment + bounds +
/// non-overlap -- throwing typed SnapshotErrors.  Section payload CRCs are
/// verified separately (verify_section_crcs) so the mapped hot path stays
/// O(1) while owned loads and tooling stay end-to-end checked.
class ArenaView {
 public:
  ArenaView() = default;
  explicit ArenaView(std::shared_ptr<const ArenaStorage> storage);

  [[nodiscard]] const ArenaFileHeader& header() const { return header_; }
  [[nodiscard]] std::string scheme() const { return header_.scheme_str(); }
  [[nodiscard]] std::uint64_t file_bytes() const { return storage_->size(); }
  [[nodiscard]] const std::vector<ArenaDirEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const ArenaDirEntry& entry(const std::string& name) const;

  /// A typed view of one section; element size must match exactly.
  template <typename T>
  [[nodiscard]] FlatVec<T> vec(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= kArenaAlign);
    const ArenaDirEntry& e = entry(name);
    if (e.elem_size != sizeof(T)) {
      throw SnapshotArenaError("arena: section '" + name + "' has elem_size " +
                               std::to_string(e.elem_size) + ", expected " +
                               std::to_string(sizeof(T)));
    }
    return FlatVec<T>::view(
        reinterpret_cast<const T*>(storage_->data() + e.offset),
        static_cast<std::size_t>(e.count));
  }

  /// Same, with an exact element-count requirement (cross-structure checks:
  /// a CRC-valid header whose counts disagree with the arrays is corrupt).
  template <typename T>
  [[nodiscard]] FlatVec<T> vec(const std::string& name,
                               std::uint64_t expected_count) const {
    const ArenaDirEntry& e = entry(name);
    if (e.count != expected_count) {
      throw SnapshotArenaError(
          "arena: section '" + name + "' holds " + std::to_string(e.count) +
          " elements, header implies " + std::to_string(expected_count));
    }
    return vec<T>(name);
  }

  /// A SnapshotReader over a byte-blob section (nested v1 payloads).
  [[nodiscard]] SnapshotReader reader(const std::string& name) const;

  /// Recomputes every section CRC against the directory (owned loads and
  /// tooling; the mapped fast path skips it by design).
  void verify_section_crcs() const;

  /// The storage keeping every view alive; classes embedding views copy it.
  [[nodiscard]] const std::shared_ptr<const ArenaStorage>& storage() const {
    return storage_;
  }

 private:
  std::shared_ptr<const ArenaStorage> storage_;
  ArenaFileHeader header_{};
  std::vector<ArenaDirEntry> entries_;
};

}  // namespace rtr

#endif  // RTR_IO_ARENA_H
