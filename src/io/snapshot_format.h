// The low-level binary snapshot encoding: a little-endian byte stream with
// typed primitives, CRC-32 integrity, and loud typed errors.
//
// This header is deliberately free of any graph/scheme dependency so that
// every scheme translation unit can implement its save/load hooks against it
// without layering cycles; the file framing (magic, version, named CRC'd
// sections) lives one level up in io/snapshot.h.
//
// Encoding rules, shared by every writer in the repo:
//   * all integers little-endian, fixed width (u8/u32/u64/i32/i64),
//   * strings and vectors are a u64 count followed by the elements,
//   * associative containers are written in sorted key order, so that
//     save -> load -> save is byte-identical (the conformance suite's
//     differential check relies on this).
#ifndef RTR_IO_SNAPSHOT_FORMAT_H
#define RTR_IO_SNAPSHOT_FORMAT_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace rtr {

/// Root of every snapshot failure; catch this to treat a cache file as
/// "absent" and fall back to a fresh build.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The file could not be opened, read, or written.
class SnapshotIoError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// Structurally malformed content (bad magic, impossible counts, trailing
/// or missing bytes inside a section).
class SnapshotFormatError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The file ends before the advertised content does.
class SnapshotTruncatedError final : public SnapshotFormatError {
 public:
  using SnapshotFormatError::SnapshotFormatError;
};

/// The file's format version is not the one this binary writes.
class SnapshotVersionError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// A section's CRC-32 does not match its payload.
class SnapshotChecksumError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The snapshot holds a different scheme than the caller asked for.
class SnapshotSchemeMismatchError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte range.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                                  std::uint32_t seed = 0);

/// Appends typed primitives to an in-memory byte buffer (the caller frames
/// the buffer into sections and writes it to disk).
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  /// Appends raw bytes verbatim (section framing).
  // GCC 12 mis-models the inlined vector insert growing from empty and
  // reports a spurious -Wstringop-overflow ("region of size 0"); suppress
  // just that diagnostic here (false positive, see GCC PR 105329).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
  void raw(const std::uint8_t* data, std::size_t size) {
    if (size == 0) return;
    bytes_.insert(bytes_.end(), data, data + size);
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// u64 count followed by f(writer, element) for each element.
  template <typename T, typename F>
  void vec(const std::vector<T>& v, F f) {
    u64(v.size());
    for (const auto& x : v) f(*this, x);
  }

  void vec_i32(const std::vector<std::int32_t>& v) { bulk_vec(v); }
  void vec_i64(const std::vector<std::int64_t>& v) { bulk_vec(v); }
  void vec_u64(const std::vector<std::uint64_t>& v) { bulk_vec(v); }

  /// Any map/unordered_map with integral-ish comparable keys, written in
  /// sorted key order for deterministic re-saves.
  template <typename Map, typename KeyF, typename ValueF>
  void sorted_map(const Map& m, KeyF kf, ValueF vf) {
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    for (const auto& [k, v] : m) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    u64(keys.size());
    for (const auto& k : keys) {
      kf(*this, k);
      vf(*this, m.at(k));
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// Fixed-width integer vectors: one memcpy on little-endian hosts, the
  /// element loop elsewhere.  The on-disk bytes are identical either way.
  template <typename T>
  void bulk_vec(const std::vector<T>& v) {
    u64(v.size());
    if constexpr (std::endian::native == std::endian::little) {
      raw(reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T));
    } else {
      for (T x : v) append_le(static_cast<std::make_unsigned_t<T>>(x));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Reads typed primitives from a bounded byte range; every access is bounds
/// checked and running past the end throws SnapshotTruncatedError.
class SnapshotReader {
 public:
  SnapshotReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(read_le<std::uint32_t>());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>());
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t len = u64();
    check_count(len, 1);
    need(static_cast<std::size_t>(len));
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  /// Reads a u64 count and calls f(reader) that many times, collecting the
  /// results.  `min_elem_bytes` guards against absurd counts in corrupt files
  /// before any allocation happens.
  template <typename T, typename F>
  [[nodiscard]] std::vector<T> vec(F f, std::size_t min_elem_bytes = 1) {
    const std::uint64_t count = u64();
    check_count(count, min_elem_bytes);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(f(*this));
    return out;
  }

  [[nodiscard]] std::vector<std::int32_t> vec_i32() {
    return bulk_vec<std::int32_t>();
  }
  [[nodiscard]] std::vector<std::int64_t> vec_i64() {
    return bulk_vec<std::int64_t>();
  }
  [[nodiscard]] std::vector<std::uint64_t> vec_u64() {
    return bulk_vec<std::uint64_t>();
  }

  /// Reads a u64 count of (key, value) pairs into any map type.
  template <typename Map, typename KeyF, typename ValueF>
  [[nodiscard]] Map map(KeyF kf, ValueF vf, std::size_t min_elem_bytes = 2) {
    const std::uint64_t count = u64();
    check_count(count, min_elem_bytes);
    Map m;
    m.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      auto k = kf(*this);
      m.emplace(std::move(k), vf(*this));
    }
    return m;
  }

  /// Bounds-checked bulk copy out of the stream: the single place raw bytes
  /// leave a payload.  Checks BEFORE copying, so a truncated file or a
  /// short-mapped arena region can never be read past its end.
  void read_exact(void* dst, std::size_t n) {
    need(n);
    if (n != 0) std::memcpy(dst, data_ + pos_, n);  // rtr-lint: checked-copy
    pos_ += n;
  }

  /// Advances past `n` bytes without decoding them.
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Asserts the payload was consumed exactly; leftover bytes mean the file
  /// and this binary disagree about the encoding.
  void expect_exhausted(const std::string& what) const {
    if (pos_ != size_) {
      throw SnapshotFormatError("snapshot: " + what + " has " +
                                std::to_string(size_ - pos_) +
                                " unconsumed trailing bytes");
    }
  }

 private:
  /// Mirror of SnapshotWriter::bulk_vec.
  template <typename T>
  [[nodiscard]] std::vector<T> bulk_vec() {
    const std::uint64_t count = u64();
    check_count(count, sizeof(T));
    std::vector<T> out(static_cast<std::size_t>(count));
    if constexpr (std::endian::native == std::endian::little) {
      read_exact(out.data(), static_cast<std::size_t>(count) * sizeof(T));
    } else {
      for (auto& x : out) x = static_cast<T>(read_le<std::make_unsigned_t<T>>());
    }
    return out;
  }

  template <typename T>
  [[nodiscard]] T read_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw SnapshotTruncatedError(
          "snapshot: truncated (need " + std::to_string(n) + " bytes at " +
          std::to_string(pos_) + ", have " + std::to_string(size_ - pos_) +
          ")");
    }
  }

  /// An element count cannot exceed the bytes left to read.
  void check_count(std::uint64_t count, std::size_t min_elem_bytes) const {
    if (min_elem_bytes > 0 &&
        count > (size_ - pos_) / std::max<std::size_t>(min_elem_bytes, 1)) {
      throw SnapshotTruncatedError(
          "snapshot: element count " + std::to_string(count) +
          " exceeds the remaining payload");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace rtr

#endif  // RTR_IO_SNAPSHOT_FORMAT_H
