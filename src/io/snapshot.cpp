#include "io/snapshot.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <utility>

namespace rtr {

namespace {

constexpr char kSectionGraph[] = "graph";
constexpr char kSectionNames[] = "names";
constexpr char kSectionScheme[] = "scheme";

/// Reads a whole file in one gulp; SnapshotIoError when it cannot be opened.
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw SnapshotIoError("snapshot: cannot open '" + path + "' for reading");
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw SnapshotIoError("snapshot: cannot stat '" + path + "'");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) {
    throw SnapshotIoError("snapshot: read error on '" + path + "'");
  }
  return bytes;
}

/// One named CRC'd section framed inside the file writer.
void frame_section(SnapshotWriter& file, const std::string& name,
                   const SnapshotWriter& payload) {
  file.str(name);
  file.u64(payload.size());
  const auto& bytes = payload.bytes();
  file.raw(bytes.data(), bytes.size());
  file.u32(crc32(bytes.data(), bytes.size()));
}

struct ParsedSection {
  std::string name;
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

struct ParsedSnapshot {
  SnapshotInfo info;
  std::vector<std::uint8_t> bytes;       // backing storage for the sections
  std::vector<ParsedSection> sections;   // views into `bytes`

  [[nodiscard]] const ParsedSection& section(const std::string& name) const {
    for (const auto& s : sections) {
      if (s.name == name) return s;
    }
    throw SnapshotFormatError("snapshot: missing required section '" + name +
                              "'");
  }
};

/// Reads the version field after checking the magic; works on both formats
/// (they share the first 12 bytes of framing).
std::uint32_t peek_version(const std::vector<std::uint8_t>& bytes,
                           const std::string& path) {
  if (bytes.size() < kSnapshotMagicSize + 4 ||
      std::memcmp(bytes.data(), snapshot_magic(), kSnapshotMagicSize) != 0) {
    throw SnapshotFormatError("snapshot: '" + path +
                              "' does not start with the RTRSNAP magic");
  }
  SnapshotReader r(bytes.data() + kSnapshotMagicSize, 4);
  return r.u32();
}

/// Parses v1 framing and verifies every checksum; no scheme state is built.
ParsedSnapshot parse_file(std::vector<std::uint8_t> file_bytes,
                          const std::string& path) {
  ParsedSnapshot parsed;
  parsed.bytes = std::move(file_bytes);
  parsed.info.file_bytes = parsed.bytes.size();

  SnapshotReader r(parsed.bytes.data(), parsed.bytes.size());
  if (parsed.bytes.size() < kSnapshotMagicSize ||
      std::memcmp(parsed.bytes.data(), snapshot_magic(), kSnapshotMagicSize) !=
          0) {
    throw SnapshotFormatError("snapshot: '" + path +
                              "' does not start with the RTRSNAP magic");
  }
  r.skip(kSnapshotMagicSize);

  parsed.info.version = r.u32();
  if (parsed.info.version != kSnapshotVersionV1) {
    throw SnapshotVersionError(
        "snapshot: format version " + std::to_string(parsed.info.version) +
        " not supported (this binary reads versions " +
        std::to_string(kSnapshotVersionV1) + " and " +
        std::to_string(kSnapshotVersionV2) + "); rebuild and re-save");
  }

  // Header payload, CRC'd so a corrupted scheme name cannot masquerade as a
  // legitimate mismatch.
  const std::size_t header_begin = r.position();
  parsed.info.scheme = r.str();
  parsed.info.node_count = static_cast<NodeId>(r.u32());
  parsed.info.edge_count = static_cast<std::int64_t>(r.u64());
  const std::uint32_t section_count = r.u32();
  const std::size_t header_end = r.position();
  const std::uint32_t stored_header_crc = r.u32();
  const std::uint32_t actual_header_crc =
      crc32(parsed.bytes.data() + header_begin, header_end - header_begin);
  if (stored_header_crc != actual_header_crc) {
    throw SnapshotChecksumError("snapshot: header CRC mismatch in '" + path +
                                "'");
  }

  for (std::uint32_t i = 0; i < section_count; ++i) {
    ParsedSection s;
    s.name = r.str();
    s.size = r.u64();
    if (s.size > r.remaining()) {
      throw SnapshotTruncatedError("snapshot: section '" + s.name +
                                   "' advertises " + std::to_string(s.size) +
                                   " bytes but only " +
                                   std::to_string(r.remaining()) + " remain");
    }
    s.data = parsed.bytes.data() + r.position();
    r.skip(static_cast<std::size_t>(s.size));
    s.crc = r.u32();
    const std::uint32_t actual = crc32(s.data, static_cast<std::size_t>(s.size));
    if (s.crc != actual) {
      throw SnapshotChecksumError("snapshot: CRC mismatch in section '" +
                                  s.name + "' of '" + path + "'");
    }
    parsed.info.sections.push_back(
        SnapshotSectionInfo{s.name, s.size, s.crc});
    parsed.sections.push_back(s);
  }
  r.expect_exhausted("file");
  return parsed;
}

}  // namespace

// ------------------------------------------------------- graph and names ---

void save_digraph(SnapshotWriter& w, const Digraph& g) {
  w.u32(static_cast<std::uint32_t>(g.node_count()));
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto edges = g.out_edges(u);
    w.u32(static_cast<std::uint32_t>(edges.size()));
    for (const Edge& e : edges) {
      w.i32(e.to);
      w.i64(e.weight);
      w.i32(e.port);
    }
  }
}

Digraph load_digraph(SnapshotReader& r) {
  const auto n = static_cast<NodeId>(r.u32());
  if (n < 0) throw SnapshotFormatError("snapshot: negative node count");
  // Every node contributes at least a u32 degree field, so a count beyond
  // remaining/4 is corrupt; reject before Digraph(n) allocates for it.
  if (static_cast<std::uint64_t>(n) > r.remaining() / 4) {
    throw SnapshotTruncatedError(
        "snapshot: node count exceeds the remaining payload");
  }
  GraphBuilder builder(n);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t degree = r.u32();
    if (degree > r.remaining() / 16) {  // each edge is 16 encoded bytes
      throw SnapshotTruncatedError(
          "snapshot: edge count exceeds the remaining payload");
    }
    edges.clear();
    edges.reserve(degree);
    for (std::uint32_t i = 0; i < degree; ++i) {
      Edge e;
      e.to = r.i32();
      e.weight = r.i64();
      e.port = r.i32();
      edges.push_back(e);
    }
    try {
      builder.add_edges_with_ports(u, edges);
    } catch (const std::exception& e) {
      // Structurally invalid edge data that still passed the CRC: surface
      // it as a snapshot error, not a bare invalid_argument.
      throw SnapshotFormatError(std::string("snapshot: bad edge: ") + e.what());
    }
  }
  try {
    // freeze() preserves row order, so a loaded graph re-saves to the exact
    // bytes it came from; its extra validation (parallel edges) is surfaced
    // as a snapshot error like the per-edge checks above.
    return builder.freeze();
  } catch (const std::exception& e) {
    throw SnapshotFormatError(std::string("snapshot: bad edge: ") + e.what());
  }
}

namespace {

NameAssignment load_names_checked(SnapshotReader& r) {
  try {
    return NameAssignment::load(r);
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotFormatError(std::string("snapshot: bad name permutation: ") +
                              e.what());
  }
}

}  // namespace

// -------------------------------------------------------- save/load/info ---

namespace {

/// Write-then-rename so a crashed or concurrent writer never leaves a
/// half-written file where a reader expects a snapshot.  The scratch name
/// is unique per process *and* per call, so concurrent savers targeting
/// the same cache path (several cold serving processes racing on a miss)
/// each publish a complete file; last rename wins.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(save_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotIoError("snapshot: cannot open '" + tmp + "' for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw SnapshotIoError("snapshot: write error on '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotIoError("snapshot: cannot rename '" + tmp + "' to '" + path +
                          "'");
  }
}

/// The complete v1 file image (streamed sections).
std::vector<std::uint8_t> build_v1_image(const std::string& scheme_name,
                                         const SchemeHandle& handle,
                                         const SchemeRegistry& registry) {
  const SchemeRegistry::Saver& saver = registry.saver(scheme_name);

  SnapshotWriter graph_section;
  save_digraph(graph_section, handle.graph());
  SnapshotWriter names_section;
  handle.names().save(names_section);
  SnapshotWriter scheme_section;
  saver(handle.scheme(), scheme_section);

  SnapshotWriter file;
  file.raw(snapshot_magic(), kSnapshotMagicSize);
  file.u32(kSnapshotVersionV1);
  SnapshotWriter header;
  header.str(scheme_name);
  header.u32(static_cast<std::uint32_t>(handle.graph().node_count()));
  header.u64(static_cast<std::uint64_t>(handle.graph().edge_count()));
  header.u32(3);  // section count
  file.raw(header.bytes().data(), header.size());
  file.u32(crc32(header.bytes().data(), header.size()));

  frame_section(file, kSectionGraph, graph_section);
  frame_section(file, kSectionNames, names_section);
  frame_section(file, kSectionScheme, scheme_section);
  return file.bytes();
}

/// The complete v2 file image: graph + names as flat sections, the scheme
/// through its arena hooks when registered, its v1 byte encoding in a
/// "scheme/blob" section otherwise.
std::vector<std::uint8_t> build_v2_image(const std::string& scheme_name,
                                         const SchemeHandle& handle,
                                         const SchemeRegistry& registry) {
  ArenaWriter w;
  handle.graph().save_arena(w);
  handle.names().save_arena(w);
  if (registry.arena_supported(scheme_name)) {
    registry.arena_saver(scheme_name)(handle.scheme(), w);
  } else {
    SnapshotWriter blob;
    registry.saver(scheme_name)(handle.scheme(), blob);
    w.add_bytes("scheme/blob", blob.bytes().data(), blob.size());
  }
  return w.finalize(scheme_name, handle.graph().node_count(),
                    handle.graph().edge_count());
}

/// Constructs a ready-to-serve handle over a validated arena view.  Shared
/// by the owned (load_snapshot) and mapped (map_snapshot*) paths; `where`
/// names the source for error messages.
SchemeHandle handle_from_arena(const ArenaView& view, const std::string& where,
                               const std::string& expected_scheme,
                               const SchemeRegistry& registry) {
  const std::string scheme_name = view.scheme();
  if (!expected_scheme.empty() && scheme_name != expected_scheme) {
    throw SnapshotSchemeMismatchError("snapshot: '" + where +
                                      "' holds scheme '" + scheme_name +
                                      "', expected '" + expected_scheme + "'");
  }
  const bool blob = view.has("scheme/blob");
  // A file naming a scheme this registry cannot load (unknown, or registered
  // without the needed hooks -- e.g. written by a newer binary) must stay
  // inside the typed-error contract so cache users can treat it as a miss.
  const SchemeRegistry::Loader* v1_loader = nullptr;
  const SchemeRegistry::ArenaLoader* arena_loader = nullptr;
  try {
    if (blob) {
      v1_loader = &registry.loader(scheme_name);
    } else {
      arena_loader = &registry.arena_loader(scheme_name);
    }
  } catch (const std::exception& e) {
    throw SnapshotSchemeMismatchError(
        "snapshot: '" + where + "' holds scheme '" + scheme_name +
        "' which this registry cannot load: " + e.what());
  }

  auto graph = std::make_shared<const Digraph>(Digraph::from_arena(view));
  NameAssignment names = NameAssignment::from_arena(view);
  SnapshotLoadContext ctx;
  ctx.graph = graph;
  ctx.names = names;
  std::shared_ptr<const Scheme> scheme;
  try {
    if (blob) {
      SnapshotReader r = view.reader("scheme/blob");
      scheme = (*v1_loader)(r, ctx);
      r.expect_exhausted("scheme/blob section");
    } else {
      scheme = (*arena_loader)(view, ctx);
    }
    if (scheme == nullptr) {
      throw SnapshotFormatError("snapshot: loader returned no scheme");
    }
    return SchemeHandle(std::move(graph), std::move(names), std::move(scheme));
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotFormatError(std::string("snapshot: bad scheme section: ") +
                              e.what());
  }
}

}  // namespace

void save_snapshot(const std::string& path, const std::string& scheme_name,
                   const SchemeHandle& handle, const SchemeRegistry& registry,
                   std::uint32_t version) {
  std::vector<std::uint8_t> image;
  switch (version) {
    case kSnapshotVersionV1:
      image = build_v1_image(scheme_name, handle, registry);
      break;
    case kSnapshotVersionV2:
      image = build_v2_image(scheme_name, handle, registry);
      break;
    default:
      throw SnapshotVersionError("snapshot: this binary writes versions " +
                                 std::to_string(kSnapshotVersionV1) + " and " +
                                 std::to_string(kSnapshotVersionV2) + ", not " +
                                 std::to_string(version));
  }
  write_file_atomic(path, image);
}

SchemeHandle load_snapshot(const std::string& path,
                           const std::string& expected_scheme,
                           const SchemeRegistry& registry) {
  std::vector<std::uint8_t> bytes = slurp(path);
  if (peek_version(bytes, path) == kSnapshotVersionV2) {
    // Owned v2 load: same arena parse as the mapped path, plus full section
    // CRC verification (this path has already paid for reading every byte).
    ArenaView view(make_owned_arena(std::move(bytes)));
    view.verify_section_crcs();
    return handle_from_arena(view, path, expected_scheme, registry);
  }
  ParsedSnapshot parsed = parse_file(std::move(bytes), path);
  if (!expected_scheme.empty() && parsed.info.scheme != expected_scheme) {
    throw SnapshotSchemeMismatchError("snapshot: '" + path + "' holds scheme '" +
                                      parsed.info.scheme + "', expected '" +
                                      expected_scheme + "'");
  }
  // A file naming a scheme this registry cannot load (unknown, or registered
  // without hooks -- e.g. written by a newer binary) must stay inside the
  // typed-error contract so cache users can treat it as a miss.
  const SchemeRegistry::Loader* loader = nullptr;
  try {
    loader = &registry.loader(parsed.info.scheme);
  } catch (const std::exception& e) {
    throw SnapshotSchemeMismatchError(
        "snapshot: '" + path + "' holds scheme '" + parsed.info.scheme +
        "' which this registry cannot load: " + e.what());
  }

  const ParsedSection& graph_sec = parsed.section(kSectionGraph);
  SnapshotReader graph_reader(graph_sec.data,
                              static_cast<std::size_t>(graph_sec.size));
  auto graph = std::make_shared<const Digraph>(load_digraph(graph_reader));
  graph_reader.expect_exhausted("graph section");
  if (graph->node_count() != parsed.info.node_count ||
      graph->edge_count() != parsed.info.edge_count) {
    throw SnapshotFormatError(
        "snapshot: header node/edge counts disagree with the graph section");
  }

  const ParsedSection& names_sec = parsed.section(kSectionNames);
  SnapshotReader names_reader(names_sec.data,
                              static_cast<std::size_t>(names_sec.size));
  NameAssignment names = load_names_checked(names_reader);
  names_reader.expect_exhausted("names section");
  if (names.node_count() != graph->node_count()) {
    throw SnapshotFormatError(
        "snapshot: names section does not match the graph's node count");
  }

  SnapshotLoadContext ctx;
  ctx.graph = graph;
  ctx.names = names;
  const ParsedSection& scheme_sec = parsed.section(kSectionScheme);
  SnapshotReader scheme_reader(scheme_sec.data,
                               static_cast<std::size_t>(scheme_sec.size));
  // Scheme decode failures must keep the typed-error contract even when the
  // hook throws a plain std::exception (e.g. CRC-valid sections that are
  // mutually inconsistent): callers rely on catching SnapshotError to treat
  // a bad cache file as a miss.
  std::shared_ptr<const Scheme> scheme;
  try {
    scheme = (*loader)(scheme_reader, ctx);
    scheme_reader.expect_exhausted("scheme section");
    if (scheme == nullptr) {
      throw SnapshotFormatError("snapshot: loader returned no scheme");
    }
    return SchemeHandle(std::move(graph), std::move(names), std::move(scheme));
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotFormatError(std::string("snapshot: bad scheme section: ") +
                              e.what());
  }
}

SchemeHandle map_snapshot(const std::string& path,
                          const std::string& expected_scheme,
                          const SchemeRegistry& registry) {
  ArenaView view(map_arena_file(path));
  return handle_from_arena(view, path, expected_scheme, registry);
}

SchemeHandle map_snapshot_shm(const std::string& shm_name,
                              const std::string& expected_scheme,
                              const SchemeRegistry& registry) {
  ArenaView view(map_arena_shm(shm_name));
  return handle_from_arena(view, "shm:" + shm_name, expected_scheme, registry);
}

std::string publish_snapshot_shm(const std::string& path,
                                 const std::string& shm_name) {
  // Validate end to end before publishing: a shared-memory object is read by
  // many processes on their fast (no-payload-CRC) path, so the publisher
  // carries the full verification.
  std::vector<std::uint8_t> bytes = slurp(path);
  if (peek_version(bytes, path) != kSnapshotVersionV2) {
    throw SnapshotVersionError(
        "snapshot: only v2 (arena) snapshots can be published to shared "
        "memory; repack '" + path + "' with `rtr_cli snapshot pack`");
  }
  ArenaView view(make_owned_arena(std::move(bytes)));
  view.verify_section_crcs();
  publish_arena_shm(shm_name, view.storage()->data(), view.storage()->size());
  return view.scheme();
}

SnapshotInfo inspect_snapshot(const std::string& path) {
  std::vector<std::uint8_t> bytes = slurp(path);
  if (peek_version(bytes, path) == kSnapshotVersionV2) {
    ArenaView view(make_owned_arena(std::move(bytes)));
    view.verify_section_crcs();
    SnapshotInfo info;
    info.version = kSnapshotVersionV2;
    info.scheme = view.scheme();
    info.node_count = static_cast<NodeId>(view.header().node_count);
    info.edge_count = static_cast<std::int64_t>(view.header().edge_count);
    info.file_bytes = view.file_bytes();
    for (const ArenaDirEntry& e : view.entries()) {
      info.sections.push_back(
          SnapshotSectionInfo{e.name_str(), e.byte_size(), e.crc});
    }
    return info;
  }
  return parse_file(std::move(bytes), path).info;
}

bool SnapshotFileStatus::all_ok() const {
  if (!framing_ok) return false;
  for (const auto& s : sections) {
    if (!s.crc_ok) return false;
  }
  return true;
}

SnapshotFileStatus probe_snapshot(const std::string& path) {
  SnapshotFileStatus status;
  std::vector<std::uint8_t> bytes = slurp(path);  // IoError propagates
  status.file_bytes = bytes.size();

  // The walk mirrors parse_file but records problems instead of throwing:
  // a damaged section must not hide the health of the sections after it.
  try {
    SnapshotReader r(bytes.data(), bytes.size());
    if (bytes.size() < kSnapshotMagicSize + 4 ||
        std::memcmp(bytes.data(), snapshot_magic(), kSnapshotMagicSize) != 0) {
      status.framing_error = "missing RTRSNAP magic";
      return status;
    }
    r.skip(kSnapshotMagicSize);

    status.version = r.u32();
    if (status.version == kSnapshotVersionV2) {
      // Arena probe: the framing either validates as a whole (ArenaView's
      // constructor) or pinpoints its failure; with valid framing every
      // section is then reported with stored-vs-recomputed CRC.
      try {
        ArenaView view(make_owned_arena(std::move(bytes)));
        status.scheme = view.scheme();
        status.node_count = static_cast<NodeId>(view.header().node_count);
        status.edge_count = static_cast<std::int64_t>(view.header().edge_count);
        for (const ArenaDirEntry& e : view.entries()) {
          SnapshotSectionStatus s;
          s.name = e.name_str();
          s.bytes = e.byte_size();
          s.payload_offset = e.offset;
          s.stored_crc = e.crc;
          s.actual_crc = crc32(view.storage()->data() + e.offset,
                               static_cast<std::size_t>(e.byte_size()));
          s.crc_ok = s.stored_crc == s.actual_crc;
          status.sections.push_back(std::move(s));
        }
        status.framing_ok = true;
      } catch (const SnapshotError& e) {
        status.framing_error = e.what();
      }
      return status;
    }
    if (status.version != kSnapshotVersionV1) {
      status.framing_error =
          "unsupported format version " + std::to_string(status.version);
      return status;
    }

    const std::size_t header_begin = r.position();
    status.scheme = r.str();
    status.node_count = static_cast<NodeId>(r.u32());
    status.edge_count = static_cast<std::int64_t>(r.u64());
    const std::uint32_t section_count = r.u32();
    const std::size_t header_end = r.position();
    if (r.u32() != crc32(bytes.data() + header_begin,
                         header_end - header_begin)) {
      status.framing_error = "header CRC mismatch";
      return status;
    }

    for (std::uint32_t i = 0; i < section_count; ++i) {
      SnapshotSectionStatus s;
      s.name = r.str();
      s.bytes = r.u64();
      if (s.bytes > r.remaining()) {
        status.framing_error = "section '" + s.name + "' truncated";
        status.sections.push_back(std::move(s));
        return status;
      }
      s.payload_offset = r.position();
      const std::uint8_t* payload = bytes.data() + r.position();
      r.skip(static_cast<std::size_t>(s.bytes));
      s.stored_crc = r.u32();
      s.actual_crc = crc32(payload, static_cast<std::size_t>(s.bytes));
      s.crc_ok = s.stored_crc == s.actual_crc;
      status.sections.push_back(std::move(s));
    }
    if (r.remaining() != 0) {
      status.framing_error = std::to_string(r.remaining()) +
                             " trailing bytes after the last section";
      return status;
    }
    status.framing_ok = true;
  } catch (const SnapshotError& e) {
    status.framing_error = e.what();
  }
  return status;
}

void warn_snapshot_cache_save_failed_once(const std::string& context,
                                          const SnapshotError& error) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::cerr << "warning: " << context
              << " could not save the snapshot cache (" << error.what()
              << "); serving the built scheme without a cache (further save "
                 "failures are silent)\n";
  }
}

}  // namespace rtr
