// Versioned binary scheme snapshots: build once, serve forever.
//
// A snapshot file freezes one built SchemeHandle -- graph, TINN naming, and
// the scheme's routing tables -- so a serving process can skip the
// O(n^2)-ish preprocessing entirely and go straight to answering queries
// (the paper's preprocess-once/query-forever model made operational).
//
// File layout (all integers little-endian):
//
//   offset  field
//   ------  ------------------------------------------------------------
//   0       magic: the 8 bytes "RTRSNAP\0"
//   8       format version (u32), currently kSnapshotVersion
//   12      header payload: registry scheme name (string), node count
//           (u32), edge count (u64), section count (u32)
//   ...     header CRC-32 (u32) over the header payload bytes
//   ...     sections, each:  name (string), payload length (u64),
//           payload bytes, payload CRC-32 (u32)
//
// Standard sections: "graph" (topology + ports + weights), "names" (the
// TINN permutation), "scheme" (the registered scheme's tables, encoded by
// its snapshot hooks).  Readers locate sections by name, so future versions
// may append sections without breaking old files; any change to an existing
// section's encoding must bump kSnapshotVersion (loaders reject every other
// version outright -- rebuild-and-resave is the migration path).
//
// Every failure mode is a typed exception (see io/snapshot_format.h): bad
// magic, wrong version, truncation, checksum mismatch, scheme mismatch.  A
// load either returns a fully constructed SchemeHandle or throws -- there is
// no half-loaded state.
#ifndef RTR_IO_SNAPSHOT_H
#define RTR_IO_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "io/snapshot_format.h"
#include "net/scheme.h"

namespace rtr {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotMagicSize = 8;

/// The 8 magic bytes every snapshot starts with.
[[nodiscard]] const std::uint8_t* snapshot_magic();

/// Everything `rtr_cli snapshot info` prints without loading the tables.
struct SnapshotSectionInfo {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

struct SnapshotInfo {
  std::uint32_t version = 0;
  std::string scheme;  // registry name, e.g. "stretch6"
  NodeId node_count = 0;
  std::int64_t edge_count = 0;
  std::uint64_t file_bytes = 0;
  std::vector<SnapshotSectionInfo> sections;
};

/// Serializes a built handle under the registry name it was built as.  The
/// registry must have snapshot hooks for that name.  Writes to a temporary
/// sibling first and renames into place, so readers never observe a torn
/// file.  Throws SnapshotIoError on filesystem trouble.
void save_snapshot(const std::string& path, const std::string& scheme_name,
                   const SchemeHandle& handle,
                   const SchemeRegistry& registry = SchemeRegistry::global());

/// Loads a snapshot into a ready-to-serve handle.  When `expected_scheme` is
/// non-empty the file's scheme name must match it exactly
/// (SnapshotSchemeMismatchError otherwise).  All section CRCs are verified
/// before any scheme state is constructed.
[[nodiscard]] SchemeHandle load_snapshot(
    const std::string& path, const std::string& expected_scheme = "",
    const SchemeRegistry& registry = SchemeRegistry::global());

/// Validates framing and checksums and returns the header/section table
/// without constructing the scheme (cheap: one pass over the file).
[[nodiscard]] SnapshotInfo inspect_snapshot(const std::string& path);

/// One section's health as seen by probe_snapshot: the stored CRC next to
/// the one recomputed over the payload actually on disk.
struct SnapshotSectionStatus {
  std::string name;
  std::uint64_t bytes = 0;
  /// Byte offset of the payload within the file (0 when the framing walk
  /// stopped before reaching it), so tooling can re-read one section.
  std::uint64_t payload_offset = 0;
  std::uint32_t stored_crc = 0;
  std::uint32_t actual_crc = 0;
  bool crc_ok = false;
};

/// Lenient per-section probe result.  Unlike inspect_snapshot, a bad
/// checksum does not abort the walk: every section that the framing reaches
/// is reported with its stored-vs-recomputed CRC, so tooling can say *which*
/// section is damaged.  `framing_error` is set when the walk itself had to
/// stop early (bad magic, wrong version, header CRC mismatch, truncation).
struct SnapshotFileStatus {
  bool framing_ok = false;
  std::string framing_error;
  std::uint32_t version = 0;
  std::string scheme;
  NodeId node_count = 0;
  std::int64_t edge_count = 0;
  std::uint64_t file_bytes = 0;
  std::vector<SnapshotSectionStatus> sections;

  /// True iff the framing parsed and every section checksum matches.
  [[nodiscard]] bool all_ok() const;
};

/// Probes a snapshot without throwing on corruption: only I/O failure to
/// open or read the file raises SnapshotIoError; every structural or
/// checksum problem lands in the returned status instead.
[[nodiscard]] SnapshotFileStatus probe_snapshot(const std::string& path);

/// Serving-path degradation notice: a cache save failed (full disk,
/// read-only directory) but the built scheme serves regardless.  Logs to
/// stderr once per process -- an epoch loop hitting this every rebuild must
/// neither spam the log nor stay silent about serving cold forever.
void warn_snapshot_cache_save_failed_once(const std::string& context,
                                          const SnapshotError& error);

// -- building blocks shared with the scheme hooks ---------------------------

/// Digraph <-> bytes (explicit ports and weights; the adversary's port
/// choice is part of the frozen artifact, unlike the text edge-list format).
void save_digraph(SnapshotWriter& w, const Digraph& g);
[[nodiscard]] Digraph load_digraph(SnapshotReader& r);

}  // namespace rtr

#endif  // RTR_IO_SNAPSHOT_H
