// Versioned binary scheme snapshots: build once, serve forever.
//
// A snapshot file freezes one built SchemeHandle -- graph, TINN naming, and
// the scheme's routing tables -- so a serving process can skip the
// O(n^2)-ish preprocessing entirely and go straight to answering queries
// (the paper's preprocess-once/query-forever model made operational).
//
// Two on-disk versions share the "RTRSNAP\0" magic and the u32 version field
// at offset 8:
//
//   * v1 -- the streamed encoding: a CRC'd header (scheme name, node/edge
//     counts) followed by named CRC'd sections ("graph", "names", "scheme"),
//     each a little-endian byte stream decoded element by element.  Loading
//     replays the graph through GraphBuilder and re-derives every index --
//     O(n log n)-ish work and a full copy of everything.
//   * v2 -- the relocatable arena (io/arena.h): the payload IS the in-memory
//     layout, one pointer-free 8-aligned region of typed flat arrays plus a
//     directory.  Loading in place = open + mmap + header/CRC check + offset
//     fixup into FlatVec views, O(ms) at any n.  The same bytes also load
//     into an owned buffer (with full section-CRC verification) and publish
//     into POSIX shared memory for multi-process serving.
//
// Compatibility policy: save_snapshot writes v2 by default; v1 remains fully
// readable (load_snapshot dispatches on the version field) and writable on
// request (pass kSnapshotVersionV1).  Schemes without arena hooks get v2
// files whose tables ride in one "scheme/blob" section holding their v1 byte
// encoding -- every registered scheme round-trips through v2.
//
// Every failure mode is a typed exception (see io/snapshot_format.h): bad
// magic, wrong version, truncation, checksum mismatch, scheme mismatch,
// structurally invalid arena.  A load either returns a fully constructed
// SchemeHandle or throws -- there is no half-loaded state.
#ifndef RTR_IO_SNAPSHOT_H
#define RTR_IO_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "io/arena.h"
#include "io/snapshot_format.h"
#include "net/scheme.h"

namespace rtr {

inline constexpr std::uint32_t kSnapshotVersionV1 = 1;
inline constexpr std::uint32_t kSnapshotVersionV2 = kArenaFormatVersion;
/// The version save_snapshot writes when the caller does not choose one.
inline constexpr std::uint32_t kSnapshotVersion = kSnapshotVersionV2;
inline constexpr std::size_t kSnapshotMagicSize = kArenaMagicSize;

/// Everything `rtr_cli snapshot info` prints without loading the tables.
struct SnapshotSectionInfo {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

struct SnapshotInfo {
  std::uint32_t version = 0;
  std::string scheme;  // registry name, e.g. "stretch6"
  NodeId node_count = 0;
  std::int64_t edge_count = 0;
  std::uint64_t file_bytes = 0;
  std::vector<SnapshotSectionInfo> sections;
};

/// Serializes a built handle under the registry name it was built as.  The
/// registry must have snapshot hooks for that name.  Writes to a temporary
/// sibling first and renames into place, so readers never observe a torn
/// file.  Throws SnapshotIoError on filesystem trouble and
/// SnapshotVersionError for a version this binary does not write.
void save_snapshot(const std::string& path, const std::string& scheme_name,
                   const SchemeHandle& handle,
                   const SchemeRegistry& registry = SchemeRegistry::global(),
                   std::uint32_t version = kSnapshotVersion);

/// Loads a snapshot into a ready-to-serve handle, dispatching on the file's
/// version (v1 streamed or v2 arena; the v2 payload is copied into an owned
/// buffer here -- use map_snapshot for load-in-place).  When
/// `expected_scheme` is non-empty the file's scheme name must match it
/// exactly (SnapshotSchemeMismatchError otherwise).  All section CRCs are
/// verified before any scheme state is constructed.
[[nodiscard]] SchemeHandle load_snapshot(
    const std::string& path, const std::string& expected_scheme = "",
    const SchemeRegistry& registry = SchemeRegistry::global());

/// Zero-copy fast path: mmap(2)s a v2 snapshot and serves straight off the
/// mapping (FlatVec views into the file; the handle keeps the mapping alive).
/// Verifies framing (magic, version, layout tag, header + directory CRCs,
/// section bounds) but NOT the per-section payload CRCs -- that is what
/// keeps it O(ms) at any n; run `rtr_cli snapshot map-info` or the auditor
/// for end-to-end checks.  Throws SnapshotVersionError for v1 files.
[[nodiscard]] SchemeHandle map_snapshot(
    const std::string& path, const std::string& expected_scheme = "",
    const SchemeRegistry& registry = SchemeRegistry::global());

/// Attaches a v2 snapshot published in a POSIX shared-memory object
/// (MAP_SHARED read-only): every serving process references one physical
/// copy.  Same verification contract as map_snapshot.
[[nodiscard]] SchemeHandle map_snapshot_shm(
    const std::string& shm_name, const std::string& expected_scheme = "",
    const SchemeRegistry& registry = SchemeRegistry::global());

/// Publishes a v2 snapshot file into a POSIX shared-memory object after
/// fully validating it (framing + every section CRC).  Readers attach with
/// map_snapshot_shm.  Returns the snapshot's scheme name.
std::string publish_snapshot_shm(const std::string& path,
                                 const std::string& shm_name);

/// Validates framing and checksums and returns the header/section table
/// without constructing the scheme (cheap: one pass over the file).
[[nodiscard]] SnapshotInfo inspect_snapshot(const std::string& path);

/// One section's health as seen by probe_snapshot: the stored CRC next to
/// the one recomputed over the payload actually on disk.
struct SnapshotSectionStatus {
  std::string name;
  std::uint64_t bytes = 0;
  /// Byte offset of the payload within the file (0 when the framing walk
  /// stopped before reaching it), so tooling can re-read one section.
  std::uint64_t payload_offset = 0;
  std::uint32_t stored_crc = 0;
  std::uint32_t actual_crc = 0;
  bool crc_ok = false;
};

/// Lenient per-section probe result.  Unlike inspect_snapshot, a bad
/// checksum does not abort the walk: every section that the framing reaches
/// is reported with its stored-vs-recomputed CRC, so tooling can say *which*
/// section is damaged.  `framing_error` is set when the walk itself had to
/// stop early (bad magic, wrong version, header CRC mismatch, truncation).
struct SnapshotFileStatus {
  bool framing_ok = false;
  std::string framing_error;
  std::uint32_t version = 0;
  std::string scheme;
  NodeId node_count = 0;
  std::int64_t edge_count = 0;
  std::uint64_t file_bytes = 0;
  std::vector<SnapshotSectionStatus> sections;

  /// True iff the framing parsed and every section checksum matches.
  [[nodiscard]] bool all_ok() const;
};

/// Probes a snapshot without throwing on corruption: only I/O failure to
/// open or read the file raises SnapshotIoError; every structural or
/// checksum problem lands in the returned status instead.
[[nodiscard]] SnapshotFileStatus probe_snapshot(const std::string& path);

/// Serving-path degradation notice: a cache save failed (full disk,
/// read-only directory) but the built scheme serves regardless.  Logs to
/// stderr once per process -- an epoch loop hitting this every rebuild must
/// neither spam the log nor stay silent about serving cold forever.
void warn_snapshot_cache_save_failed_once(const std::string& context,
                                          const SnapshotError& error);

// -- building blocks shared with the scheme hooks ---------------------------

/// Digraph <-> bytes (explicit ports and weights; the adversary's port
/// choice is part of the frozen artifact, unlike the text edge-list format).
void save_digraph(SnapshotWriter& w, const Digraph& g);
[[nodiscard]] Digraph load_digraph(SnapshotReader& r);

}  // namespace rtr

#endif  // RTR_IO_SNAPSHOT_H
