#include "io/snapshot_format.h"

#include <array>

namespace rtr {

namespace {

// Slicing-by-8 CRC-32: table[0] is the classic byte-at-a-time table, and
// table[k][b] extends a byte b by k zero bytes, so eight input bytes fold in
// one step.  Identical output to the bitwise definition, ~an order of
// magnitude faster on multi-megabyte snapshot sections.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables make_crc_tables() {
  CrcTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const CrcTables t = make_crc_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(data[i]) |
                                  static_cast<std::uint32_t>(data[i + 1]) << 8 |
                                  static_cast<std::uint32_t>(data[i + 2]) << 16 |
                                  static_cast<std::uint32_t>(data[i + 3]) << 24);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][data[i + 4]] ^ t[2][data[i + 5]] ^
        t[1][data[i + 6]] ^ t[0][data[i + 7]];
  }
  for (; i < size; ++i) {
    c = t[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rtr
