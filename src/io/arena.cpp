#include "io/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <numeric>

#include "util/types.h"

namespace rtr {

const std::uint8_t* snapshot_magic() {
  static const std::uint8_t kMagic[kArenaMagicSize] = {'R', 'T', 'R', 'S',
                                                       'N', 'A', 'P', '\0'};
  return kMagic;
}

std::uint32_t arena_layout_tag() {
  // Everything a view reinterprets must agree between writer and reader:
  // byte order, the fundamental type widths, and the alignment quantum.
  // Struct sections (Edge, TreeNodeTable, hop pairs) are pinned by
  // static_asserts at their save/load sites, so they reduce to these.
  const std::uint8_t desc[] = {
      std::endian::native == std::endian::little ? std::uint8_t{1}
                                                 : std::uint8_t{2},
      static_cast<std::uint8_t>(sizeof(NodeId)),
      static_cast<std::uint8_t>(sizeof(NodeName)),
      static_cast<std::uint8_t>(sizeof(Port)),
      static_cast<std::uint8_t>(sizeof(Weight)),
      static_cast<std::uint8_t>(sizeof(Dist)),
      static_cast<std::uint8_t>(kArenaAlign),
  };
  return crc32(desc, sizeof desc, 0xA7E0A001u);
}

std::string ArenaDirEntry::name_str() const {
  const auto* end = static_cast<const char*>(
      std::memchr(name, '\0', sizeof name));  // rtr-lint: checked-copy
  return std::string(name, end == nullptr ? sizeof name
                                          : static_cast<std::size_t>(end - name));
}

std::string ArenaFileHeader::scheme_str() const {
  const auto* end = static_cast<const char*>(
      std::memchr(scheme, '\0', sizeof scheme));  // rtr-lint: checked-copy
  return std::string(scheme,
                     end == nullptr ? sizeof scheme
                                    : static_cast<std::size_t>(end - scheme));
}

// ---------------------------------------------------------------- storage --

namespace {

class OwnedArenaStorage final : public ArenaStorage {
 public:
  explicit OwnedArenaStorage(std::vector<std::uint8_t> bytes)
      : ArenaStorage(nullptr, 0), bytes_(std::move(bytes)) {
    data_ = bytes_.data();
    size_ = bytes_.size();
  }
  [[nodiscard]] bool is_mapped() const override { return false; }

 private:
  std::vector<std::uint8_t> bytes_;
};

class MappedArenaStorage final : public ArenaStorage {
 public:
  MappedArenaStorage(void* addr, std::size_t size)
      : ArenaStorage(static_cast<const std::uint8_t*>(addr), size) {}
  ~MappedArenaStorage() override {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
  [[nodiscard]] bool is_mapped() const override { return true; }
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw SnapshotIoError(what + ": " + std::strerror(errno));
}

/// mmap(2)s an open descriptor read-only and wraps it; closes fd regardless.
std::shared_ptr<const ArenaStorage> map_fd(int fd, const std::string& what,
                                           int flags) {
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("arena: fstat " + what);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw SnapshotTruncatedError("arena: " + what + " is empty");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw_errno("arena: mmap " + what);
  return std::make_shared<MappedArenaStorage>(addr, size);
}

std::string normalize_shm_name(const std::string& shm_name) {
  return shm_name.empty() || shm_name.front() != '/' ? "/" + shm_name
                                                     : shm_name;
}

}  // namespace

std::shared_ptr<const ArenaStorage> make_owned_arena(
    std::vector<std::uint8_t> bytes) {
  return std::make_shared<OwnedArenaStorage>(std::move(bytes));
}

std::shared_ptr<const ArenaStorage> map_arena_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("arena: open " + path);
  // MAP_PRIVATE read-only: identical sharing semantics to MAP_SHARED for a
  // never-written mapping, and it works on filesystems that reject shared
  // file mappings.
  return map_fd(fd, path, MAP_PRIVATE);
}

std::shared_ptr<const ArenaStorage> map_arena_shm(const std::string& shm_name) {
  const std::string name = normalize_shm_name(shm_name);
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) throw_errno("arena: shm_open " + name);
  // MAP_SHARED so every attached process references the one physical copy.
  return map_fd(fd, "shm " + name, MAP_SHARED);
}

void publish_arena_shm(const std::string& shm_name, const std::uint8_t* data,
                       std::size_t size) {
  const std::string name = normalize_shm_name(shm_name);
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) throw_errno("arena: shm_open " + name);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_errno("arena: ftruncate shm " + name);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw_errno("arena: mmap shm " + name);
  }
  std::copy(data, data + size, static_cast<std::uint8_t*>(addr));
  ::munmap(addr, size);
}

void unlink_arena_shm(const std::string& shm_name) {
  ::shm_unlink(normalize_shm_name(shm_name).c_str());
}

// ----------------------------------------------------------------- writer --

ArenaWriter::ArenaWriter() { bytes_.resize(kArenaSectionStart, 0); }

void ArenaWriter::add_raw(const std::string& name, const std::uint8_t* data,
                          std::size_t count, std::size_t elem_size) {
  if (name.empty() || name.size() > kArenaSectionNameMax) {
    throw std::invalid_argument("ArenaWriter: bad section name '" + name + "'");
  }
  for (const ArenaDirEntry& e : dir_) {
    if (e.name_str() == name) {
      throw std::invalid_argument("ArenaWriter: duplicate section '" + name +
                                  "'");
    }
  }
  while (bytes_.size() % kArenaAlign != 0) bytes_.push_back(0);
  ArenaDirEntry e{};
  std::copy(name.begin(), name.end(), e.name);
  e.offset = bytes_.size();
  e.count = count;
  e.elem_size = static_cast<std::uint32_t>(elem_size);
  const std::size_t payload = count * elem_size;
  e.crc = crc32(data, payload);
  if (payload != 0) bytes_.insert(bytes_.end(), data, data + payload);
  dir_.push_back(e);
}

std::vector<std::uint8_t> ArenaWriter::finalize(const std::string& scheme,
                                                std::int64_t node_count,
                                                std::int64_t edge_count) {
  if (scheme.empty() || scheme.size() > kArenaSchemeNameMax) {
    throw std::invalid_argument("ArenaWriter: bad scheme name '" + scheme +
                                "'");
  }
  while (bytes_.size() % kArenaAlign != 0) bytes_.push_back(0);
  const std::uint64_t dir_offset = bytes_.size();
  for (const ArenaDirEntry& e : dir_) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&e);
    bytes_.insert(bytes_.end(), p, p + sizeof e);
  }

  ArenaFileHeader h{};
  std::copy(scheme.begin(), scheme.end(), h.scheme);
  h.layout_tag = arena_layout_tag();
  h.node_count = static_cast<std::uint32_t>(node_count);
  h.edge_count = static_cast<std::uint64_t>(edge_count);
  h.dir_offset = dir_offset;
  h.dir_count = static_cast<std::uint32_t>(dir_.size());
  h.dir_crc = crc32(bytes_.data() + dir_offset,
                    dir_.size() * sizeof(ArenaDirEntry));
  h.header_crc = crc32(reinterpret_cast<const std::uint8_t*>(&h), sizeof h);

  std::copy(snapshot_magic(), snapshot_magic() + kArenaMagicSize,
            bytes_.begin());
  // Version u32 + zero pad u32, little-endian, right after the magic.
  for (std::size_t i = 0; i < 4; ++i) {
    bytes_[kArenaMagicSize + i] =
        static_cast<std::uint8_t>(kArenaFormatVersion >> (8 * i));
    bytes_[kArenaMagicSize + 4 + i] = 0;
  }
  const auto* hp = reinterpret_cast<const std::uint8_t*>(&h);
  std::copy(hp, hp + sizeof h,
            bytes_.begin() + static_cast<std::ptrdiff_t>(kArenaMagicSize + 8));
  return std::move(bytes_);
}

// ------------------------------------------------------------------- view --

ArenaView::ArenaView(std::shared_ptr<const ArenaStorage> storage)
    : storage_(std::move(storage)) {
  if (storage_ == nullptr) {
    throw std::invalid_argument("ArenaView: null storage");
  }
  const std::uint8_t* base = storage_->data();
  const std::size_t size = storage_->size();
  if (size < kArenaSectionStart) {
    throw SnapshotTruncatedError("arena: region shorter than the v2 prologue");
  }
  if (!std::equal(snapshot_magic(), snapshot_magic() + kArenaMagicSize, base)) {
    throw SnapshotFormatError("arena: bad magic (not a snapshot)");
  }
  SnapshotReader prologue(base + kArenaMagicSize, 8);
  const std::uint32_t version = prologue.u32();
  if (version != kArenaFormatVersion) {
    throw SnapshotVersionError("arena: version " + std::to_string(version) +
                               ", this reader maps only version " +
                               std::to_string(kArenaFormatVersion));
  }
  SnapshotReader hr(base + kArenaMagicSize + 8, sizeof(ArenaFileHeader));
  hr.read_exact(&header_, sizeof header_);

  ArenaFileHeader crc_check = header_;
  crc_check.header_crc = 0;
  const std::uint32_t expect_crc =
      crc32(reinterpret_cast<const std::uint8_t*>(&crc_check),
            sizeof crc_check);
  if (expect_crc != header_.header_crc) {
    throw SnapshotChecksumError("arena: header CRC mismatch");
  }
  if (header_.layout_tag != arena_layout_tag()) {
    throw SnapshotArenaError(
        "arena: layout tag mismatch (written on an incompatible host ABI)");
  }

  const std::uint64_t dir_bytes =
      static_cast<std::uint64_t>(header_.dir_count) * sizeof(ArenaDirEntry);
  if (header_.dir_offset < kArenaSectionStart ||
      header_.dir_offset % kArenaAlign != 0 ||
      header_.dir_offset > size || dir_bytes > size - header_.dir_offset ||
      header_.dir_offset + dir_bytes != size) {
    throw SnapshotArenaError(
        "arena: directory does not span the region tail (offset " +
        std::to_string(header_.dir_offset) + ", " +
        std::to_string(header_.dir_count) + " entries, region " +
        std::to_string(size) + " bytes)");
  }
  if (crc32(base + header_.dir_offset,
            static_cast<std::size_t>(dir_bytes)) != header_.dir_crc) {
    throw SnapshotChecksumError("arena: directory CRC mismatch");
  }

  entries_.resize(header_.dir_count);
  SnapshotReader dr(base + header_.dir_offset,
                    static_cast<std::size_t>(dir_bytes));
  for (ArenaDirEntry& e : entries_) {
    dr.read_exact(&e, sizeof e);
    const std::string name = e.name_str();
    if (name.empty() || name.size() > kArenaSectionNameMax ||
        e.name[sizeof e.name - 1] != '\0') {
      throw SnapshotArenaError("arena: malformed section name in directory");
    }
    if (e.elem_size == 0) {
      throw SnapshotArenaError("arena: section '" + name +
                               "' has elem_size 0");
    }
    if (e.offset % kArenaAlign != 0) {
      throw SnapshotArenaError("arena: section '" + name +
                               "' offset " + std::to_string(e.offset) +
                               " is not " + std::to_string(kArenaAlign) +
                               "-byte aligned");
    }
    if (e.offset < kArenaSectionStart || e.offset > header_.dir_offset ||
        e.byte_size() > header_.dir_offset - e.offset) {
      throw SnapshotArenaError("arena: section '" + name +
                               "' extends past the region end");
    }
  }
  // Sections must not overlap (offsets need not be sorted in the directory,
  // though the writer emits them that way).
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return entries_[a].offset < entries_[b].offset;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const ArenaDirEntry& prev = entries_[order[i - 1]];
    const ArenaDirEntry& cur = entries_[order[i]];
    if (prev.offset + prev.byte_size() > cur.offset) {
      throw SnapshotArenaError("arena: sections '" + prev.name_str() +
                               "' and '" + cur.name_str() + "' overlap");
    }
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      if (entries_[i].name_str() == entries_[j].name_str()) {
        throw SnapshotArenaError("arena: duplicate section '" +
                                 entries_[i].name_str() + "'");
      }
    }
  }
}

bool ArenaView::has(const std::string& name) const {
  for (const ArenaDirEntry& e : entries_) {
    if (e.name_str() == name) return true;
  }
  return false;
}

const ArenaDirEntry& ArenaView::entry(const std::string& name) const {
  for (const ArenaDirEntry& e : entries_) {
    if (e.name_str() == name) return e;
  }
  throw SnapshotArenaError("arena: missing section '" + name + "'");
}

SnapshotReader ArenaView::reader(const std::string& name) const {
  const ArenaDirEntry& e = entry(name);
  if (e.elem_size != 1) {
    throw SnapshotArenaError("arena: section '" + name +
                             "' is not a byte blob");
  }
  return SnapshotReader(storage_->data() + e.offset,
                        static_cast<std::size_t>(e.count));
}

void ArenaView::verify_section_crcs() const {
  for (const ArenaDirEntry& e : entries_) {
    const std::uint32_t actual =
        crc32(storage_->data() + e.offset,
              static_cast<std::size_t>(e.byte_size()));
    if (actual != e.crc) {
      throw SnapshotChecksumError("arena: section '" + e.name_str() +
                                  "' CRC mismatch");
    }
  }
}

}  // namespace rtr
