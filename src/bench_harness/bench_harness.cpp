#include "bench_harness/bench_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/names.h"
#include "graph/apsp.h"
#include "graph/churn.h"
#include "graph/dijkstra.h"
#include "io/snapshot.h"
#include "net/scheme.h"
#include "rt/metric.h"
#include "rtz/rtz3_scheme.h"
#include "serve/epoch_manager.h"
#include "server/loadgen.h"
#include "server/route_server.h"
#include "util/rng.h"

namespace rtr::bench_harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

// ----------------------------------------------------------------- timing --

TimedPhase run_timed(const IterationPolicy& policy,
                     const std::function<void()>& fn) {
  double warm_ms = -1;
  for (int i = 0; i < policy.warmup_reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    warm_ms = ms_since(t0);
  }
  TimedPhase out;
  if (policy.min_rep_ms > 0 && warm_ms >= 0 && warm_ms < policy.min_rep_ms) {
    constexpr int kMaxInner = 64;
    out.inner_iterations = warm_ms <= policy.min_rep_ms / kMaxInner
                               ? kMaxInner
                               : static_cast<int>(policy.min_rep_ms / warm_ms) + 1;
  }
  std::vector<double> times;
  const int min_reps = std::max(1, policy.min_reps);
  const int max_reps = std::max(min_reps, policy.max_reps);
  const int window = std::max(2, policy.window);
  while (static_cast<int>(times.size()) < max_reps) {
    const auto t0 = Clock::now();
    for (int k = 0; k < out.inner_iterations; ++k) fn();
    times.push_back(ms_since(t0) / out.inner_iterations);
    if (static_cast<int>(times.size()) < min_reps) continue;
    if (static_cast<int>(times.size()) >= window) {
      const auto tail = times.end() - window;
      const double lo = *std::min_element(tail, times.end());
      const double hi = *std::max_element(tail, times.end());
      if (lo > 0 && (hi - lo) / lo <= policy.steady_rel_spread) {
        out.steady = true;
        break;
      }
    }
  }
  out.reps = static_cast<int>(times.size());
  out.best_ms = *std::min_element(times.begin(), times.end());
  double sum = 0;
  for (const double t : times) sum += t;
  out.mean_ms = sum / static_cast<double>(times.size());
  return out;
}

std::string host_cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        return line.substr(colon + 2);
      }
    }
  }
  return "unknown";
}

std::int64_t current_rss_kb() {
  std::ifstream status("/proc/self/status");
  if (!status) return -1;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::int64_t kb = -1;
      if (std::sscanf(line.c_str(), "VmRSS: %" SCNd64, &kb) == 1) return kb;
      return -1;
    }
  }
  return -1;
}

bool reset_peak_rss() {
  // Writing "5" to clear_refs resets the VmHWM watermark to the current RSS
  // (Linux >= 4.0); after that, VmHWM reads as the peak of just the phase
  // since the reset.  Without the reset VmHWM is a process-lifetime maximum,
  // which would make per-cell peaks monotone garbage -- so failure here must
  // be reported, not ignored.
  std::ofstream clear_refs("/proc/self/clear_refs");
  if (!clear_refs) return false;
  clear_refs << "5";
  clear_refs.flush();
  return clear_refs.good();
}

std::int64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  if (!status) return -1;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::int64_t kb = -1;
      if (std::sscanf(line.c_str(), "VmHWM: %" SCNd64, &kb) == 1) return kb;
      return -1;
    }
  }
  return -1;
}

// ------------------------------------------------------------------ suite --

BenchConfig BenchConfig::quick() {
  BenchConfig c;
  c.families = {Family::kRandom, Family::kGrid, Family::kRing};
  c.sizes = {128, 256};
  // Each timed rep must be tens of milliseconds, not single-digit: on a
  // noisy (shared CI) host, sub-5ms reps make best-of qps swing by 2x and
  // trip the regression gate spuriously.  12k pairs x ~2us keeps one rep
  // around 25-50ms while the whole quick sweep stays in CI-smoke territory.
  c.pair_budget = 12000;
  c.latency_sample = 500;
  c.iterations.warmup_reps = 1;
  c.iterations.min_reps = 3;
  c.iterations.max_reps = 8;
  c.iterations.min_rep_ms = 25;
  c.net_serving = true;
  return c;
}

BenchConfig BenchConfig::full() {
  BenchConfig c;
  c.families = {Family::kRandom, Family::kScaleFree, Family::kGrid,
                Family::kRing};
  c.sizes = {128, 256, 512, 1024, 2048, 4096};
  c.pair_budget = 6000;
  c.latency_sample = 2000;
  c.net_serving = true;
  return c;
}

namespace {

std::vector<std::string> resolve_schemes(const BenchConfig& config) {
  if (!config.schemes.empty()) return config.schemes;
  return SchemeRegistry::global().names();
}

/// Everything shared by the cells of one (family, n) instance.
struct Instance {
  std::shared_ptr<const Digraph> graph;
  std::shared_ptr<const RoundtripMetric> metric;
  NameAssignment names = NameAssignment::identity(0);
  double apsp_ms = 0;
};

Instance build_instance(Family family, NodeId n, Weight max_weight,
                        std::uint64_t seed,
                        MetricMode metric_mode = MetricMode::kAuto,
                        int threads = 0) {
  Instance inst;
  Rng rng(seed);
  GraphBuilder builder = make_family(family, n, max_weight, rng);
  builder.assign_adversarial_ports(rng);
  inst.names = NameAssignment::random(builder.node_count(), rng);
  inst.graph = std::make_shared<const Digraph>(builder.freeze());
  const auto t0 = Clock::now();
  // For the sparse backend this is just the constructor (SCC check + graph
  // reversal); rows are filled lazily during scheme builds, so the apsp_ms
  // column measures the dense matrix only where one is actually built.
  inst.metric = make_roundtrip_metric(inst.graph, metric_mode, threads);
  inst.apsp_ms = ms_since(t0);
  return inst;
}

double percentile_ns(std::vector<double>& ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1) + 0.5);
  return ns[std::min(rank, ns.size() - 1)];
}

CellResult run_cell(const Instance& inst, const std::string& scheme_name,
                    Family family, NodeId n, const BenchConfig& config) {
  CellResult cell;
  cell.scheme = scheme_name;
  cell.family = family_name(family);
  cell.n = inst.graph->node_count();
  cell.apsp_ms = inst.apsp_ms;

  BuildContext ctx = BuildContext::wrap(
      inst.graph, inst.metric, inst.names,
      config.seed + static_cast<std::uint64_t>(n),
      {{"threads", std::to_string(config.threads)}});

  // --- construction phase -------------------------------------------------
  const bool peak_armed = reset_peak_rss();
  const std::int64_t rss_before = current_rss_kb();
  const auto build_t0 = Clock::now();
  std::shared_ptr<const Scheme> scheme =
      SchemeRegistry::global().build(scheme_name, ctx);
  cell.build_ms = ms_since(build_t0);
  const std::int64_t rss_after = current_rss_kb();
  if (rss_before >= 0 && rss_after >= 0) {
    cell.build_rss_delta_kb = std::max<std::int64_t>(0, rss_after - rss_before);
  }
  if (peak_armed) cell.peak_rss_kb = peak_rss_kb();

  const TableStats stats = scheme->table_stats();
  cell.table_entries_max = stats.max_entries();
  cell.bytes_per_node = stats.mean_bits() / 8.0;

  // --- batch query phase --------------------------------------------------
  QueryEngineOptions opts;
  opts.threads = config.threads;
  QueryEngine engine(inst.graph, inst.metric, inst.names, scheme, opts);
  const auto pairs = QueryEngine::sample_pairs(
      cell.n, config.pair_budget, config.seed + 1);
  StretchReport report;
  const TimedPhase query = run_timed(config.iterations,
                                     [&] { report = engine.run_batch(pairs); });
  cell.query_reps = query.reps;
  cell.query_steady = query.steady;
  cell.pairs = report.pairs;
  cell.failures = report.failures;
  cell.invalid = report.invalid;
  cell.mean_stretch = report.mean_stretch;
  cell.p99_stretch = report.p99_stretch;
  cell.max_stretch = report.max_stretch;
  cell.max_header_bits = report.max_header_bits;
  cell.first_error = report.first_error;
  cell.qps = query.best_ms > 0
                 ? static_cast<double>(report.pairs) / (query.best_ms / 1e3)
                 : 0;

  // --- per-query latency distribution -------------------------------------
  const auto sample = static_cast<std::size_t>(std::min<std::int64_t>(
      config.latency_sample, static_cast<std::int64_t>(pairs.size())));
  std::vector<double> latencies_ns;
  latencies_ns.reserve(sample);
  for (std::size_t i = 0; i < sample; ++i) {
    const auto t0 = Clock::now();
    try {
      (void)engine.roundtrip(pairs[i].src, pairs[i].dst);
    } catch (const std::exception&) {
      // Already accounted as a failure by the batch phase; latency of a
      // throwing query is not meaningful.
      continue;
    }
    latencies_ns.push_back(ms_since(t0) * 1e6);
  }
  cell.p50_query_ns = percentile_ns(latencies_ns, 0.50);
  cell.p99_query_ns = percentile_ns(latencies_ns, 0.99);

  // --- snapshot load phase ------------------------------------------------
  if (config.snapshot_phase &&
      SchemeRegistry::global().snapshot_supported(scheme_name)) {
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() /
        ("rtr_bench_" + scheme_name + "_" + cell.family + "_" +
         std::to_string(cell.n) + ".rtrsnap");
    SchemeHandle handle(inst.graph, inst.names, scheme);
    try {
      save_snapshot(path.string(), scheme_name, handle);
      const auto t0 = Clock::now();
      SchemeHandle loaded = load_snapshot(path.string(), scheme_name);
      cell.snapshot_load_ms = ms_since(t0);
      const auto t1 = Clock::now();
      SchemeHandle mapped = map_snapshot(path.string(), scheme_name);
      cell.snapshot_map_ms = ms_since(t1);
    } catch (const std::exception&) {
      // Phase skipped; the cell still stands.  Whichever of the two columns
      // was not reached keeps its -1 sentinel, which the gates never compare.
    }
    std::error_code ec;
    fs::remove(path, ec);
  }
  return cell;
}

// ------------------------------------------------- hot-path delta measures --

IterationPolicy delta_policy() {
  IterationPolicy policy;
  policy.warmup_reps = 1;
  policy.min_reps = 2;
  policy.max_reps = 3;
  policy.min_rep_ms = 25;
  return policy;
}

/// Before/after for the Dijkstra arena: the seed implementation (fresh
/// buffers + std::priority_queue per source) vs the workspace + Dial fast
/// path streaming the frozen graph's flat arc arrays.  Both live in this
/// binary, so the record is re-measured on every bench run.
HotPathDelta measure_dijkstra_delta(Family family, NodeId n, Weight max_weight,
                                    std::uint64_t seed) {
  Rng rng(seed);
  const Digraph g = make_family(family, n, max_weight, rng).freeze();
  const NodeId nodes = g.node_count();

  const auto run_reference = [&] {
    for (NodeId s = 0; s < nodes; ++s) {
      volatile Dist sink = dijkstra_distances_reference(g, s)[0];
      (void)sink;
    }
  };
  DijkstraWorkspace ws;
  std::vector<Dist> row(static_cast<std::size_t>(nodes));
  const auto run_arena = [&] {
    for (NodeId s = 0; s < nodes; ++s) {
      dijkstra_distances_into(g, s, ws, row);
      volatile Dist sink = row[0];
      (void)sink;
    }
  };

  HotPathDelta d;
  d.name = "dijkstra-arena-dial";
  d.metric = "apsp_ms";
  d.family = family_name(family);
  d.n = nodes;
  d.before = run_timed(delta_policy(), run_reference).best_ms;
  d.after = run_timed(delta_policy(), run_arena).best_ms;
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.before - d.after) / d.before : 0;
  return d;
}

/// Before/after for the full all_pairs_shortest_paths entry point: the seed
/// APSP engine (one dijkstra_distances_reference per source, fresh buffers
/// and std::priority_queue each) vs the production path -- the frozen-CSR
/// arena fanned out across the resolved thread pool.  On a single-core host
/// the arena term carries the whole delta; every extra core compounds it
/// (rows are independent).  The two matrices are asserted bit-identical,
/// which re-pins the pool's determinism on every bench run.
HotPathDelta measure_apsp_delta(Family family, NodeId n, Weight max_weight,
                                std::uint64_t seed, int threads) {
  Rng rng(seed);
  const Digraph g = make_family(family, n, max_weight, rng).freeze();
  const NodeId nodes = g.node_count();
  const int workers = resolve_apsp_threads(threads);

  DistMatrix reference(nodes, kInfDist);
  const auto run_reference = [&] {
    for (NodeId s = 0; s < nodes; ++s) {
      const std::vector<Dist> dist = dijkstra_distances_reference(g, s);
      std::copy(dist.begin(), dist.end(), reference.row(s).begin());
    }
  };
  DistMatrix current(0, 0);
  const auto run_parallel = [&] { current = all_pairs_shortest_paths(g, workers); };

  HotPathDelta d;
  d.name = "apsp-parallel-sources";
  d.metric = "apsp_ms";
  d.family = family_name(family);
  d.n = nodes;
  d.before = run_timed(delta_policy(), run_reference).best_ms;
  d.after = run_timed(delta_policy(), run_parallel).best_ms;
  for (NodeId u = 0; u < nodes; ++u) {
    const auto ref_row = reference.row(u);
    const auto cur_row = current.row(u);
    if (!std::equal(ref_row.begin(), ref_row.end(), cur_row.begin())) {
      throw std::logic_error(
          "bench_harness: parallel APSP diverged from the reference matrix");
    }
  }
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.before - d.after) / d.before : 0;
  return d;
}

/// Before/after for the frozen graph's port resolution: the seed linear row
/// scan (edge_by_port_linear, retained in-binary) vs the per-node sorted
/// port index.  Measured on a complete digraph with adversarial ports --
/// the degree-skewed regime where the O(d) scan actually hurts and the
/// reason has_edge/port_of_edge moved to the same resolution tables.
HotPathDelta measure_port_index_delta(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = complete_digraph(n, 4, rng);
  builder.assign_adversarial_ports(rng);
  const Digraph g = builder.freeze();

  // Probe every (node, port) pair once per rep plus one absent port per
  // edge, in a fixed shuffled order so consecutive probes land on different
  // nodes' rows.  The mix mirrors real resolution traffic: the forwarding
  // walk resolves present ports, while has_edge / port_of_edge preprocessing
  // checks mostly miss -- and a miss is the linear scan's worst case (the
  // whole row) but still O(log d) for the index.
  std::vector<std::pair<NodeId, Port>> probes;
  probes.reserve(2 * static_cast<std::size_t>(g.edge_count()));
  const auto space = static_cast<Port>(g.port_space());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.out_edges(u)) {
      probes.emplace_back(u, e.port);
      // Deterministic likely-miss probe; both paths agree on it either way.
      probes.emplace_back(u, static_cast<Port>((e.port + 1) % space));
    }
  }
  rng.shuffle(probes);

  std::int64_t sum_linear = 0, sum_indexed = 0;
  const auto run_linear = [&] {
    std::int64_t acc = 0;
    for (const auto& [u, p] : probes) {
      const Edge* e = g.edge_by_port_linear(u, p);
      acc += e == nullptr ? -1 : e->to;
    }
    sum_linear = acc;
  };
  const auto run_indexed = [&] {
    std::int64_t acc = 0;
    for (const auto& [u, p] : probes) {
      const Edge* e = g.edge_by_port(u, p);
      acc += e == nullptr ? -1 : e->to;
    }
    sum_indexed = acc;
  };

  HotPathDelta d;
  d.name = "digraph-port-index";
  d.metric = "lookup_ms";
  d.family = "complete";
  d.n = g.node_count();
  d.before = run_timed(delta_policy(), run_linear).best_ms;
  d.after = run_timed(delta_policy(), run_indexed).best_ms;
  if (sum_linear != sum_indexed) {
    throw std::logic_error(
        "bench_harness: indexed edge_by_port diverged from the linear scan");
  }
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.before - d.after) / d.before : 0;
  return d;
}

/// Before/after for the rtz3 per-node dictionaries: the retained reference
/// layout (per-node array-of-pairs NameDicts, entries ~100 bytes wide) vs
/// the flat CSR arrays the scheme now serves every probe from (keys packed
/// 4 bytes apart inside one global array).  The mirrors are populated FROM
/// the built scheme through the same probe API, so both sides answer from
/// identical contents and the summed probe outcomes are asserted equal.
/// Probes are the exact forwarding-time lookups (find_ball_label /
/// find_member_up_port / find_member_table) in a node-shuffled order, so
/// every probe binary-searches a different node's row -- the per-hop
/// cache-miss pattern the packing targets.  The effect is a CACHE effect:
/// the dictionaries of a sweep-sized instance (n = 256) fit in L2 whole, so
/// the caller hands in an instance big enough (n ~ 4096, ~O(n sqrt n) total
/// dictionary bytes) that cross-node probes actually miss.
HotPathDelta measure_rtz3_dict_delta(const Instance& inst, Family family,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const Rtz3Scheme scheme(*inst.graph, *inst.metric, inst.names, rng,
                          Rtz3Scheme::Options{});
  const BallSystem& balls = scheme.balls();
  const NodeId n = inst.graph->node_count();

  // Reference dictionaries with the same contents: ball rows give the label
  // keys; cluster rows give the membership keys (v stores state for root r
  // iff v is in r's ball, i.e. r is in v's cluster).
  struct Mirror {
    NameDict<TreeLabel> ball;
    NameDict<TreeNodeTable> tab;
    NameDict<Port> up;
  };
  std::vector<Mirror> mirrors(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    Mirror& m = mirrors[static_cast<std::size_t>(v)];
    for (const NodeId w : balls.ball(v)) {
      const NodeName key = inst.names.name_of(w);
      const auto label = scheme.find_ball_label(v, key);
      if (!label.has_value()) {
        throw std::logic_error(
            "bench_harness: ball member missing from the label dictionary");
      }
      m.ball.add(key, *label);
    }
    for (const NodeId root : balls.cluster(v)) {
      const NodeName key = inst.names.name_of(root);
      const TreeNodeTable* tab = scheme.find_member_table(v, key);
      const Port* up = scheme.find_member_up_port(v, key);
      if (tab == nullptr || up == nullptr) {
        throw std::logic_error(
            "bench_harness: cluster root missing from the member dictionaries");
      }
      m.tab.add(key, *tab);
      m.up.add(key, *up);
    }
    m.ball.finalize();
    m.tab.finalize();
    m.up.finalize();
  }

  // Probe set: for every node, each of its ball members' names (dictionary
  // hits) plus one arbitrary name per node (mostly misses).  Shuffled so
  // consecutive probes touch different nodes' tables.
  std::vector<std::pair<NodeId, NodeName>> probes;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : balls.ball(v)) {
      probes.emplace_back(v, inst.names.name_of(w));
      probes.emplace_back(w, inst.names.name_of(v));
    }
    probes.emplace_back(v, inst.names.name_of((v + n / 2) % n));
  }
  Rng shuffle_rng(seed + 1);
  shuffle_rng.shuffle(probes);

  std::int64_t sum_before = 0, sum_after = 0;
  const auto run_reference = [&] {
    std::int64_t acc = 0;
    for (const auto& [at, key] : probes) {
      const Mirror& m = mirrors[static_cast<std::size_t>(at)];
      if (const TreeLabel* label = m.ball.find(key)) acc += label->dfs_in;
      if (const Port* up = m.up.find(key)) acc += *up;
      if (const TreeNodeTable* tab = m.tab.find(key)) acc += tab->heavy_port;
    }
    sum_before = acc;
  };
  const auto run_flat = [&] {
    std::int64_t acc = 0;
    for (const auto& [at, key] : probes) {
      if (const auto label = scheme.find_ball_label(at, key)) {
        acc += label->dfs_in;
      }
      if (const Port* up = scheme.find_member_up_port(at, key)) acc += *up;
      if (const TreeNodeTable* tab = scheme.find_member_table(at, key)) {
        acc += tab->heavy_port;
      }
    }
    sum_after = acc;
  };
  HotPathDelta d;
  d.name = "rtz3-flat-dicts";
  d.metric = "dict_lookup_ms";
  d.scheme = "rtz3";
  d.family = family_name(family);
  d.n = n;
  d.before = run_timed(delta_policy(), run_reference).best_ms;
  d.after = run_timed(delta_policy(), run_flat).best_ms;
  if (sum_before != sum_after) {
    throw std::logic_error(
        "bench_harness: flat rtz3 dictionaries diverged from the reference "
        "layout");
  }
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.before - d.after) / d.before : 0;
  return d;
}

/// Before/after for snapshot warm-start: the v1 streamed deserialization
/// (decode every table into owning buffers, full payload CRC) vs the v2
/// arena mmap load-in-place (open + header/directory check + offset fixup;
/// tables are served straight off the mapping).  Both files freeze the SAME
/// built stretch6 scheme, and both loaded handles are asserted to answer an
/// identical query sample, so the delta measures the load path alone.  The
/// gap is the tentpole claim -- O(tables) decode vs O(ms) at any n -- so the
/// caller hands in the big (n >= 4096) instance where the decode cost shows.
HotPathDelta measure_snapshot_map_delta(const Instance& inst, Family family,
                                        std::uint64_t seed) {
  namespace fs = std::filesystem;
  BuildContext ctx =
      BuildContext::wrap(inst.graph, inst.metric, inst.names, seed);
  auto scheme = SchemeRegistry::global().build("stretch6", ctx);
  SchemeHandle built(inst.graph, inst.names, scheme);
  const fs::path dir = fs::temp_directory_path();
  const std::string v1_path = (dir / "rtr_bench_mapdelta_v1.rtrsnap").string();
  const std::string v2_path = (dir / "rtr_bench_mapdelta_v2.rtrsnap").string();
  save_snapshot(v1_path, "stretch6", built, SchemeRegistry::global(),
                kSnapshotVersionV1);
  save_snapshot(v2_path, "stretch6", built, SchemeRegistry::global(),
                kSnapshotVersionV2);

  const auto run_v1_load = [&] {
    SchemeHandle loaded = load_snapshot(v1_path, "stretch6");
    volatile NodeId sink = loaded.graph().node_count();
    (void)sink;
  };
  const auto run_v2_map = [&] {
    SchemeHandle mapped = map_snapshot(v2_path, "stretch6");
    volatile NodeId sink = mapped.graph().node_count();
    (void)sink;
  };

  HotPathDelta d;
  d.name = "snapshot-arena-map";
  d.metric = "snapshot_load_ms";
  d.scheme = "stretch6";
  d.family = family_name(family);
  d.n = inst.graph->node_count();
  d.before = run_timed(delta_policy(), run_v1_load).best_ms;
  d.after = run_timed(delta_policy(), run_v2_map).best_ms;

  // Route-for-route equivalence of the two load paths on a query sample; a
  // divergence invalidates the measurement (and the format).
  {
    SchemeHandle v1_handle = load_snapshot(v1_path, "stretch6");
    SchemeHandle v2_handle = map_snapshot(v2_path, "stretch6");
    QueryEngineOptions opts;
    opts.threads = 1;
    const auto pairs =
        QueryEngine::sample_pairs(inst.graph->node_count(), 512, seed + 1);
    QueryEngine v1_engine(v1_handle.graph_ptr(), inst.metric, v1_handle.names(),
                          v1_handle.scheme_ptr(), opts);
    QueryEngine v2_engine(v2_handle.graph_ptr(), inst.metric, v2_handle.names(),
                          v2_handle.scheme_ptr(), opts);
    const StretchReport v1_rep = v1_engine.run_batch(pairs);
    const StretchReport v2_rep = v2_engine.run_batch(pairs);
    if (v1_rep.mean_stretch != v2_rep.mean_stretch ||
        v1_rep.failures != v2_rep.failures ||
        v1_rep.max_header_bits != v2_rep.max_header_bits) {
      throw std::logic_error(
          "bench_harness: mapped v2 snapshot diverged from the v1 load");
    }
  }
  std::error_code ec;
  fs::remove(v1_path, ec);
  fs::remove(v2_path, ec);
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.before - d.after) / d.before : 0;
  return d;
}

/// Before/after for the batch query path: the seed reference loop
/// (array-of-structs, per-hop type-erased Packet walk, per-hop header
/// re-measurement) vs run_batch's structure-of-arrays fast path.  Identical
/// reports are asserted -- a mismatch invalidates the measurement.
HotPathDelta measure_query_delta(const Instance& inst,
                                 const std::string& scheme_name,
                                 Family family, std::int64_t pair_budget,
                                 std::uint64_t seed) {
  BuildContext ctx = BuildContext::wrap(inst.graph, inst.metric, inst.names,
                                        seed);
  auto scheme = SchemeRegistry::global().build(scheme_name, ctx);
  QueryEngineOptions opts;
  opts.threads = 1;
  QueryEngine engine(inst.graph, inst.metric, inst.names, scheme, opts);
  const auto pairs = QueryEngine::sample_pairs(inst.graph->node_count(),
                                               pair_budget, seed + 1);
  IterationPolicy policy;
  policy.warmup_reps = 1;
  policy.min_reps = 2;
  policy.max_reps = 4;
  policy.min_rep_ms = 25;
  StretchReport before_rep, after_rep;
  const TimedPhase before =
      run_timed(policy, [&] { before_rep = engine.run_serial(pairs); });
  const TimedPhase after =
      run_timed(policy, [&] { after_rep = engine.run_batch(pairs); });
  if (before_rep.mean_stretch != after_rep.mean_stretch ||
      before_rep.failures != after_rep.failures ||
      before_rep.max_header_bits != after_rep.max_header_bits) {
    throw std::logic_error(
        "bench_harness: fast query path diverged from the reference walk");
  }
  HotPathDelta d;
  d.name = "query-batch-fast-walk";
  d.metric = "qps";
  d.scheme = scheme_name;
  d.family = family_name(family);
  d.n = inst.graph->node_count();
  d.before = before.best_ms > 0
                 ? static_cast<double>(before_rep.pairs) / (before.best_ms / 1e3)
                 : 0;
  d.after = after.best_ms > 0
                ? static_cast<double>(after_rep.pairs) / (after.best_ms / 1e3)
                : 0;
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.after - d.before) / d.before : 0;
  return d;
}

// ------------------------------------------------------- net serving cell --

/// The end-to-end serving measurement: the rtr_routed core (RouteServer over
/// an EpochManager) driven by the loadgen across loopback TCP, with one live
/// epoch swap deliberately overlapping the measured load.  qps and the
/// latency percentiles are socket-to-socket, so this column prices the whole
/// front end (parse, coalesce, batch, format) rather than the bare engine.
/// `failures` is the availability gate: every request must come back with a
/// definitive answer even while the next epoch builds and publishes.
CellResult run_net_serving_cell(const BenchConfig& config,
                                const std::string& scheme) {
  CellResult cell;
  cell.scheme = scheme;
  cell.family = "net_serving";
  const NodeId n =
      config.sizes.empty()
          ? 128
          : *std::max_element(config.sizes.begin(), config.sizes.end());
  cell.n = n;
  try {
    Rng rng(config.seed + 9001);
    GraphBuilder builder =
        make_family(Family::kRandom, n, config.max_weight, rng);
    builder.assign_adversarial_ports(rng);
    NameAssignment names = NameAssignment::random(builder.node_count(), rng);
    Digraph graph = builder.freeze();

    EpochManagerOptions manager_options;
    manager_options.query_threads = config.threads;
    manager_options.scheme_seed = config.seed;
    manager_options.metric_mode = config.metric_mode;
    const auto t0 = Clock::now();
    EpochManager manager(scheme, std::move(names), Digraph(graph),
                         manager_options);
    cell.build_ms = ms_since(t0);

    ManagerServingSource source(manager);
    RouteServer server(source);

    Rng churn_rng(config.seed + 9002);
    ChurnOptions churn;
    Digraph next = churn_step(graph, churn, churn_rng);

    LoadgenOptions load;
    load.port = server.port();
    load.connections = 2;
    load.requests = config.pair_budget;
    load.name_count = static_cast<NodeName>(n);
    load.seed = config.seed + 9003;

    // The swap races the whole measured window: rebuild in the background,
    // drive the closed-loop workload, then require the swap to have landed.
    manager.begin_rebuild(std::move(next));
    const LoadgenResult result = run_loadgen(load);
    manager.wait_for_rebuild();
    server.stop();

    cell.qps = result.qps;
    cell.p50_query_ns = result.latency.percentile(0.50);
    cell.p99_query_ns = result.latency.percentile(0.99);
    cell.query_reps = 1;
    cell.query_steady = true;
    cell.pairs = result.requests;
    cell.failures = result.failures;
    if (result.availability < 1.0) {
      cell.first_error = "availability " +
                         std::to_string(result.availability) +
                         " under live epoch swap";
    } else if (manager.epoch() == 0) {
      cell.failures += 1;
      cell.first_error = "epoch swap did not publish during the run: " +
                         manager.last_error();
    }
  } catch (const std::exception& e) {
    cell.failures = config.pair_budget > 0 ? config.pair_budget : 1;
    cell.first_error = e.what();
  }
  return cell;
}

}  // namespace

SuiteResult run_suite(const BenchConfig& config, std::ostream* progress) {
  SuiteResult result;
  const std::vector<std::string> schemes = resolve_schemes(config);
  const NodeId delta_n =
      config.sizes.empty()
          ? 0
          : *std::max_element(config.sizes.begin(), config.sizes.end());
  const Family delta_family =
      config.families.empty() ? Family::kRandom : config.families.front();
  // The delta phase reuses the sweep's (front family, largest n) instance --
  // the costliest APSP of the run -- instead of rebuilding it (same seed
  // formula, so the reuse is exact).  Instance holds shared_ptrs, so keeping
  // the copy alive is cheap.
  Instance delta_inst;
  bool have_delta_inst = false;
  for (const Family family : config.families) {
    for (const NodeId n : config.sizes) {
      const Instance inst = build_instance(
          family, n, config.max_weight,
          config.seed + static_cast<std::uint64_t>(n) * 31 +
              static_cast<std::uint64_t>(family),
          config.metric_mode, config.threads);
      if (family == delta_family && n == delta_n && !have_delta_inst) {
        delta_inst = inst;
        have_delta_inst = true;
      }
      for (const std::string& scheme : schemes) {
        CellResult cell = run_cell(inst, scheme, family, n, config);
        if (progress != nullptr) {
          *progress << cell.scheme << " " << cell.family << " n=" << cell.n
                    << " build_ms=" << cell.build_ms << " qps=" << cell.qps
                    << " mean_stretch=" << cell.mean_stretch
                    << " failures=" << cell.failures << "\n";
        }
        result.cells.push_back(std::move(cell));
      }
    }
  }
  if (config.net_serving && !schemes.empty()) {
    // One serving cell on the front scheme (stretch6 when registered -- the
    // paper's flagship), at the sweep's largest size.
    const std::string serving_scheme =
        std::find(schemes.begin(), schemes.end(), "stretch6") != schemes.end()
            ? std::string("stretch6")
            : schemes.front();
    CellResult cell = run_net_serving_cell(config, serving_scheme);
    if (progress != nullptr) {
      *progress << cell.scheme << " " << cell.family << " n=" << cell.n
                << " qps=" << cell.qps << " p99_ns=" << cell.p99_query_ns
                << " failures=" << cell.failures
                << (cell.first_error.empty() ? "" : " error=" + cell.first_error)
                << "\n";
    }
    result.cells.push_back(std::move(cell));
  }
  if (config.hot_path_deltas && have_delta_inst) {
    // One delta record each, on the largest configured size (most signal).
    const NodeId n = delta_n;
    const Family family = delta_family;
    result.deltas.push_back(
        measure_dijkstra_delta(family, n, config.max_weight, config.seed));
    result.deltas.push_back(measure_apsp_delta(family, n, config.max_weight,
                                               config.seed, config.threads));
    // Port resolution is degree-bound, not n-bound: measure where degree is
    // the workload (complete digraph), independent of the sweep sizes.
    result.deltas.push_back(measure_port_index_delta(256, config.seed));
    const Instance& inst = delta_inst;
    // The flat-dictionary delta is a cache effect; measure it on an instance
    // whose dictionaries outgrow L2 (reused from the sweep when the sweep is
    // already that big).
    const NodeId dict_n = std::max<NodeId>(n, 4096);
    const Instance dict_inst =
        dict_n == n ? inst
                    : build_instance(family, dict_n, config.max_weight,
                                     config.seed + static_cast<std::uint64_t>(dict_n),
                                     config.metric_mode, config.threads);
    result.deltas.push_back(
        measure_rtz3_dict_delta(dict_inst, family, config.seed));
    // The map delta needs the same big-instance treatment: v1 decode cost is
    // O(tables), so small n would understate (or noise out) the gap.
    result.deltas.push_back(
        measure_snapshot_map_delta(dict_inst, family, config.seed));
    for (const std::string& scheme :
         {std::string("stretch6"), std::string("rtz3")}) {
      if (SchemeRegistry::global().contains(scheme)) {
        result.deltas.push_back(measure_query_delta(
            inst, scheme, family, config.pair_budget, config.seed));
      }
    }
    if (progress != nullptr) {
      for (const auto& d : result.deltas) {
        *progress << "delta " << d.name << (d.scheme.empty() ? "" : " " + d.scheme)
                  << " n=" << d.n << " before=" << d.before
                  << " after=" << d.after << " (" << d.improvement_pct
                  << "% better)\n";
      }
    }
  }
  return result;
}

// ------------------------------------------------------------------- json --

Json cell_to_json(const CellResult& c) {
  Json j{JsonObject{}};
  j.set("scheme", c.scheme);
  j.set("family", c.family);
  j.set("n", static_cast<std::int64_t>(c.n));
  j.set("apsp_ms", c.apsp_ms);
  j.set("build_ms", c.build_ms);
  j.set("snapshot_load_ms", c.snapshot_load_ms);
  j.set("snapshot_map_ms", c.snapshot_map_ms);
  j.set("repair_ms", c.repair_ms);
  j.set("full_rebuild_ms", c.full_rebuild_ms);
  j.set("qps", c.qps);
  j.set("p50_query_ns", c.p50_query_ns);
  j.set("p99_query_ns", c.p99_query_ns);
  j.set("query_reps", static_cast<std::int64_t>(c.query_reps));
  j.set("query_steady", c.query_steady);
  j.set("build_rss_delta_kb", c.build_rss_delta_kb);
  j.set("peak_rss_kb", c.peak_rss_kb);
  j.set("pairs", c.pairs);
  j.set("failures", c.failures);
  j.set("invalid", c.invalid);
  j.set("mean_stretch", c.mean_stretch);
  j.set("p99_stretch", c.p99_stretch);
  j.set("max_stretch", c.max_stretch);
  j.set("max_header_bits", c.max_header_bits);
  j.set("table_entries_max", c.table_entries_max);
  j.set("bytes_per_node", c.bytes_per_node);
  j.set("first_error", c.first_error);
  return j;
}

CellResult cell_from_json(const Json& j) {
  CellResult c;
  c.scheme = j.at("scheme").as_string();
  c.family = j.at("family").as_string();
  c.n = static_cast<NodeId>(j.at("n").as_int());
  c.apsp_ms = j.at("apsp_ms").as_double();
  c.build_ms = j.at("build_ms").as_double();
  c.snapshot_load_ms = j.at("snapshot_load_ms").as_double();
  // Tolerant read: documents from before the mmap column parse as "phase
  // not measured", exactly like peak_rss_kb below.
  c.snapshot_map_ms =
      j.has("snapshot_map_ms") ? j.at("snapshot_map_ms").as_double() : -1;
  c.repair_ms = j.has("repair_ms") ? j.at("repair_ms").as_double() : -1;
  c.full_rebuild_ms =
      j.has("full_rebuild_ms") ? j.at("full_rebuild_ms").as_double() : -1;
  c.qps = j.at("qps").as_double();
  c.p50_query_ns = j.at("p50_query_ns").as_double();
  c.p99_query_ns = j.at("p99_query_ns").as_double();
  c.query_reps = static_cast<int>(j.at("query_reps").as_int());
  c.query_steady = j.at("query_steady").as_bool();
  c.build_rss_delta_kb = j.at("build_rss_delta_kb").as_int();
  // Tolerant read: documents from before the peak-RSS column (older
  // baselines) parse as "not measured", same as a host without clear_refs.
  c.peak_rss_kb = j.has("peak_rss_kb") ? j.at("peak_rss_kb").as_int() : -1;
  c.pairs = j.at("pairs").as_int();
  c.failures = j.at("failures").as_int();
  c.invalid = j.at("invalid").as_int();
  c.mean_stretch = j.at("mean_stretch").as_double();
  c.p99_stretch = j.at("p99_stretch").as_double();
  c.max_stretch = j.at("max_stretch").as_double();
  c.max_header_bits = j.at("max_header_bits").as_int();
  c.table_entries_max = j.at("table_entries_max").as_int();
  c.bytes_per_node = j.at("bytes_per_node").as_double();
  c.first_error = j.at("first_error").as_string();
  return c;
}

namespace {

Json delta_to_json(const HotPathDelta& d) {
  Json j{JsonObject{}};
  j.set("name", d.name);
  j.set("metric", d.metric);
  j.set("scheme", d.scheme);
  j.set("family", d.family);
  j.set("n", static_cast<std::int64_t>(d.n));
  j.set("before", d.before);
  j.set("after", d.after);
  j.set("improvement_pct", d.improvement_pct);
  return j;
}

HotPathDelta delta_from_json(const Json& j) {
  HotPathDelta d;
  d.name = j.at("name").as_string();
  d.metric = j.at("metric").as_string();
  d.scheme = j.at("scheme").as_string();
  d.family = j.at("family").as_string();
  d.n = static_cast<NodeId>(j.at("n").as_int());
  d.before = j.at("before").as_double();
  d.after = j.at("after").as_double();
  d.improvement_pct = j.at("improvement_pct").as_double();
  return d;
}

void check_schema(const Json& doc) {
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").as_string() != kSchemaVersion) {
    throw JsonError(std::string("BENCH document is not ") +
                               kSchemaVersion);
  }
}

}  // namespace

// GCC 12 mis-models the moved-from Json variant's inlined vector members
// and reports spurious -Wmaybe-uninitialized on the std::move()s below (same
// class of false positive as snapshot_format.h's -Wstringop-overflow, GCC
// PR 105329 family); suppress just that diagnostic for this function.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Json suite_to_json(const SuiteResult& result, const BenchConfig& config,
                   const std::string& rev) {
  Json doc{JsonObject{}};
  doc.set("schema", kSchemaVersion);
  doc.set("rev", rev);
  Json cfg{JsonObject{}};
  {
    JsonArray fams;
    for (const Family f : config.families) fams.push_back(family_name(f));
    cfg.set("families", std::move(fams));
    JsonArray sizes;
    for (const NodeId n : config.sizes) {
      sizes.push_back(static_cast<std::int64_t>(n));
    }
    cfg.set("sizes", std::move(sizes));
    cfg.set("pair_budget", config.pair_budget);
    cfg.set("latency_sample", config.latency_sample);
    cfg.set("threads", static_cast<std::int64_t>(config.threads));
    cfg.set("seed", static_cast<std::int64_t>(config.seed));
    cfg.set("metric", std::string(metric_mode_name(config.metric_mode)));
    cfg.set("max_weight", static_cast<std::int64_t>(config.max_weight));
    cfg.set("net_serving", config.net_serving);
  }
  doc.set("config", std::move(cfg));
  Json host{JsonObject{}};
  host.set("cpu", host_cpu_model());
  host.set("threads",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  // The resolved --threads value the run actually used (engine workers and
  // APSP pool width), so baselines from differently-threaded runs are
  // distinguishable even though both documents echo the same config shape.
  host.set("threads_configured",
           static_cast<std::int64_t>(resolve_apsp_threads(config.threads)));
  doc.set("host", std::move(host));
  JsonArray cells;
  for (const CellResult& c : result.cells) cells.push_back(cell_to_json(c));
  doc.set("cells", std::move(cells));
  JsonArray deltas;
  for (const HotPathDelta& d : result.deltas) {
    deltas.push_back(delta_to_json(d));
  }
  doc.set("hot_path_deltas", std::move(deltas));
  return doc;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::vector<CellResult> cells_from_json(const Json& doc) {
  check_schema(doc);
  std::vector<CellResult> out;
  for (const Json& j : doc.at("cells").as_array()) {
    out.push_back(cell_from_json(j));
  }
  return out;
}

std::vector<HotPathDelta> deltas_from_json(const Json& doc) {
  check_schema(doc);
  std::vector<HotPathDelta> out;
  if (!doc.has("hot_path_deltas")) return out;
  for (const Json& j : doc.at("hot_path_deltas").as_array()) {
    out.push_back(delta_from_json(j));
  }
  return out;
}

std::string default_output_name(const std::string& rev) {
  return "BENCH_" + rev + ".json";
}

void write_text_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for writing");
    out << content;
    if (!out.flush()) throw std::runtime_error("short write to " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ------------------------------------------------------------------- gate --

std::vector<std::string> check_growth_budgets(const Json& doc,
                                              const GrowthGateOptions& options) {
  std::vector<std::string> violations;
  const std::vector<CellResult> cells = cells_from_json(doc);
  // Count (scheme, family) series the gate actually evaluated: a document
  // that produces zero evaluations (wrong schemes, single-size sweep) must
  // be a typed failure, or a misconfigured nightly job would green forever.
  int gated_series = 0;
  for (const std::string& scheme : options.schemes) {
    // Group this scheme's cells by family, sorted by n.
    std::vector<std::string> families;
    for (const CellResult& c : cells) {
      // "net_serving" is a single-point end-to-end measurement, not a size
      // series; it carries no table/memory columns for a growth ratio.
      if (c.family == "net_serving") continue;
      if (c.scheme == scheme &&
          std::find(families.begin(), families.end(), c.family) ==
              families.end()) {
        families.push_back(c.family);
      }
    }
    for (const std::string& family : families) {
      std::vector<const CellResult*> series;
      for (const CellResult& c : cells) {
        if (c.scheme == scheme && c.family == family) series.push_back(&c);
      }
      std::sort(series.begin(), series.end(),
                [](const CellResult* a, const CellResult* b) {
                  return a->n < b->n;
                });
      const auto key = scheme + "|" + family;
      if (series.size() < 2) {
        throw GrowthGateError(
            "check_growth_budgets: " + key + " has only " +
            std::to_string(series.size()) +
            " size(s); a growth gate needs a multi-size sweep (pass at least "
            "two --sizes)");
      }
      // Gate the series ENDPOINTS, not consecutive steps: over one doubling
      // the sqrt-budget-with-slack still admits linear growth (2x actual vs
      // ~2.1x allowed), while over the full sweep range (n ratio 32) the
      // separation is unambiguous -- sqrt budget ~5.7x * polylog vs 32x for
      // a linear regression.
      const CellResult& lo = *series.front();
      const CellResult& hi = *series.back();
      if (hi.n <= lo.n) {
        throw GrowthGateError("check_growth_budgets: " + key +
                              " endpoints are both n=" + std::to_string(lo.n) +
                              "; duplicate sizes cannot support a growth "
                              "ratio (pass distinct --sizes)");
      }
      const double size_ratio =
          static_cast<double>(hi.n) / static_cast<double>(lo.n);
      const double log_ratio = std::log2(static_cast<double>(hi.n)) /
                               std::log2(static_cast<double>(lo.n));
      ++gated_series;
      if (!(lo.bytes_per_node > 0) || !std::isfinite(lo.bytes_per_node) ||
          !std::isfinite(hi.bytes_per_node)) {
        // bytes_per_node is deterministic and positive for every real build;
        // zero or non-finite means a truncated/corrupt document, and dividing
        // by it would turn the gate into NaN/inf comparisons that never fire.
        throw GrowthGateError(
            "check_growth_budgets: " + key + " has non-positive or " +
            "non-finite bytes_per_node at an endpoint (lo=" +
            std::to_string(lo.bytes_per_node) + ", hi=" +
            std::to_string(hi.bytes_per_node) + "); document is malformed");
      }
      {
        const double allowed =
            std::sqrt(size_ratio) * log_ratio * log_ratio * options.bytes_slack;
        const double actual = hi.bytes_per_node / lo.bytes_per_node;
        if (actual > allowed) {
          char buf[200];
          std::snprintf(buf, sizeof buf,
                        "%s: bytes/node grew %.2fx from n=%d to n=%d "
                        "(O~(sqrt n) budget allows %.2fx)",
                        key.c_str(), actual, lo.n, hi.n, allowed);
          violations.emplace_back(buf);
        }
      }
      if (lo.peak_rss_kb >= options.min_peak_rss_kb &&
          hi.peak_rss_kb >= options.min_peak_rss_kb) {
        // Total-memory budget: graph + metric rows + tables in O~(n sqrt n).
        // Only armed when both endpoints cleared the floor (below it,
        // allocator round-off dominates) and the kernel reported a peak.
        const double allowed = size_ratio * std::sqrt(size_ratio) * log_ratio *
                               log_ratio * options.rss_slack;
        const double actual = static_cast<double>(hi.peak_rss_kb) /
                              static_cast<double>(lo.peak_rss_kb);
        if (actual > allowed) {
          char buf[220];
          std::snprintf(buf, sizeof buf,
                        "%s: peak RSS grew %.2fx from n=%d (%lld KiB) to n=%d "
                        "(%lld KiB); O~(n sqrt n) memory budget allows %.2fx",
                        key.c_str(), actual, lo.n,
                        static_cast<long long>(lo.peak_rss_kb), hi.n,
                        static_cast<long long>(hi.peak_rss_kb), allowed);
          violations.emplace_back(buf);
        }
      }
      if (lo.build_ms > options.min_build_ms &&
          hi.build_ms > options.min_build_ms) {
        const double allowed = size_ratio * std::sqrt(size_ratio) *
                               log_ratio * log_ratio * options.build_slack;
        const double actual = hi.build_ms / lo.build_ms;
        if (actual > allowed) {
          char buf[200];
          std::snprintf(buf, sizeof buf,
                        "%s: build_ms grew %.2fx from n=%d to n=%d "
                        "(O~(n sqrt n) budget allows %.2fx)",
                        key.c_str(), actual, lo.n, hi.n, allowed);
          violations.emplace_back(buf);
        }
      }
      // Owned snapshot deserialization decodes the same O~(n sqrt n) table
      // bytes, so it shares the build budget.  A negative value at either
      // endpoint is the "phase skipped" sentinel (scheme without snapshot
      // hooks, failed save, old document) -- explicitly skipped, never fed
      // into a ratio; the min_build_ms floor then drops sub-noise times.
      if (lo.snapshot_load_ms >= 0 && hi.snapshot_load_ms >= 0 &&
          lo.snapshot_load_ms > options.min_build_ms &&
          hi.snapshot_load_ms > options.min_build_ms) {
        const double allowed = size_ratio * std::sqrt(size_ratio) *
                               log_ratio * log_ratio * options.build_slack;
        const double actual = hi.snapshot_load_ms / lo.snapshot_load_ms;
        if (actual > allowed) {
          char buf[200];
          std::snprintf(buf, sizeof buf,
                        "%s: snapshot_load_ms grew %.2fx from n=%d to n=%d "
                        "(O~(n sqrt n) budget allows %.2fx)",
                        key.c_str(), actual, lo.n, hi.n, allowed);
          violations.emplace_back(buf);
        }
      }
    }
  }
  if (gated_series == 0) {
    throw GrowthGateError(
        "check_growth_budgets: no gated scheme/family series found in the "
        "document; the gate would pass vacuously (check --schemes against "
        "the gated set and sweep at least two sizes)");
  }
  return violations;
}

std::vector<std::string> compare_to_baseline(const Json& baseline,
                                             const Json& current,
                                             const GateOptions& options,
                                             std::vector<std::string>* notes) {
  std::vector<std::string> violations;
  const std::vector<CellResult> base = cells_from_json(baseline);
  const std::vector<CellResult> cur = cells_from_json(current);
  const auto key = [](const CellResult& c) {
    return c.scheme + "|" + c.family + "|" + std::to_string(c.n);
  };
  // Throughput is only comparable when BOTH the CPU model and the
  // configured thread count match (each fingerprint is skipped when either
  // document predates its stamp).
  const auto host_of = [](const Json& doc) -> std::string {
    if (doc.has("host") && doc.at("host").has("cpu")) {
      return doc.at("host").at("cpu").as_string();
    }
    return "";
  };
  const auto threads_of = [](const Json& doc) -> std::int64_t {
    if (doc.has("host") && doc.at("host").has("threads_configured")) {
      return doc.at("host").at("threads_configured").as_int();
    }
    // Unstamped documents predate the stamp, when the engine default was a
    // fixed threads=1 -- the only value they could have been measured with.
    return 1;
  };
  const std::string base_host = host_of(baseline);
  const std::string cur_host = host_of(current);
  const std::int64_t base_threads = threads_of(baseline);
  const std::int64_t cur_threads = threads_of(current);
  const bool hosts_match =
      base_host.empty() || cur_host.empty() || base_host == cur_host;
  const bool threads_match = base_threads == cur_threads;
  const bool qps_comparable = hosts_match && threads_match;
  if (!qps_comparable && notes != nullptr) {
    if (!hosts_match) {
      notes->push_back("qps gate skipped: baseline host \"" + base_host +
                       "\" != current host \"" + cur_host +
                       "\"; refresh BENCH_baseline.json from a run on this "
                       "hardware to arm it");
    } else {
      notes->push_back(
          "qps gate skipped: baseline ran with threads_configured=" +
          std::to_string(base_threads) + " but current ran with " +
          std::to_string(cur_threads) +
          "; rerun with matching --threads to arm it");
    }
  }
  for (const CellResult& b : base) {
    const auto it = std::find_if(cur.begin(), cur.end(), [&](const CellResult& c) {
      return key(c) == key(b);
    });
    if (it == cur.end()) {
      violations.push_back("missing cell vs baseline: " + key(b));
      continue;
    }
    const CellResult& c = *it;
    if (c.failures > 0) {
      violations.push_back(key(b) + ": " + std::to_string(c.failures) +
                           " failed queries (" + c.first_error + ")");
    }
    // net_serving qps is a single socket-to-socket pass with an epoch swap
    // deliberately landing mid-run (no best-of reps to steady it), so its
    // throughput is not gateable; the cell's contract is the failures ==
    // 0 availability check above.
    const bool qps_gated = c.family != "net_serving";
    if (qps_comparable && qps_gated && b.qps > 0 &&
        c.qps < b.qps * (1.0 - options.qps_drop_tolerance)) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s: qps regressed %.0f -> %.0f (more than %.0f%%)",
                    key(b).c_str(), b.qps, c.qps,
                    options.qps_drop_tolerance * 100);
      violations.emplace_back(buf);
    }
    if (c.mean_stretch > b.mean_stretch + options.stretch_epsilon) {
      char buf[160];
      std::snprintf(buf, sizeof buf, "%s: avg stretch increased %.6f -> %.6f",
                    key(b).c_str(), b.mean_stretch, c.mean_stretch);
      violations.emplace_back(buf);
    }
    // Snapshot-phase regressions.  A -1 on EITHER side means "phase skipped
    // or not measured" (an old baseline, a scheme without snapshot hooks, a
    // failed save) -- a sentinel, not a time -- so it is never compared;
    // likewise sub-floor times, where single-shot measurement noise
    // dominates.  Timing comparability follows the qps rule (same host CPU
    // and thread count).
    const auto check_phase = [&](const char* label, double base_ms,
                                 double cur_ms) {
      if (!qps_comparable) return;
      if (base_ms < 0 || cur_ms < 0) return;  // sentinel: skip, never compare
      if (base_ms <= options.min_snapshot_phase_ms ||
          cur_ms <= options.min_snapshot_phase_ms) {
        return;
      }
      if (cur_ms > base_ms * (1.0 + options.snapshot_regression_tolerance)) {
        char buf[180];
        std::snprintf(buf, sizeof buf,
                      "%s: %s regressed %.2fms -> %.2fms (more than %.0f%%)",
                      key(b).c_str(), label, base_ms, cur_ms,
                      options.snapshot_regression_tolerance * 100);
        violations.emplace_back(buf);
      }
    };
    check_phase("snapshot_load_ms", b.snapshot_load_ms, c.snapshot_load_ms);
    check_phase("snapshot_map_ms", b.snapshot_map_ms, c.snapshot_map_ms);
    // Rebuild-latency rows from the churn_serving bench: the incremental
    // repair must not regress, and neither may the full rebuild it replaces.
    check_phase("repair_ms", b.repair_ms, c.repair_ms);
    check_phase("full_rebuild_ms", b.full_rebuild_ms, c.full_rebuild_ms);
  }
  for (const HotPathDelta& d : deltas_from_json(current)) {
    if (d.improvement_pct < options.delta_floor_pct) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "hot-path delta %s: %.1f%% improvement is below the "
                    "%.1f%% floor",
                    d.name.c_str(), d.improvement_pct, options.delta_floor_pct);
      violations.emplace_back(buf);
    }
  }
  return violations;
}

}  // namespace rtr::bench_harness
