#include "bench_harness/bench_harness.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/names.h"
#include "graph/dijkstra.h"
#include "io/snapshot.h"
#include "net/scheme.h"
#include "rt/metric.h"
#include "util/rng.h"

namespace rtr::bench_harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

// ----------------------------------------------------------------- timing --

TimedPhase run_timed(const IterationPolicy& policy,
                     const std::function<void()>& fn) {
  double warm_ms = -1;
  for (int i = 0; i < policy.warmup_reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    warm_ms = ms_since(t0);
  }
  TimedPhase out;
  if (policy.min_rep_ms > 0 && warm_ms >= 0 && warm_ms < policy.min_rep_ms) {
    constexpr int kMaxInner = 64;
    out.inner_iterations = warm_ms <= policy.min_rep_ms / kMaxInner
                               ? kMaxInner
                               : static_cast<int>(policy.min_rep_ms / warm_ms) + 1;
  }
  std::vector<double> times;
  const int min_reps = std::max(1, policy.min_reps);
  const int max_reps = std::max(min_reps, policy.max_reps);
  const int window = std::max(2, policy.window);
  while (static_cast<int>(times.size()) < max_reps) {
    const auto t0 = Clock::now();
    for (int k = 0; k < out.inner_iterations; ++k) fn();
    times.push_back(ms_since(t0) / out.inner_iterations);
    if (static_cast<int>(times.size()) < min_reps) continue;
    if (static_cast<int>(times.size()) >= window) {
      const auto tail = times.end() - window;
      const double lo = *std::min_element(tail, times.end());
      const double hi = *std::max_element(tail, times.end());
      if (lo > 0 && (hi - lo) / lo <= policy.steady_rel_spread) {
        out.steady = true;
        break;
      }
    }
  }
  out.reps = static_cast<int>(times.size());
  out.best_ms = *std::min_element(times.begin(), times.end());
  double sum = 0;
  for (const double t : times) sum += t;
  out.mean_ms = sum / static_cast<double>(times.size());
  return out;
}

std::string host_cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        return line.substr(colon + 2);
      }
    }
  }
  return "unknown";
}

std::int64_t current_rss_kb() {
  std::ifstream status("/proc/self/status");
  if (!status) return -1;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::int64_t kb = -1;
      if (std::sscanf(line.c_str(), "VmRSS: %" SCNd64, &kb) == 1) return kb;
      return -1;
    }
  }
  return -1;
}

// ------------------------------------------------------------------ suite --

BenchConfig BenchConfig::quick() {
  BenchConfig c;
  c.families = {Family::kRandom, Family::kGrid, Family::kRing};
  c.sizes = {128, 256};
  // Each timed rep must be tens of milliseconds, not single-digit: on a
  // noisy (shared CI) host, sub-5ms reps make best-of qps swing by 2x and
  // trip the regression gate spuriously.  12k pairs x ~2us keeps one rep
  // around 25-50ms while the whole quick sweep stays in CI-smoke territory.
  c.pair_budget = 12000;
  c.latency_sample = 500;
  c.iterations.warmup_reps = 1;
  c.iterations.min_reps = 3;
  c.iterations.max_reps = 8;
  c.iterations.min_rep_ms = 25;
  return c;
}

BenchConfig BenchConfig::full() {
  BenchConfig c;
  c.families = {Family::kRandom, Family::kScaleFree, Family::kGrid,
                Family::kRing};
  c.sizes = {128, 256, 512, 1024, 2048, 4096};
  c.pair_budget = 6000;
  c.latency_sample = 2000;
  return c;
}

namespace {

std::vector<std::string> resolve_schemes(const BenchConfig& config) {
  if (!config.schemes.empty()) return config.schemes;
  return SchemeRegistry::global().names();
}

/// Everything shared by the cells of one (family, n) instance.
struct Instance {
  std::shared_ptr<const Digraph> graph;
  std::shared_ptr<const RoundtripMetric> metric;
  NameAssignment names = NameAssignment::identity(0);
  double apsp_ms = 0;
};

Instance build_instance(Family family, NodeId n, Weight max_weight,
                        std::uint64_t seed) {
  Instance inst;
  Rng rng(seed);
  Digraph g = make_family(family, n, max_weight, rng);
  g.assign_adversarial_ports(rng);
  inst.names = NameAssignment::random(g.node_count(), rng);
  inst.graph = std::make_shared<const Digraph>(std::move(g));
  const auto t0 = Clock::now();
  inst.metric = std::make_shared<RoundtripMetric>(*inst.graph);
  inst.apsp_ms = ms_since(t0);
  return inst;
}

double percentile_ns(std::vector<double>& ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1) + 0.5);
  return ns[std::min(rank, ns.size() - 1)];
}

CellResult run_cell(const Instance& inst, const std::string& scheme_name,
                    Family family, NodeId n, const BenchConfig& config) {
  CellResult cell;
  cell.scheme = scheme_name;
  cell.family = family_name(family);
  cell.n = inst.graph->node_count();
  cell.apsp_ms = inst.apsp_ms;

  BuildContext ctx = BuildContext::wrap(inst.graph, inst.metric, inst.names,
                                        config.seed + static_cast<std::uint64_t>(n));

  // --- construction phase -------------------------------------------------
  const std::int64_t rss_before = current_rss_kb();
  const auto build_t0 = Clock::now();
  std::shared_ptr<const Scheme> scheme =
      SchemeRegistry::global().build(scheme_name, ctx);
  cell.build_ms = ms_since(build_t0);
  const std::int64_t rss_after = current_rss_kb();
  if (rss_before >= 0 && rss_after >= 0) {
    cell.build_rss_delta_kb = std::max<std::int64_t>(0, rss_after - rss_before);
  }

  const TableStats stats = scheme->table_stats();
  cell.table_entries_max = stats.max_entries();
  cell.bytes_per_node = stats.mean_bits() / 8.0;

  // --- batch query phase --------------------------------------------------
  QueryEngineOptions opts;
  opts.threads = config.threads;
  QueryEngine engine(inst.graph, inst.metric, inst.names, scheme, opts);
  const auto pairs = QueryEngine::sample_pairs(
      cell.n, config.pair_budget, config.seed + 1);
  StretchReport report;
  const TimedPhase query = run_timed(config.iterations,
                                     [&] { report = engine.run_batch(pairs); });
  cell.query_reps = query.reps;
  cell.query_steady = query.steady;
  cell.pairs = report.pairs;
  cell.failures = report.failures;
  cell.invalid = report.invalid;
  cell.mean_stretch = report.mean_stretch;
  cell.p99_stretch = report.p99_stretch;
  cell.max_stretch = report.max_stretch;
  cell.max_header_bits = report.max_header_bits;
  cell.first_error = report.first_error;
  cell.qps = query.best_ms > 0
                 ? static_cast<double>(report.pairs) / (query.best_ms / 1e3)
                 : 0;

  // --- per-query latency distribution -------------------------------------
  const auto sample = static_cast<std::size_t>(std::min<std::int64_t>(
      config.latency_sample, static_cast<std::int64_t>(pairs.size())));
  std::vector<double> latencies_ns;
  latencies_ns.reserve(sample);
  for (std::size_t i = 0; i < sample; ++i) {
    const auto t0 = Clock::now();
    try {
      (void)engine.roundtrip(pairs[i].src, pairs[i].dst);
    } catch (const std::exception&) {
      // Already accounted as a failure by the batch phase; latency of a
      // throwing query is not meaningful.
      continue;
    }
    latencies_ns.push_back(ms_since(t0) * 1e6);
  }
  cell.p50_query_ns = percentile_ns(latencies_ns, 0.50);
  cell.p99_query_ns = percentile_ns(latencies_ns, 0.99);

  // --- snapshot load phase ------------------------------------------------
  if (config.snapshot_phase &&
      SchemeRegistry::global().snapshot_supported(scheme_name)) {
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() /
        ("rtr_bench_" + scheme_name + "_" + cell.family + "_" +
         std::to_string(cell.n) + ".rtrsnap");
    SchemeHandle handle(inst.graph, inst.names, scheme);
    try {
      save_snapshot(path.string(), scheme_name, handle);
      const auto t0 = Clock::now();
      SchemeHandle loaded = load_snapshot(path.string(), scheme_name);
      cell.snapshot_load_ms = ms_since(t0);
    } catch (const std::exception&) {
      cell.snapshot_load_ms = -1;  // phase skipped; the cell still stands
    }
    std::error_code ec;
    fs::remove(path, ec);
  }
  return cell;
}

// ------------------------------------------------- hot-path delta measures --

/// Before/after for the Dijkstra arena: the seed implementation (fresh
/// buffers + std::priority_queue per source) vs the CSR + workspace + Dial
/// fast path all_pairs_shortest_paths runs.  Both live in this binary, so
/// the record is re-measured on every bench run.
HotPathDelta measure_dijkstra_delta(Family family, NodeId n, Weight max_weight,
                                    std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = make_family(family, n, max_weight, rng);
  const NodeId nodes = g.node_count();

  const auto run_reference = [&] {
    for (NodeId s = 0; s < nodes; ++s) {
      volatile Dist sink = dijkstra_distances_reference(g, s)[0];
      (void)sink;
    }
  };
  CsrAdjacency csr(g);
  DijkstraWorkspace ws;
  std::vector<Dist> row(static_cast<std::size_t>(nodes));
  const auto run_arena = [&] {
    for (NodeId s = 0; s < nodes; ++s) {
      dijkstra_distances_into(csr, s, ws, row);
      volatile Dist sink = row[0];
      (void)sink;
    }
  };

  IterationPolicy policy;
  policy.warmup_reps = 1;
  policy.min_reps = 2;
  policy.max_reps = 3;
  policy.min_rep_ms = 25;
  HotPathDelta d;
  d.name = "dijkstra-arena-dial";
  d.metric = "apsp_ms";
  d.family = family_name(family);
  d.n = nodes;
  d.before = run_timed(policy, run_reference).best_ms;
  d.after = run_timed(policy, run_arena).best_ms;
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.before - d.after) / d.before : 0;
  return d;
}

/// Before/after for the batch query path: the seed reference loop
/// (array-of-structs, per-hop type-erased Packet walk, per-hop header
/// re-measurement) vs run_batch's structure-of-arrays fast path.  Identical
/// reports are asserted -- a mismatch invalidates the measurement.
HotPathDelta measure_query_delta(const Instance& inst,
                                 const std::string& scheme_name,
                                 Family family, std::int64_t pair_budget,
                                 std::uint64_t seed) {
  BuildContext ctx = BuildContext::wrap(inst.graph, inst.metric, inst.names,
                                        seed);
  auto scheme = SchemeRegistry::global().build(scheme_name, ctx);
  QueryEngineOptions opts;
  opts.threads = 1;
  QueryEngine engine(inst.graph, inst.metric, inst.names, scheme, opts);
  const auto pairs = QueryEngine::sample_pairs(inst.graph->node_count(),
                                               pair_budget, seed + 1);
  IterationPolicy policy;
  policy.warmup_reps = 1;
  policy.min_reps = 2;
  policy.max_reps = 4;
  policy.min_rep_ms = 25;
  StretchReport before_rep, after_rep;
  const TimedPhase before =
      run_timed(policy, [&] { before_rep = engine.run_serial(pairs); });
  const TimedPhase after =
      run_timed(policy, [&] { after_rep = engine.run_batch(pairs); });
  if (before_rep.mean_stretch != after_rep.mean_stretch ||
      before_rep.failures != after_rep.failures ||
      before_rep.max_header_bits != after_rep.max_header_bits) {
    throw std::logic_error(
        "bench_harness: fast query path diverged from the reference walk");
  }
  HotPathDelta d;
  d.name = "query-batch-fast-walk";
  d.metric = "qps";
  d.scheme = scheme_name;
  d.family = family_name(family);
  d.n = inst.graph->node_count();
  d.before = before.best_ms > 0
                 ? static_cast<double>(before_rep.pairs) / (before.best_ms / 1e3)
                 : 0;
  d.after = after.best_ms > 0
                ? static_cast<double>(after_rep.pairs) / (after.best_ms / 1e3)
                : 0;
  d.improvement_pct =
      d.before > 0 ? 100.0 * (d.after - d.before) / d.before : 0;
  return d;
}

}  // namespace

SuiteResult run_suite(const BenchConfig& config, std::ostream* progress) {
  SuiteResult result;
  const std::vector<std::string> schemes = resolve_schemes(config);
  for (const Family family : config.families) {
    for (const NodeId n : config.sizes) {
      const Instance inst = build_instance(
          family, n, config.max_weight,
          config.seed + static_cast<std::uint64_t>(n) * 31 +
              static_cast<std::uint64_t>(family));
      for (const std::string& scheme : schemes) {
        CellResult cell = run_cell(inst, scheme, family, n, config);
        if (progress != nullptr) {
          *progress << cell.scheme << " " << cell.family << " n=" << cell.n
                    << " build_ms=" << cell.build_ms << " qps=" << cell.qps
                    << " mean_stretch=" << cell.mean_stretch
                    << " failures=" << cell.failures << "\n";
        }
        result.cells.push_back(std::move(cell));
      }
    }
  }
  if (config.hot_path_deltas && !config.sizes.empty() &&
      !config.families.empty()) {
    // One delta record each, on the largest configured size (most signal).
    const NodeId n = *std::max_element(config.sizes.begin(), config.sizes.end());
    const Family family = config.families.front();
    result.deltas.push_back(
        measure_dijkstra_delta(family, n, config.max_weight, config.seed));
    const Instance inst =
        build_instance(family, n, config.max_weight,
                       config.seed + static_cast<std::uint64_t>(n) * 31 +
                           static_cast<std::uint64_t>(family));
    for (const std::string& scheme :
         {std::string("stretch6"), std::string("rtz3")}) {
      if (SchemeRegistry::global().contains(scheme)) {
        result.deltas.push_back(measure_query_delta(
            inst, scheme, family, config.pair_budget, config.seed));
      }
    }
    if (progress != nullptr) {
      for (const auto& d : result.deltas) {
        *progress << "delta " << d.name << (d.scheme.empty() ? "" : " " + d.scheme)
                  << " n=" << d.n << " before=" << d.before
                  << " after=" << d.after << " (" << d.improvement_pct
                  << "% better)\n";
      }
    }
  }
  return result;
}

// ------------------------------------------------------------------- json --

namespace {

using benchjson::Json;
using benchjson::JsonArray;
using benchjson::JsonObject;

}  // namespace

Json cell_to_json(const CellResult& c) {
  Json j{JsonObject{}};
  j.set("scheme", c.scheme);
  j.set("family", c.family);
  j.set("n", static_cast<std::int64_t>(c.n));
  j.set("apsp_ms", c.apsp_ms);
  j.set("build_ms", c.build_ms);
  j.set("snapshot_load_ms", c.snapshot_load_ms);
  j.set("qps", c.qps);
  j.set("p50_query_ns", c.p50_query_ns);
  j.set("p99_query_ns", c.p99_query_ns);
  j.set("query_reps", static_cast<std::int64_t>(c.query_reps));
  j.set("query_steady", c.query_steady);
  j.set("build_rss_delta_kb", c.build_rss_delta_kb);
  j.set("pairs", c.pairs);
  j.set("failures", c.failures);
  j.set("invalid", c.invalid);
  j.set("mean_stretch", c.mean_stretch);
  j.set("p99_stretch", c.p99_stretch);
  j.set("max_stretch", c.max_stretch);
  j.set("max_header_bits", c.max_header_bits);
  j.set("table_entries_max", c.table_entries_max);
  j.set("bytes_per_node", c.bytes_per_node);
  j.set("first_error", c.first_error);
  return j;
}

CellResult cell_from_json(const Json& j) {
  CellResult c;
  c.scheme = j.at("scheme").as_string();
  c.family = j.at("family").as_string();
  c.n = static_cast<NodeId>(j.at("n").as_int());
  c.apsp_ms = j.at("apsp_ms").as_double();
  c.build_ms = j.at("build_ms").as_double();
  c.snapshot_load_ms = j.at("snapshot_load_ms").as_double();
  c.qps = j.at("qps").as_double();
  c.p50_query_ns = j.at("p50_query_ns").as_double();
  c.p99_query_ns = j.at("p99_query_ns").as_double();
  c.query_reps = static_cast<int>(j.at("query_reps").as_int());
  c.query_steady = j.at("query_steady").as_bool();
  c.build_rss_delta_kb = j.at("build_rss_delta_kb").as_int();
  c.pairs = j.at("pairs").as_int();
  c.failures = j.at("failures").as_int();
  c.invalid = j.at("invalid").as_int();
  c.mean_stretch = j.at("mean_stretch").as_double();
  c.p99_stretch = j.at("p99_stretch").as_double();
  c.max_stretch = j.at("max_stretch").as_double();
  c.max_header_bits = j.at("max_header_bits").as_int();
  c.table_entries_max = j.at("table_entries_max").as_int();
  c.bytes_per_node = j.at("bytes_per_node").as_double();
  c.first_error = j.at("first_error").as_string();
  return c;
}

namespace {

Json delta_to_json(const HotPathDelta& d) {
  Json j{JsonObject{}};
  j.set("name", d.name);
  j.set("metric", d.metric);
  j.set("scheme", d.scheme);
  j.set("family", d.family);
  j.set("n", static_cast<std::int64_t>(d.n));
  j.set("before", d.before);
  j.set("after", d.after);
  j.set("improvement_pct", d.improvement_pct);
  return j;
}

HotPathDelta delta_from_json(const Json& j) {
  HotPathDelta d;
  d.name = j.at("name").as_string();
  d.metric = j.at("metric").as_string();
  d.scheme = j.at("scheme").as_string();
  d.family = j.at("family").as_string();
  d.n = static_cast<NodeId>(j.at("n").as_int());
  d.before = j.at("before").as_double();
  d.after = j.at("after").as_double();
  d.improvement_pct = j.at("improvement_pct").as_double();
  return d;
}

void check_schema(const Json& doc) {
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").as_string() != kSchemaVersion) {
    throw benchjson::JsonError(std::string("BENCH document is not ") +
                               kSchemaVersion);
  }
}

}  // namespace

Json suite_to_json(const SuiteResult& result, const BenchConfig& config,
                   const std::string& rev) {
  Json doc{JsonObject{}};
  doc.set("schema", kSchemaVersion);
  doc.set("rev", rev);
  Json cfg{JsonObject{}};
  {
    JsonArray fams;
    for (const Family f : config.families) fams.push_back(family_name(f));
    cfg.set("families", std::move(fams));
    JsonArray sizes;
    for (const NodeId n : config.sizes) {
      sizes.push_back(static_cast<std::int64_t>(n));
    }
    cfg.set("sizes", std::move(sizes));
    cfg.set("pair_budget", config.pair_budget);
    cfg.set("latency_sample", config.latency_sample);
    cfg.set("threads", static_cast<std::int64_t>(config.threads));
    cfg.set("seed", static_cast<std::int64_t>(config.seed));
    cfg.set("max_weight", static_cast<std::int64_t>(config.max_weight));
  }
  doc.set("config", std::move(cfg));
  Json host{JsonObject{}};
  host.set("cpu", host_cpu_model());
  host.set("threads",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  doc.set("host", std::move(host));
  JsonArray cells;
  for (const CellResult& c : result.cells) cells.push_back(cell_to_json(c));
  doc.set("cells", std::move(cells));
  JsonArray deltas;
  for (const HotPathDelta& d : result.deltas) {
    deltas.push_back(delta_to_json(d));
  }
  doc.set("hot_path_deltas", std::move(deltas));
  return doc;
}

std::vector<CellResult> cells_from_json(const Json& doc) {
  check_schema(doc);
  std::vector<CellResult> out;
  for (const Json& j : doc.at("cells").as_array()) {
    out.push_back(cell_from_json(j));
  }
  return out;
}

std::vector<HotPathDelta> deltas_from_json(const Json& doc) {
  check_schema(doc);
  std::vector<HotPathDelta> out;
  if (!doc.has("hot_path_deltas")) return out;
  for (const Json& j : doc.at("hot_path_deltas").as_array()) {
    out.push_back(delta_from_json(j));
  }
  return out;
}

std::string default_output_name(const std::string& rev) {
  return "BENCH_" + rev + ".json";
}

void write_text_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for writing");
    out << content;
    if (!out.flush()) throw std::runtime_error("short write to " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ------------------------------------------------------------------- gate --

std::vector<std::string> compare_to_baseline(const Json& baseline,
                                             const Json& current,
                                             const GateOptions& options,
                                             std::vector<std::string>* notes) {
  std::vector<std::string> violations;
  const std::vector<CellResult> base = cells_from_json(baseline);
  const std::vector<CellResult> cur = cells_from_json(current);
  const auto key = [](const CellResult& c) {
    return c.scheme + "|" + c.family + "|" + std::to_string(c.n);
  };
  const auto host_of = [](const Json& doc) -> std::string {
    if (doc.has("host") && doc.at("host").has("cpu")) {
      return doc.at("host").at("cpu").as_string();
    }
    return "";
  };
  const std::string base_host = host_of(baseline);
  const std::string cur_host = host_of(current);
  const bool qps_comparable =
      base_host.empty() || cur_host.empty() || base_host == cur_host;
  if (!qps_comparable && notes != nullptr) {
    notes->push_back("qps gate skipped: baseline host \"" + base_host +
                     "\" != current host \"" + cur_host +
                     "\"; refresh BENCH_baseline.json from a run on this "
                     "hardware to arm it");
  }
  for (const CellResult& b : base) {
    const auto it = std::find_if(cur.begin(), cur.end(), [&](const CellResult& c) {
      return key(c) == key(b);
    });
    if (it == cur.end()) {
      violations.push_back("missing cell vs baseline: " + key(b));
      continue;
    }
    const CellResult& c = *it;
    if (c.failures > 0) {
      violations.push_back(key(b) + ": " + std::to_string(c.failures) +
                           " failed queries (" + c.first_error + ")");
    }
    if (qps_comparable && b.qps > 0 &&
        c.qps < b.qps * (1.0 - options.qps_drop_tolerance)) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s: qps regressed %.0f -> %.0f (more than %.0f%%)",
                    key(b).c_str(), b.qps, c.qps,
                    options.qps_drop_tolerance * 100);
      violations.emplace_back(buf);
    }
    if (c.mean_stretch > b.mean_stretch + options.stretch_epsilon) {
      char buf[160];
      std::snprintf(buf, sizeof buf, "%s: avg stretch increased %.6f -> %.6f",
                    key(b).c_str(), b.mean_stretch, c.mean_stretch);
      violations.emplace_back(buf);
    }
  }
  for (const HotPathDelta& d : deltas_from_json(current)) {
    if (d.improvement_pct < options.delta_floor_pct) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "hot-path delta %s: %.1f%% improvement is below the "
                    "%.1f%% floor",
                    d.name.c_str(), d.improvement_pct, options.delta_floor_pct);
      violations.emplace_back(buf);
    }
  }
  return violations;
}

}  // namespace rtr::bench_harness
