// Benchmark orchestration: one library that builds instances, times the
// per-scheme phases (construction, batch query, snapshot load), accounts
// memory and table sizes, and emits one machine-readable, schema-versioned
// BENCH_<rev>.json -- the standing perf record the CI gate diffs against a
// committed baseline.
//
// Determinism contract: everything derived from the workload -- sampled
// pairs, stretch statistics, failure counts, table sizes, header bits -- is
// a pure function of the BenchConfig (seeded Rngs end to end).  Timings,
// rep counts chosen by the steady-state controller, and RSS numbers are
// measurements and vary run to run; the determinism test pins the former
// and ignores the latter.
#ifndef RTR_BENCH_HARNESS_BENCH_HARNESS_H
#define RTR_BENCH_HARNESS_BENCH_HARNESS_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.h"
#include "graph/generators.h"
#include "net/query_engine.h"
#include "rt/metric.h"
#include "util/types.h"

namespace rtr::bench_harness {

/// The emitted document's schema tag; bump on breaking field changes.
inline constexpr const char* kSchemaVersion = "rtr-bench/1";

// ----------------------------------------------------------------- timing --

/// Warmup + steady-state iteration control for one timed phase.
struct IterationPolicy {
  int warmup_reps = 1;  ///< untimed runs before measurement
  int min_reps = 2;     ///< timed runs always taken
  int max_reps = 5;     ///< hard cap when the phase never settles
  /// Steady state: stop once the relative spread (max-min)/min over the
  /// trailing `window` timed reps falls to this or below.
  double steady_rel_spread = 0.05;
  int window = 3;
  /// When > 0 and the warmup shows one execution finishing faster than
  /// this, each timed rep batches enough executions to reach it (reported
  /// times are per execution).  Sub-5ms reps measure scheduler noise, not
  /// the workload; this floor is what keeps the CI qps gate stable.
  double min_rep_ms = 0;
};

/// Outcome of repeating one phase under an IterationPolicy.
struct TimedPhase {
  double best_ms = 0;  ///< per-execution best (batched reps divide through)
  double mean_ms = 0;
  int reps = 0;        ///< timed reps actually run
  int inner_iterations = 1;  ///< executions batched into each rep
  bool steady = false; ///< spread criterion met before the max_reps cap
};

/// Runs `fn` warmup + timed reps per the policy; best-of is the reported
/// figure (least-noise estimator for a deterministic workload).
TimedPhase run_timed(const IterationPolicy& policy,
                     const std::function<void()>& fn);

/// Resident set size in KiB from /proc/self/status, or -1 where unavailable.
[[nodiscard]] std::int64_t current_rss_kb();

/// Resets the kernel's peak-RSS watermark (VmHWM) to the current RSS so the
/// next peak_rss_kb() read brackets just the phase in between.  Returns false
/// where /proc/self/clear_refs is unavailable; callers then report -1 rather
/// than a process-lifetime maximum.
[[nodiscard]] bool reset_peak_rss();

/// Peak resident set size in KiB (VmHWM) since the last reset_peak_rss(),
/// or -1 where unavailable.
[[nodiscard]] std::int64_t peak_rss_kb();

/// CPU model string from /proc/cpuinfo ("unknown" elsewhere).  Stamped into
/// every document so the gate knows whether absolute-throughput comparisons
/// are meaningful (see compare_to_baseline).
[[nodiscard]] std::string host_cpu_model();

// ------------------------------------------------------------------ suite --

struct BenchConfig {
  std::vector<std::string> schemes;  ///< empty = every registered scheme
  std::vector<Family> families = {Family::kRandom, Family::kGrid,
                                  Family::kRing};
  std::vector<NodeId> sizes = {128, 256};
  std::int64_t pair_budget = 4000;    ///< sampled ordered pairs per cell
  std::int64_t latency_sample = 1000; ///< individually-timed queries (p50/p99)
  /// Engine workers for the qps phase and thread pool width for the
  /// parallel-APSP delta; 0 = hardware concurrency.  The resolved value is
  /// stamped into the document's host block (threads_configured) so
  /// baselines from differently-threaded runs are never silently compared.
  int threads = 0;
  std::uint64_t seed = 7;
  Weight max_weight = 4;
  /// Metric backend per instance: kAuto keeps the dense APSP matrix up to
  /// kDenseMetricAutoThreshold nodes and switches to bounded-Dijkstra sparse
  /// rows beyond, which is what lets the full sweep pass 4096.
  MetricMode metric_mode = MetricMode::kAuto;
  bool snapshot_phase = true;   ///< measure snapshot save+load per cell
  bool hot_path_deltas = true;  ///< record the in-binary before/after deltas
  /// Measure the network serving path end to end: RouteServer (the
  /// rtr_routed core) over an EpochManager, driven by the loadgen across
  /// loopback TCP while one epoch swap publishes mid-run.  Emits one cell
  /// with family "net_serving" whose `failures` column is the availability
  /// gate (must be 0).  Off by default so unit-scale configs stay socket-
  /// free; quick() and full() turn it on.
  bool net_serving = false;
  IterationPolicy iterations;

  /// The CI bench-smoke configuration (also what BENCH_baseline.json pins):
  /// all schemes x {random, grid, ring} x n in {128, 256}.
  [[nodiscard]] static BenchConfig quick();
  /// The full sweep: all schemes x 4 families x n in 128..4096.
  [[nodiscard]] static BenchConfig full();
};

/// One (scheme, family, n) measurement.
struct CellResult {
  std::string scheme;
  std::string family;
  NodeId n = 0;

  // Timings (not deterministic).
  double apsp_ms = 0;            ///< metric/APSP build, shared per instance
  double build_ms = 0;           ///< scheme construction
  double snapshot_load_ms = -1;  ///< rebuild-from-snapshot; -1 when skipped
  /// Zero-copy mmap of the same v2 snapshot (open + header/directory check +
  /// view fixup); -1 when the phase is skipped or mapping failed.  The
  /// -1 sentinels are NEVER compared by the gates -- see compare_to_baseline
  /// and check_growth_budgets, which skip negative phase values explicitly.
  double snapshot_map_ms = -1;
  /// Incremental epoch repair of a small (~1%) port-stable churn delta, and
  /// the pinned-seed full rebuild the same delta would otherwise cost.  -1
  /// when the cell did not run the repair phase (same sentinel rule as the
  /// snapshot phases: negative values are never compared by the gates).
  double repair_ms = -1;
  double full_rebuild_ms = -1;
  double qps = 0;                ///< batch roundtrips per second
  double p50_query_ns = 0;
  double p99_query_ns = 0;
  int query_reps = 0;
  bool query_steady = false;
  std::int64_t build_rss_delta_kb = -1;
  /// Peak RSS (VmHWM) in KiB across this cell's build phase, watermark-reset
  /// per cell; -1 where the kernel interface is unavailable.  This is the
  /// column the nightly growth gate checks against the O~(n sqrt n) budget.
  std::int64_t peak_rss_kb = -1;

  // Workload statistics (deterministic given the config).
  std::int64_t pairs = 0;
  std::int64_t failures = 0;
  std::int64_t invalid = 0;
  double mean_stretch = 0;
  double p99_stretch = 0;
  double max_stretch = 0;
  std::int64_t max_header_bits = 0;
  std::int64_t table_entries_max = 0;
  double bytes_per_node = 0;  ///< mean table bits / 8 per node
  std::string first_error;
};

/// One recorded hot-path before/after measurement: both implementations live
/// in this binary, so the delta is re-measured (not transcribed) every run.
struct HotPathDelta {
  std::string name;    ///< e.g. "dijkstra-arena-dial"
  std::string metric;  ///< e.g. "apsp_ms" (lower better) or "qps" (higher)
  std::string scheme;  ///< "" when scheme-independent
  std::string family;
  NodeId n = 0;
  double before = 0;
  double after = 0;
  double improvement_pct = 0;  ///< positive = after is better
};

struct SuiteResult {
  std::vector<CellResult> cells;
  std::vector<HotPathDelta> deltas;
};

/// Runs the sweep.  `progress` (optional) gets one line per cell.
[[nodiscard]] SuiteResult run_suite(const BenchConfig& config,
                                    std::ostream* progress = nullptr);

// ------------------------------------------------------------------- json --

/// The full document: schema tag, rev, config echo, cells, deltas.
[[nodiscard]] Json suite_to_json(const SuiteResult& result,
                                            const BenchConfig& config,
                                            const std::string& rev);

/// Cells/deltas parsed back from a document (schema-checked).
[[nodiscard]] std::vector<CellResult> cells_from_json(const Json& doc);
[[nodiscard]] std::vector<HotPathDelta> deltas_from_json(const Json& doc);

[[nodiscard]] Json cell_to_json(const CellResult& cell);
[[nodiscard]] CellResult cell_from_json(const Json& j);

/// "BENCH_<rev>.json".
[[nodiscard]] std::string default_output_name(const std::string& rev);

/// Writes atomically (temp file + rename).
void write_text_file(const std::string& path, const std::string& content);
[[nodiscard]] std::string read_text_file(const std::string& path);

// ------------------------------------------------------------------- gate --

struct GateOptions {
  double qps_drop_tolerance = 0.25;  ///< fail when qps drops more than this
  double stretch_epsilon = 1e-9;     ///< fail on any avg-stretch increase
  double delta_floor_pct = 0.0;      ///< hot-path deltas must beat this
  /// Snapshot-phase (load/map) regression tolerance: the current cell may be
  /// up to (1 + this) x the baseline's time.  Generous because each phase is
  /// a single-shot measurement, not a steady-state best-of.
  double snapshot_regression_tolerance = 1.0;
  /// Both sides of a snapshot-phase comparison must exceed this (and be
  /// non-negative: -1 means "phase skipped" and is never compared).
  double min_snapshot_phase_ms = 5.0;
};

/// Asymptotic-budget gate for the --full sweep (the nightly job): instead of
/// comparing against a fixed baseline, it checks GROWTH RATES within one
/// document.  For each gated scheme and family, the smallest size n1 and the
/// largest size n2 of the series must satisfy
///
///   bytes_per_node(n2) / bytes_per_node(n1)
///       <= sqrt(n2/n1) * (log2 n2 / log2 n1)^2 * bytes_slack
///   build_ms(n2) / build_ms(n1)
///       <= (n2/n1)^1.5 * (log2 n2 / log2 n1)^2 * build_slack
///
/// i.e. the O~(sqrt n) table budget and the O~(n sqrt n) construction budget
/// of the sqrt-n schemes, with slack for constants and polylog wobble
/// (endpoints rather than consecutive steps: over the full 32x size range
/// the sqrt budget and a linear regression are unambiguously separated).
/// Timing checks are skipped below min_build_ms (noise) and bytes checks are
/// exact (deterministic).  Returns human-readable violations; empty = pass.
struct GrowthGateOptions {
  double bytes_slack = 1.45;
  double build_slack = 1.5;    ///< on top of the budget's polylog term
  double min_build_ms = 5.0;   ///< both cells must exceed this to gate time
  /// Peak-RSS endpoint gate: peak(n2)/peak(n1) <= (n2/n1)^1.5 * polylog *
  /// rss_slack, the O~(n sqrt n) TOTAL memory budget (metric rows + tables).
  /// Slack 1.5 still separates O(n^2) (64x over an 8x size range) from the
  /// budget (~37x allowed); it is NOT applied when either endpoint's
  /// peak_rss_kb is -1 (kernel interface unavailable) or below the floor,
  /// where allocator noise dominates.
  double rss_slack = 1.5;
  std::int64_t min_peak_rss_kb = 4096;
  /// Schemes with the O~(sqrt n)/node table shape.  fulltable (Theta(n)
  /// entries per node) and the k-parameterized tradeoff schemes are not
  /// gated here.
  std::vector<std::string> schemes = {"stretch6", "stretch6-detour", "rtz3",
                                      "hashed64"};
};

/// Malformed growth-gate input: a single-size sweep, duplicate-size
/// endpoints, or a zero/non-finite baseline cell would make every ratio
/// below NaN/inf or vacuously pass -- conditions a nightly job must fail
/// loudly on, not skip.  Thrown by check_growth_budgets; rtr_bench turns it
/// into a nonzero exit.
class GrowthGateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws GrowthGateError when the document cannot support the gate at all
/// (see above); otherwise returns budget violations as with
/// compare_to_baseline.
[[nodiscard]] std::vector<std::string> check_growth_budgets(
    const Json& doc, const GrowthGateOptions& options = {});

/// Compares `current` against `baseline` cell-by-cell (keyed by scheme,
/// family, n).  Returns human-readable violations; empty means the gate
/// passes.  Machine-independent checks (stretch increases, failed queries,
/// missing cells, hot-path delta floor -- the deltas are relative, measured
/// in-binary) always apply; the absolute-qps check is only armed when both
/// documents carry the same host CPU fingerprint, because throughput from
/// different hardware is not comparable (a baseline generated elsewhere
/// would make the gate red -- or vacuous -- by construction).  Documents
/// without a host stamp are assumed comparable.  `notes`, when non-null,
/// receives non-failing diagnostics such as "qps gate skipped".
[[nodiscard]] std::vector<std::string> compare_to_baseline(
    const Json& baseline, const Json& current,
    const GateOptions& options = {}, std::vector<std::string>* notes = nullptr);

}  // namespace rtr::bench_harness

#endif  // RTR_BENCH_HARNESS_BENCH_HARNESS_H
