#include "baseline/full_table.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/dijkstra.h"
#include "io/snapshot_format.h"
#include "rt/repair_oracle.h"
#include "util/bit_cost.h"

namespace rtr {

void FullTableScheme::save(SnapshotWriter& w) const {
  names_.save(w);
  w.vec(next_port_, [](SnapshotWriter& ww, const std::vector<Port>& row) {
    ww.vec_i32(row);
  });
  w.i64(node_space_);
  w.i64(port_space_);
}

FullTableScheme::FullTableScheme(SnapshotReader& r)
    : names_(NameAssignment::load(r)) {
  next_port_ = r.vec<std::vector<Port>>(
      [](SnapshotReader& rr) { return rr.vec_i32(); }, 8);
  const auto n = static_cast<std::size_t>(names_.node_count());
  if (next_port_.size() != n) {
    throw std::invalid_argument(
        "fulltable snapshot: table count does not match the naming");
  }
  for (const auto& row : next_port_) {
    if (row.size() != n) {
      throw std::invalid_argument(
          "fulltable snapshot: row size does not match the naming");
    }
  }
  node_space_ = r.i64();
  port_space_ = r.i64();
}

FullTableScheme::FullTableScheme(const Digraph& g, const NameAssignment& names)
    : names_(names),
      node_space_(g.node_count()),
      port_space_(g.port_space()) {
  const NodeId n = g.node_count();
  const Digraph reversed = g.reversed();
  next_port_.assign(static_cast<std::size_t>(n),
                    std::vector<Port>(static_cast<std::size_t>(n), kNoPort));
  // One in-tree per destination: every node's next hop toward it.
  DijkstraWorkspace ws;
  for (NodeId dest = 0; dest < n; ++dest) {
    InTree in = dijkstra_in_tree(g, reversed, dest, ws);
    const NodeName dest_name = names_.name_of(dest);
    for (NodeId v = 0; v < n; ++v) {
      if (v == dest) continue;
      if (in.next_port[static_cast<std::size_t>(v)] == kNoPort) {
        throw std::invalid_argument("FullTableScheme: graph not strongly connected");
      }
      next_port_[static_cast<std::size_t>(v)][static_cast<std::size_t>(dest_name)] =
          in.next_port[static_cast<std::size_t>(v)];
    }
  }
}

std::shared_ptr<const FullTableScheme> FullTableScheme::repair(
    const FullTableScheme& old_scheme, const Digraph& old_graph,
    const Digraph& new_graph, const NameAssignment& names,
    const ChurnDelta& delta) {
  const NodeId n = new_graph.node_count();
  if (old_graph.node_count() != n || names.node_count() != n ||
      old_scheme.names_.node_count() != n ||
      old_scheme.next_port_.size() != static_cast<std::size_t>(n)) {
    return nullptr;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (names.name_of(v) != old_scheme.names_.name_of(v)) return nullptr;
  }

  const std::vector<char> dirty =
      dirty_in_tree_destinations(old_graph, new_graph, delta);

  std::shared_ptr<FullTableScheme> s(new FullTableScheme());
  s->names_ = names;
  s->node_space_ = n;
  s->port_space_ = new_graph.port_space();
  s->next_port_.assign(static_cast<std::size_t>(n),
                       std::vector<Port>(static_cast<std::size_t>(n), kNoPort));
  const Digraph reversed = new_graph.reversed();
  DijkstraWorkspace ws;
  for (NodeId dest = 0; dest < n; ++dest) {
    const auto dn = static_cast<std::size_t>(names.name_of(dest));
    if (dirty[static_cast<std::size_t>(dest)] == 0) {
      // Every changed edge is strictly slack toward dest on its own sides:
      // the in-tree -- hence this next-hop column -- is provably unchanged.
      for (NodeId v = 0; v < n; ++v) {
        s->next_port_[static_cast<std::size_t>(v)][dn] =
            old_scheme.next_port_[static_cast<std::size_t>(v)][dn];
      }
      continue;
    }
    InTree in = dijkstra_in_tree(new_graph, reversed, dest, ws);
    for (NodeId v = 0; v < n; ++v) {
      if (v == dest) continue;
      if (in.next_port[static_cast<std::size_t>(v)] == kNoPort) {
        return nullptr;  // churn broke strong connectivity; rebuild decides
      }
      s->next_port_[static_cast<std::size_t>(v)][dn] =
          in.next_port[static_cast<std::size_t>(v)];
    }
  }
  return s;
}

Decision FullTableScheme::forward(NodeId at, Header& h) const {
  const NodeName at_name = names_.name_of(at);
  switch (h.mode) {
    case Mode::kNew:
      h.src = at_name;
      h.mode = Mode::kOutbound;
      [[fallthrough]];
    case Mode::kOutbound: {
      if (at_name == h.dest) return Decision::deliver_here();
      return Decision::forward_on(
          next_port_[static_cast<std::size_t>(at)][static_cast<std::size_t>(h.dest)]);
    }
    case Mode::kReturn:
      h.mode = Mode::kInbound;
      [[fallthrough]];
    case Mode::kInbound: {
      if (at_name == h.src) return Decision::deliver_here();
      return Decision::forward_on(
          next_port_[static_cast<std::size_t>(at)][static_cast<std::size_t>(h.src)]);
    }
  }
  throw std::logic_error("full-table: bad mode");
}

std::int64_t FullTableScheme::header_bits(const Header& h) const {
  (void)h;
  return 2 + 2 * bits_for(node_space_);
}

void FullTableScheme::audit(AuditReport& report) const {
  auto scope = report.scope("full-table");
  {
    auto names_scope = report.scope("names");
    names_.audit(report);
  }
  const auto n = static_cast<std::size_t>(names_.node_count());
  report.check("tables-sized", next_port_.size() == n,
               "one next-hop row per node");
  if (next_port_.size() != n) return;

  bool rows_ok = true;
  std::string detail;
  for (std::size_t u = 0; rows_ok && u < n; ++u) {
    const auto& row = next_port_[u];
    if (row.size() != n) {
      rows_ok = false;
      detail = "row of node " + std::to_string(u) +
               " does not cover every destination name";
      break;
    }
    for (std::size_t dest = 0; dest < n; ++dest) {
      const bool self = names_.id_of(static_cast<NodeName>(dest)) ==
                        static_cast<NodeId>(u);
      if (self != (row[dest] == kNoPort)) {
        rows_ok = false;
        detail = "node " + std::to_string(u) + " has " +
                 (self ? "a port toward itself" : "no port toward name " +
                                                      std::to_string(dest));
        break;
      }
    }
  }
  report.check("rows-complete", rows_ok, std::move(detail));
}

TableStats FullTableScheme::table_stats() const {
  const auto n = static_cast<NodeId>(next_port_.size());
  TableStats stats(n);
  const std::int64_t per_entry = bits_for(node_space_) + bits_for(port_space_);
  for (NodeId v = 0; v < n; ++v) {
    stats.add(v, n - 1, (n - 1) * per_entry);
  }
  return stats;
}

}  // namespace rtr
