// The non-compact comparator: classical shortest-path routing with a full
// next-hop table (one entry per destination name) at every node.
//
// Roundtrip stretch is exactly 1 -- the packet follows a shortest path out
// and a shortest path back -- at the cost of Theta(n log n) bits per node.
// This is the baseline row of the Fig. 1 experiment, the oracle the tests
// compare simulated path lengths against, and the Theorem 15 foil (stretch
// below 2 is information-theoretically impossible with o(n) tables, and here
// is what the tables cost when you refuse to compress).
#ifndef RTR_BASELINE_FULL_TABLE_H
#define RTR_BASELINE_FULL_TABLE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/names.h"
#include "net/simulator.h"
#include "rt/metric.h"

namespace rtr {

struct ChurnDelta;  // graph/churn_delta.h

class FullTableScheme {
 public:
  FullTableScheme(const Digraph& g, const NameAssignment& names);

  /// Incremental repair (ROADMAP: incremental epoch repair under churn):
  /// produces the scheme the build constructor would produce on `new_graph`,
  /// but recomputes an in-tree only for destinations some changed edge is
  /// tight toward (rt/repair_oracle.h); every other destination's next-hop
  /// column is copied from `old_scheme` verbatim.  Returns nullptr when the
  /// node count or naming changed, or the new graph is not strongly
  /// connected; callers fall back to a full build.
  [[nodiscard]] static std::shared_ptr<const FullTableScheme> repair(
      const FullTableScheme& old_scheme, const Digraph& old_graph,
      const Digraph& new_graph, const NameAssignment& names,
      const ChurnDelta& delta);

  /// Snapshot path: rehydrates the next-hop tables saved with save().
  explicit FullTableScheme(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  enum class Mode : std::uint8_t { kNew, kOutbound, kReturn, kInbound };

  struct Header {
    Mode mode = Mode::kNew;
    NodeName dest = kNoNode;
    NodeName src = kNoNode;
  };

  [[nodiscard]] Header make_packet(NodeName dest) const {
    Header h;
    h.dest = dest;
    return h;
  }
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] std::string name() const { return "full-table(stretch1)"; }

  /// Shortest path out and back: stretch exactly 1.
  [[nodiscard]] double stretch_bound() const { return 1.0; }

  /// Auditable: a full row per node (one next-hop port per destination
  /// name), every non-diagonal entry a real port, plus the name bijection.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  /// Repair path: members are filled in by repair() after construction.
  FullTableScheme() : names_(NameAssignment::identity(0)) {}
  NameAssignment names_;
  // next_port_[u][dest_name]: port of the first edge on a shortest u->dest path.
  std::vector<std::vector<Port>> next_port_;
  std::int64_t node_space_ = 0;
  std::int64_t port_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_BASELINE_FULL_TABLE_H
