// Algorithm Cover (paper Fig. 8) and the Theorem 10 guarantees.
//
// Seeds R = { N-hat^d(v) : v in V } (closed roundtrip balls of radius d);
// repeatedly runs PartialCover, removing covered seeds, until R is empty.
// Lemma 12 bounds the number of rounds by 2k n^{1/k}, which also bounds how
// many clusters any vertex appears in (Theorem 10(3)) because each round's
// output clusters are pairwise disjoint (Lemma 11(2)).
//
// Output guarantees (all verified by tests/bench):
//   (1) every node v has a home cluster fully containing N-hat^d(v),
//   (2) the cluster radius from its center, measured *inside the induced
//       subgraph*, is at most (2k-1) d,
//   (3) every node appears in at most 2k n^{1/k} clusters.
#ifndef RTR_COVER_SPARSE_COVER_H
#define RTR_COVER_SPARSE_COVER_H

#include <vector>

#include "cover/partial_cover.h"
#include "rt/metric.h"

namespace rtr {

struct SparseCoverResult {
  Dist d = 0;
  int k = 0;
  std::vector<MergedCluster> clusters;
  /// Per node: index into `clusters` of a cluster containing N-hat^d(v)
  /// (the merged cluster that absorbed v's seed ball).
  std::vector<std::int32_t> home_of;
  /// Number of PartialCover rounds Cover() ran (Lemma 12's quantity).
  int rounds = 0;

  /// How many clusters contain node v (Theorem 10(3)'s quantity).
  [[nodiscard]] std::vector<std::int32_t> membership_counts(NodeId n) const;
};

/// Builds the Theorem 10 cover for the roundtrip metric at radius d.
[[nodiscard]] SparseCoverResult build_sparse_cover(const RoundtripMetric& metric,
                                                   int k, Dist d);

}  // namespace rtr

#endif  // RTR_COVER_SPARSE_COVER_H
