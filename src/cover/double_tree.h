// Double trees (Section 3.2 / Theorem 13).
//
// For a cluster C with center v, OutTree(C) is a shortest-path tree from v
// spanning C and InTree(C) holds a shortest path from every node of C to v,
// both computed inside the subgraph induced by C (Section 4 measures cluster
// radii in the induced subgraph; Theorem 10's construction guarantees the
// induced subgraph is strongly connected).  DoubleTree(C) is their union;
// RTHeight is the maximum induced roundtrip distance root <-> member.
//
// Routing inside a double tree always goes through the root: up along InTree
// next-hop pointers (each member stores one port), down along OutTree via the
// Lemma 14 tree router.  The cost between two members is at most twice the
// RTHeight.
#ifndef RTR_COVER_DOUBLE_TREE_H
#define RTR_COVER_DOUBLE_TREE_H

#include <vector>

#include "graph/dijkstra.h"
#include "rt/metric.h"
#include "treeroute/tree_router.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;
class AuditReport;  // audit/audit.h

class DoubleTree {
 public:
  /// Builds in/out trees for `members` (must include center) inside the
  /// induced subgraph.  Throws std::invalid_argument if the induced subgraph
  /// does not strongly connect the members.
  DoubleTree(const Digraph& g, const Digraph& reversed, NodeId center,
             std::vector<NodeId> members);

  /// Snapshot path: rehydrates a tree saved with save().
  explicit DoubleTree(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  [[nodiscard]] NodeId center() const { return center_; }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] bool contains(NodeId v) const {
    return member_mask_[static_cast<std::size_t>(v)] != 0;
  }
  [[nodiscard]] NodeId member_count() const {
    return static_cast<NodeId>(members_.size());
  }

  /// Max induced roundtrip distance from the center to any member.
  [[nodiscard]] Dist rt_height() const { return rt_height_; }

  /// Induced d(center, v) / d(v, center).
  [[nodiscard]] Dist down_dist(NodeId v) const {
    return out_tree_.dist[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] Dist up_dist(NodeId v) const {
    return in_tree_.dist[static_cast<std::size_t>(v)];
  }

  /// Member v's next-hop port toward the center (kNoPort at the center).
  [[nodiscard]] Port up_port(NodeId v) const {
    return in_tree_.next_port[static_cast<std::size_t>(v)];
  }

  /// Lemma 14 routing structure on OutTree.
  [[nodiscard]] const TreeRouter& out_router() const { return out_router_; }

  /// Auditable: the member mask matches the member list, the center is a
  /// member, every member is reachable both ways (finite up/down distances,
  /// an up port everywhere but the center), the cached rt_height_ equals the
  /// recomputed max roundtrip, and the Lemma 14 out-router is itself sound
  /// with root == center and exactly the member set.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  NodeId center_;
  std::vector<NodeId> members_;
  std::vector<char> member_mask_;
  Dist rt_height_ = 0;
  OutTree out_tree_;
  InTree in_tree_;
  TreeRouter out_router_;
};

}  // namespace rtr

#endif  // RTR_COVER_DOUBLE_TREE_H
