#include "cover/hierarchy.h"

#include <stdexcept>

#include "io/snapshot_format.h"

namespace rtr {

CoverHierarchy::CoverHierarchy(const Digraph& g, const Digraph& reversed,
                               const RoundtripMetric& metric, int k)
    : k_(k) {
  if (k <= 1) throw std::invalid_argument("CoverHierarchy: k > 1");
  const Dist diameter = metric.rt_diameter();
  for (Dist radius = 2; ; radius *= 2) {
    SparseCoverResult cover = build_sparse_cover(metric, k, radius);
    HierarchyLevel level;
    level.radius = radius;
    level.home_of = cover.home_of;
    level.trees.reserve(cover.clusters.size());
    for (auto& cluster : cover.clusters) {
      level.trees.emplace_back(g, reversed, cluster.center,
                               std::move(cluster.members));
    }
    level.trees_of.assign(static_cast<std::size_t>(g.node_count()), {});
    for (std::size_t t = 0; t < level.trees.size(); ++t) {
      for (NodeId v : level.trees[t].members()) {
        level.trees_of[static_cast<std::size_t>(v)].push_back(
            static_cast<std::int32_t>(t));
      }
    }
    levels_.push_back(std::move(level));
    if (radius >= diameter) break;
  }
}

void save_tree_ref(SnapshotWriter& w, const TreeRef& ref) {
  w.i32(ref.level);
  w.i32(ref.tree);
}

TreeRef load_tree_ref(SnapshotReader& r) {
  TreeRef ref;
  ref.level = r.i32();
  ref.tree = r.i32();
  return ref;
}

void CoverHierarchy::save(SnapshotWriter& w) const {
  w.i32(k_);
  w.u64(levels_.size());
  for (const HierarchyLevel& level : levels_) {
    w.i64(level.radius);
    w.vec(level.trees,
          [](SnapshotWriter& ww, const DoubleTree& t) { t.save(ww); });
    w.vec_i32(level.home_of);
    w.vec(level.trees_of, [](SnapshotWriter& ww,
                             const std::vector<std::int32_t>& ts) {
      ww.vec_i32(ts);
    });
  }
}

CoverHierarchy::CoverHierarchy(SnapshotReader& r) : k_(r.i32()) {
  const std::uint64_t level_count = r.u64();
  // Radii double per level, so 64 levels already exceed any Dist; treat more
  // as corruption rather than trusting the count with an allocation.
  if (level_count > 64) {
    throw SnapshotFormatError("snapshot: implausible hierarchy level count " +
                              std::to_string(level_count));
  }
  levels_.reserve(static_cast<std::size_t>(level_count));
  for (std::uint64_t i = 0; i < level_count; ++i) {
    HierarchyLevel level;
    level.radius = r.i64();
    level.trees =
        r.vec<DoubleTree>([](SnapshotReader& rr) { return DoubleTree(rr); }, 8);
    level.home_of = r.vec_i32();
    level.trees_of = r.vec<std::vector<std::int32_t>>(
        [](SnapshotReader& rr) { return rr.vec_i32(); }, 8);
    levels_.push_back(std::move(level));
  }
}

std::optional<TreeRef> CoverHierarchy::lowest_home_containing(NodeId v,
                                                              NodeId u) const {
  for (std::int32_t i = 0; i < level_count(); ++i) {
    TreeRef ref = home(v, i);
    if (tree(ref).contains(u)) return ref;
  }
  return std::nullopt;
}

}  // namespace rtr
