#include "cover/hierarchy.h"

#include <stdexcept>

namespace rtr {

CoverHierarchy::CoverHierarchy(const Digraph& g, const Digraph& reversed,
                               const RoundtripMetric& metric, int k)
    : k_(k) {
  if (k <= 1) throw std::invalid_argument("CoverHierarchy: k > 1");
  const Dist diameter = metric.rt_diameter();
  for (Dist radius = 2; ; radius *= 2) {
    SparseCoverResult cover = build_sparse_cover(metric, k, radius);
    HierarchyLevel level;
    level.radius = radius;
    level.home_of = cover.home_of;
    level.trees.reserve(cover.clusters.size());
    for (auto& cluster : cover.clusters) {
      level.trees.emplace_back(g, reversed, cluster.center,
                               std::move(cluster.members));
    }
    level.trees_of.assign(static_cast<std::size_t>(g.node_count()), {});
    for (std::size_t t = 0; t < level.trees.size(); ++t) {
      for (NodeId v : level.trees[t].members()) {
        level.trees_of[static_cast<std::size_t>(v)].push_back(
            static_cast<std::int32_t>(t));
      }
    }
    levels_.push_back(std::move(level));
    if (radius >= diameter) break;
  }
}

std::optional<TreeRef> CoverHierarchy::lowest_home_containing(NodeId v,
                                                              NodeId u) const {
  for (std::int32_t i = 0; i < level_count(); ++i) {
    TreeRef ref = home(v, i);
    if (tree(ref).contains(u)) return ref;
  }
  return std::nullopt;
}

}  // namespace rtr
