#include "cover/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/snapshot_format.h"
#include "util/parallel.h"

namespace rtr {

CoverHierarchy::CoverHierarchy(const Digraph& g, const Digraph& reversed,
                               const RoundtripMetric& metric, int k,
                               int threads)
    : k_(k) {
  if (k <= 1) throw std::invalid_argument("CoverHierarchy: k > 1");
  const int workers = resolve_apsp_threads(threads);
  const Dist diameter = metric.rt_diameter();
  for (Dist radius = 2; ; radius *= 2) {
    SparseCoverResult cover = build_sparse_cover(metric, k, radius);
    HierarchyLevel level;
    level.radius = radius;
    level.home_of = cover.home_of;
    // Per-cluster double trees are independent (each reads the graph, writes
    // its own slot), so they fan out; the in-order move keeps level.trees
    // identical to the serial build.
    std::vector<std::optional<DoubleTree>> built(cover.clusters.size());
    parallel_tickets(static_cast<std::int64_t>(cover.clusters.size()), workers,
                     [&] {
                       return [&](std::int64_t c) {
                         auto& cluster =
                             cover.clusters[static_cast<std::size_t>(c)];
                         built[static_cast<std::size_t>(c)].emplace(
                             g, reversed, cluster.center,
                             std::move(cluster.members));
                       };
                     });
    level.trees.reserve(cover.clusters.size());
    for (auto& tree : built) {
      level.trees.push_back(std::move(*tree));
    }
    level.trees_of.assign(static_cast<std::size_t>(g.node_count()), {});
    for (std::size_t t = 0; t < level.trees.size(); ++t) {
      for (NodeId v : level.trees[t].members()) {
        level.trees_of[static_cast<std::size_t>(v)].push_back(
            static_cast<std::int32_t>(t));
      }
    }
    levels_.push_back(std::move(level));
    if (radius >= diameter) break;
  }
}

void save_tree_ref(SnapshotWriter& w, const TreeRef& ref) {
  w.i32(ref.level);
  w.i32(ref.tree);
}

TreeRef load_tree_ref(SnapshotReader& r) {
  TreeRef ref;
  ref.level = r.i32();
  ref.tree = r.i32();
  return ref;
}

void CoverHierarchy::save(SnapshotWriter& w) const {
  w.i32(k_);
  w.u64(levels_.size());
  for (const HierarchyLevel& level : levels_) {
    w.i64(level.radius);
    w.vec(level.trees,
          [](SnapshotWriter& ww, const DoubleTree& t) { t.save(ww); });
    w.vec_i32(level.home_of);
    w.vec(level.trees_of, [](SnapshotWriter& ww,
                             const std::vector<std::int32_t>& ts) {
      ww.vec_i32(ts);
    });
  }
}

CoverHierarchy::CoverHierarchy(SnapshotReader& r) : k_(r.i32()) {
  const std::uint64_t level_count = r.u64();
  // Radii double per level, so 64 levels already exceed any Dist; treat more
  // as corruption rather than trusting the count with an allocation.
  if (level_count > 64) {
    throw SnapshotFormatError("snapshot: implausible hierarchy level count " +
                              std::to_string(level_count));
  }
  levels_.reserve(static_cast<std::size_t>(level_count));
  for (std::uint64_t i = 0; i < level_count; ++i) {
    HierarchyLevel level;
    level.radius = r.i64();
    level.trees =
        r.vec<DoubleTree>([](SnapshotReader& rr) { return DoubleTree(rr); }, 8);
    level.home_of = r.vec_i32();
    level.trees_of = r.vec<std::vector<std::int32_t>>(
        [](SnapshotReader& rr) { return rr.vec_i32(); }, 8);
    levels_.push_back(std::move(level));
  }
}

void CoverHierarchy::audit(AuditReport& report) const {
  auto scope = report.scope("hierarchy");
  report.check("has-levels", !levels_.empty(), "hierarchy without levels");
  if (levels_.empty()) return;

  const auto n = levels_.front().home_of.size();
  bool radii_ok = levels_.front().radius == 2;
  bool homes_ok = true;
  bool trees_of_ok = true;
  bool heights_ok = true;
  bool trees_sound = true;
  std::string radii_detail, homes_detail, trees_of_detail, heights_detail,
      trees_detail;
  std::int64_t max_trees_per_node = 0;

  for (std::size_t li = 0; li < levels_.size(); ++li) {
    const HierarchyLevel& level = levels_[li];
    if (radii_ok && li > 0 && level.radius != 2 * levels_[li - 1].radius) {
      radii_ok = false;
      radii_detail = "radius does not double at level " + std::to_string(li);
    }
    if (homes_ok && (level.home_of.size() != n || level.trees_of.size() != n)) {
      homes_ok = false;
      homes_detail = "per-node arrays of level " + std::to_string(li) +
                     " are not sized to the node count";
      continue;
    }
    const auto tree_count = static_cast<std::int32_t>(level.trees.size());
    for (std::size_t v = 0; homes_ok && v < n; ++v) {
      const std::int32_t h = level.home_of[v];
      if (h < 0 || h >= tree_count ||
          !level.trees[static_cast<std::size_t>(h)].contains(
              static_cast<NodeId>(v))) {
        homes_ok = false;
        homes_detail = "node " + std::to_string(v) + " at level " +
                       std::to_string(li) +
                       " has no valid home tree containing it";
      }
    }
    // trees_of must list exactly the containing trees: every listed tree
    // contains the node, and the total listed count equals the total member
    // count over the level's trees (so nothing is omitted either).
    std::int64_t listed = 0;
    std::int64_t member_total = 0;
    for (const DoubleTree& t : level.trees) member_total += t.member_count();
    for (std::size_t v = 0; trees_of_ok && v < n; ++v) {
      const auto& ts = level.trees_of[v];
      max_trees_per_node =
          std::max(max_trees_per_node, static_cast<std::int64_t>(ts.size()));
      listed += static_cast<std::int64_t>(ts.size());
      for (const std::int32_t t : ts) {
        if (t < 0 || t >= tree_count ||
            !level.trees[static_cast<std::size_t>(t)].contains(
                static_cast<NodeId>(v))) {
          trees_of_ok = false;
          trees_of_detail = "trees_of lists a non-containing tree for node " +
                            std::to_string(v) + " at level " +
                            std::to_string(li);
          break;
        }
      }
    }
    if (trees_of_ok && listed != member_total) {
      trees_of_ok = false;
      trees_of_detail = "level " + std::to_string(li) + " lists " +
                        std::to_string(listed) + " memberships, trees hold " +
                        std::to_string(member_total);
    }
    const Dist height_budget = static_cast<Dist>(2 * k_ - 1) * level.radius;
    for (std::size_t t = 0; t < level.trees.size(); ++t) {
      const DoubleTree& tree = level.trees[t];
      if (heights_ok && tree.rt_height() > height_budget) {
        heights_ok = false;
        heights_detail = "tree " + std::to_string(t) + " at level " +
                         std::to_string(li) + " has RTHeight " +
                         std::to_string(tree.rt_height()) + " > (2k-1)*2^i = " +
                         std::to_string(height_budget);
      }
      if (trees_sound) {
        AuditReport sub(report.budgets());
        tree.audit(sub);
        if (!sub.ok()) {
          trees_sound = false;
          for (const AuditEntry& e : sub.entries()) {
            if (!e.ok) {
              trees_detail = "tree " + std::to_string(t) + " at level " +
                             std::to_string(li) + ": " + e.component + " :: " +
                             e.invariant;
              break;
            }
          }
        }
      }
    }
  }

  report.check("radii-double", radii_ok, std::move(radii_detail));
  report.check("home-trees-cover", homes_ok, std::move(homes_detail));
  report.check("trees-of-exact", trees_of_ok, std::move(trees_of_detail));
  report.check("rt-heights-bounded", heights_ok, std::move(heights_detail));
  report.check("double-trees-sound", trees_sound, std::move(trees_detail));
  // Theorem 13(3): each node joins <= 2k n^{1/k} trees per level.
  const double budget =
      report.budgets().tree_slack * 2.0 * static_cast<double>(k_) *
      std::pow(std::max<double>(1.0, static_cast<double>(n)),
               1.0 / static_cast<double>(k_));
  report.measure("trees-per-node", static_cast<double>(max_trees_per_node),
                 budget, "max per-level tree memberships of one node vs "
                         "tree_slack * 2k n^(1/k)");
}

std::optional<TreeRef> CoverHierarchy::lowest_home_containing(NodeId v,
                                                              NodeId u) const {
  for (std::int32_t i = 0; i < level_count(); ++i) {
    TreeRef ref = home(v, i);
    if (tree(ref).contains(u)) return ref;
  }
  return std::nullopt;
}

}  // namespace rtr
