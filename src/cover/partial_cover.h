// Algorithm PartialCover (paper Fig. 7, after Awerbuch-Peleg sparse
// partitions [8], generalized to any distance metric per Theorem 10).
//
// Input: a collection R of clusters (each a vertex set grown around a seed).
// Output:
//   * DT -- disjoint merged clusters Y, each formed by repeatedly absorbing
//     every remaining cluster that intersects it until the count stops
//     growing by a factor |R|^{1/k} (at most k rounds, Lemma 11(4): radius
//     blowup <= 2k-1);
//   * DR -- the input clusters fully covered by some Y (Lemma 11(1)).
// Clusters that intersected a Y but were not merged into it are *removed*
// from the active set without being covered; the outer Cover loop re-feeds
// them to later PartialCover rounds (Lemma 12 bounds the rounds).
#ifndef RTR_COVER_PARTIAL_COVER_H
#define RTR_COVER_PARTIAL_COVER_H

#include <vector>

#include "util/types.h"

namespace rtr {

/// An input cluster: the ball N-hat^d(seed) in Theorem 10's instantiation.
struct SeedCluster {
  NodeId seed = kNoNode;
  std::vector<NodeId> members;  // sorted ascending
};

/// A merged output cluster Y.  `center` is the seed of the first cluster
/// selected (S_0), which the Lemma 11(4) induction measures radii from.
struct MergedCluster {
  NodeId center = kNoNode;
  std::vector<NodeId> members;           // sorted ascending
  std::vector<std::int32_t> absorbed;    // indices into R of the Y-clusters
};

struct PartialCoverResult {
  std::vector<MergedCluster> merged;   // DT
  std::vector<std::int32_t> covered;   // DR (indices into R)
  std::vector<std::int32_t> consumed;  // Z \ Y: removed but not covered
};

/// Runs one PartialCover pass over the clusters flagged active.  n is the
/// graph's node count; k the tradeoff parameter (> 1).
[[nodiscard]] PartialCoverResult partial_cover(
    const std::vector<SeedCluster>& r_clusters, const std::vector<char>& active,
    NodeId n, int k);

}  // namespace rtr

#endif  // RTR_COVER_PARTIAL_COVER_H
