// The hierarchy of double-tree covers (Section 4's construction, also our
// stand-in for the Roditty-Thorup-Zwick roundtrip spanner of Lemma 5 -- see
// a documented deviation from the paper).
//
// For every level i = 1 .. ceil(log2 RTDiam), build the Theorem 13 cover at
// radius 2^i and a double tree per cluster.  Every node v picks a *home*
// double-tree at each level: one spanning its whole ball N-hat^{2^i}(v)
// (guaranteed to exist by Theorem 13(1)).
//
// Guarantees carried by construction, tested in tests/cover_test.cpp:
//   * home tree of v at level i contains every w with r(v,w) <= 2^i,
//   * RTHeight of level-i trees <= (2k-1) 2^i,
//   * each node is in at most 2k n^{1/k} trees per level.
#ifndef RTR_COVER_HIERARCHY_H
#define RTR_COVER_HIERARCHY_H

#include <optional>
#include <vector>

#include "cover/double_tree.h"
#include "cover/sparse_cover.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;

/// Identifies one double tree in the hierarchy: (level index, tree index).
struct TreeRef {
  std::int32_t level = -1;  // 0-based level index; radius = 2^(level+1)
  std::int32_t tree = -1;

  friend bool operator==(const TreeRef&, const TreeRef&) = default;
};

/// Snapshot encoding of a tree reference.
void save_tree_ref(SnapshotWriter& w, const TreeRef& ref);
[[nodiscard]] TreeRef load_tree_ref(SnapshotReader& r);

struct HierarchyLevel {
  Dist radius = 0;  // 2^{i}
  std::vector<DoubleTree> trees;
  std::vector<std::int32_t> home_of;               // per node
  std::vector<std::vector<std::int32_t>> trees_of; // per node: tree indices
};

class CoverHierarchy {
 public:
  /// Builds all levels.  k > 1; metric must come from (g's) APSP.  The
  /// per-cluster double trees of each level build in parallel over `threads`
  /// workers (<= 0 resolves the process default); the hierarchy is a pure
  /// function of (g, metric, k) for any thread count.
  CoverHierarchy(const Digraph& g, const Digraph& reversed,
                 const RoundtripMetric& metric, int k, int threads = 1);

  /// Snapshot path: rehydrates a hierarchy saved with save().
  explicit CoverHierarchy(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::int32_t level_count() const {
    return static_cast<std::int32_t>(levels_.size());
  }
  [[nodiscard]] const HierarchyLevel& level(std::int32_t i) const {
    return levels_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const DoubleTree& tree(TreeRef ref) const {
    return levels_[static_cast<std::size_t>(ref.level)]
        .trees[static_cast<std::size_t>(ref.tree)];
  }

  /// The home double-tree of v at level i.
  [[nodiscard]] TreeRef home(NodeId v, std::int32_t level_index) const {
    return TreeRef{level_index,
                   levels_[static_cast<std::size_t>(level_index)]
                       .home_of[static_cast<std::size_t>(v)]};
  }

  /// The lowest level whose home tree of v also contains u (exists whenever
  /// the top level covers RTDiam; nullopt only for malformed inputs).
  [[nodiscard]] std::optional<TreeRef> lowest_home_containing(NodeId v,
                                                              NodeId u) const;

  /// Auditable: radii double per level, every node has a home tree it is a
  /// member of, trees_of lists exactly the trees containing each node,
  /// level-i RTHeights stay within (2k-1) * radius (Theorem 13(2)), the
  /// per-node tree count stays within tree_slack * 2k n^{1/k} per level
  /// (Theorem 13(3)), and every double tree is internally sound (their deep
  /// audits are aggregated into one entry per level to keep reports small).
  void audit(AuditReport& report) const;

 private:
  int k_;
  std::vector<HierarchyLevel> levels_;
};

}  // namespace rtr

#endif  // RTR_COVER_HIERARCHY_H
