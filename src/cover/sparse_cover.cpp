#include "cover/sparse_cover.h"

#include <algorithm>
#include <stdexcept>

namespace rtr {

std::vector<std::int32_t> SparseCoverResult::membership_counts(NodeId n) const {
  std::vector<std::int32_t> counts(static_cast<std::size_t>(n), 0);
  for (const auto& c : clusters) {
    for (NodeId v : c.members) ++counts[static_cast<std::size_t>(v)];
  }
  return counts;
}

SparseCoverResult build_sparse_cover(const RoundtripMetric& metric, int k,
                                     Dist d) {
  if (k <= 1) throw std::invalid_argument("build_sparse_cover: k > 1");
  if (d < 0) throw std::invalid_argument("build_sparse_cover: d >= 0");
  const NodeId n = metric.node_count();

  SparseCoverResult result;
  result.d = d;
  result.k = k;
  result.home_of.assign(static_cast<std::size_t>(n), -1);

  // R <- { N-hat^d(v) | v in V }, seed of ball v is v; ball index == v.
  std::vector<SeedCluster> seeds(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    seeds[static_cast<std::size_t>(v)].seed = v;
    seeds[static_cast<std::size_t>(v)].members = metric.ball(v, d);
  }

  std::vector<char> active(static_cast<std::size_t>(n), 1);
  std::int64_t remaining = n;
  while (remaining > 0) {
    ++result.rounds;
    PartialCoverResult pass = partial_cover(seeds, active, n, k);
    if (pass.covered.empty()) {
      throw std::logic_error("build_sparse_cover: round made no progress");
    }
    const auto base = static_cast<std::int32_t>(result.clusters.size());
    for (std::size_t i = 0; i < pass.merged.size(); ++i) {
      for (std::int32_t seed_idx : pass.merged[i].absorbed) {
        // The seed ball of node `seed_idx` is fully inside this cluster.
        result.home_of[static_cast<std::size_t>(seed_idx)] =
            base + static_cast<std::int32_t>(i);
      }
      result.clusters.push_back(std::move(pass.merged[i]));
    }
    // R <- R \ DR: only covered seeds leave the collection; seeds merely
    // consumed (Z \ Y) stay for later rounds, exactly as Fig. 8 prescribes.
    for (std::int32_t c : pass.covered) {
      active[static_cast<std::size_t>(c)] = 0;
      --remaining;
    }
  }
  return result;
}

}  // namespace rtr
