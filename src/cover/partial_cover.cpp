#include "cover/partial_cover.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtr {

PartialCoverResult partial_cover(const std::vector<SeedCluster>& r_clusters,
                                 const std::vector<char>& active, NodeId n,
                                 int k) {
  if (k <= 1) throw std::invalid_argument("partial_cover: k > 1 required");
  for (const SeedCluster& c : r_clusters) {
    for (NodeId v : c.members) {
      if (v < 0 || v >= n) {
        throw std::invalid_argument("partial_cover: member out of [0, n)");
      }
    }
  }
  PartialCoverResult result;
  const auto cluster_count = static_cast<std::int32_t>(r_clusters.size());

  std::vector<char> is_active(active.begin(), active.end());
  std::int64_t active_count = std::count(is_active.begin(), is_active.end(), char{1});
  if (active_count == 0) return result;

  // The growth threshold |R|^{1/k}: |R| is the size of the collection this
  // invocation received (the active set).
  const double r_pow = std::pow(static_cast<double>(active_count), 1.0 / k);

  // node -> active clusters containing it (for incremental intersection).
  std::vector<std::vector<std::int32_t>> clusters_at(static_cast<std::size_t>(n));
  for (std::int32_t c = 0; c < cluster_count; ++c) {
    if (!is_active[static_cast<std::size_t>(c)]) continue;
    for (NodeId v : r_clusters[static_cast<std::size_t>(c)].members) {
      clusters_at[static_cast<std::size_t>(v)].push_back(c);
    }
  }

  std::vector<char> node_in_z(static_cast<std::size_t>(n), 0);
  std::vector<char> cluster_in_z(static_cast<std::size_t>(cluster_count), 0);

  std::int32_t next_seed_scan = 0;
  while (true) {
    // Select the lowest-index active cluster as S_0 (deterministic stand-in
    // for the paper's "arbitrary").
    while (next_seed_scan < cluster_count &&
           !is_active[static_cast<std::size_t>(next_seed_scan)]) {
      ++next_seed_scan;
    }
    if (next_seed_scan >= cluster_count) break;
    const std::int32_t s0 = next_seed_scan;

    // Z as cluster-index list + node set, grown incrementally.  `frontier`
    // holds nodes whose cluster lists have not been scanned yet.
    std::vector<std::int32_t> z_clusters{s0};
    cluster_in_z[static_cast<std::size_t>(s0)] = 1;
    std::vector<NodeId> z_nodes;
    std::vector<NodeId> frontier;
    for (NodeId v : r_clusters[static_cast<std::size_t>(s0)].members) {
      if (!node_in_z[static_cast<std::size_t>(v)]) {
        node_in_z[static_cast<std::size_t>(v)] = 1;
        z_nodes.push_back(v);
        frontier.push_back(v);
      }
    }

    std::size_t y_cluster_count = 0;  // |Y| after "Y <- Z"
    std::size_t y_node_count = 0;
    while (true) {
      // Y <- Z (record counts; the vertex set Y is z_nodes[0..y_node_count)).
      y_cluster_count = z_clusters.size();
      y_node_count = z_nodes.size();
      // Z <- clusters intersecting Y; grow node set accordingly.
      std::vector<NodeId> new_frontier;
      for (NodeId v : frontier) {
        for (std::int32_t c : clusters_at[static_cast<std::size_t>(v)]) {
          if (cluster_in_z[static_cast<std::size_t>(c)]) continue;
          cluster_in_z[static_cast<std::size_t>(c)] = 1;
          z_clusters.push_back(c);
          for (NodeId w : r_clusters[static_cast<std::size_t>(c)].members) {
            if (!node_in_z[static_cast<std::size_t>(w)]) {
              node_in_z[static_cast<std::size_t>(w)] = 1;
              z_nodes.push_back(w);
              new_frontier.push_back(w);
            }
          }
        }
      }
      frontier = std::move(new_frontier);
      if (static_cast<double>(z_clusters.size()) <=
          r_pow * static_cast<double>(y_cluster_count)) {
        break;
      }
    }

    // Emit Y = first y_cluster_count clusters of Z merged together.
    MergedCluster merged;
    merged.center = r_clusters[static_cast<std::size_t>(s0)].seed;
    merged.members.assign(z_nodes.begin(),
                          z_nodes.begin() + static_cast<std::ptrdiff_t>(y_node_count));
    std::sort(merged.members.begin(), merged.members.end());
    merged.absorbed.assign(
        z_clusters.begin(),
        z_clusters.begin() + static_cast<std::ptrdiff_t>(y_cluster_count));
    for (std::int32_t c : merged.absorbed) result.covered.push_back(c);
    for (std::size_t i = y_cluster_count; i < z_clusters.size(); ++i) {
      result.consumed.push_back(z_clusters[i]);
    }
    result.merged.push_back(std::move(merged));

    // U <- U \ Z: deactivate every cluster of Z and unhook its nodes.
    for (std::int32_t c : z_clusters) {
      is_active[static_cast<std::size_t>(c)] = 0;
      for (NodeId v : r_clusters[static_cast<std::size_t>(c)].members) {
        auto& list = clusters_at[static_cast<std::size_t>(v)];
        list.erase(std::remove(list.begin(), list.end(), c), list.end());
      }
    }
    // Reset the node markers touched by this batch.
    for (NodeId v : z_nodes) node_in_z[static_cast<std::size_t>(v)] = 0;
  }
  return result;
}

}  // namespace rtr
