#include "cover/double_tree.h"

#include <algorithm>
#include <stdexcept>

namespace rtr {

namespace {

std::vector<char> make_mask(NodeId n, const std::vector<NodeId>& members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId v : members) mask[static_cast<std::size_t>(v)] = 1;
  return mask;
}

}  // namespace

DoubleTree::DoubleTree(const Digraph& g, const Digraph& reversed, NodeId center,
                       std::vector<NodeId> members)
    : center_(center),
      members_(std::move(members)),
      member_mask_(make_mask(g.node_count(), members_)),
      out_tree_(dijkstra_out_tree_within(g, center, member_mask_)),
      in_tree_(dijkstra_in_tree_within(g, reversed, center, member_mask_)),
      out_router_(out_tree_) {
  if (!contains(center_)) {
    throw std::invalid_argument("DoubleTree: center not among members");
  }
  for (NodeId v : members_) {
    const auto idx = static_cast<std::size_t>(v);
    if (out_tree_.dist[idx] >= kInfDist || in_tree_.dist[idx] >= kInfDist) {
      throw std::invalid_argument(
          "DoubleTree: induced subgraph is not strongly connected");
    }
    rt_height_ = std::max(rt_height_, out_tree_.dist[idx] + in_tree_.dist[idx]);
  }
}

}  // namespace rtr
