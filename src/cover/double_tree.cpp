#include "cover/double_tree.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "io/snapshot_format.h"

namespace rtr {

namespace {

std::vector<char> make_mask(NodeId n, const std::vector<NodeId>& members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId v : members) {
    if (v < 0 || v >= n) {
      throw std::invalid_argument("DoubleTree: member id out of range");
    }
    mask[static_cast<std::size_t>(v)] = 1;
  }
  return mask;
}

void save_out_tree(SnapshotWriter& w, const OutTree& t) {
  w.i32(t.root);
  w.vec_i64(t.dist);
  w.vec_i32(t.parent);
  w.vec_i32(t.parent_port);
}

OutTree load_out_tree(SnapshotReader& r) {
  OutTree t;
  t.root = r.i32();
  t.dist = r.vec_i64();
  t.parent = r.vec_i32();
  t.parent_port = r.vec_i32();
  return t;
}

void save_in_tree(SnapshotWriter& w, const InTree& t) {
  w.i32(t.root);
  w.vec_i64(t.dist);
  w.vec_i32(t.next);
  w.vec_i32(t.next_port);
}

InTree load_in_tree(SnapshotReader& r) {
  InTree t;
  t.root = r.i32();
  t.dist = r.vec_i64();
  t.next = r.vec_i32();
  t.next_port = r.vec_i32();
  return t;
}

}  // namespace

DoubleTree::DoubleTree(const Digraph& g, const Digraph& reversed, NodeId center,
                       std::vector<NodeId> members)
    : center_(center),
      members_(std::move(members)),
      member_mask_(make_mask(g.node_count(), members_)),
      out_tree_(dijkstra_out_tree_within(g, center, member_mask_)),
      in_tree_(dijkstra_in_tree_within(g, reversed, center, member_mask_)),
      out_router_(out_tree_) {
  if (!contains(center_)) {
    throw std::invalid_argument("DoubleTree: center not among members");
  }
  for (NodeId v : members_) {
    const auto idx = static_cast<std::size_t>(v);
    if (out_tree_.dist[idx] >= kInfDist || in_tree_.dist[idx] >= kInfDist) {
      throw std::invalid_argument(
          "DoubleTree: induced subgraph is not strongly connected");
    }
    rt_height_ = std::max(rt_height_, out_tree_.dist[idx] + in_tree_.dist[idx]);
  }
}

void DoubleTree::audit(AuditReport& report) const {
  auto scope = report.scope("double-tree");
  const auto n = member_mask_.size();

  bool mask_ok = out_tree_.dist.size() == n && in_tree_.dist.size() == n;
  std::size_t marked = 0;
  for (const char m : member_mask_) marked += (m != 0) ? 1 : 0;
  mask_ok = mask_ok && marked == members_.size();
  for (const NodeId v : members_) {
    if (!mask_ok) break;
    if (v < 0 || static_cast<std::size_t>(v) >= n || !contains(v)) {
      mask_ok = false;
    }
  }
  report.check("member-mask-consistent", mask_ok,
               "mask population must equal the member list");
  if (!mask_ok) return;

  report.check("center-is-member",
               center_ >= 0 && static_cast<std::size_t>(center_) < n &&
                   contains(center_),
               "center " + std::to_string(center_));

  bool reach_ok = true;
  std::string reach_detail;
  Dist recomputed_height = 0;
  for (const NodeId v : members_) {
    const auto idx = static_cast<std::size_t>(v);
    if (out_tree_.dist[idx] >= kInfDist || in_tree_.dist[idx] >= kInfDist) {
      reach_ok = false;
      reach_detail = "member " + std::to_string(v) +
                     " unreachable inside the induced subgraph";
      break;
    }
    if (v != center_ && in_tree_.next_port[idx] == kNoPort) {
      reach_ok = false;
      reach_detail = "member " + std::to_string(v) + " has no up port";
      break;
    }
    recomputed_height =
        std::max(recomputed_height, out_tree_.dist[idx] + in_tree_.dist[idx]);
  }
  report.check("members-reach-center", reach_ok, std::move(reach_detail));
  if (reach_ok) {
    report.check("rt-height-cached", recomputed_height == rt_height_,
                 "cached " + std::to_string(rt_height_) + ", recomputed " +
                     std::to_string(recomputed_height));
  }

  report.check("out-router-root", out_router_.root() == center_ &&
                                      out_router_.member_count() ==
                                          member_count(),
               "Lemma 14 router must span exactly the member set from the "
               "center");
  out_router_.audit(report);
}

void DoubleTree::save(SnapshotWriter& w) const {
  w.i32(center_);
  w.vec_i32(members_);
  w.i64(rt_height_);
  save_out_tree(w, out_tree_);
  save_in_tree(w, in_tree_);
  out_router_.save(w);
}

// The init list mirrors save()'s field order (= declaration order, which
// C++ guarantees for member initialization).
DoubleTree::DoubleTree(SnapshotReader& r)
    : center_(r.i32()),
      members_(r.vec_i32()),
      rt_height_(r.i64()),
      out_tree_(load_out_tree(r)),
      in_tree_(load_in_tree(r)),
      out_router_(r) {
  member_mask_ = make_mask(static_cast<NodeId>(out_tree_.dist.size()), members_);
}

}  // namespace rtr
