#include "cover/double_tree.h"

#include <algorithm>
#include <stdexcept>

#include "io/snapshot_format.h"

namespace rtr {

namespace {

std::vector<char> make_mask(NodeId n, const std::vector<NodeId>& members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId v : members) {
    if (v < 0 || v >= n) {
      throw std::invalid_argument("DoubleTree: member id out of range");
    }
    mask[static_cast<std::size_t>(v)] = 1;
  }
  return mask;
}

void save_out_tree(SnapshotWriter& w, const OutTree& t) {
  w.i32(t.root);
  w.vec_i64(t.dist);
  w.vec_i32(t.parent);
  w.vec_i32(t.parent_port);
}

OutTree load_out_tree(SnapshotReader& r) {
  OutTree t;
  t.root = r.i32();
  t.dist = r.vec_i64();
  t.parent = r.vec_i32();
  t.parent_port = r.vec_i32();
  return t;
}

void save_in_tree(SnapshotWriter& w, const InTree& t) {
  w.i32(t.root);
  w.vec_i64(t.dist);
  w.vec_i32(t.next);
  w.vec_i32(t.next_port);
}

InTree load_in_tree(SnapshotReader& r) {
  InTree t;
  t.root = r.i32();
  t.dist = r.vec_i64();
  t.next = r.vec_i32();
  t.next_port = r.vec_i32();
  return t;
}

}  // namespace

DoubleTree::DoubleTree(const Digraph& g, const Digraph& reversed, NodeId center,
                       std::vector<NodeId> members)
    : center_(center),
      members_(std::move(members)),
      member_mask_(make_mask(g.node_count(), members_)),
      out_tree_(dijkstra_out_tree_within(g, center, member_mask_)),
      in_tree_(dijkstra_in_tree_within(g, reversed, center, member_mask_)),
      out_router_(out_tree_) {
  if (!contains(center_)) {
    throw std::invalid_argument("DoubleTree: center not among members");
  }
  for (NodeId v : members_) {
    const auto idx = static_cast<std::size_t>(v);
    if (out_tree_.dist[idx] >= kInfDist || in_tree_.dist[idx] >= kInfDist) {
      throw std::invalid_argument(
          "DoubleTree: induced subgraph is not strongly connected");
    }
    rt_height_ = std::max(rt_height_, out_tree_.dist[idx] + in_tree_.dist[idx]);
  }
}

void DoubleTree::save(SnapshotWriter& w) const {
  w.i32(center_);
  w.vec_i32(members_);
  w.i64(rt_height_);
  save_out_tree(w, out_tree_);
  save_in_tree(w, in_tree_);
  out_router_.save(w);
}

// The init list mirrors save()'s field order (= declaration order, which
// C++ guarantees for member initialization).
DoubleTree::DoubleTree(SnapshotReader& r)
    : center_(r.i32()),
      members_(r.vec_i32()),
      rt_height_(r.i64()),
      out_tree_(load_out_tree(r)),
      in_tree_(load_in_tree(r)),
      out_router_(r) {
  member_mask_ = make_mask(static_cast<NodeId>(out_tree_.dist.size()), members_);
}

}  // namespace rtr
