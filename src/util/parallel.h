// Deterministic ticket-based parallel-for, the thread-pool shape shared by
// APSP (graph/apsp.cpp) and the scheme builders.
//
// The contract that keeps parallel builds bit-identical to serial ones:
//   * work items are claimed from a shared atomic ticket counter, but every
//     item is processed by the identical per-item routine regardless of which
//     thread claims it,
//   * each thread owns its scratch (the make_worker factory runs once per
//     thread, so workspaces are never shared),
//   * items write only to their own pre-sized output slots -- no worker
//     appends to shared containers.
// Under those rules the output is a pure function of the item index, so any
// thread count (including 1) produces the same bytes.
//
// Exceptions thrown by a worker are captured and rethrown on the calling
// thread after every worker has joined (first one wins), so a failing item
// behaves like it would in the serial loop.
#ifndef RTR_UTIL_PARALLEL_H
#define RTR_UTIL_PARALLEL_H

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rtr {

/// Runs `make_worker()(i)` for every i in [0, count).  `make_worker` is
/// invoked once per thread and must return a callable taking the item index;
/// per-thread scratch lives in the returned callable.  `threads` must be
/// >= 1 (resolve via resolve_apsp_threads first); 1 runs inline with no
/// thread spawned.
template <typename MakeWorker>
void parallel_tickets(std::int64_t count, int threads,
                      MakeWorker&& make_worker) {
  if (count <= 0) return;
  if (threads > count) threads = static_cast<int>(count);
  if (threads <= 1) {
    auto worker = make_worker();
    for (std::int64_t i = 0; i < count; ++i) worker(i);
    return;
  }
  std::atomic<std::int64_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      try {
        auto worker = make_worker();
        for (std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
          worker(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        // Swallow the rest of this worker's tickets: with an exception in
        // flight the build is failing anyway, and racing on after an error
        // only delays the rethrow below.
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace rtr

#endif  // RTR_UTIL_PARALLEL_H
