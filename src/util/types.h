// Fundamental value types shared by every module.
//
// All arithmetic types are signed (C++ Core Guidelines ES.102): distances and
// weights are int64 so that sums of up to n * W_max values cannot overflow and
// all comparisons in tests are exact.  Node identifiers come in two flavours
// that must never be confused:
//
//  * NodeId   -- the internal topology index, 0..n-1, used by the graph and
//                by preprocessing.  Routing *tables* may reference NodeIds
//                only through opaque topology-dependent labels.
//  * NodeName -- the topology-independent node name (TINN model, Section
//                1.1.2 of the paper): an adversarial permutation of 0..n-1.
//                Packets arrive carrying a NodeName only.
#ifndef RTR_UTIL_TYPES_H
#define RTR_UTIL_TYPES_H

#include <cstdint>
#include <limits>

namespace rtr {

using NodeId = std::int32_t;
using NodeName = std::int32_t;
using Port = std::int32_t;
using Weight = std::int64_t;
using Dist = std::int64_t;

/// Sentinel for "unreachable".  Chosen so that kInfDist + kInfDist does not
/// overflow and any genuine distance is strictly smaller.
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max() / 4;

/// Sentinel for "no node" / "no port".
inline constexpr NodeId kNoNode = -1;
inline constexpr Port kNoPort = -1;

}  // namespace rtr

#endif  // RTR_UTIL_TYPES_H
