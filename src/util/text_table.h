// Minimal ASCII table printer used by the benchmark harnesses to print the
// rows the paper's Fig. 1 (and our experiment tables) report.
#ifndef RTR_UTIL_TEXT_TABLE_H
#define RTR_UTIL_TEXT_TABLE_H

#include <string>
#include <vector>

namespace rtr {

/// Collects rows of strings and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule; every column padded to its widest cell.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for numeric cells.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_int(std::int64_t v);

}  // namespace rtr

#endif  // RTR_UTIL_TEXT_TABLE_H
