#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace rtr {

namespace {

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const Json& Json::at(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw JsonError("Json: missing key \"" + key + "\"");
}

bool Json::has(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return true;
  }
  return false;
}

void Json::set(const std::string& key, Json v) {
  if (!is_object()) value_ = JsonObject{};
  auto& obj = std::get<JsonObject>(value_);
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj.emplace_back(key, std::move(v));
}

namespace {

void dump_value(std::string& out, const Json& v, int depth);

void dump_array(std::string& out, const JsonArray& a, int depth) {
  if (a.empty()) {
    out += "[]";
    return;
  }
  out += "[\n";
  for (std::size_t i = 0; i < a.size(); ++i) {
    indent(out, depth + 1);
    dump_value(out, a[i], depth + 1);
    if (i + 1 < a.size()) out += ',';
    out += '\n';
  }
  indent(out, depth);
  out += ']';
}

void dump_object(std::string& out, const JsonObject& o, int depth) {
  if (o.empty()) {
    out += "{}";
    return;
  }
  out += "{\n";
  for (std::size_t i = 0; i < o.size(); ++i) {
    indent(out, depth + 1);
    dump_string(out, o[i].first);
    out += ": ";
    dump_value(out, o[i].second, depth + 1);
    if (i + 1 < o.size()) out += ',';
    out += '\n';
  }
  indent(out, depth);
  out += '}';
}

void dump_value(std::string& out, const Json& v, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v.as_int());
    out += buf;
  } else if (v.is_double()) {
    const double d = v.as_double();
    if (!std::isfinite(d)) throw JsonError("Json: non-finite number");
    char buf[40];
    // %.17g round-trips any double; parse() reads it back bit-exactly.
    std::snprintf(buf, sizeof buf, "%.17g", d);
    // Keep a marker so the value re-parses as a double, not an int.
    if (std::strpbrk(buf, ".eE") == nullptr) std::strcat(buf, ".0");
    out += buf;
  } else if (v.is_string()) {
    dump_string(out, v.as_string());
  } else if (v.is_array()) {
    dump_array(out, v.as_array(), depth);
  } else {
    dump_object(out, v.as_object(), depth);
  }
}

// ---------------------------------------------------------------- parsing --

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("Json parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The emitter only produces \u00xx control escapes; decode the
          // Latin-1 subset and reject the rest (not needed by the schema).
          if (code > 0xFF) fail("unsupported \\u escape beyond U+00FF");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok(s_.data() + start, pos_ - start);
    if (tok.empty()) fail("expected a value");
    const bool integral =
        tok.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), i);
      if (ec == std::errc() && p == tok.end()) return Json(i);
      fail("bad integer");
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), d);
    if (ec == std::errc() && p == tok.end()) return Json(d);
    fail("bad number");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(out, *this, 0);
  out += '\n';
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace rtr
