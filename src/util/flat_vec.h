// FlatVec<T>: the storage type of every frozen table in the repo.
//
// A FlatVec is either *owning* (it holds a std::vector<T>, the classic path:
// builders fill a vector and freeze it) or a *view* (a raw pointer + length
// into memory owned by someone else -- an mmap'd snapshot arena, a shared
// memory region).  Readers cannot tell the difference: both modes expose the
// same immutable, contiguous, random-access surface, so the frozen data
// structures (CSR digraph rows, rtz3 dictionaries, ball systems, name
// assignments) work identically whether they were built in-process or mapped
// in place from a v2 snapshot.
//
// Views do NOT keep their backing memory alive; the class that embeds view
// FlatVecs must carry the owner (a shared_ptr<const ArenaStorage>) alongside
// them.  Copying a FlatVec copies owning data (re-pointing at the copy) and
// aliases views, which is exactly the semantics a frozen structure wants.
#ifndef RTR_UTIL_FLAT_VEC_H
#define RTR_UTIL_FLAT_VEC_H

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace rtr {

template <typename T>
class FlatVec {
 public:
  using value_type = T;
  using const_iterator = const T*;

  FlatVec() = default;

  /// Owning mode: adopt a built vector.  Implicit on purpose -- builders
  /// write `table_ = std::move(rows);` exactly as they did when the member
  /// was a std::vector.
  FlatVec(std::vector<T> own)  // NOLINT(google-explicit-constructor)
      : own_(std::move(own)), data_(own_.data()), size_(own_.size()) {}

  /// View mode: alias `count` elements at `data` owned elsewhere.
  [[nodiscard]] static FlatVec view(const T* data, std::size_t count) {
    FlatVec v;
    v.data_ = data;
    v.size_ = count;
    return v;
  }

  FlatVec(const FlatVec& other) { assign_from(other); }
  FlatVec& operator=(const FlatVec& other) {
    if (this != &other) assign_from(other);
    return *this;
  }
  FlatVec(FlatVec&& other) noexcept { move_from(std::move(other)); }
  FlatVec& operator=(FlatVec&& other) noexcept {
    if (this != &other) move_from(std::move(other));
    return *this;
  }
  ~FlatVec() = default;

  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool is_view() const { return data_ != nullptr && own_.empty(); }

  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }

  /// Materializes an owning copy (tooling/tests; never on the serving path).
  [[nodiscard]] std::vector<T> to_vector() const {
    return std::vector<T>(begin(), end());
  }

  [[nodiscard]] bool operator==(const FlatVec& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }
  [[nodiscard]] bool operator==(const std::vector<T>& other) const {
    return size_ == other.size() && std::equal(begin(), end(), other.begin());
  }

 private:
  void assign_from(const FlatVec& other) {
    if (other.is_view()) {
      own_.clear();
      data_ = other.data_;
      size_ = other.size_;
    } else {
      own_ = other.own_;
      data_ = own_.data();
      size_ = own_.size();
    }
  }
  void move_from(FlatVec&& other) noexcept {
    if (other.is_view()) {
      own_.clear();
      data_ = other.data_;
      size_ = other.size_;
    } else {
      own_ = std::move(other.own_);
      data_ = own_.data();
      size_ = own_.size();
    }
    other.data_ = nullptr;
    other.size_ = 0;
    other.own_.clear();
  }

  std::vector<T> own_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rtr

#endif  // RTR_UTIL_FLAT_VEC_H
