// Minimal JSON document model shared by the benchmark subsystem and the
// network serving layer: BENCH_<rev> documents are emitted, re-parsed (schema
// round-trip test), and compared against a committed baseline (the CI perf
// gate), and rtr_routed answers every HTTP response from the same model --
// one emitter, no external dependencies.
//
// Deliberately small: objects, arrays, strings, booleans, null, and numbers
// split into int64 (counts -- exact) and double (timings/stretch -- emitted
// with round-trip precision).  Object keys keep insertion order so emitted
// documents are deterministic and diffs stay readable.
#ifndef RTR_UTIL_JSON_H
#define RTR_UTIL_JSON_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace rtr {

class Json;

using JsonArray = std::vector<Json>;
/// Insertion-ordered object (lookups are linear; documents are small).
using JsonObject = std::vector<std::pair<std::string, Json>>;

/// Thrown on malformed documents and type mismatches.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::int64_t i) : value_(i) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(double d) : value_(d) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_int() const { return holds<std::int64_t>(); }
  [[nodiscard]] bool is_double() const { return holds<double>(); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<JsonArray>(); }
  [[nodiscard]] bool is_object() const { return holds<JsonObject>(); }

  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] std::int64_t as_int() const {
    return get<std::int64_t>("int");
  }
  /// Any number as double (ints widen).
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    return get<double>("number");
  }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return get<JsonArray>("array");
  }
  [[nodiscard]] const JsonObject& as_object() const {
    return get<JsonObject>("object");
  }

  /// Object member access; throws JsonError when absent (`has` to probe).
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Appends (or overwrites) an object member, preserving insertion order.
  void set(const std::string& key, Json v);

  /// Serializes with 2-space indentation; doubles print with enough digits
  /// to round-trip bit-exactly, integers exactly.
  [[nodiscard]] std::string dump() const;

  /// Parses a complete document; trailing non-whitespace is an error.
  [[nodiscard]] static Json parse(const std::string& text);

  [[nodiscard]] bool operator==(const Json& other) const {
    return value_ == other.value_;
  }

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(value_);
  }
  template <typename T>
  [[nodiscard]] const T& get(const char* what) const {
    if (!holds<T>()) throw JsonError(std::string("Json: not a ") + what);
    return std::get<T>(value_);
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace rtr

#endif  // RTR_UTIL_JSON_H
