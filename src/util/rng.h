// Deterministic, seedable random number generation.
//
// Every randomized component in the library (graph generators, the adversary
// choosing names and ports, the randomized block-distribution of Lemmas 1/4,
// center sampling) takes an explicit Rng so that tests and benchmarks are
// reproducible run-to-run.
#ifndef RTR_UTIL_RNG_H
#define RTR_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <vector>

#include "util/types.h"

namespace rtr {

/// Thin wrapper over std::mt19937_64 with convenience helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::int64_t index(std::int64_t n) { return uniform(0, n - 1); }

  /// Bernoulli trial with success probability p in [0,1].
  bool chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  /// Uniform real in [0, 1).
  double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(index(static_cast<std::int64_t>(i)));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::int32_t> permutation(std::int32_t n) {
    std::vector<std::int32_t> p(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
    shuffle(p);
    return p;
  }

  /// Sample k distinct values from {0,...,n-1} (k <= n), in random order.
  std::vector<std::int32_t> sample_without_replacement(std::int32_t n,
                                                       std::int32_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rtr

#endif  // RTR_UTIL_RNG_H
