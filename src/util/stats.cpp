#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rtr {

void Summary::add(double x) {
  values_.push_back(x);
  sorted_ = false;
  ++count_;
  sum_ += x;
}

void Summary::merge(const Summary& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Summary::mean() const {
  if (count_ == 0) throw std::logic_error("Summary::mean on empty sample");
  return sum_ / static_cast<double>(count_);
}

double Summary::stable_mean() const {
  if (count_ == 0) throw std::logic_error("Summary::stable_mean on empty sample");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(count_);
}

double Summary::max() const {
  if (count_ == 0) throw std::logic_error("Summary::max on empty sample");
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::min() const {
  if (count_ == 0) throw std::logic_error("Summary::min on empty sample");
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::percentile(double q) const {
  if (count_ == 0) throw std::logic_error("Summary::percentile on empty sample");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  double rank = q * static_cast<double>(count_ - 1);
  auto idx = static_cast<std::size_t>(std::llround(rank));
  idx = std::min(idx, values_.size() - 1);
  return values_[idx];
}

std::string Summary::brief() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " p50=" << percentile(0.5)
     << " p99=" << percentile(0.99) << " max=" << max();
  return os.str();
}

}  // namespace rtr
