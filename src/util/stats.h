// Small descriptive-statistics helpers used by tests and benchmark harnesses
// to summarize stretch distributions, table sizes and header sizes.
#ifndef RTR_UTIL_STATS_H
#define RTR_UTIL_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace rtr {

/// Accumulates a sample of doubles and reports summary statistics.
class Summary {
 public:
  void add(double x);

  /// Pre-sizes the sample buffer (batch loops know their size up front).
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Folds another sample in (used to combine per-worker summaries).
  void merge(const Summary& other);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Mean over the *sorted* sample: equal multisets give bit-identical
  /// results regardless of insertion/merge order (QueryEngine relies on this
  /// for worker-count-independent aggregates).
  [[nodiscard]] double stable_mean() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;
  /// q in [0,1]; nearest-rank percentile. Requires a non-empty sample.
  [[nodiscard]] double percentile(double q) const;
  /// "mean=... p50=... p99=... max=..." one-liner for logs.
  [[nodiscard]] std::string brief() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  std::int64_t count_ = 0;
  double sum_ = 0;
};

}  // namespace rtr

#endif  // RTR_UTIL_STATS_H
