#include "util/rng.h"

#include <stdexcept>
#include <unordered_set>

namespace rtr {

std::vector<std::int32_t> Rng::sample_without_replacement(std::int32_t n,
                                                          std::int32_t k) {
  if (k < 0 || k > n) throw std::invalid_argument("sample: need 0 <= k <= n");
  // For small k relative to n use rejection sampling; otherwise shuffle a
  // full permutation and truncate.
  if (k * 3 < n) {
    std::unordered_set<std::int32_t> seen;
    std::vector<std::int32_t> out;
    out.reserve(static_cast<std::size_t>(k));
    while (static_cast<std::int32_t>(out.size()) < k) {
      auto x = static_cast<std::int32_t>(index(n));
      if (seen.insert(x).second) out.push_back(x);
    }
    return out;
  }
  auto perm = permutation(n);
  perm.resize(static_cast<std::size_t>(k));
  return perm;
}

}  // namespace rtr
