// Bit-size accounting helpers.
//
// The paper's space bounds count bits; our tables store machine words.  To
// report honest sizes, every scheme computes an *encoded* size for each table
// entry and header using these helpers: a node name costs ceil(log2 n) bits, a
// port costs ceil(log2 (port namespace size)) bits, and so on.
#ifndef RTR_UTIL_BIT_COST_H
#define RTR_UTIL_BIT_COST_H

#include <cstdint>

namespace rtr {

/// Number of bits needed to represent values in [0, n).  bits_for(0) and
/// bits_for(1) are 1 (one value still occupies a slot on the wire).
[[nodiscard]] constexpr std::int64_t bits_for(std::int64_t n) {
  if (n <= 2) return 1;
  std::int64_t bits = 0;
  std::int64_t v = n - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

static_assert(bits_for(2) == 1);
static_assert(bits_for(3) == 2);
static_assert(bits_for(256) == 8);
static_assert(bits_for(257) == 9);

}  // namespace rtr

#endif  // RTR_UTIL_BIT_COST_H
