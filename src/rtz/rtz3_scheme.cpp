#include "rtz/rtz3_scheme.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>


#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/snapshot_format.h"
#include "rtz/centers.h"
#include "util/bit_cost.h"
#include "util/parallel.h"

namespace rtr {

namespace {

std::vector<char> mask_of(NodeId n, const std::vector<NodeId>& members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId v : members) mask[static_cast<std::size_t>(v)] = 1;
  return mask;
}

/// Snapshot helpers for NameDict: the on-disk encoding is the sorted
/// (key, payload) sequence -- identical bytes for both in-memory layouts,
/// and identical to the PR <= 4 vector-of-pairs encoding.
template <typename V, typename SaveV>
void save_dict(SnapshotWriter& w, const NameDict<V>& d, SaveV save_value) {
  w.u64(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    w.i32(d.key_at(i));
    save_value(w, d.value_at(i));
  }
}

template <typename V, typename LoadV>
NameDict<V> load_dict(SnapshotReader& r, LoadV load_value, bool soa) {
  auto entries = r.template vec<std::pair<NodeName, V>>(
      [&load_value](SnapshotReader& rr) {
        const NodeName name = rr.i32();
        return std::make_pair(name, load_value(rr));
      },
      8);
  NameDict<V> d;
  for (auto& [k, v] : entries) d.add(k, std::move(v));
  d.finalize(soa);
  return d;
}

}  // namespace

Rtz3Scheme::Rtz3Scheme(const Digraph& g, const RoundtripMetric& metric,
                       const NameAssignment& names, Rng& rng, Options options)
    : graph_(g),
      names_(names),
      node_space_(g.node_count()),
      port_space_(g.port_space()) {
  const NodeId n = g.node_count();
  const int workers = resolve_apsp_threads(options.threads);
  const Digraph reversed = g.reversed();

  // --- center selection with size verification -----------------------------
  const double nn = static_cast<double>(std::max<NodeId>(n, 2));
  const double budget = options.size_slack * std::sqrt(nn * (1.0 + std::log(nn)));
  if (options.greedy_centers) {
    // Greedy hitting set over the first-ceil(sqrt n) neighborhoods: caps
    // every ball at sqrt(n) deterministically.
    const auto hood = static_cast<NodeId>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    std::vector<std::vector<NodeId>> hoods(static_cast<std::size_t>(n));
    parallel_tickets(n, workers, [&] {
      return [&](std::int64_t v) {
        hoods[static_cast<std::size_t>(v)] =
            metric.neighborhood(static_cast<NodeId>(v), hood, names_.names());
      };
    });
    balls_ = build_ball_system(metric, greedy_hitting_set(n, hoods), workers);
  } else {
    const NodeId centers = default_center_count(n);
    for (int attempt = 0; ; ++attempt) {
      balls_ =
          build_ball_system(metric, sample_centers(n, centers, rng), workers);
      resamples_used_ = attempt;
      if (static_cast<double>(balls_.max_ball_size()) <= budget &&
          static_cast<double>(balls_.max_cluster_size()) <= budget) {
        break;
      }
      if (attempt >= options.max_resample) break;  // accept; stats will show it
    }
  }
  const auto center_count = static_cast<std::int32_t>(balls_.centers.size());

  tables_.resize(static_cast<std::size_t>(n));
  for (auto& t : tables_) {
    t.center_up_port.assign(static_cast<std::size_t>(center_count), kNoPort);
    t.center_tree_tab.assign(static_cast<std::size_t>(center_count), TreeNodeTable{});
  }
  addresses_.resize(static_cast<std::size_t>(n));

  // --- global double trees per center, and addresses R3(v) -----------------
  // Center ci writes only element ci of every node's pre-sized center
  // arrays, so the fan-out is race-free without locks; each worker owns its
  // Dijkstra workspace.  Addresses ride along: node v's address label comes
  // from exactly its nearest center's tree, so ticket ci owns addresses_[v]
  // for its own cluster and the router can die with the ticket instead of
  // all center_count full-graph routers staying resident until a serial
  // address pass (at n = 16384 that retention alone was hundreds of MB).
  parallel_tickets(center_count, workers, [&] {
    return [&, ws = DijkstraWorkspace{}](std::int64_t ci) mutable {
      const NodeId a = balls_.centers[static_cast<std::size_t>(ci)];
      OutTree out = dijkstra_out_tree(g, a, ws);
      InTree in = dijkstra_in_tree(g, reversed, a, ws);
      TreeRouter router(out);
      for (NodeId v = 0; v < n; ++v) {
        auto& t = tables_[static_cast<std::size_t>(v)];
        t.center_up_port[static_cast<std::size_t>(ci)] =
            in.next_port[static_cast<std::size_t>(v)];
        t.center_tree_tab[static_cast<std::size_t>(ci)] = router.table(v);
        if (balls_.nearest_center[static_cast<std::size_t>(v)] ==
            static_cast<std::int32_t>(ci)) {
          addresses_[static_cast<std::size_t>(v)] =
              RtzAddress{names_.name_of(v), static_cast<std::int32_t>(ci),
                         router.label(v)};
        }
      }
    };
  });

  // --- per-node ball double trees ------------------------------------------
  // A ball tree rooted at v scatters one entry into every member w's
  // dictionaries, so the v loop cannot fan out directly.  Instead, chunks of
  // roots compute their products (labels, tables, up-ports, parallel to the
  // ball row) concurrently; a serial in-v-order scatter then replays exactly
  // the serial build's add() sequence.  Chunking bounds the staging memory
  // to O(chunk * max_ball) instead of O(n * max_ball).
  struct BallProduct {
    std::vector<TreeLabel> labels;        // per member: label in v's out-tree
    std::vector<TreeNodeTable> tabs;      // per member: table in v's out-tree
    std::vector<Port> up_ports;           // per member: up-port in v's in-tree
  };
  const NodeId chunk_size = std::max<NodeId>(64, 16 * workers);
  std::vector<BallProduct> products(static_cast<std::size_t>(
      std::min<NodeId>(n, chunk_size)));
  for (NodeId lo = 0; lo < n; lo += chunk_size) {
    const NodeId hi = std::min<NodeId>(n, lo + chunk_size);
    parallel_tickets(hi - lo, workers, [&] {
      return [&, ws = DijkstraWorkspace{}](std::int64_t ticket) mutable {
        const NodeId v = lo + static_cast<NodeId>(ticket);
        const auto& members = balls_.ball_of[static_cast<std::size_t>(v)];
        auto mask = mask_of(n, members);
        OutTree out = dijkstra_out_tree_within(g, v, mask, ws);
        InTree in = dijkstra_in_tree_within(g, reversed, v, mask, ws);
        TreeRouter router(out);
        BallProduct& prod = products[static_cast<std::size_t>(ticket)];
        prod.labels.clear();
        prod.tabs.clear();
        prod.up_ports.clear();
        prod.labels.reserve(members.size());
        prod.tabs.reserve(members.size());
        prod.up_ports.reserve(members.size());
        for (NodeId w : members) {
          prod.labels.push_back(router.label(w));
          prod.tabs.push_back(router.table(w));
          prod.up_ports.push_back(in.next_port[static_cast<std::size_t>(w)]);
        }
      };
    });
    for (NodeId v = lo; v < hi; ++v) {
      const auto& members = balls_.ball_of[static_cast<std::size_t>(v)];
      const BallProduct& prod = products[static_cast<std::size_t>(v - lo)];
      const NodeName root_name = names_.name_of(v);
      auto& own = tables_[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < members.size(); ++i) {
        const NodeId w = members[i];
        own.ball_out_label.add(names_.name_of(w), prod.labels[i]);
        auto& member = tables_[static_cast<std::size_t>(w)];
        member.member_out_tab.add(root_name, prod.tabs[i]);
        member.member_up_port.add(root_name, prod.up_ports[i]);
      }
    }
  }
  parallel_tickets(n, workers, [&] {
    return [&](std::int64_t v) {
      auto& t = tables_[static_cast<std::size_t>(v)];
      t.ball_out_label.finalize(options.soa_dicts);
      t.member_out_tab.finalize(options.soa_dicts);
      t.member_up_port.finalize(options.soa_dicts);
    };
  });
}

LegStep Rtz3Scheme::start_leg(NodeId at, const RtzAddress& target,
                              LegHeader& leg) const {
  leg = LegHeader{};
  leg.target = target;
  if (names_.name_of(at) == target.name) return LegStep{true, kNoPort};
  if (const TreeLabel* label = find_ball_label(at, target.name)) {
    leg.phase = LegPhase::kBallDown;
    leg.ball_root = names_.name_of(at);
    leg.ball_label = *label;
  } else if (find_member_up_port(at, target.name) != nullptr) {
    leg.phase = LegPhase::kBallUp;
  } else {
    leg.phase = LegPhase::kCenterUp;
  }
  return step_leg(at, leg);
}

LegStep Rtz3Scheme::step_leg(NodeId at, LegHeader& leg) const {
  const auto& t = tables_[static_cast<std::size_t>(at)];
  const NodeName at_name = names_.name_of(at);
  switch (leg.phase) {
    case LegPhase::kBallDown: {
      const TreeNodeTable* tab = find_member_table(at, leg.ball_root);
      if (tab == nullptr) {
        throw std::logic_error("rtz3: ball-down step left the ball");
      }
      Port p = tree_next_port(*tab, leg.ball_label);
      if (p == kNoPort) return LegStep{true, kNoPort};
      return LegStep{false, p};
    }
    case LegPhase::kBallUp: {
      if (at_name == leg.target.name) return LegStep{true, kNoPort};
      const Port* up = find_member_up_port(at, leg.target.name);
      if (up == nullptr) {
        throw std::logic_error("rtz3: ball-up step left the ball");
      }
      return LegStep{false, *up};
    }
    case LegPhase::kCenterUp: {
      const auto ci = static_cast<std::size_t>(leg.target.center_index);
      if (balls_.centers[ci] == at) {
        leg.phase = LegPhase::kCenterDown;
        return step_leg(at, leg);
      }
      return LegStep{false, t.center_up_port[ci]};
    }
    case LegPhase::kCenterDown: {
      const auto ci = static_cast<std::size_t>(leg.target.center_index);
      Port p = tree_next_port(t.center_tree_tab[ci], leg.target.center_label);
      if (p == kNoPort) return LegStep{true, kNoPort};
      return LegStep{false, p};
    }
  }
  throw std::logic_error("rtz3: bad leg phase");
}

std::int64_t Rtz3Scheme::address_bits(const RtzAddress& a) const {
  return bits_for(node_space_) +
         bits_for(static_cast<std::int64_t>(balls_.centers.size())) +
         tree_label_bits(a.center_label, node_space_, port_space_);
}

std::int64_t Rtz3Scheme::leg_header_bits(const LegHeader& leg) const {
  return 2 /* phase */ + address_bits(leg.target) + bits_for(node_space_) +
         tree_label_bits(leg.ball_label, node_space_, port_space_);
}

Rtz3Scheme::Header Rtz3Scheme::make_packet(NodeName dest) const {
  Header h;
  h.mode = Mode::kNew;
  h.dest = dest;
  // Name-dependent model: the sender is handed the destination's address
  // along with the packet (Section 1: "the packet destined for i arrives
  // also with a short address in its header").
  h.dest_addr = address_of_name(dest);
  return h;
}

Decision Rtz3Scheme::forward(NodeId at, Header& h) const {
  switch (h.mode) {
    case Mode::kNew: {
      h.src = names_.name_of(at);
      h.src_addr = own_address(at);
      h.mode = Mode::kOutbound;
      LegStep s = start_leg(at, h.dest_addr, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_on(s.port);
    }
    case Mode::kOutbound: {
      // step_leg only flips the leg phase (kCenterUp -> kCenterDown); the
      // target address and ball label -- everything leg_header_bits sums --
      // are untouched, so the encoded size cannot change mid-leg.
      LegStep s = step_leg(at, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_same_size(s.port);
    }
    case Mode::kReturn: {
      h.mode = Mode::kInbound;
      LegStep s = start_leg(at, h.src_addr, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_on(s.port);
    }
    case Mode::kInbound: {
      LegStep s = step_leg(at, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_same_size(s.port);
    }
  }
  throw std::logic_error("rtz3: bad mode");
}

std::int64_t Rtz3Scheme::header_bits(const Header& h) const {
  return 2 /* mode */ + 2 * bits_for(node_space_) + address_bits(h.dest_addr) +
         address_bits(h.src_addr) + leg_header_bits(h.leg);
}

TableStats Rtz3Scheme::table_stats() const {
  const auto n = static_cast<NodeId>(tables_.size());
  TableStats stats(n);
  const std::int64_t id_bits = bits_for(node_space_);
  const std::int64_t port_bits = bits_for(port_space_);
  for (NodeId v = 0; v < n; ++v) {
    const auto& t = tables_[static_cast<std::size_t>(v)];
    std::int64_t entries = 0, bits = 0;
    entries += static_cast<std::int64_t>(t.center_up_port.size());
    bits += static_cast<std::int64_t>(t.center_up_port.size()) * port_bits;
    entries += static_cast<std::int64_t>(t.center_tree_tab.size());
    bits += static_cast<std::int64_t>(t.center_tree_tab.size()) * (id_bits + port_bits);
    for (std::size_t i = 0; i < t.ball_out_label.size(); ++i) {
      ++entries;
      bits += id_bits + tree_label_bits(t.ball_out_label.value_at(i),
                                        node_space_, port_space_);
    }
    entries += static_cast<std::int64_t>(t.member_out_tab.size());
    bits += static_cast<std::int64_t>(t.member_out_tab.size()) *
            (id_bits + id_bits + port_bits);
    entries += static_cast<std::int64_t>(t.member_up_port.size());
    bits += static_cast<std::int64_t>(t.member_up_port.size()) * (id_bits + port_bits);
    // Own address.
    ++entries;
    bits += address_bits(addresses_[static_cast<std::size_t>(v)]);
    stats.add(v, entries, bits);
  }
  return stats;
}

void Rtz3Scheme::audit(AuditReport& report) const {
  auto scope = report.scope("rtz3");
  balls_.audit(report);

  const auto n = static_cast<std::size_t>(graph_.node_count());
  report.check("tables-sized",
               addresses_.size() == n && tables_.size() == n &&
                   names_.node_count() == graph_.node_count(),
               "one address and one table block per node");
  if (addresses_.size() != n || tables_.size() != n ||
      balls_.ball_of.size() != n || balls_.cluster_of.size() != n ||
      balls_.nearest_center.size() != n) {
    return;  // per-node walks below depend on the sizing above
  }

  // Addresses: R3(v) must carry v's own name and its nearest center.
  bool addr_ok = true;
  std::string addr_detail;
  for (std::size_t v = 0; addr_ok && v < n; ++v) {
    const RtzAddress& a = addresses_[v];
    if (a.name != names_.name_of(static_cast<NodeId>(v))) {
      addr_ok = false;
      addr_detail = "address of node " + std::to_string(v) +
                    " carries the wrong name";
    } else if (a.center_index < 0 ||
               static_cast<std::size_t>(a.center_index) >=
                   balls_.centers.size() ||
               a.center_index != balls_.nearest_center[v]) {
      addr_ok = false;
      addr_detail = "address of node " + std::to_string(v) +
                    " does not point at its nearest center";
    }
  }
  report.check("addresses-consistent", addr_ok, std::move(addr_detail));

  // Per-node tables: center arrays sized to the center set; every NameDict
  // sorted with unique keys; dictionary populations matching the ball and
  // cluster rows they were built from.  One aggregated entry per invariant
  // (n nodes x 3 dictionaries would drown the report).
  const auto centers = balls_.centers.size();
  bool center_arrays_ok = true;
  bool dicts_sorted = true;
  bool dicts_populated = true;
  std::string center_detail, sorted_detail, populated_detail;
  const auto dict_sorted = [](const auto& dict) {
    for (std::size_t i = 1; i < dict.size(); ++i) {
      if (dict.key_at(i) <= dict.key_at(i - 1)) return false;
    }
    return true;
  };
  for (std::size_t v = 0; v < n; ++v) {
    const NodeTables& t = tables_[v];
    if (center_arrays_ok && (t.center_up_port.size() != centers ||
                             t.center_tree_tab.size() != centers)) {
      center_arrays_ok = false;
      center_detail = "center arrays of node " + std::to_string(v) +
                      " not sized to the center set";
    }
    if (dicts_sorted &&
        !(dict_sorted(t.ball_out_label) && dict_sorted(t.member_out_tab) &&
          dict_sorted(t.member_up_port))) {
      dicts_sorted = false;
      sorted_detail = "a dictionary of node " + std::to_string(v) +
                      " has unsorted or duplicate keys";
    }
    if (dicts_populated &&
        (t.ball_out_label.size() != balls_.ball_of[v].size() ||
         t.member_out_tab.size() != balls_.cluster_of[v].size() ||
         t.member_up_port.size() != balls_.cluster_of[v].size())) {
      dicts_populated = false;
      populated_detail = "dictionary population of node " + std::to_string(v) +
                         " does not match its ball/cluster sizes";
    }
  }
  report.check("center-arrays-sized", center_arrays_ok,
               std::move(center_detail));
  report.check("dicts-sorted-unique", dicts_sorted, std::move(sorted_detail));
  report.check("dicts-match-balls", dicts_populated,
               std::move(populated_detail));
}

// ---------------------------------------------------------------- snapshot --

void save_rtz_address(SnapshotWriter& w, const RtzAddress& a) {
  w.i32(a.name);
  w.i32(a.center_index);
  save_tree_label(w, a.center_label);
}

RtzAddress load_rtz_address(SnapshotReader& r) {
  RtzAddress a;
  a.name = r.i32();
  a.center_index = r.i32();
  a.center_label = load_tree_label(r);
  return a;
}

namespace {

void save_ball_system(SnapshotWriter& w, const BallSystem& b) {
  w.vec_i32(b.centers);
  w.vec_i32(b.center_index_of);
  w.vec_i64(b.r_to_centers);
  w.vec_i32(b.nearest_center);
  auto nested = [](SnapshotWriter& ww, const std::vector<NodeId>& v) {
    ww.vec_i32(v);
  };
  w.vec(b.ball_of, nested);
  w.vec(b.cluster_of, nested);
}

BallSystem load_ball_system(SnapshotReader& r) {
  BallSystem b;
  b.centers = r.vec_i32();
  b.center_index_of = r.vec_i32();
  b.r_to_centers = r.vec_i64();
  b.nearest_center = r.vec_i32();
  auto nested = [](SnapshotReader& rr) { return rr.vec_i32(); };
  b.ball_of = r.vec<std::vector<NodeId>>(nested, 8);
  b.cluster_of = r.vec<std::vector<NodeId>>(nested, 8);
  return b;
}

}  // namespace

void Rtz3Scheme::save(SnapshotWriter& w) const {
  names_.save(w);
  save_ball_system(w, balls_);
  w.vec(addresses_, save_rtz_address);
  w.u64(tables_.size());
  for (const NodeTables& t : tables_) {
    w.vec_i32(t.center_up_port);
    w.vec(t.center_tree_tab, save_tree_node_table);
    save_dict(w, t.ball_out_label, save_tree_label);
    save_dict(w, t.member_out_tab, save_tree_node_table);
    save_dict(w, t.member_up_port,
              [](SnapshotWriter& ww, const Port& p) { ww.i32(p); });
  }
  w.i32(resamples_used_);
  w.i64(node_space_);
  w.i64(port_space_);
}

Rtz3Scheme::Rtz3Scheme(SnapshotReader& r, const Digraph& g)
    : graph_(g), names_(NameAssignment::load(r)) {
  balls_ = load_ball_system(r);
  addresses_ = r.vec<RtzAddress>(load_rtz_address, 8);
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(g.node_count())) {
    throw std::invalid_argument(
        "rtz3 snapshot: table count does not match the graph");
  }
  tables_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    NodeTables t;
    t.center_up_port = r.vec_i32();
    t.center_tree_tab = r.vec<TreeNodeTable>(load_tree_node_table, 8);
    // Rehydrated tables use the default (SoA) layout; the on-disk encoding
    // is layout-independent, so resaves stay byte-identical.
    t.ball_out_label = load_dict<TreeLabel>(r, load_tree_label, true);
    t.member_out_tab = load_dict<TreeNodeTable>(r, load_tree_node_table, true);
    t.member_up_port = load_dict<Port>(
        r, [](SnapshotReader& rr) -> Port { return rr.i32(); }, true);
    tables_.push_back(std::move(t));
  }
  resamples_used_ = r.i32();
  node_space_ = r.i64();
  port_space_ = r.i64();
}

}  // namespace rtr
