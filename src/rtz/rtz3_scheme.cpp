#include "rtz/rtz3_scheme.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/arena.h"
#include "io/snapshot_format.h"
#include "rtz/centers.h"
#include "util/bit_cost.h"
#include "util/parallel.h"

namespace rtr {

namespace {

std::vector<char> mask_of(NodeId n, std::span<const NodeId> members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId v : members) mask[static_cast<std::size_t>(v)] = 1;
  return mask;
}

/// v1 staging decode for NameDict: the on-disk encoding is the sorted
/// (key, payload) sequence, identical to the PR <= 4 vector-of-pairs bytes.
template <typename V, typename LoadV>
NameDict<V> load_dict(SnapshotReader& r, LoadV load_value) {
  auto entries = r.template vec<std::pair<NodeName, V>>(
      [&load_value](SnapshotReader& rr) {
        const NodeName name = rr.i32();
        return std::make_pair(name, load_value(rr));
      },
      8);
  NameDict<V> d;
  for (auto& [k, v] : entries) d.add(k, std::move(v));
  d.finalize();
  return d;
}

/// A CRC-valid arena can still carry inconsistent offsets; every probe
/// assumes this shape, so check it once at load.
void check_dict_csr(const FlatVec<std::int64_t>& off, std::size_t entries,
                    const char* what) {
  if (off.empty() || off.front() != 0 ||
      off.back() != static_cast<std::int64_t>(entries)) {
    throw SnapshotArenaError(std::string("arena: rtz3 ") + what +
                             " offsets do not frame the entry arrays");
  }
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    if (off[i] > off[i + 1]) {
      throw SnapshotArenaError(std::string("arena: rtz3 ") + what +
                               " offsets decrease at row " + std::to_string(i));
    }
  }
}

}  // namespace

Rtz3Scheme::Rtz3Scheme(const Digraph& g, const RoundtripMetric& metric,
                       const NameAssignment& names, Rng& rng, Options options)
    : graph_(g),
      names_(names),
      node_space_(g.node_count()),
      port_space_(g.port_space()) {
  const NodeId n = g.node_count();
  const int workers = resolve_apsp_threads(options.threads);
  const Digraph reversed = g.reversed();

  const bool phase_debug = std::getenv("RTR_RTZ_PHASE_DEBUG") != nullptr;
  auto t0 = std::chrono::steady_clock::now();
  auto lap = [&](const char* what) {
    if (!phase_debug) return;
    auto t1 = std::chrono::steady_clock::now();
    std::fprintf(stderr, "[rtz3 build] %-18s %8.1f ms\n", what,
                 std::chrono::duration<double, std::milli>(t1 - t0).count());
    t0 = t1;
  };

  // --- center selection with size verification -----------------------------
  const double nn = static_cast<double>(std::max<NodeId>(n, 2));
  const double budget = options.size_slack * std::sqrt(nn * (1.0 + std::log(nn)));
  if (options.greedy_centers) {
    // Greedy hitting set over the first-ceil(sqrt n) neighborhoods: caps
    // every ball at sqrt(n) deterministically.
    const auto hood = static_cast<NodeId>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    std::vector<std::vector<NodeId>> hoods(static_cast<std::size_t>(n));
    parallel_tickets(n, workers, [&] {
      return [&](std::int64_t v) {
        hoods[static_cast<std::size_t>(v)] =
            metric.neighborhood(static_cast<NodeId>(v), hood, names_.names());
      };
    });
    balls_ = build_ball_system(metric, greedy_hitting_set(n, hoods), workers);
  } else {
    const NodeId centers = default_center_count(n);
    for (int attempt = 0; ; ++attempt) {
      balls_ =
          build_ball_system(metric, sample_centers(n, centers, rng), workers);
      resamples_used_ = attempt;
      if (static_cast<double>(balls_.max_ball_size()) <= budget &&
          static_cast<double>(balls_.max_cluster_size()) <= budget) {
        break;
      }
      if (attempt >= options.max_resample) break;  // accept; stats will show it
    }
  }
  lap("ball system");
  center_count_ = static_cast<std::int64_t>(balls_.centers.size());
  const auto cc = static_cast<std::size_t>(center_count_);

  std::vector<Port> ctr_up(static_cast<std::size_t>(n) * cc, kNoPort);
  std::vector<TreeNodeTable> ctr_tab(static_cast<std::size_t>(n) * cc);
  addresses_.resize(static_cast<std::size_t>(n));

  // --- global double trees per center, and addresses R3(v) -----------------
  // Center ci writes only column ci of the row-major n x center_count
  // arrays, so the fan-out is race-free without locks; each worker owns its
  // Dijkstra workspace.  Addresses ride along: node v's address label comes
  // from exactly its nearest center's tree, so ticket ci owns addresses_[v]
  // for its own cluster and the router can die with the ticket instead of
  // all center_count full-graph routers staying resident until a serial
  // address pass (at n = 16384 that retention alone was hundreds of MB).
  parallel_tickets(center_count_, workers, [&] {
    return [&, ws = DijkstraWorkspace{}](std::int64_t ci) mutable {
      const NodeId a = balls_.centers[static_cast<std::size_t>(ci)];
      OutTree out = dijkstra_out_tree(g, a, ws);
      InTree in = dijkstra_in_tree(g, reversed, a, ws);
      TreeRouter router(out);
      for (NodeId v = 0; v < n; ++v) {
        const std::size_t slot =
            static_cast<std::size_t>(v) * cc + static_cast<std::size_t>(ci);
        ctr_up[slot] = in.next_port[static_cast<std::size_t>(v)];
        ctr_tab[slot] = router.table(v);
        if (balls_.nearest_center[static_cast<std::size_t>(v)] ==
            static_cast<std::int32_t>(ci)) {
          addresses_[static_cast<std::size_t>(v)] =
              RtzAddress{names_.name_of(v), static_cast<std::int32_t>(ci),
                         router.label(v)};
        }
      }
    };
  });
  center_up_port_ = std::move(ctr_up);
  center_tree_tab_ = std::move(ctr_tab);
  lap("center trees");

  // --- per-node ball double trees ------------------------------------------
  // A ball tree rooted at v scatters one entry into every member w's
  // dictionaries, so the v loop cannot fan out directly.  Instead, chunks of
  // roots compute their products (labels, tables, up-ports, parallel to the
  // ball row) concurrently; a serial in-v-order scatter then replays exactly
  // the serial build's add() sequence.  Chunking bounds the staging memory
  // to O(chunk * max_ball) instead of O(n * max_ball).
  std::vector<NodeTables> tables(static_cast<std::size_t>(n));
  struct BallProduct {
    std::vector<TreeLabel> labels;        // per member: label in v's out-tree
    std::vector<TreeNodeTable> tabs;      // per member: table in v's out-tree
    std::vector<Port> up_ports;           // per member: up-port in v's in-tree
  };
  const NodeId chunk_size = std::max<NodeId>(64, 16 * workers);
  std::vector<BallProduct> products(static_cast<std::size_t>(
      std::min<NodeId>(n, chunk_size)));
  for (NodeId lo = 0; lo < n; lo += chunk_size) {
    const NodeId hi = std::min<NodeId>(n, lo + chunk_size);
    parallel_tickets(hi - lo, workers, [&] {
      return [&, ws = DijkstraWorkspace{}](std::int64_t ticket) mutable {
        const NodeId v = lo + static_cast<NodeId>(ticket);
        const auto members = balls_.ball(v);
        auto mask = mask_of(n, members);
        OutTree out = dijkstra_out_tree_within(g, v, mask, ws);
        InTree in = dijkstra_in_tree_within(g, reversed, v, mask, ws);
        TreeRouter router(out);
        BallProduct& prod = products[static_cast<std::size_t>(ticket)];
        prod.labels.clear();
        prod.tabs.clear();
        prod.up_ports.clear();
        prod.labels.reserve(members.size());
        prod.tabs.reserve(members.size());
        prod.up_ports.reserve(members.size());
        for (NodeId w : members) {
          prod.labels.push_back(router.label(w));
          prod.tabs.push_back(router.table(w));
          prod.up_ports.push_back(in.next_port[static_cast<std::size_t>(w)]);
        }
      };
    });
    for (NodeId v = lo; v < hi; ++v) {
      const auto members = balls_.ball(v);
      const BallProduct& prod = products[static_cast<std::size_t>(v - lo)];
      const NodeName root_name = names_.name_of(v);
      auto& own = tables[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < members.size(); ++i) {
        const NodeId w = members[i];
        own.ball_out_label.add(names_.name_of(w), prod.labels[i]);
        auto& member = tables[static_cast<std::size_t>(w)];
        member.member_out_tab.add(root_name, prod.tabs[i]);
        member.member_up_port.add(root_name, prod.up_ports[i]);
      }
    }
  }
  parallel_tickets(n, workers, [&] {
    return [&](std::int64_t v) {
      auto& t = tables[static_cast<std::size_t>(v)];
      t.ball_out_label.finalize();
      t.member_out_tab.finalize();
      t.member_up_port.finalize();
    };
  });
  adopt_tables(std::move(tables));
  lap("ball trees");
}

void Rtz3Scheme::adopt_tables(std::vector<NodeTables>&& tables) {
  const std::size_t n = tables.size();
  std::vector<std::int64_t> ball_off(n + 1, 0), mem_off(n + 1, 0);
  std::int64_t ball_total = 0, mem_total = 0, hop_total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const NodeTables& t = tables[v];
    if (t.member_out_tab.size() != t.member_up_port.size()) {
      throw std::invalid_argument(
          "rtz3: member dictionaries of one node disagree in size");
    }
    ball_total += static_cast<std::int64_t>(t.ball_out_label.size());
    mem_total += static_cast<std::int64_t>(t.member_out_tab.size());
    ball_off[v + 1] = ball_total;
    mem_off[v + 1] = mem_total;
    for (std::size_t i = 0; i < t.ball_out_label.size(); ++i) {
      hop_total += static_cast<std::int64_t>(
          t.ball_out_label.value_at(i).light_hops.size());
    }
  }

  std::vector<NodeName> ball_key;
  std::vector<std::int32_t> ball_dfs;
  std::vector<std::int64_t> hop_off;
  std::vector<LightHop> hops;
  ball_key.reserve(static_cast<std::size_t>(ball_total));
  ball_dfs.reserve(static_cast<std::size_t>(ball_total));
  hop_off.reserve(static_cast<std::size_t>(ball_total) + 1);
  hops.reserve(static_cast<std::size_t>(hop_total));
  hop_off.push_back(0);
  std::vector<NodeName> mem_key;
  std::vector<TreeNodeTable> mem_tab;
  std::vector<Port> mem_up;
  mem_key.reserve(static_cast<std::size_t>(mem_total));
  mem_tab.reserve(static_cast<std::size_t>(mem_total));
  mem_up.reserve(static_cast<std::size_t>(mem_total));

  for (std::size_t v = 0; v < n; ++v) {
    const NodeTables& t = tables[v];
    for (std::size_t i = 0; i < t.ball_out_label.size(); ++i) {
      ball_key.push_back(t.ball_out_label.key_at(i));
      const TreeLabel& lab = t.ball_out_label.value_at(i);
      ball_dfs.push_back(lab.dfs_in);
      for (const auto& [dfs, port] : lab.light_hops) {
        hops.push_back(LightHop{dfs, port});
      }
      hop_off.push_back(static_cast<std::int64_t>(hops.size()));
    }
    for (std::size_t i = 0; i < t.member_out_tab.size(); ++i) {
      if (t.member_out_tab.key_at(i) != t.member_up_port.key_at(i)) {
        throw std::invalid_argument(
            "rtz3: member dictionaries of one node disagree in keys");
      }
      mem_key.push_back(t.member_out_tab.key_at(i));
      mem_tab.push_back(t.member_out_tab.value_at(i));
      mem_up.push_back(t.member_up_port.value_at(i));
    }
  }

  ball_off_ = std::move(ball_off);
  ball_key_ = std::move(ball_key);
  ball_dfs_ = std::move(ball_dfs);
  ball_hop_off_ = std::move(hop_off);
  ball_hops_ = std::move(hops);
  member_off_ = std::move(mem_off);
  member_key_ = std::move(mem_key);
  member_tab_ = std::move(mem_tab);
  member_up_ = std::move(mem_up);
  arena_.reset();
}

TreeLabel Rtz3Scheme::label_at(std::size_t entry) const {
  TreeLabel label;
  label.dfs_in = ball_dfs_[entry];
  const auto lo = static_cast<std::size_t>(ball_hop_off_[entry]);
  const auto hi = static_cast<std::size_t>(ball_hop_off_[entry + 1]);
  for (std::size_t i = lo; i < hi; ++i) {
    label.light_hops.emplace_back(ball_hops_[i].dfs, ball_hops_[i].port);
  }
  return label;
}

LegStep Rtz3Scheme::start_leg(NodeId at, const RtzAddress& target,
                              LegHeader& leg) const {
  leg = LegHeader{};
  leg.target = target;
  if (names_.name_of(at) == target.name) return LegStep{true, kNoPort};
  if (auto label = find_ball_label(at, target.name)) {
    leg.phase = LegPhase::kBallDown;
    leg.ball_root = names_.name_of(at);
    leg.ball_label = std::move(*label);
  } else if (find_member_up_port(at, target.name) != nullptr) {
    leg.phase = LegPhase::kBallUp;
  } else {
    leg.phase = LegPhase::kCenterUp;
  }
  return step_leg(at, leg);
}

LegStep Rtz3Scheme::step_leg(NodeId at, LegHeader& leg) const {
  const auto vz = static_cast<std::size_t>(at);
  const auto cc = static_cast<std::size_t>(center_count_);
  const NodeName at_name = names_.name_of(at);
  switch (leg.phase) {
    case LegPhase::kBallDown: {
      const TreeNodeTable* tab = find_member_table(at, leg.ball_root);
      if (tab == nullptr) {
        throw std::logic_error("rtz3: ball-down step left the ball");
      }
      Port p = tree_next_port(*tab, leg.ball_label);
      if (p == kNoPort) return LegStep{true, kNoPort};
      return LegStep{false, p};
    }
    case LegPhase::kBallUp: {
      if (at_name == leg.target.name) return LegStep{true, kNoPort};
      const Port* up = find_member_up_port(at, leg.target.name);
      if (up == nullptr) {
        throw std::logic_error("rtz3: ball-up step left the ball");
      }
      return LegStep{false, *up};
    }
    case LegPhase::kCenterUp: {
      const auto ci = static_cast<std::size_t>(leg.target.center_index);
      if (balls_.centers[ci] == at) {
        leg.phase = LegPhase::kCenterDown;
        return step_leg(at, leg);
      }
      return LegStep{false, center_up_port_[vz * cc + ci]};
    }
    case LegPhase::kCenterDown: {
      const auto ci = static_cast<std::size_t>(leg.target.center_index);
      Port p = tree_next_port(center_tree_tab_[vz * cc + ci],
                              leg.target.center_label);
      if (p == kNoPort) return LegStep{true, kNoPort};
      return LegStep{false, p};
    }
  }
  throw std::logic_error("rtz3: bad leg phase");
}

std::int64_t Rtz3Scheme::address_bits(const RtzAddress& a) const {
  return bits_for(node_space_) +
         bits_for(static_cast<std::int64_t>(balls_.centers.size())) +
         tree_label_bits(a.center_label, node_space_, port_space_);
}

std::int64_t Rtz3Scheme::leg_header_bits(const LegHeader& leg) const {
  return 2 /* phase */ + address_bits(leg.target) + bits_for(node_space_) +
         tree_label_bits(leg.ball_label, node_space_, port_space_);
}

Rtz3Scheme::Header Rtz3Scheme::make_packet(NodeName dest) const {
  Header h;
  h.mode = Mode::kNew;
  h.dest = dest;
  // Name-dependent model: the sender is handed the destination's address
  // along with the packet (Section 1: "the packet destined for i arrives
  // also with a short address in its header").
  h.dest_addr = address_of_name(dest);
  return h;
}

Decision Rtz3Scheme::forward(NodeId at, Header& h) const {
  switch (h.mode) {
    case Mode::kNew: {
      h.src = names_.name_of(at);
      h.src_addr = own_address(at);
      h.mode = Mode::kOutbound;
      LegStep s = start_leg(at, h.dest_addr, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_on(s.port);
    }
    case Mode::kOutbound: {
      // step_leg only flips the leg phase (kCenterUp -> kCenterDown); the
      // target address and ball label -- everything leg_header_bits sums --
      // are untouched, so the encoded size cannot change mid-leg.
      LegStep s = step_leg(at, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_same_size(s.port);
    }
    case Mode::kReturn: {
      h.mode = Mode::kInbound;
      LegStep s = start_leg(at, h.src_addr, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_on(s.port);
    }
    case Mode::kInbound: {
      LegStep s = step_leg(at, h.leg);
      if (s.arrived) return Decision::deliver_here();
      return Decision::forward_same_size(s.port);
    }
  }
  throw std::logic_error("rtz3: bad mode");
}

std::int64_t Rtz3Scheme::header_bits(const Header& h) const {
  return 2 /* mode */ + 2 * bits_for(node_space_) + address_bits(h.dest_addr) +
         address_bits(h.src_addr) + leg_header_bits(h.leg);
}

TableStats Rtz3Scheme::table_stats() const {
  const auto n = static_cast<NodeId>(addresses_.size());
  TableStats stats(n);
  const std::int64_t id_bits = bits_for(node_space_);
  const std::int64_t port_bits = bits_for(port_space_);
  for (NodeId v = 0; v < n; ++v) {
    const auto vz = static_cast<std::size_t>(v);
    std::int64_t entries = 0, bits = 0;
    entries += center_count_;
    bits += center_count_ * port_bits;
    entries += center_count_;
    bits += center_count_ * (id_bits + port_bits);
    for (auto e = static_cast<std::size_t>(ball_off_[vz]);
         e < static_cast<std::size_t>(ball_off_[vz + 1]); ++e) {
      ++entries;
      bits += id_bits + tree_label_bits(label_at(e), node_space_, port_space_);
    }
    const std::int64_t members = member_off_[vz + 1] - member_off_[vz];
    entries += members;  // member_out_tab
    bits += members * (id_bits + id_bits + port_bits);
    entries += members;  // member_up_port
    bits += members * (id_bits + port_bits);
    // Own address.
    ++entries;
    bits += address_bits(addresses_[vz]);
    stats.add(v, entries, bits);
  }
  return stats;
}

void Rtz3Scheme::audit(AuditReport& report) const {
  auto scope = report.scope("rtz3");
  balls_.audit(report);

  const auto n = static_cast<std::size_t>(graph_.node_count());
  report.check("tables-sized",
               addresses_.size() == n && ball_off_.size() == n + 1 &&
                   member_off_.size() == n + 1 &&
                   ball_dfs_.size() == ball_key_.size() &&
                   ball_hop_off_.size() == ball_key_.size() + 1 &&
                   member_tab_.size() == member_key_.size() &&
                   member_up_.size() == member_key_.size() &&
                   names_.node_count() == graph_.node_count(),
               "one address and one table row per node, parallel payload "
               "arrays sized to their key arrays");
  if (addresses_.size() != n || ball_off_.size() != n + 1 ||
      member_off_.size() != n + 1 ||
      ball_dfs_.size() != ball_key_.size() ||
      ball_hop_off_.size() != ball_key_.size() + 1 ||
      member_tab_.size() != member_key_.size() ||
      member_up_.size() != member_key_.size() ||
      static_cast<std::size_t>(balls_.node_count()) != n ||
      balls_.nearest_center.size() != n) {
    return;  // per-node walks below depend on the sizing above
  }

  // CSR shape of the dictionary offsets: the row walks below assume it.
  const auto csr_ok = [](const FlatVec<std::int64_t>& off,
                         std::size_t entries) {
    if (off.front() != 0 || off.back() != static_cast<std::int64_t>(entries)) {
      return false;
    }
    for (std::size_t i = 0; i + 1 < off.size(); ++i) {
      if (off[i] > off[i + 1]) return false;
    }
    return true;
  };
  const bool offsets_ok = csr_ok(ball_off_, ball_key_.size()) &&
                          csr_ok(member_off_, member_key_.size()) &&
                          csr_ok(ball_hop_off_, ball_hops_.size());
  report.check("dict-offsets-wellformed", offsets_ok,
               "dictionary CSR offsets must rise monotonically from 0 to "
               "their entry array sizes");
  if (!offsets_ok) return;

  // Addresses: R3(v) must carry v's own name and its nearest center.
  bool addr_ok = true;
  std::string addr_detail;
  for (std::size_t v = 0; addr_ok && v < n; ++v) {
    const RtzAddress& a = addresses_[v];
    if (a.name != names_.name_of(static_cast<NodeId>(v))) {
      addr_ok = false;
      addr_detail = "address of node " + std::to_string(v) +
                    " carries the wrong name";
    } else if (a.center_index < 0 ||
               static_cast<std::size_t>(a.center_index) >=
                   balls_.centers.size() ||
               a.center_index != balls_.nearest_center[v]) {
      addr_ok = false;
      addr_detail = "address of node " + std::to_string(v) +
                    " does not point at its nearest center";
    }
  }
  report.check("addresses-consistent", addr_ok, std::move(addr_detail));

  // Center arrays: one row-major n x center_count block each.
  const auto expected =
      n * static_cast<std::size_t>(balls_.centers.size());
  report.check("center-arrays-sized",
               static_cast<std::size_t>(center_count_) ==
                       balls_.centers.size() &&
                   center_up_port_.size() == expected &&
                   center_tree_tab_.size() == expected,
               "center arrays must be row-major n x center_count");

  // Dictionary rows: sorted unique keys; populations matching the ball and
  // cluster rows they were built from.  One aggregated entry per invariant
  // (n nodes x 2 key arrays would drown the report).
  bool dicts_sorted = true;
  bool dicts_populated = true;
  std::string sorted_detail, populated_detail;
  const auto row_sorted = [](const FlatVec<NodeName>& keys, std::int64_t lo,
                             std::int64_t hi) {
    for (std::int64_t i = lo + 1; i < hi; ++i) {
      if (keys[static_cast<std::size_t>(i - 1)] >=
          keys[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<NodeId>(v);
    if (dicts_sorted &&
        !(row_sorted(ball_key_, ball_off_[v], ball_off_[v + 1]) &&
          row_sorted(member_key_, member_off_[v], member_off_[v + 1]))) {
      dicts_sorted = false;
      sorted_detail = "a dictionary row of node " + std::to_string(v) +
                      " has unsorted or duplicate keys";
    }
    if (dicts_populated &&
        (ball_off_[v + 1] - ball_off_[v] !=
             static_cast<std::int64_t>(balls_.ball(vid).size()) ||
         member_off_[v + 1] - member_off_[v] !=
             static_cast<std::int64_t>(balls_.cluster(vid).size()))) {
      dicts_populated = false;
      populated_detail = "dictionary population of node " + std::to_string(v) +
                         " does not match its ball/cluster sizes";
    }
  }
  report.check("dicts-sorted-unique", dicts_sorted, std::move(sorted_detail));
  report.check("dicts-match-balls", dicts_populated,
               std::move(populated_detail));
}

// ---------------------------------------------------------------- snapshot --

void save_rtz_address(SnapshotWriter& w, const RtzAddress& a) {
  w.i32(a.name);
  w.i32(a.center_index);
  save_tree_label(w, a.center_label);
}

RtzAddress load_rtz_address(SnapshotReader& r) {
  RtzAddress a;
  a.name = r.i32();
  a.center_index = r.i32();
  a.center_label = load_tree_label(r);
  return a;
}

namespace {

/// v1 stream encoding of the ball system: replayed from the CSR arrays with
/// per-row temporaries so the bytes stay identical to the historical
/// vector-of-rows encoding (cold path -- only v1 saves pay the copies).
void save_ball_system(SnapshotWriter& w, const BallSystem& b) {
  w.vec_i32(b.centers.to_vector());
  w.vec_i32(b.center_index_of.to_vector());
  w.vec_i64(b.r_to_centers.to_vector());
  w.vec_i32(b.nearest_center.to_vector());
  const auto n = static_cast<std::size_t>(b.node_count());
  const auto save_rows = [&w, n](const auto& row_of) {
    w.u64(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto row = row_of(static_cast<NodeId>(v));
      w.vec_i32(std::vector<NodeId>(row.begin(), row.end()));
    }
  };
  save_rows([&b](NodeId v) { return b.ball(v); });
  save_rows([&b](NodeId v) { return b.cluster(v); });
}

BallSystem load_ball_system(SnapshotReader& r) {
  BallSystem b;
  b.centers = r.vec_i32();
  b.center_index_of = r.vec_i32();
  b.r_to_centers = r.vec_i64();
  b.nearest_center = r.vec_i32();
  auto nested = [](SnapshotReader& rr) { return rr.vec_i32(); };
  const auto ball_rows = r.vec<std::vector<NodeId>>(nested, 8);
  const auto cluster_rows = r.vec<std::vector<NodeId>>(nested, 8);
  if (cluster_rows.size() != ball_rows.size()) {
    throw std::invalid_argument(
        "rtz3 snapshot: ball and cluster row counts disagree");
  }
  b.adopt_rows(ball_rows, cluster_rows);
  return b;
}

}  // namespace

void Rtz3Scheme::save(SnapshotWriter& w) const {
  names_.save(w);
  save_ball_system(w, balls_);
  w.vec(addresses_, save_rtz_address);
  const std::size_t n = addresses_.size();
  const auto cc = static_cast<std::size_t>(center_count_);
  w.u64(n);
  for (std::size_t v = 0; v < n; ++v) {
    // Per-node rows replayed from the flat arrays, byte-identical to the
    // historical per-node vector/dict encodings.
    w.u64(cc);
    for (std::size_t ci = 0; ci < cc; ++ci) w.i32(center_up_port_[v * cc + ci]);
    w.u64(cc);
    for (std::size_t ci = 0; ci < cc; ++ci) {
      save_tree_node_table(w, center_tree_tab_[v * cc + ci]);
    }
    const auto blo = static_cast<std::size_t>(ball_off_[v]);
    const auto bhi = static_cast<std::size_t>(ball_off_[v + 1]);
    w.u64(bhi - blo);
    for (std::size_t e = blo; e < bhi; ++e) {
      w.i32(ball_key_[e]);
      save_tree_label(w, label_at(e));
    }
    const auto mlo = static_cast<std::size_t>(member_off_[v]);
    const auto mhi = static_cast<std::size_t>(member_off_[v + 1]);
    w.u64(mhi - mlo);
    for (std::size_t e = mlo; e < mhi; ++e) {
      w.i32(member_key_[e]);
      save_tree_node_table(w, member_tab_[e]);
    }
    w.u64(mhi - mlo);
    for (std::size_t e = mlo; e < mhi; ++e) {
      w.i32(member_key_[e]);
      w.i32(member_up_[e]);
    }
  }
  w.i32(resamples_used_);
  w.i64(node_space_);
  w.i64(port_space_);
}

Rtz3Scheme::Rtz3Scheme(SnapshotReader& r, const Digraph& g)
    : graph_(g), names_(NameAssignment::load(r)) {
  balls_ = load_ball_system(r);
  addresses_ = r.vec<RtzAddress>(load_rtz_address, 8);
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(g.node_count())) {
    throw std::invalid_argument(
        "rtz3 snapshot: table count does not match the graph");
  }
  center_count_ = static_cast<std::int64_t>(balls_.centers.size());
  const auto cc = static_cast<std::size_t>(center_count_);
  std::vector<Port> ctr_up;
  std::vector<TreeNodeTable> ctr_tab;
  ctr_up.reserve(static_cast<std::size_t>(n) * cc);
  ctr_tab.reserve(static_cast<std::size_t>(n) * cc);
  std::vector<NodeTables> tables;
  tables.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto up_row = r.vec_i32();
    const auto tab_row = r.vec<TreeNodeTable>(load_tree_node_table, 8);
    if (up_row.size() != cc || tab_row.size() != cc) {
      throw std::invalid_argument(
          "rtz3 snapshot: center arrays not sized to the center set");
    }
    ctr_up.insert(ctr_up.end(), up_row.begin(), up_row.end());
    ctr_tab.insert(ctr_tab.end(), tab_row.begin(), tab_row.end());
    NodeTables t;
    t.ball_out_label = load_dict<TreeLabel>(r, load_tree_label);
    t.member_out_tab = load_dict<TreeNodeTable>(r, load_tree_node_table);
    t.member_up_port = load_dict<Port>(
        r, [](SnapshotReader& rr) -> Port { return rr.i32(); });
    tables.push_back(std::move(t));
  }
  center_up_port_ = std::move(ctr_up);
  center_tree_tab_ = std::move(ctr_tab);
  adopt_tables(std::move(tables));
  resamples_used_ = r.i32();
  node_space_ = r.i64();
  port_space_ = r.i64();
}

// ------------------------------------------------------------------- arena --

void Rtz3Scheme::save_arena(ArenaWriter& w, const std::string& prefix) const {
  balls_.save_arena(w, prefix + "balls/");
  w.add(prefix + "ctr_up", center_up_port_);
  w.add(prefix + "ctr_tab", center_tree_tab_);
  w.add(prefix + "ball_off", ball_off_);
  w.add(prefix + "ball_key", ball_key_);
  w.add(prefix + "ball_dfs", ball_dfs_);
  w.add(prefix + "ball_hop_off", ball_hop_off_);
  w.add(prefix + "ball_hops", ball_hops_);
  w.add(prefix + "mem_off", member_off_);
  w.add(prefix + "mem_key", member_key_);
  w.add(prefix + "mem_tab", member_tab_);
  w.add(prefix + "mem_up", member_up_);

  // Addresses, CSR-packed like the ball labels (the name field is implied:
  // entry v carries names.name_of(v)).
  const std::size_t n = addresses_.size();
  std::vector<std::int32_t> actr(n), adfs(n);
  std::vector<std::int64_t> ahop_off;
  std::vector<LightHop> ahops;
  ahop_off.reserve(n + 1);
  ahop_off.push_back(0);
  for (std::size_t v = 0; v < n; ++v) {
    const RtzAddress& a = addresses_[v];
    actr[v] = a.center_index;
    adfs[v] = a.center_label.dfs_in;
    for (const auto& [dfs, port] : a.center_label.light_hops) {
      ahops.push_back(LightHop{dfs, port});
    }
    ahop_off.push_back(static_cast<std::int64_t>(ahops.size()));
  }
  w.add(prefix + "addr_center", actr);
  w.add(prefix + "addr_dfs", adfs);
  w.add(prefix + "addr_hop_off", ahop_off);
  w.add(prefix + "addr_hops", ahops);

  SnapshotWriter meta;
  meta.i32(resamples_used_);
  meta.i64(node_space_);
  meta.i64(port_space_);
  const auto& meta_bytes = meta.bytes();
  w.add_bytes(prefix + "meta", meta_bytes.data(), meta_bytes.size());
}

Rtz3Scheme Rtz3Scheme::from_arena(const ArenaView& a, const std::string& prefix,
                                  const Digraph& g,
                                  const NameAssignment& names) {
  Rtz3Scheme s(g, names);
  s.balls_ = BallSystem::from_arena(a, prefix + "balls/");
  const auto n = static_cast<std::uint64_t>(g.node_count());
  if (static_cast<std::uint64_t>(s.balls_.node_count()) != n) {
    throw SnapshotArenaError(
        "arena: rtz3 ball system does not match the graph");
  }
  s.center_count_ = static_cast<std::int64_t>(s.balls_.centers.size());
  const std::uint64_t cells = n * static_cast<std::uint64_t>(s.center_count_);
  s.center_up_port_ = a.vec<Port>(prefix + "ctr_up", cells);
  s.center_tree_tab_ = a.vec<TreeNodeTable>(prefix + "ctr_tab", cells);
  s.ball_off_ = a.vec<std::int64_t>(prefix + "ball_off", n + 1);
  s.ball_key_ = a.vec<NodeName>(prefix + "ball_key");
  s.ball_dfs_ =
      a.vec<std::int32_t>(prefix + "ball_dfs", s.ball_key_.size());
  s.ball_hop_off_ =
      a.vec<std::int64_t>(prefix + "ball_hop_off", s.ball_key_.size() + 1);
  s.ball_hops_ = a.vec<LightHop>(prefix + "ball_hops");
  s.member_off_ = a.vec<std::int64_t>(prefix + "mem_off", n + 1);
  s.member_key_ = a.vec<NodeName>(prefix + "mem_key");
  s.member_tab_ =
      a.vec<TreeNodeTable>(prefix + "mem_tab", s.member_key_.size());
  s.member_up_ = a.vec<Port>(prefix + "mem_up", s.member_key_.size());
  check_dict_csr(s.ball_off_, s.ball_key_.size(), "ball dictionary");
  check_dict_csr(s.member_off_, s.member_key_.size(), "member dictionary");
  check_dict_csr(s.ball_hop_off_, s.ball_hops_.size(), "label hop");

  // Rebuild the O(n) address list (small: one label per node, hops inline
  // for the dominant <= 8 case).
  const auto actr = a.vec<std::int32_t>(prefix + "addr_center", n);
  const auto adfs = a.vec<std::int32_t>(prefix + "addr_dfs", n);
  const auto ahop_off = a.vec<std::int64_t>(prefix + "addr_hop_off", n + 1);
  const auto ahops = a.vec<LightHop>(prefix + "addr_hops");
  check_dict_csr(ahop_off, ahops.size(), "address hop");
  s.addresses_.resize(static_cast<std::size_t>(n));
  for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
    RtzAddress& addr = s.addresses_[v];
    addr.name = names.name_of(static_cast<NodeId>(v));
    addr.center_index = actr[v];
    addr.center_label.dfs_in = adfs[v];
    for (auto i = static_cast<std::size_t>(ahop_off[v]);
         i < static_cast<std::size_t>(ahop_off[v + 1]); ++i) {
      addr.center_label.light_hops.emplace_back(ahops[i].dfs, ahops[i].port);
    }
  }

  SnapshotReader meta = a.reader(prefix + "meta");
  s.resamples_used_ = meta.i32();
  s.node_space_ = meta.i64();
  s.port_space_ = meta.i64();
  meta.expect_exhausted("rtz3 arena meta");

  s.arena_ = a.storage();
  return s;
}

}  // namespace rtr
