// Center (landmark) selection for the Lemma 2 substrate.
//
// The Roditty-Thorup-Zwick scheme samples a center set A and defines per-node
// balls truncated at the nearest center.  We provide the randomized sampler
// (with the size the analysis wants, ~ sqrt(n ln n)) plus a deterministic
// greedy hitting-set construction used as a fallback and as a test oracle:
// greedily pick the node that hits the most as-yet-unhit neighborhood balls
// (the classic O(log n)-approximation, giving |A| = O(sqrt(n) log n)).
#ifndef RTR_RTZ_CENTERS_H
#define RTR_RTZ_CENTERS_H

#include <vector>

#include "rt/metric.h"
#include "util/rng.h"

namespace rtr {

/// Uniform random sample of `size` distinct nodes.
[[nodiscard]] std::vector<NodeId> sample_centers(NodeId n, NodeId size, Rng& rng);

/// Greedy hitting set for the collection of balls (each ball a sorted node
/// list): returns centers such that every ball contains at least one center.
[[nodiscard]] std::vector<NodeId> greedy_hitting_set(
    NodeId n, const std::vector<std::vector<NodeId>>& balls);

/// ceil(sqrt(n * (1 + ln n))), the standard sample size.
[[nodiscard]] NodeId default_center_count(NodeId n);

}  // namespace rtr

#endif  // RTR_RTZ_CENTERS_H
