#include "rtz/balls.h"

#include <algorithm>
#include <stdexcept>

namespace rtr {

std::int64_t BallSystem::max_ball_size() const {
  std::int64_t mx = 0;
  for (const auto& b : ball_of) mx = std::max(mx, static_cast<std::int64_t>(b.size()));
  return mx;
}

std::int64_t BallSystem::max_cluster_size() const {
  std::int64_t mx = 0;
  for (const auto& c : cluster_of) mx = std::max(mx, static_cast<std::int64_t>(c.size()));
  return mx;
}

BallSystem build_ball_system(const RoundtripMetric& metric,
                             std::vector<NodeId> centers) {
  if (centers.empty()) throw std::invalid_argument("build_ball_system: no centers");
  const NodeId n = metric.node_count();
  BallSystem sys;
  sys.centers = std::move(centers);
  sys.center_index_of.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < sys.centers.size(); ++i) {
    sys.center_index_of[static_cast<std::size_t>(sys.centers[i])] =
        static_cast<std::int32_t>(i);
  }

  sys.r_to_centers.assign(static_cast<std::size_t>(n), kInfDist);
  sys.nearest_center.assign(static_cast<std::size_t>(n), -1);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < sys.centers.size(); ++i) {
      Dist rv = metric.r(v, sys.centers[i]);
      if (rv < sys.r_to_centers[static_cast<std::size_t>(v)]) {
        sys.r_to_centers[static_cast<std::size_t>(v)] = rv;
        sys.nearest_center[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
      }
    }
  }

  sys.ball_of.assign(static_cast<std::size_t>(n), {});
  sys.cluster_of.assign(static_cast<std::size_t>(n), {});
  for (NodeId v = 0; v < n; ++v) {
    auto& ball = sys.ball_of[static_cast<std::size_t>(v)];
    for (NodeId w = 0; w < n; ++w) {
      if (w == v || metric.r(v, w) < sys.r_to_centers[static_cast<std::size_t>(v)]) {
        ball.push_back(w);
      }
    }
    for (NodeId w : ball) {
      sys.cluster_of[static_cast<std::size_t>(w)].push_back(v);
    }
  }
  // ball_of rows are ascending by construction; cluster rows too (v loop).
  return sys;
}

}  // namespace rtr
