#include "rtz/balls.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "util/parallel.h"

namespace rtr {

std::int64_t BallSystem::max_ball_size() const {
  std::int64_t mx = 0;
  for (const auto& b : ball_of) mx = std::max(mx, static_cast<std::int64_t>(b.size()));
  return mx;
}

std::int64_t BallSystem::max_cluster_size() const {
  std::int64_t mx = 0;
  for (const auto& c : cluster_of) mx = std::max(mx, static_cast<std::int64_t>(c.size()));
  return mx;
}

void BallSystem::audit(AuditReport& report) const {
  auto scope = report.scope("balls");
  const auto n = ball_of.size();

  report.check("arrays-sized",
               center_index_of.size() == n && r_to_centers.size() == n &&
                   nearest_center.size() == n && cluster_of.size() == n,
               "per-node arrays must all have one row per node");
  if (center_index_of.size() != n || r_to_centers.size() != n ||
      nearest_center.size() != n || cluster_of.size() != n) {
    return;  // the walks below index these arrays per node
  }

  // Center set: sorted + unique, in range, and center_index_of is its exact
  // inverse (every non-center maps to -1).
  bool centers_ok = !centers.empty();
  std::string center_detail = centers.empty() ? "empty center set" : "";
  for (std::size_t i = 0; centers_ok && i < centers.size(); ++i) {
    const NodeId c = centers[i];
    if (c < 0 || static_cast<std::size_t>(c) >= n ||
        (i > 0 && centers[i - 1] >= c)) {
      centers_ok = false;
      center_detail = "centers not sorted/unique/in-range at index " +
                      std::to_string(i);
    } else if (center_index_of[static_cast<std::size_t>(c)] !=
               static_cast<std::int32_t>(i)) {
      centers_ok = false;
      center_detail = "center_index_of inconsistent for center " +
                      std::to_string(c);
    }
  }
  if (centers_ok) {
    std::size_t marked = 0;
    for (const std::int32_t idx : center_index_of) {
      if (idx >= 0) ++marked;
    }
    if (marked != centers.size()) {
      centers_ok = false;
      center_detail = "center_index_of marks " + std::to_string(marked) +
                      " nodes, center set has " + std::to_string(centers.size());
    }
  }
  report.check("center-index-inverse", centers_ok, std::move(center_detail));

  bool nearest_ok = true;
  std::string nearest_detail;
  for (std::size_t v = 0; nearest_ok && v < n; ++v) {
    const std::int32_t idx = nearest_center[v];
    if (idx < 0 || static_cast<std::size_t>(idx) >= centers.size() ||
        r_to_centers[v] >= kInfDist) {
      nearest_ok = false;
      nearest_detail = "node " + std::to_string(v) +
                       " lacks a finite nearest center";
    }
  }
  report.check("nearest-center-valid", nearest_ok, std::move(nearest_detail));

  // Ball rows: sorted + unique + in range, v a member of its own ball, each
  // center's ball the singleton {c} (r(c, A) = 0), and ball/cluster duality.
  bool rows_ok = true;
  bool dual_ok = true;
  std::string rows_detail, dual_detail;
  const auto row_sorted = [](const std::vector<NodeId>& row, std::size_t nn) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] < 0 || static_cast<std::size_t>(row[i]) >= nn ||
          (i > 0 && row[i - 1] >= row[i])) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t v = 0; rows_ok && v < n; ++v) {
    const auto& ball = ball_of[v];
    const auto vid = static_cast<NodeId>(v);
    if (!row_sorted(ball, n) || !row_sorted(cluster_of[v], n)) {
      rows_ok = false;
      rows_detail = "ball/cluster row of node " + std::to_string(v) +
                    " not sorted/unique/in-range";
    } else if (!std::binary_search(ball.begin(), ball.end(), vid)) {
      rows_ok = false;
      rows_detail = "node " + std::to_string(v) + " missing from its own ball";
    } else if (center_index_of[v] >= 0 && ball.size() != 1) {
      rows_ok = false;
      rows_detail = "center " + std::to_string(v) +
                    " has a non-singleton ball (r(c, A) must be 0)";
    }
    for (std::size_t i = 0; dual_ok && i < ball.size(); ++i) {
      const auto& cluster = cluster_of[static_cast<std::size_t>(ball[i])];
      if (!std::binary_search(cluster.begin(), cluster.end(), vid)) {
        dual_ok = false;
        dual_detail = std::to_string(ball[i]) + " in Ball(" +
                      std::to_string(v) + ") but " + std::to_string(v) +
                      " not in Cluster(" + std::to_string(ball[i]) + ")";
      }
    }
  }
  report.check("ball-rows-wellformed", rows_ok, std::move(rows_detail));
  report.check("ball-cluster-duality", dual_ok, std::move(dual_detail));

  // Lemma 2's O~(sqrt n): the builder resamples centers until its own slack
  // holds, so a fresh system passes and an oversize row means corruption or
  // a stale artifact.
  const double budget =
      report.budgets().ball_slack *
      std::sqrt(static_cast<double>(n) *
                std::log(std::max<double>(2.0, static_cast<double>(n))));
  report.measure("ball-size", static_cast<double>(max_ball_size()), budget,
                 "largest ball vs ball_slack * sqrt(n ln n)");
  report.measure("cluster-size", static_cast<double>(max_cluster_size()),
                 budget, "largest cluster vs ball_slack * sqrt(n ln n)");
}

BallSystem build_ball_system(const RoundtripMetric& metric,
                             std::vector<NodeId> centers, int threads) {
  if (centers.empty()) throw std::invalid_argument("build_ball_system: no centers");
  const NodeId n = metric.node_count();
  BallSystem sys;
  sys.centers = std::move(centers);
  sys.center_index_of.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < sys.centers.size(); ++i) {
    sys.center_index_of[static_cast<std::size_t>(sys.centers[i])] =
        static_cast<std::int32_t>(i);
  }

  // One batch query answers every node's nearest center: the sparse metric
  // serves it with |A| global sweeps, which keeps its per-node rows at ball
  // size instead of forcing them to cover out to the centers.
  metric.nearest_all(sys.centers, threads, sys.nearest_center,
                     sys.r_to_centers);
  sys.ball_of.assign(static_cast<std::size_t>(n), {});
  const int workers = resolve_apsp_threads(threads);
  parallel_tickets(n, workers, [&] {
    return [&](std::int64_t ticket) {
      const auto v = static_cast<NodeId>(ticket);
      const auto vz = static_cast<std::size_t>(v);
      const Dist rv = sys.r_to_centers[vz];
      // Ball(v) = { w : r(v,w) < r(v,A) } union {v}: strict inequality, so
      // ask the metric for the closed ball of radius r(v,A) - 1 (weights are
      // integral).  A center has rv = 0 and the singleton ball {v}.
      auto& ball = sys.ball_of[vz];
      if (rv <= 0) {
        ball.push_back(v);
      } else {
        ball = metric.ball(v, rv - 1);
        if (!std::binary_search(ball.begin(), ball.end(), v)) {
          ball.insert(std::upper_bound(ball.begin(), ball.end(), v), v);
        }
      }
    };
  });

  sys.cluster_of.assign(static_cast<std::size_t>(n), {});
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : sys.ball_of[static_cast<std::size_t>(v)]) {
      sys.cluster_of[static_cast<std::size_t>(w)].push_back(v);
    }
  }
  // ball_of rows are ascending (metric.ball contract); cluster rows too
  // (the serial v loop appends in ascending v order).
  return sys;
}

}  // namespace rtr
