#include "rtz/balls.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/arena.h"
#include "util/parallel.h"

namespace rtr {

namespace {

std::int64_t max_row_size(const FlatVec<std::int64_t>& off) {
  std::int64_t mx = 0;
  for (std::size_t v = 0; v + 1 < off.size(); ++v) {
    mx = std::max(mx, off[v + 1] - off[v]);
  }
  return mx;
}

void flatten_rows(const std::vector<std::vector<NodeId>>& rows,
                  std::vector<std::int64_t>& off, std::vector<NodeId>& members) {
  off.assign(rows.size() + 1, 0);
  std::int64_t total = 0;
  for (std::size_t v = 0; v < rows.size(); ++v) {
    total += static_cast<std::int64_t>(rows[v].size());
    off[v + 1] = total;
  }
  members.clear();
  members.reserve(static_cast<std::size_t>(total));
  for (const auto& row : rows) {
    members.insert(members.end(), row.begin(), row.end());
  }
}

/// A CRC-valid arena can still carry inconsistent offsets; every indexed
/// access below assumes this shape, so check it once up front.
void check_csr(const FlatVec<std::int64_t>& off, std::size_t member_count,
               const char* what) {
  if (off.empty() || off.front() != 0 ||
      off.back() != static_cast<std::int64_t>(member_count)) {
    throw SnapshotArenaError(std::string("arena: ") + what +
                             " CSR offsets do not frame the members array");
  }
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    if (off[i] > off[i + 1]) {
      throw SnapshotArenaError(std::string("arena: ") + what +
                               " CSR offsets decrease at row " +
                               std::to_string(i));
    }
  }
}

}  // namespace

std::int64_t BallSystem::max_ball_size() const { return max_row_size(ball_off); }

std::int64_t BallSystem::max_cluster_size() const {
  return max_row_size(cluster_off);
}

void BallSystem::adopt_rows(const std::vector<std::vector<NodeId>>& ball_rows,
                            const std::vector<std::vector<NodeId>>& cluster_rows) {
  std::vector<std::int64_t> off;
  std::vector<NodeId> members;
  flatten_rows(ball_rows, off, members);
  ball_off = std::move(off);
  ball_members = std::move(members);
  flatten_rows(cluster_rows, off, members);
  cluster_off = std::move(off);
  cluster_members = std::move(members);
}

void BallSystem::save_arena(ArenaWriter& w, const std::string& prefix) const {
  w.add(prefix + "centers", centers);
  w.add(prefix + "center_index", center_index_of);
  w.add(prefix + "r_to_centers", r_to_centers);
  w.add(prefix + "nearest", nearest_center);
  w.add(prefix + "ball_off", ball_off);
  w.add(prefix + "ball_members", ball_members);
  w.add(prefix + "cluster_off", cluster_off);
  w.add(prefix + "cluster_members", cluster_members);
}

BallSystem BallSystem::from_arena(const ArenaView& a,
                                  const std::string& prefix) {
  const auto n = static_cast<std::uint64_t>(a.header().node_count);
  BallSystem b;
  b.centers = a.vec<NodeId>(prefix + "centers");
  b.center_index_of = a.vec<std::int32_t>(prefix + "center_index", n);
  b.r_to_centers = a.vec<Dist>(prefix + "r_to_centers", n);
  b.nearest_center = a.vec<std::int32_t>(prefix + "nearest", n);
  b.ball_off = a.vec<std::int64_t>(prefix + "ball_off", n + 1);
  b.ball_members = a.vec<NodeId>(prefix + "ball_members");
  b.cluster_off = a.vec<std::int64_t>(prefix + "cluster_off", n + 1);
  b.cluster_members = a.vec<NodeId>(prefix + "cluster_members");
  check_csr(b.ball_off, b.ball_members.size(), "ball");
  check_csr(b.cluster_off, b.cluster_members.size(), "cluster");
  b.arena = a.storage();
  return b;
}

void BallSystem::audit(AuditReport& report) const {
  auto scope = report.scope("balls");
  const auto n = static_cast<std::size_t>(node_count());

  report.check("arrays-sized",
               center_index_of.size() == n && r_to_centers.size() == n &&
                   nearest_center.size() == n && ball_off.size() == n + 1 &&
                   cluster_off.size() == n + 1,
               "per-node arrays must all have one row per node");
  if (center_index_of.size() != n || r_to_centers.size() != n ||
      nearest_center.size() != n || ball_off.size() != n + 1 ||
      cluster_off.size() != n + 1) {
    return;  // the walks below index these arrays per node
  }

  // CSR shape: offsets monotone from 0 to the members array size; the row
  // walks below assume it.
  const auto csr_ok = [](const FlatVec<std::int64_t>& off,
                         std::size_t members) {
    if (off.front() != 0 || off.back() != static_cast<std::int64_t>(members)) {
      return false;
    }
    for (std::size_t i = 0; i + 1 < off.size(); ++i) {
      if (off[i] > off[i + 1]) return false;
    }
    return true;
  };
  const bool offsets_ok = csr_ok(ball_off, ball_members.size()) &&
                          csr_ok(cluster_off, cluster_members.size());
  report.check("csr-offsets-wellformed", offsets_ok,
               "ball/cluster offsets must rise monotonically from 0 to the "
               "members array size");
  if (!offsets_ok) return;

  // Center set: sorted + unique, in range, and center_index_of is its exact
  // inverse (every non-center maps to -1).
  bool centers_ok = !centers.empty();
  std::string center_detail = centers.empty() ? "empty center set" : "";
  for (std::size_t i = 0; centers_ok && i < centers.size(); ++i) {
    const NodeId c = centers[i];
    if (c < 0 || static_cast<std::size_t>(c) >= n ||
        (i > 0 && centers[i - 1] >= c)) {
      centers_ok = false;
      center_detail = "centers not sorted/unique/in-range at index " +
                      std::to_string(i);
    } else if (center_index_of[static_cast<std::size_t>(c)] !=
               static_cast<std::int32_t>(i)) {
      centers_ok = false;
      center_detail = "center_index_of inconsistent for center " +
                      std::to_string(c);
    }
  }
  if (centers_ok) {
    std::size_t marked = 0;
    for (const std::int32_t idx : center_index_of) {
      if (idx >= 0) ++marked;
    }
    if (marked != centers.size()) {
      centers_ok = false;
      center_detail = "center_index_of marks " + std::to_string(marked) +
                      " nodes, center set has " + std::to_string(centers.size());
    }
  }
  report.check("center-index-inverse", centers_ok, std::move(center_detail));

  bool nearest_ok = true;
  std::string nearest_detail;
  for (std::size_t v = 0; nearest_ok && v < n; ++v) {
    const std::int32_t idx = nearest_center[v];
    if (idx < 0 || static_cast<std::size_t>(idx) >= centers.size() ||
        r_to_centers[v] >= kInfDist) {
      nearest_ok = false;
      nearest_detail = "node " + std::to_string(v) +
                       " lacks a finite nearest center";
    }
  }
  report.check("nearest-center-valid", nearest_ok, std::move(nearest_detail));

  // Ball rows: sorted + unique + in range, v a member of its own ball, each
  // center's ball the singleton {c} (r(c, A) = 0), and ball/cluster duality.
  bool rows_ok = true;
  bool dual_ok = true;
  std::string rows_detail, dual_detail;
  const auto row_sorted = [](std::span<const NodeId> row, std::size_t nn) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] < 0 || static_cast<std::size_t>(row[i]) >= nn ||
          (i > 0 && row[i - 1] >= row[i])) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t v = 0; rows_ok && v < n; ++v) {
    const auto vid = static_cast<NodeId>(v);
    const auto ball_row = ball(vid);
    if (!row_sorted(ball_row, n) || !row_sorted(cluster(vid), n)) {
      rows_ok = false;
      rows_detail = "ball/cluster row of node " + std::to_string(v) +
                    " not sorted/unique/in-range";
    } else if (!std::binary_search(ball_row.begin(), ball_row.end(), vid)) {
      rows_ok = false;
      rows_detail = "node " + std::to_string(v) + " missing from its own ball";
    } else if (center_index_of[v] >= 0 && ball_row.size() != 1) {
      rows_ok = false;
      rows_detail = "center " + std::to_string(v) +
                    " has a non-singleton ball (r(c, A) must be 0)";
    }
    for (std::size_t i = 0; dual_ok && i < ball_row.size(); ++i) {
      const auto cluster_row = cluster(ball_row[i]);
      if (!std::binary_search(cluster_row.begin(), cluster_row.end(), vid)) {
        dual_ok = false;
        dual_detail = std::to_string(ball_row[i]) + " in Ball(" +
                      std::to_string(v) + ") but " + std::to_string(v) +
                      " not in Cluster(" + std::to_string(ball_row[i]) + ")";
      }
    }
  }
  report.check("ball-rows-wellformed", rows_ok, std::move(rows_detail));
  report.check("ball-cluster-duality", dual_ok, std::move(dual_detail));

  // Lemma 2's O~(sqrt n): the builder resamples centers until its own slack
  // holds, so a fresh system passes and an oversize row means corruption or
  // a stale artifact.
  const double budget =
      report.budgets().ball_slack *
      std::sqrt(static_cast<double>(n) *
                std::log(std::max<double>(2.0, static_cast<double>(n))));
  report.measure("ball-size", static_cast<double>(max_ball_size()), budget,
                 "largest ball vs ball_slack * sqrt(n ln n)");
  report.measure("cluster-size", static_cast<double>(max_cluster_size()),
                 budget, "largest cluster vs ball_slack * sqrt(n ln n)");
}

BallSystem build_ball_system(const RoundtripMetric& metric,
                             std::vector<NodeId> centers, int threads) {
  if (centers.empty()) throw std::invalid_argument("build_ball_system: no centers");
  const NodeId n = metric.node_count();
  BallSystem sys;
  std::vector<std::int32_t> center_index_of(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    center_index_of[static_cast<std::size_t>(centers[i])] =
        static_cast<std::int32_t>(i);
  }

  // One batch query answers every node's nearest center: the sparse metric
  // serves it with |A| global sweeps, which keeps its per-node rows at ball
  // size instead of forcing them to cover out to the centers.
  std::vector<std::int32_t> nearest;
  std::vector<Dist> r_to_centers;
  metric.nearest_all(centers, threads, nearest, r_to_centers);

  std::vector<std::vector<NodeId>> ball_rows(static_cast<std::size_t>(n));
  const int workers = resolve_apsp_threads(threads);
  parallel_tickets(n, workers, [&] {
    return [&](std::int64_t ticket) {
      const auto v = static_cast<NodeId>(ticket);
      const auto vz = static_cast<std::size_t>(v);
      const Dist rv = r_to_centers[vz];
      // Ball(v) = { w : r(v,w) < r(v,A) } union {v}: strict inequality, so
      // ask the metric for the closed ball of radius r(v,A) - 1 (weights are
      // integral).  A center has rv = 0 and the singleton ball {v}.
      auto& ball = ball_rows[vz];
      if (rv <= 0) {
        ball.push_back(v);
      } else {
        ball = metric.ball(v, rv - 1);
        if (!std::binary_search(ball.begin(), ball.end(), v)) {
          ball.insert(std::upper_bound(ball.begin(), ball.end(), v), v);
        }
      }
    };
  });

  std::vector<std::vector<NodeId>> cluster_rows(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : ball_rows[static_cast<std::size_t>(v)]) {
      cluster_rows[static_cast<std::size_t>(w)].push_back(v);
    }
  }
  // ball rows are ascending (metric.ball contract); cluster rows too (the
  // serial v loop appends in ascending v order).
  sys.centers = std::move(centers);
  sys.center_index_of = std::move(center_index_of);
  sys.r_to_centers = std::move(r_to_centers);
  sys.nearest_center = std::move(nearest);
  sys.adopt_rows(ball_rows, cluster_rows);
  return sys;
}

}  // namespace rtr
