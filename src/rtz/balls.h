// Thorup-Zwick-style balls over the roundtrip metric.
//
//   r(v, A)    = min over centers a of r(v, a)
//   Ball(v)    = { w : r(v,w) < r(v,A) } union {v}
//   Cluster(w) = { v : w in Ball(v) }
//
// Key closure property (the reason per-ball double trees are well-defined and
// cheap; proved here, exploited by Rtz3Scheme, verified in tests):
//
//   If w is in Ball(v) and x lies on any shortest v->w or w->v path, then x
//   is in Ball(v).  Proof: x lies on a directed cycle through v of length
//   d(v,w)+d(w,v) = r(v,w), so r(v,x) <= r(v,w) < r(v,A).
//
// Consequently the subgraph induced by Ball(v) contains shortest v->w and
// w->v paths for every member w, so in/out trees inside the ball realize the
// exact global distances.
#ifndef RTR_RTZ_BALLS_H
#define RTR_RTZ_BALLS_H

#include <vector>

#include "rt/metric.h"

namespace rtr {

class AuditReport;

struct BallSystem {
  std::vector<NodeId> centers;               // sorted
  std::vector<std::int32_t> center_index_of; // per node: index in centers or -1
  std::vector<Dist> r_to_centers;            // r(v, A)
  std::vector<std::int32_t> nearest_center;  // index into centers
  std::vector<std::vector<NodeId>> ball_of;     // sorted members, v included
  std::vector<std::vector<NodeId>> cluster_of;  // sorted members, w included

  [[nodiscard]] std::int64_t max_ball_size() const;
  [[nodiscard]] std::int64_t max_cluster_size() const;

  /// Auditable: array sizing, sorted/unique center set with a consistent
  /// inverse index, finite r(v, A) with a valid nearest center, sorted ball
  /// and cluster rows that are exact duals of each other (w in Ball(v) iff
  /// v in Cluster(w)), centers owning the singleton ball {c}, and the
  /// Lemma 2 O~(sqrt n) size budget (ball_slack * sqrt(n ln n)) on the
  /// largest ball and cluster.
  void audit(AuditReport& report) const;
};

/// Computes balls and clusters for a given center set.  Per-node work
/// (nearest center + ball membership) fans out over `threads` workers
/// (<= 0 resolves the process default); the result is a pure function of
/// (metric, centers) for any thread count.  Ball membership is served by
/// metric.nearest() + metric.ball(), so the sparse backend answers from
/// one bounded-Dijkstra row per node instead of n full r() lookups.
[[nodiscard]] BallSystem build_ball_system(const RoundtripMetric& metric,
                                           std::vector<NodeId> centers,
                                           int threads = 1);

}  // namespace rtr

#endif  // RTR_RTZ_BALLS_H
