// Thorup-Zwick-style balls over the roundtrip metric.
//
//   r(v, A)    = min over centers a of r(v, a)
//   Ball(v)    = { w : r(v,w) < r(v,A) } union {v}
//   Cluster(w) = { v : w in Ball(v) }
//
// Key closure property (the reason per-ball double trees are well-defined and
// cheap; proved here, exploited by Rtz3Scheme, verified in tests):
//
//   If w is in Ball(v) and x lies on any shortest v->w or w->v path, then x
//   is in Ball(v).  Proof: x lies on a directed cycle through v of length
//   d(v,w)+d(w,v) = r(v,w), so r(v,x) <= r(v,w) < r(v,A).
//
// Consequently the subgraph induced by Ball(v) contains shortest v->w and
// w->v paths for every member w, so in/out trees inside the ball realize the
// exact global distances.
//
// Storage is flat and relocatable: ball and cluster rows live in CSR arrays
// (offsets + one members array each) behind FlatVec, so a BallSystem either
// owns its arrays or views them inside a mapped snapshot arena (io/arena.h)
// with zero copying.
#ifndef RTR_RTZ_BALLS_H
#define RTR_RTZ_BALLS_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rt/metric.h"
#include "util/flat_vec.h"

namespace rtr {

class AuditReport;
class ArenaStorage;  // io/arena.h
class ArenaView;
class ArenaWriter;

struct BallSystem {
  FlatVec<NodeId> centers;               // sorted
  FlatVec<std::int32_t> center_index_of; // per node: index in centers or -1
  FlatVec<Dist> r_to_centers;            // r(v, A)
  FlatVec<std::int32_t> nearest_center;  // index into centers
  // Ball/cluster rows in CSR form: row v is members[off[v] .. off[v+1]),
  // sorted ascending, v (resp. w) included.
  FlatVec<std::int64_t> ball_off;        // n + 1
  FlatVec<NodeId> ball_members;
  FlatVec<std::int64_t> cluster_off;     // n + 1
  FlatVec<NodeId> cluster_members;
  /// Keepalive when the arrays are views into a mapped arena.
  std::shared_ptr<const ArenaStorage> arena;

  [[nodiscard]] NodeId node_count() const {
    return ball_off.empty() ? 0 : static_cast<NodeId>(ball_off.size() - 1);
  }
  [[nodiscard]] std::span<const NodeId> ball(NodeId v) const {
    const auto lo = static_cast<std::size_t>(ball_off[static_cast<std::size_t>(v)]);
    const auto hi =
        static_cast<std::size_t>(ball_off[static_cast<std::size_t>(v) + 1]);
    return {ball_members.data() + lo, hi - lo};
  }
  [[nodiscard]] std::span<const NodeId> cluster(NodeId v) const {
    const auto lo =
        static_cast<std::size_t>(cluster_off[static_cast<std::size_t>(v)]);
    const auto hi =
        static_cast<std::size_t>(cluster_off[static_cast<std::size_t>(v) + 1]);
    return {cluster_members.data() + lo, hi - lo};
  }

  [[nodiscard]] std::int64_t max_ball_size() const;
  [[nodiscard]] std::int64_t max_cluster_size() const;

  /// Packs materialized rows into the CSR arrays (construction and the v1
  /// streamed decode; also handy for tests that need to damage a row).
  void adopt_rows(const std::vector<std::vector<NodeId>>& ball_rows,
                  const std::vector<std::vector<NodeId>>& cluster_rows);

  /// Appends every array as one arena section under `prefix` (e.g.
  /// "scheme/balls/").
  void save_arena(ArenaWriter& w, const std::string& prefix) const;

  /// Rebuilds a BallSystem as zero-copy views into an arena.  Validates CSR
  /// well-formedness (offsets monotone, front 0, back matching the members
  /// array) so a CRC-valid-but-inconsistent region fails loudly.
  [[nodiscard]] static BallSystem from_arena(const ArenaView& a,
                                             const std::string& prefix);

  /// Auditable: array sizing, sorted/unique center set with a consistent
  /// inverse index, finite r(v, A) with a valid nearest center, well-formed
  /// CSR offsets, sorted ball and cluster rows that are exact duals of each
  /// other (w in Ball(v) iff v in Cluster(w)), centers owning the singleton
  /// ball {c}, and the Lemma 2 O~(sqrt n) size budget (ball_slack *
  /// sqrt(n ln n)) on the largest ball and cluster.
  void audit(AuditReport& report) const;
};

/// Computes balls and clusters for a given center set.  Per-node work
/// (nearest center + ball membership) fans out over `threads` workers
/// (<= 0 resolves the process default); the result is a pure function of
/// (metric, centers) for any thread count.  Ball membership is served by
/// metric.nearest() + metric.ball(), so the sparse backend answers from
/// one bounded-Dijkstra row per node instead of n full r() lookups.
[[nodiscard]] BallSystem build_ball_system(const RoundtripMetric& metric,
                                           std::vector<NodeId> centers,
                                           int threads = 1);

}  // namespace rtr

#endif  // RTR_RTZ_BALLS_H
