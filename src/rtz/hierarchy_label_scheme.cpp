#include "rtz/hierarchy_label_scheme.h"

#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "util/bit_cost.h"

namespace rtr {

HierarchyLabelScheme::HierarchyLabelScheme(const Digraph& g,
                                           const RoundtripMetric& metric,
                                           const NameAssignment& names,
                                           Options options)
    : k_(options.k),
      names_(names),
      node_space_(g.node_count()),
      port_space_(g.port_space()) {
  const Digraph reversed = g.reversed();
  hierarchy_ = std::make_shared<CoverHierarchy>(g, reversed, metric, k_);
  const NodeId n = g.node_count();
  labels_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    HierarchyLabel& label = labels_[static_cast<std::size_t>(v)];
    label.name = names_.name_of(v);
    for (std::int32_t level = 0; level < hierarchy_->level_count(); ++level) {
      TreeRef home = hierarchy_->home(v, level);
      label.home_tree.push_back(home.tree);
      label.home_address.push_back(hierarchy_->tree(home).out_router().label(v));
    }
  }
}

HierarchyLabelScheme::Header HierarchyLabelScheme::make_packet(
    NodeName dest) const {
  Header h;
  h.dest = dest;
  return h;
}

Decision HierarchyLabelScheme::forward(NodeId at, Header& h) const {
  const NodeName at_name = names_.name_of(at);
  switch (h.mode) {
    case Mode::kNew: {
      h.src = at_name;
      h.mode = Mode::kOutbound;
      if (at_name == h.dest) return Decision::deliver_here();
      // Lowest level whose home tree of the destination contains us; the
      // destination's full label is available in the name-dependent model.
      const HierarchyLabel& dest_label =
          labels_[static_cast<std::size_t>(names_.id_of(h.dest))];
      for (std::int32_t level = 0; level < hierarchy_->level_count(); ++level) {
        TreeRef ref{level, dest_label.home_tree[static_cast<std::size_t>(level)]};
        const DoubleTree& tree = hierarchy_->tree(ref);
        if (!tree.contains(at)) continue;
        h.tree = ref;
        h.dest_label = dest_label.home_address[static_cast<std::size_t>(level)];
        h.src_label = tree.out_router().label(at);
        h.leg = DtLeg{ref, h.dest_label, true};
        DtStep step = dt_step(*hierarchy_, at, h.leg);
        if (step.arrived) {
          throw std::logic_error("hier-label: fresh leg arrived instantly");
        }
        return Decision::forward_on(step.port);
      }
      throw std::logic_error("hier-label: no common home tree (broken cover)");
    }
    case Mode::kOutbound: {
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (!step.arrived) return Decision::forward_on(step.port);
      if (at_name != h.dest) {
        throw std::logic_error("hier-label: leg arrived off-destination");
      }
      return Decision::deliver_here();
    }
    case Mode::kReturn: {
      h.mode = Mode::kInbound;
      if (at_name == h.src) return Decision::deliver_here();
      h.leg = DtLeg{h.tree, h.src_label, true};
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (step.arrived) {
        throw std::logic_error("hier-label: return leg arrived instantly");
      }
      return Decision::forward_on(step.port);
    }
    case Mode::kInbound: {
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (!step.arrived) return Decision::forward_on(step.port);
      if (at_name != h.src) {
        throw std::logic_error("hier-label: return ended away from source");
      }
      return Decision::deliver_here();
    }
  }
  throw std::logic_error("hier-label: bad mode");
}

std::int64_t HierarchyLabelScheme::header_bits(const Header& h) const {
  return 2 /* mode */ + 2 * bits_for(node_space_) +
         bits_for(hierarchy_->level_count() + 1) + bits_for(node_space_) +
         tree_label_bits(h.dest_label, node_space_, port_space_) +
         tree_label_bits(h.src_label, node_space_, port_space_) + 1;
}

void HierarchyLabelScheme::audit(AuditReport& report) const {
  auto scope = report.scope("hier-label");
  {
    auto names_scope = report.scope("names");
    names_.audit(report);
  }
  hierarchy_->audit(report);

  const auto n = static_cast<std::size_t>(names_.node_count());
  const auto levels = static_cast<std::size_t>(hierarchy_->level_count());
  report.check("labels-sized", labels_.size() == n, "one label per node");
  if (labels_.size() != n) return;

  bool labels_ok = true;
  std::string detail;
  for (std::size_t v = 0; labels_ok && v < n; ++v) {
    const HierarchyLabel& lab = labels_[v];
    if (lab.name != names_.name_of(static_cast<NodeId>(v)) ||
        lab.home_tree.size() != levels || lab.home_address.size() != levels) {
      labels_ok = false;
      detail = "label of node " + std::to_string(v) +
               " misnamed or not covering every level";
      break;
    }
    for (std::size_t li = 0; li < levels; ++li) {
      const TreeRef home =
          hierarchy_->home(static_cast<NodeId>(v),
                           static_cast<std::int32_t>(li));
      if (lab.home_tree[li] != home.tree ||
          !hierarchy_->tree(home).contains(static_cast<NodeId>(v))) {
        labels_ok = false;
        detail = "label of node " + std::to_string(v) + " at level " +
                 std::to_string(li) +
                 " disagrees with the hierarchy's home assignment";
        break;
      }
    }
  }
  report.check("labels-match-hierarchy", labels_ok, std::move(detail));
}

TableStats HierarchyLabelScheme::table_stats() const {
  const auto n = static_cast<NodeId>(labels_.size());
  // Membership storage (up ports + tree tables) ...
  TableStats stats =
      hierarchy_node_stats(*hierarchy_, n, node_space_, port_space_);
  // ... plus each node's own per-membership address (needed to mint
  // src_label locally at the source).
  for (std::int32_t level = 0; level < hierarchy_->level_count(); ++level) {
    const HierarchyLevel& lvl = hierarchy_->level(level);
    for (NodeId v = 0; v < n; ++v) {
      for (std::int32_t t : lvl.trees_of[static_cast<std::size_t>(v)]) {
        const TreeLabel label =
            lvl.trees[static_cast<std::size_t>(t)].out_router().label(v);
        stats.add(v, 1, tree_label_bits(label, node_space_, port_space_));
      }
    }
  }
  return stats;
}

}  // namespace rtr
