// R2 handshake labels over the double-tree cover hierarchy.
//
// The paper (Section 3.2-3.3) uses the Roditty-Thorup-Zwick (2k+eps)-roundtrip
// spanner: R2(u,v) names "the most convenient double tree" containing both u
// and v plus the two endpoints' topology-dependent addresses inside it, and
// routing a u->v->u trip inside that tree costs at most a constant (in k)
// multiple of r(u,v).
//
// Our substitute (a documented deviation from the paper) derives R2 from the Theorem 13
// hierarchy: scan levels bottom-up; the first level ell where some tree
// contains both u and v satisfies 2^ell < 2 r(u,v) (v's home tree at level
// ceil(log2 r(u,v)) already contains u), every tree at that level has
// RTHeight <= (2k-1) 2^ell, and a through-the-root trip costs at most
// 2 RTHeight.  Hence
//
//     trip(u,v) <= 2 (2k-1) 2^ell < 4 (2k-1) r(u,v)  =:  beta(k) r(u,v),
//
// the analogue of the paper's (2k+eps) with beta = 4(2k-1).  Among the
// first-level candidates we pick the cheapest actual trip (the paper's "most
// convenient").
#ifndef RTR_RTZ_HANDSHAKE_H
#define RTR_RTZ_HANDSHAKE_H

#include "cover/hierarchy.h"
#include "net/table_stats.h"
#include "treeroute/tree_router.h"

namespace rtr {

/// The handshake label for an ordered pair (u, v): o(log^2 n) bits.
struct R2Label {
  TreeRef tree;
  TreeLabel label_u;  // u's address in the tree (for the return trip)
  TreeLabel label_v;  // v's address in the tree (for the forward trip)
};

/// Snapshot encoding of a handshake label.
void save_r2_label(SnapshotWriter& w, const R2Label& label);
[[nodiscard]] R2Label load_r2_label(SnapshotReader& r);

/// A one-way trip through a double tree: climb to the root, descend to the
/// labelled target.  Used for both directions of an R2 pair and by the
/// Section 4 scheme's within-cluster hops.
struct DtLeg {
  TreeRef tree;
  TreeLabel target;
  bool going_up = true;
};

struct DtStep {
  bool arrived = false;
  Port port = kNoPort;
};

/// One local forwarding step of a double-tree leg.  Uses only state the
/// current node stores for this tree (its up-port and tree-router table).
[[nodiscard]] DtStep dt_step(const CoverHierarchy& hierarchy, NodeId at,
                             DtLeg& leg);

/// Computes R2(u, v), or throws std::logic_error if no common tree exists
/// (impossible when the hierarchy's top level covers the diameter).
[[nodiscard]] R2Label compute_r2(const CoverHierarchy& hierarchy, NodeId u,
                                 NodeId v);

/// Worst-case roundtrip blowup of an R2 trip: beta(k) = 4 (2k - 1).
[[nodiscard]] constexpr double r2_beta(int k) { return 4.0 * (2 * k - 1); }

/// Per-node storage implied by hierarchy membership (what each node keeps to
/// play its part in every double tree containing it: tree id, up-port,
/// Lemma 14 node table, plus its home tree id per level).
[[nodiscard]] TableStats hierarchy_node_stats(const CoverHierarchy& hierarchy,
                                              NodeId n, std::int64_t node_space,
                                              std::int64_t port_space);

/// Encoded size of an R2 label.
[[nodiscard]] std::int64_t r2_label_bits(const R2Label& label,
                                         std::int64_t node_space,
                                         std::int64_t port_space);

}  // namespace rtr

#endif  // RTR_RTZ_HANDSHAKE_H
