#include "rtz/handshake.h"

#include <stdexcept>

#include "io/snapshot_format.h"
#include "util/bit_cost.h"

namespace rtr {

void save_r2_label(SnapshotWriter& w, const R2Label& label) {
  save_tree_ref(w, label.tree);
  save_tree_label(w, label.label_u);
  save_tree_label(w, label.label_v);
}

R2Label load_r2_label(SnapshotReader& r) {
  R2Label label;
  label.tree = load_tree_ref(r);
  label.label_u = load_tree_label(r);
  label.label_v = load_tree_label(r);
  return label;
}

DtStep dt_step(const CoverHierarchy& hierarchy, NodeId at, DtLeg& leg) {
  const DoubleTree& tree = hierarchy.tree(leg.tree);
  if (!tree.contains(at)) {
    throw std::logic_error("dt_step: node is outside the leg's double tree");
  }
  if (leg.going_up) {
    if (at == tree.center()) {
      leg.going_up = false;
    } else {
      return DtStep{false, tree.up_port(at)};
    }
  }
  Port p = tree_next_port(tree.out_router().table(at), leg.target);
  if (p == kNoPort) return DtStep{true, kNoPort};
  return DtStep{false, p};
}

R2Label compute_r2(const CoverHierarchy& hierarchy, NodeId u, NodeId v) {
  for (std::int32_t level = 0; level < hierarchy.level_count(); ++level) {
    const HierarchyLevel& lvl = hierarchy.level(level);
    std::int32_t best_tree = -1;
    Dist best_cost = kInfDist;
    for (std::int32_t t : lvl.trees_of[static_cast<std::size_t>(u)]) {
      const DoubleTree& tree = lvl.trees[static_cast<std::size_t>(t)];
      if (!tree.contains(v)) continue;
      // Cost of the u -> root -> v trip ("most convenient" tree).
      const Dist cost = tree.up_dist(u) + tree.down_dist(v);
      if (cost < best_cost) {
        best_cost = cost;
        best_tree = t;
      }
    }
    if (best_tree >= 0) {
      const DoubleTree& tree = lvl.trees[static_cast<std::size_t>(best_tree)];
      return R2Label{TreeRef{level, best_tree}, tree.out_router().label(u),
                     tree.out_router().label(v)};
    }
  }
  throw std::logic_error("compute_r2: no common double tree for the pair");
}

TableStats hierarchy_node_stats(const CoverHierarchy& hierarchy, NodeId n,
                                std::int64_t node_space,
                                std::int64_t port_space) {
  TableStats stats(n);
  const std::int64_t id_bits = bits_for(node_space);
  const std::int64_t port_bits = bits_for(port_space);
  const std::int64_t tree_id_bits =
      bits_for(hierarchy.level_count()) + id_bits;  // (level, tree index)
  for (std::int32_t level = 0; level < hierarchy.level_count(); ++level) {
    const HierarchyLevel& lvl = hierarchy.level(level);
    for (NodeId v = 0; v < n; ++v) {
      const auto memberships = static_cast<std::int64_t>(
          lvl.trees_of[static_cast<std::size_t>(v)].size());
      // Per membership: tree id + up-port + (dfs_in, heavy_port) table.
      stats.add(v, memberships,
                memberships * (tree_id_bits + port_bits + id_bits + port_bits));
      // Home tree id for this level.
      stats.add(v, 1, tree_id_bits);
    }
  }
  return stats;
}

std::int64_t r2_label_bits(const R2Label& label, std::int64_t node_space,
                           std::int64_t port_space) {
  const std::int64_t tree_id_bits = bits_for(node_space) + 8;
  (void)label;
  return tree_id_bits + tree_label_bits(label.label_u, node_space, port_space) +
         tree_label_bits(label.label_v, node_space, port_space);
}

}  // namespace rtr
