#include "rtz/centers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtr {

std::vector<NodeId> sample_centers(NodeId n, NodeId size, Rng& rng) {
  if (size < 1 || size > n) throw std::invalid_argument("sample_centers: bad size");
  auto sample = rng.sample_without_replacement(n, size);
  std::vector<NodeId> centers(sample.begin(), sample.end());
  std::sort(centers.begin(), centers.end());
  return centers;
}

std::vector<NodeId> greedy_hitting_set(
    NodeId n, const std::vector<std::vector<NodeId>>& balls) {
  std::vector<char> hit(balls.size(), 0);
  std::size_t remaining = balls.size();
  // node -> list of ball indices it appears in.
  std::vector<std::vector<std::int32_t>> appears(static_cast<std::size_t>(n));
  for (std::size_t b = 0; b < balls.size(); ++b) {
    for (NodeId v : balls[b]) {
      appears[static_cast<std::size_t>(v)].push_back(static_cast<std::int32_t>(b));
    }
  }
  std::vector<NodeId> centers;
  while (remaining > 0) {
    NodeId best = kNoNode;
    std::int64_t best_gain = -1;
    for (NodeId v = 0; v < n; ++v) {
      std::int64_t gain = 0;
      for (std::int32_t b : appears[static_cast<std::size_t>(v)]) {
        if (!hit[static_cast<std::size_t>(b)]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best_gain <= 0) {
      throw std::logic_error("greedy_hitting_set: empty ball cannot be hit");
    }
    centers.push_back(best);
    for (std::int32_t b : appears[static_cast<std::size_t>(best)]) {
      if (!hit[static_cast<std::size_t>(b)]) {
        hit[static_cast<std::size_t>(b)] = 1;
        --remaining;
      }
    }
  }
  std::sort(centers.begin(), centers.end());
  return centers;
}

NodeId default_center_count(NodeId n) {
  const double nn = static_cast<double>(std::max<NodeId>(n, 2));
  auto size = static_cast<NodeId>(std::ceil(std::sqrt(nn * (1.0 + std::log(nn)))));
  return std::min(size, n);
}

}  // namespace rtr
