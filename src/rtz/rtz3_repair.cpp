// Incremental repair of an Rtz3Scheme (ROADMAP: incremental epoch repair
// under churn).  The contract is bitwise equivalence: the repaired scheme
// must be indistinguishable -- snapshot bytes included -- from what the
// build constructor would produce on the new graph with the same names,
// options, and rng state.  Everything here is therefore either a literal
// replay of a constructor phase on the new graph, or a splice of old-scheme
// state that the rt/repair_oracle.h dirtiness proof certifies unchanged.
//
// Work breakdown per repair, two regimes:
//
//   * Slack fast path (weight-only delta, every changed edge with a
//     strictly shorter detour -- rt/repair_oracle.h:
//     delta_is_strictly_slack): the whole roundtrip metric is proven
//     unchanged, so memberships, radii, nearest centers, center trees, and
//     addresses splice wholesale; the only recomputed substructures are
//     the masked double trees of balls holding BOTH endpoints of a changed
//     edge whose detour leaves the mask.  Cost: one tiny bounded search
//     per changed edge plus a few masked Dijkstras -- O(affected region),
//     independent of n.  This is the regime where repair beats a full
//     rebuild by large factors.
//
//   * General path: one center draw + |A| nearest sweeps (shared with a
//     full build), two budget-bounded multi-source Dijkstras per graph
//     (the ball oracle), two masked Dijkstras per DIRTY ball, and the
//     global center phase recomputed outright (center trees span the
//     whole graph, so genuine topology churn almost always touches them).
//     The saving over a full build is skipping clean balls' Dijkstras and
//     never running the dense APSP (callers hand in a lazy sparse metric).
#include "rtz/rtz3_scheme.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/apsp.h"
#include "graph/churn_delta.h"
#include "graph/dijkstra.h"
#include "rt/repair_oracle.h"
#include "rtz/centers.h"
#include "util/parallel.h"

namespace rtr {

namespace {

std::vector<char> mask_of(NodeId n, std::span<const NodeId> members) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId v : members) mask[static_cast<std::size_t>(v)] = 1;
  return mask;
}

}  // namespace

std::shared_ptr<const Rtz3Scheme> Rtz3Scheme::repair(
    const Rtz3Scheme& old_scheme, const Digraph& old_graph,
    const Digraph& new_graph, const RoundtripMetric& new_metric,
    const NameAssignment& names, Rng& rng, const ChurnDelta& delta,
    Options options) {
  const NodeId n = new_graph.node_count();

  // --- eligibility ---------------------------------------------------------
  // The equivalence argument needs the sampled-center path with the very
  // first draw accepted on both sides; greedy centers and resampled builds
  // take different code paths a splice cannot reproduce.
  if (options.greedy_centers || old_scheme.resamples_used_ != 0) {
    return nullptr;
  }
  if (old_graph.node_count() != n || names.node_count() != n ||
      old_scheme.names_.node_count() != n) {
    return nullptr;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (names.name_of(v) != old_scheme.names_.name_of(v)) return nullptr;
  }
  const BallSystem& old_balls = old_scheme.balls_;
  if (old_balls.node_count() != n ||
      old_balls.r_to_centers.size() != static_cast<std::size_t>(n) ||
      old_balls.nearest_center.size() != static_cast<std::size_t>(n)) {
    return nullptr;
  }

  // The center set a from-scratch rebuild would draw (consuming the same
  // rng state it would); splicing is only meaningful when that reproduces
  // the old set, i.e. when the caller pinned the build seed across epochs.
  std::vector<NodeId> centers =
      sample_centers(n, default_center_count(n), rng);
  if (centers.size() != old_balls.centers.size()) return nullptr;
  for (std::size_t i = 0; i < centers.size(); ++i) {
    if (centers[i] != old_balls.centers[i]) return nullptr;
  }

  const int workers = resolve_apsp_threads(options.threads);

  const bool phase_debug = std::getenv("RTR_RTZ_PHASE_DEBUG") != nullptr;
  auto dbg_t0 = std::chrono::steady_clock::now();
  auto lap = [&](const char* what) {
    if (!phase_debug) return;
    auto t1 = std::chrono::steady_clock::now();
    std::fprintf(stderr, "[rtz3 repair] %-18s %8.1f ms\n", what,
                 std::chrono::duration<double, std::milli>(t1 - dbg_t0).count());
    dbg_t0 = t1;
  };

  // --- weight-only slack fast path -----------------------------------------
  // When every changed edge is a weight-only re-pricing with a strictly
  // shorter detour (delta_is_strictly_slack), d_old == d_new everywhere:
  // ball memberships, radii, nearest centers, and the full-graph center
  // trees are all bitwise identical to what a fresh build would compute,
  // and the only substructures that can differ are the masked double trees
  // of balls whose mask holds BOTH endpoints (the mask may exclude the
  // detour).  Those are found by intersecting the two endpoints' cluster
  // rows -- the edge->substructure dependency map read backwards -- and
  // screened with the masked detour test, so the work is O(affected
  // region): a handful of tiny searches, independent of n.  The CSR scan
  // below guards the determinism premise (identical relaxation order needs
  // identical structure and ports, not just an empty add/remove diff).
  bool fast = delta.weight_only() && delta_is_strictly_slack(new_graph, delta);
  for (NodeId u = 0; fast && u < n; ++u) {
    const auto old_row = old_graph.out_edges(u);
    const auto new_row = new_graph.out_edges(u);
    if (old_row.size() != new_row.size()) fast = false;
    for (std::size_t i = 0; fast && i < old_row.size(); ++i) {
      if (old_row[i].to != new_row[i].to ||
          old_row[i].port != new_row[i].port) {
        fast = false;
      }
    }
  }

  std::vector<std::int32_t> nearest;
  std::vector<Dist> r_new;
  std::vector<char> dirty(static_cast<std::size_t>(n), 0);
  if (fast) {
    // Proven byte-identical -- splice rather than recompute.
    nearest.assign(old_balls.nearest_center.begin(),
                   old_balls.nearest_center.end());
    r_new.assign(old_balls.r_to_centers.begin(),
                 old_balls.r_to_centers.end());
    for (const EdgeChange& e : delta.modified) {
      const auto in_tail = old_balls.cluster(e.tail);
      const auto in_head = old_balls.cluster(e.head);
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < in_tail.size() && j < in_head.size()) {
        if (in_tail[i] < in_head[j]) {
          ++i;
        } else if (in_head[j] < in_tail[i]) {
          ++j;
        } else {
          const NodeId v = in_tail[i];
          ++i;
          ++j;
          const auto vz = static_cast<std::size_t>(v);
          if (dirty[vz] == 0 &&
              !masked_detour_shorter(new_graph, old_balls.ball(v), e.tail,
                                     e.head, e.min_weight())) {
            dirty[vz] = 1;
          }
        }
      }
    }
    lap("slack fast path");
  } else {
    // --- nearest centers on the new graph, exactly as build_ball_system ---
    new_metric.nearest_all(centers, workers, nearest, r_new);
    lap("nearest_all");

    // --- per-ball dirty bits -----------------------------------------------
    // Ball(v) only sees members with roundtrip distance < r(v, A); querying
    // the oracle at max(r_old, r_new) covers both the members the old ball
    // had and any the new one could gain.
    Dist max_radius = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto vz = static_cast<std::size_t>(v);
      max_radius = std::max(
          max_radius, std::max(old_balls.r_to_centers[vz], r_new[vz]));
    }
    const BallRepairOracle oracle =
        build_ball_repair_oracle(old_graph, new_graph, delta, max_radius);
    for (NodeId v = 0; v < n; ++v) {
      const auto vz = static_cast<std::size_t>(v);
      if (oracle.dirty(v, std::max(old_balls.r_to_centers[vz], r_new[vz]))) {
        dirty[vz] = 1;
      }
    }
    lap("oracle+dirty");
    // The oracle proof implies a clean ball kept its radius and (by the
    // no-closer-center argument) its nearest center; verify rather than
    // assume -- disagreement means fall back, never corrupt.
    for (NodeId v = 0; v < n; ++v) {
      const auto vz = static_cast<std::size_t>(v);
      if (dirty[vz] == 0 && (nearest[vz] != old_balls.nearest_center[vz] ||
                             r_new[vz] != old_balls.r_to_centers[vz])) {
        return nullptr;
      }
    }
  }
  if (phase_debug) {
    std::size_t dirty_count = 0;
    for (char c : dirty) dirty_count += static_cast<std::size_t>(c);
    std::fprintf(stderr, "[rtz3 repair] dirty %zu / %d (touched %zu%s)\n",
                 dirty_count, n, delta.touched.size(),
                 fast ? ", slack fast path" : "");
  }

  // --- ball rows: splice clean, recompute dirty ----------------------------
  std::vector<std::vector<NodeId>> ball_rows(static_cast<std::size_t>(n));
  parallel_tickets(n, workers, [&] {
    return [&](std::int64_t ticket) {
      const auto v = static_cast<NodeId>(ticket);
      const auto vz = static_cast<std::size_t>(ticket);
      auto& ball = ball_rows[vz];
      // On the slack fast path even a dirty ball keeps its member row --
      // dirtiness there means the masked trees may differ, while the
      // roundtrip metric (hence membership) is proven unchanged.
      if (fast || dirty[vz] == 0) {
        const auto row = old_balls.ball(v);
        ball.assign(row.begin(), row.end());
        return;
      }
      const Dist rv = r_new[vz];
      if (rv <= 0) {
        ball.push_back(v);
      } else {
        ball = new_metric.ball(v, rv - 1);
        if (!std::binary_search(ball.begin(), ball.end(), v)) {
          ball.insert(std::upper_bound(ball.begin(), ball.end(), v), v);
        }
      }
    };
  });
  std::vector<std::vector<NodeId>> cluster_rows(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : ball_rows[static_cast<std::size_t>(v)]) {
      cluster_rows[static_cast<std::size_t>(w)].push_back(v);
    }
  }

  // A rebuild accepts the first draw only while the sizes stay inside
  // Lemma 2's slack; past it the rebuild resamples and the splice premise
  // collapses.
  std::int64_t max_ball = 0;
  std::int64_t max_cluster = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vz = static_cast<std::size_t>(v);
    max_ball = std::max(max_ball,
                        static_cast<std::int64_t>(ball_rows[vz].size()));
    max_cluster = std::max(
        max_cluster, static_cast<std::int64_t>(cluster_rows[vz].size()));
  }
  const double nn = static_cast<double>(std::max<NodeId>(n, 2));
  const double budget =
      options.size_slack * std::sqrt(nn * (1.0 + std::log(nn)));
  if (static_cast<double>(max_ball) > budget ||
      static_cast<double>(max_cluster) > budget) {
    return nullptr;
  }

  BallSystem sys;
  std::vector<std::int32_t> center_index_of(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    center_index_of[static_cast<std::size_t>(centers[i])] =
        static_cast<std::int32_t>(i);
  }
  sys.centers = std::move(centers);
  sys.center_index_of = std::move(center_index_of);
  sys.r_to_centers = std::move(r_new);
  sys.nearest_center = std::move(nearest);
  sys.adopt_rows(ball_rows, cluster_rows);
  lap("ball rows");

  std::shared_ptr<Rtz3Scheme> s(new Rtz3Scheme(new_graph, names));
  s->balls_ = std::move(sys);
  s->node_space_ = n;
  s->port_space_ = new_graph.port_space();
  s->resamples_used_ = 0;
  s->center_count_ = static_cast<std::int64_t>(s->balls_.centers.size());
  const auto cc = static_cast<std::size_t>(s->center_count_);

  // --- global double trees per center, and addresses -----------------------
  // Recomputed verbatim in general (center trees span the whole graph, so
  // almost any churn touches them); spliced wholesale on the slack fast
  // path, where delta_is_strictly_slack proved every full-graph tree --
  // parents, ports, DFS numbers, labels -- bitwise unchanged.
  const Digraph reversed = new_graph.reversed();
  if (fast) {
    s->center_up_port_ = old_scheme.center_up_port_;
    s->center_tree_tab_ = old_scheme.center_tree_tab_;
    s->addresses_ = old_scheme.addresses_;
  } else {
    std::vector<Port> ctr_up(static_cast<std::size_t>(n) * cc, kNoPort);
    std::vector<TreeNodeTable> ctr_tab(static_cast<std::size_t>(n) * cc);
    s->addresses_.resize(static_cast<std::size_t>(n));
    parallel_tickets(s->center_count_, workers, [&] {
      return [&, ws = DijkstraWorkspace{}](std::int64_t ci) mutable {
        const NodeId a = s->balls_.centers[static_cast<std::size_t>(ci)];
        OutTree out = dijkstra_out_tree(new_graph, a, ws);
        InTree in = dijkstra_in_tree(new_graph, reversed, a, ws);
        TreeRouter router(out);
        for (NodeId v = 0; v < n; ++v) {
          const std::size_t slot =
              static_cast<std::size_t>(v) * cc + static_cast<std::size_t>(ci);
          ctr_up[slot] = in.next_port[static_cast<std::size_t>(v)];
          ctr_tab[slot] = router.table(v);
          if (s->balls_.nearest_center[static_cast<std::size_t>(v)] ==
              static_cast<std::int32_t>(ci)) {
            s->addresses_[static_cast<std::size_t>(v)] =
                RtzAddress{names.name_of(v), static_cast<std::int32_t>(ci),
                           router.label(v)};
          }
        }
      };
    });
    s->center_up_port_ = std::move(ctr_up);
    s->center_tree_tab_ = std::move(ctr_tab);
  }
  lap("center trees");

  // --- per-node ball double trees: harvest clean roots, rebuild dirty ------
  // Same chunked fan-out + serial in-v-order scatter as the constructor, so
  // the staged dictionaries replay the identical add() sequence.  A clean
  // root's masked trees are bitwise unchanged -- on the general path no
  // member is roundtrip-near a churn endpoint, on the fast path every
  // changed edge in the mask has a masked detour -- which lets its
  // products be read back out of the old scheme's flat arrays.
  std::vector<NodeTables> tables(static_cast<std::size_t>(n));
  struct BallProduct {
    std::vector<TreeLabel> labels;
    std::vector<TreeNodeTable> tabs;
    std::vector<Port> up_ports;
  };
  std::atomic<bool> splice_failed{false};
  const NodeId chunk_size = std::max<NodeId>(64, 16 * workers);
  std::vector<BallProduct> products(
      static_cast<std::size_t>(std::min<NodeId>(n, chunk_size)));
  for (NodeId lo = 0; lo < n && !splice_failed.load(); lo += chunk_size) {
    const NodeId hi = std::min<NodeId>(n, lo + chunk_size);
    parallel_tickets(hi - lo, workers, [&] {
      return [&, ws = DijkstraWorkspace{}](std::int64_t ticket) mutable {
        const NodeId v = lo + static_cast<NodeId>(ticket);
        const auto vz = static_cast<std::size_t>(v);
        const auto members = s->balls_.ball(v);
        BallProduct& prod = products[static_cast<std::size_t>(ticket)];
        prod.labels.clear();
        prod.tabs.clear();
        prod.up_ports.clear();
        prod.labels.reserve(members.size());
        prod.tabs.reserve(members.size());
        prod.up_ports.reserve(members.size());
        if (dirty[vz] == 0) {
          const NodeName root_name = names.name_of(v);
          for (NodeId w : members) {
            auto label = old_scheme.find_ball_label(v, names.name_of(w));
            const TreeNodeTable* tab =
                old_scheme.find_member_table(w, root_name);
            const Port* up = old_scheme.find_member_up_port(w, root_name);
            if (!label.has_value() || tab == nullptr || up == nullptr) {
              // A clean ball whose entries are missing from the old scheme
              // means the old tables disagree with the old ball system;
              // refuse to splice from it.
              splice_failed.store(true, std::memory_order_relaxed);
              return;
            }
            prod.labels.push_back(std::move(*label));
            prod.tabs.push_back(*tab);
            prod.up_ports.push_back(*up);
          }
          return;
        }
        auto mask = mask_of(n, members);
        OutTree out = dijkstra_out_tree_within(new_graph, v, mask, ws);
        InTree in = dijkstra_in_tree_within(new_graph, reversed, v, mask, ws);
        TreeRouter router(out);
        for (NodeId w : members) {
          prod.labels.push_back(router.label(w));
          prod.tabs.push_back(router.table(w));
          prod.up_ports.push_back(in.next_port[static_cast<std::size_t>(w)]);
        }
      };
    });
    if (splice_failed.load()) return nullptr;
    for (NodeId v = lo; v < hi; ++v) {
      const auto members = s->balls_.ball(v);
      const BallProduct& prod = products[static_cast<std::size_t>(v - lo)];
      const NodeName root_name = names.name_of(v);
      auto& own = tables[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < members.size(); ++i) {
        const NodeId w = members[i];
        own.ball_out_label.add(names.name_of(w), prod.labels[i]);
        auto& member = tables[static_cast<std::size_t>(w)];
        member.member_out_tab.add(root_name, prod.tabs[i]);
        member.member_up_port.add(root_name, prod.up_ports[i]);
      }
    }
  }
  parallel_tickets(n, workers, [&] {
    return [&](std::int64_t v) {
      auto& t = tables[static_cast<std::size_t>(v)];
      t.ball_out_label.finalize();
      t.member_out_tab.finalize();
      t.member_up_port.finalize();
    };
  });
  s->adopt_tables(std::move(tables));
  lap("ball trees");
  return s;
}

}  // namespace rtr
