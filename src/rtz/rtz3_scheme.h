// The name-dependent stretch-3 roundtrip routing substrate (paper Lemma 2,
// after Roditty-Thorup-Zwick [35]; implementation notes below).
//
// Construction
//   * Center set A (random sample of ~ sqrt(n ln n) nodes, resampled while
//     ball/cluster sizes exceed their O~(sqrt n) budget; deterministic greedy
//     hitting-set fallback).
//   * Global double tree per center a: InTree(a) gives every node a next-hop
//     port toward a; OutTree(a) carries Lemma 14 tree routing from a.
//   * Per-node ball double tree: Ball(v) = { w : r(v,w) < r(v,A) }; by the
//     closure property (rtz/balls.h) shortest paths between v and ball
//     members stay inside the ball, so in/out trees within the induced ball
//     realize exact distances.  Every ball member stores O(1) words per ball
//     containing it.
//
// Address (the paper's R3(v)): v's name, its nearest center a_v, and v's
// Lemma 14 label in OutTree(a_v) -- O(log^2 n) bits.
//
// Routing a leg u -> v, given R3(v):
//   case 1: v in Ball(u)   -> descend u's own ball out-tree.    exact d(u,v)
//   case 2: u in Ball(v)   -> climb InTree(Ball(v)) toward v.   exact d(u,v)
//   case 3: otherwise      -> climb to a_v, descend to v:
//             d(u,a_v) + d(a_v,v) <= d(u,v) + r(v,a_v) <= d(u,v) + r(u,v),
//           the last step because u outside Ball(v) means r(v,u) >= r(v,A).
//
// Hence every leg satisfies Lemma 2's inequality p(u,v) <= d(u,v) + r(u,v),
// and a full roundtrip has stretch <= 3.
#ifndef RTR_RTZ_RTZ3_SCHEME_H
#define RTR_RTZ_RTZ3_SCHEME_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/names.h"
#include "net/simulator.h"
#include "net/table_stats.h"
#include "rt/metric.h"
#include "rtz/balls.h"
#include "treeroute/tree_router.h"

namespace rtr {

/// A small per-node dictionary keyed by NodeName, with BOTH lookup layouts
/// in the binary so the bench harness re-measures one against the other on
/// every run (hot_path_deltas):
///
///   * SoA (the default): keys packed in their own contiguous sorted vector,
///     payloads in a parallel vector.  A binary-search probe touches 4-byte
///     keys only -- ~16 keys per cache line instead of one pair per line for
///     fat payloads (TreeLabel is 32+ bytes) -- which is what cuts the
///     per-hop misses the profile shows: every forwarding hop lands on a
///     DIFFERENT node's tables, so the searched lines are almost never
///     resident.
///   * AoS (the reference layout, PR <= 4): one sorted vector of
///     (key, payload) pairs, binary-searched whole.
///
/// Only the layout chosen at finalize() is materialized; lookup results are
/// identical by construction (same sorted order, same lower_bound).
template <typename V>
class NameDict {
 public:
  /// Appends an entry; call finalize() once after the last add().
  void add(NodeName key, V value) { aos_.emplace_back(key, std::move(value)); }

  /// Sorts by key and packs into the requested layout.
  void finalize(bool soa) {
    std::sort(aos_.begin(), aos_.end(),
              [](const std::pair<NodeName, V>& a,
                 const std::pair<NodeName, V>& b) { return a.first < b.first; });
    soa_ = soa;
    if (soa_) {
      keys_.reserve(aos_.size());
      values_.reserve(aos_.size());
      for (auto& [k, v] : aos_) {
        keys_.push_back(k);
        values_.push_back(std::move(v));
      }
      aos_.clear();
      aos_.shrink_to_fit();
    }
  }

  /// Binary search; nullptr when absent.
  [[nodiscard]] const V* find(NodeName key) const {
    if (soa_) {
      const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
      if (it == keys_.end() || *it != key) return nullptr;
      return &values_[static_cast<std::size_t>(it - keys_.begin())];
    }
    const auto it = std::lower_bound(
        aos_.begin(), aos_.end(), key,
        [](const std::pair<NodeName, V>& p, NodeName k) { return p.first < k; });
    return it != aos_.end() && it->first == key ? &it->second : nullptr;
  }

  [[nodiscard]] std::size_t size() const {
    return soa_ ? keys_.size() : aos_.size();
  }
  /// Entry access in sorted-key order (snapshot encode, table accounting);
  /// identical sequence for both layouts, so snapshot bytes never depend on
  /// the layout flag.
  [[nodiscard]] NodeName key_at(std::size_t i) const {
    return soa_ ? keys_[i] : aos_[i].first;
  }
  [[nodiscard]] const V& value_at(std::size_t i) const {
    return soa_ ? values_[i] : aos_[i].second;
  }

 private:
  friend struct AuditTestPeer;
  std::vector<std::pair<NodeName, V>> aos_;  // staging + AoS layout
  std::vector<NodeName> keys_;               // SoA layout
  std::vector<V> values_;
  bool soa_ = true;
};

/// The topology-dependent address R3(v).
struct RtzAddress {
  NodeName name = kNoNode;
  std::int32_t center_index = -1;  // index into the scheme's center list
  TreeLabel center_label;          // v's label in OutTree(center)
};

/// Snapshot encoding of R3 addresses; shared by the TINN schemes that store
/// them in their dictionaries.
void save_rtz_address(SnapshotWriter& w, const RtzAddress& a);
[[nodiscard]] RtzAddress load_rtz_address(SnapshotReader& r);

/// Phase of one routing leg.
enum class LegPhase : std::uint8_t {
  kBallDown,    // descending the source's own ball out-tree
  kBallUp,      // climbing the destination's ball in-tree
  kCenterUp,    // climbing toward the destination's home center
  kCenterDown,  // descending the center's global out-tree
};

/// Writable leg state carried in packet headers.
struct LegHeader {
  LegPhase phase = LegPhase::kCenterUp;
  RtzAddress target;
  NodeName ball_root = kNoNode;  // kBallDown: whose ball tree we are in
  TreeLabel ball_label;          // kBallDown: target's label in that tree
};

/// One local forwarding step of a leg.
struct LegStep {
  bool arrived = false;
  Port port = kNoPort;
};

class Rtz3Scheme {
 public:
  struct Options {
    int max_resample = 5;
    /// Accept a center sample when max ball/cluster <= slack * sqrt(n ln n).
    double size_slack = 6.0;
    /// Use the deterministic greedy hitting set instead of sampling.
    bool greedy_centers = false;
    /// Pack the per-node dictionaries structure-of-arrays (keys separate
    /// from payloads).  false keeps the PR <= 4 array-of-pairs layout; both
    /// live in the binary so the bench harness re-measures the delta.
    bool soa_dicts = true;
    /// Construction fan-out (balls, center trees, ball trees, finalize);
    /// <= 0 resolves the process default.  Bit-identical for any value.
    int threads = 0;
  };

  Rtz3Scheme(const Digraph& g, const RoundtripMetric& metric,
             const NameAssignment& names, Rng& rng, Options options);
  Rtz3Scheme(const Digraph& g, const RoundtripMetric& metric,
             const NameAssignment& names, Rng& rng)
      : Rtz3Scheme(g, metric, names, rng, Options{}) {}

  /// Snapshot path: rehydrates tables saved with save() against the same
  /// graph (the caller guarantees `g` outlives the scheme, exactly as the
  /// build constructor does).
  Rtz3Scheme(SnapshotReader& r, const Digraph& g);
  void save(SnapshotWriter& w) const;

  // -- substrate interface consumed by the TINN schemes ---------------------

  /// R3(v) for any name (preprocessing-time lookup used to build tables).
  [[nodiscard]] const RtzAddress& address_of_name(NodeName v) const {
    return addresses_[static_cast<std::size_t>(names_.id_of(v))];
  }
  [[nodiscard]] const RtzAddress& own_address(NodeId v) const {
    return addresses_[static_cast<std::size_t>(v)];
  }

  /// Starts a leg at node `at` toward `target`; arrived=true iff at is the
  /// target already.  Uses only at's local tables.
  [[nodiscard]] LegStep start_leg(NodeId at, const RtzAddress& target,
                                  LegHeader& leg) const;

  /// One forwarding step; uses only at's local tables.
  [[nodiscard]] LegStep step_leg(NodeId at, LegHeader& leg) const;

  [[nodiscard]] std::int64_t leg_header_bits(const LegHeader& leg) const;
  [[nodiscard]] std::int64_t address_bits(const RtzAddress& a) const;

  // -- per-node dictionary probes (the per-hop hot lookups) -----------------
  // Exposed so the bench harness can drive the exact forwarding-time lookup
  // against both dictionary layouts; start_leg/step_leg route through these.

  /// target's label in at's own ball out-tree, or nullptr (case 1 probe).
  [[nodiscard]] const TreeLabel* find_ball_label(NodeId at,
                                                 NodeName target) const {
    return tables_[static_cast<std::size_t>(at)].ball_out_label.find(target);
  }
  /// at's up-port in root's ball in-tree, or nullptr (case 2 probe).
  [[nodiscard]] const Port* find_member_up_port(NodeId at,
                                                NodeName root) const {
    return tables_[static_cast<std::size_t>(at)].member_up_port.find(root);
  }
  /// at's table in root's ball out-tree, or nullptr (ball descent).
  [[nodiscard]] const TreeNodeTable* find_member_table(NodeId at,
                                                       NodeName root) const {
    return tables_[static_cast<std::size_t>(at)].member_out_tab.find(root);
  }

  // -- standalone name-dependent roundtrip scheme ---------------------------

  enum class Mode : std::uint8_t { kNew, kOutbound, kReturn, kInbound };

  struct Header {
    Mode mode = Mode::kNew;
    NodeName dest = kNoNode;
    RtzAddress dest_addr;  // known up-front: this is the name-DEPENDENT model
    NodeName src = kNoNode;
    RtzAddress src_addr;
    LegHeader leg;
  };

  [[nodiscard]] Header make_packet(NodeName dest) const;
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] const BallSystem& balls() const { return balls_; }
  [[nodiscard]] int resamples_used() const { return resamples_used_; }
  [[nodiscard]] std::string name() const { return "rtz3(name-dep)"; }

  /// Lemma 2: every leg satisfies p(u,v) <= d(u,v) + r(u,v), so a roundtrip
  /// costs at most 3 r(s,t).
  [[nodiscard]] double stretch_bound() const { return 3.0; }

  /// Auditable: delegates to the ball system, then checks the address table
  /// (name/center consistency with the balls) and every per-node dictionary
  /// (sorted unique keys, center arrays sized to the center set, dictionary
  /// populations matching ball/cluster sizes).
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  struct NodeTables {
    // Global center structures: indexed by center index.
    std::vector<Port> center_up_port;            // next hop toward center
    std::vector<TreeNodeTable> center_tree_tab;  // this node in OutTree(a)
    // Associative tables as flat name-sorted dictionaries (binary-searched):
    // ball and cluster memberships are O~(sqrt n) small, so flat beats
    // hashing on memory, on cache behavior, and on snapshot decode time.
    // The dictionaries default to the SoA layout (see NameDict).
    // Own ball: labels of members in this node's ball out-tree.
    NameDict<TreeLabel> ball_out_label;
    // Per ball containing this node (keyed by the ball root's name).
    NameDict<TreeNodeTable> member_out_tab;
    NameDict<Port> member_up_port;
  };

  [[nodiscard]] NodeId id_of(NodeName v) const { return names_.id_of(v); }

  const Digraph& graph_;
  NameAssignment names_;
  BallSystem balls_;
  std::vector<RtzAddress> addresses_;
  std::vector<NodeTables> tables_;
  int resamples_used_ = 0;
  std::int64_t node_space_ = 0;
  std::int64_t port_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_RTZ_RTZ3_SCHEME_H
