// The name-dependent stretch-3 roundtrip routing substrate (paper Lemma 2,
// after Roditty-Thorup-Zwick [35]; implementation notes below).
//
// Construction
//   * Center set A (random sample of ~ sqrt(n ln n) nodes, resampled while
//     ball/cluster sizes exceed their O~(sqrt n) budget; deterministic greedy
//     hitting-set fallback).
//   * Global double tree per center a: InTree(a) gives every node a next-hop
//     port toward a; OutTree(a) carries Lemma 14 tree routing from a.
//   * Per-node ball double tree: Ball(v) = { w : r(v,w) < r(v,A) }; by the
//     closure property (rtz/balls.h) shortest paths between v and ball
//     members stay inside the ball, so in/out trees within the induced ball
//     realize exact distances.  Every ball member stores O(1) words per ball
//     containing it.
//
// Address (the paper's R3(v)): v's name, its nearest center a_v, and v's
// Lemma 14 label in OutTree(a_v) -- O(log^2 n) bits.
//
// Routing a leg u -> v, given R3(v):
//   case 1: v in Ball(u)   -> descend u's own ball out-tree.    exact d(u,v)
//   case 2: u in Ball(v)   -> climb InTree(Ball(v)) toward v.   exact d(u,v)
//   case 3: otherwise      -> climb to a_v, descend to v:
//             d(u,a_v) + d(a_v,v) <= d(u,v) + r(v,a_v) <= d(u,v) + r(u,v),
//           the last step because u outside Ball(v) means r(v,u) >= r(v,A).
//
// Hence every leg satisfies Lemma 2's inequality p(u,v) <= d(u,v) + r(u,v),
// and a full roundtrip has stretch <= 3.
//
// Storage: every per-node table lives in flat, relocatable CSR arrays behind
// FlatVec (keys packed per node inside one global sorted-key array, POD
// payloads parallel to it, labels split into per-entry DFS numbers plus hop
// ranges over one LightHop array).  A scheme therefore either owns its
// arrays or views them inside a mapped snapshot arena (io/arena.h) with zero
// copying; hot probes binary-search 4-byte key rows -- ~16 keys per cache
// line -- exactly like the former SoA dictionary layout.
#ifndef RTR_RTZ_RTZ3_SCHEME_H
#define RTR_RTZ_RTZ3_SCHEME_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/names.h"
#include "net/simulator.h"
#include "net/table_stats.h"
#include "rt/metric.h"
#include "rtz/balls.h"
#include "treeroute/tree_router.h"
#include "util/flat_vec.h"

namespace rtr {

class ArenaStorage;  // io/arena.h
class ArenaView;
class ArenaWriter;
struct ChurnDelta;   // graph/churn_delta.h

/// A small per-node dictionary keyed by NodeName: one sorted vector of
/// (key, payload) pairs, binary-searched.  The scheme itself serves hot
/// probes from flat CSR arrays (see the header comment); NameDict remains as
/// (a) the staging structure construction and the v1 streamed decode scatter
/// into before flattening, and (b) the reference array-of-pairs layout the
/// bench harness mirrors a built scheme's tables into, so the flat-vs-AoS
/// hot-path delta is re-measured against identical probe outcomes on every
/// run.
template <typename V>
class NameDict {
 public:
  /// Appends an entry; call finalize() once after the last add().
  void add(NodeName key, V value) {
    entries_.emplace_back(key, std::move(value));
  }

  /// Sorts by key.
  void finalize() {
    std::sort(entries_.begin(), entries_.end(),
              [](const std::pair<NodeName, V>& a,
                 const std::pair<NodeName, V>& b) { return a.first < b.first; });
  }

  /// Binary search; nullptr when absent.
  [[nodiscard]] const V* find(NodeName key) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const std::pair<NodeName, V>& p, NodeName k) { return p.first < k; });
    return it != entries_.end() && it->first == key ? &it->second : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Entry access in sorted-key order (snapshot encode, flattening).
  [[nodiscard]] NodeName key_at(std::size_t i) const {
    return entries_[i].first;
  }
  [[nodiscard]] const V& value_at(std::size_t i) const {
    return entries_[i].second;
  }

 private:
  std::vector<std::pair<NodeName, V>> entries_;
};

/// The topology-dependent address R3(v).
struct RtzAddress {
  NodeName name = kNoNode;
  std::int32_t center_index = -1;  // index into the scheme's center list
  TreeLabel center_label;          // v's label in OutTree(center)
};

/// Snapshot encoding of R3 addresses; shared by the TINN schemes that store
/// them in their dictionaries.
void save_rtz_address(SnapshotWriter& w, const RtzAddress& a);
[[nodiscard]] RtzAddress load_rtz_address(SnapshotReader& r);

/// Phase of one routing leg.
enum class LegPhase : std::uint8_t {
  kBallDown,    // descending the source's own ball out-tree
  kBallUp,      // climbing the destination's ball in-tree
  kCenterUp,    // climbing toward the destination's home center
  kCenterDown,  // descending the center's global out-tree
};

/// Writable leg state carried in packet headers.
struct LegHeader {
  LegPhase phase = LegPhase::kCenterUp;
  RtzAddress target;
  NodeName ball_root = kNoNode;  // kBallDown: whose ball tree we are in
  TreeLabel ball_label;          // kBallDown: target's label in that tree
};

/// One local forwarding step of a leg.
struct LegStep {
  bool arrived = false;
  Port port = kNoPort;
};

class Rtz3Scheme {
 public:
  struct Options {
    int max_resample = 5;
    /// Accept a center sample when max ball/cluster <= slack * sqrt(n ln n).
    double size_slack = 6.0;
    /// Use the deterministic greedy hitting set instead of sampling.
    bool greedy_centers = false;
    /// Construction fan-out (balls, center trees, ball trees, finalize);
    /// <= 0 resolves the process default.  Bit-identical for any value.
    int threads = 0;
  };

  Rtz3Scheme(const Digraph& g, const RoundtripMetric& metric,
             const NameAssignment& names, Rng& rng, Options options);
  Rtz3Scheme(const Digraph& g, const RoundtripMetric& metric,
             const NameAssignment& names, Rng& rng)
      : Rtz3Scheme(g, metric, names, rng, Options{}) {}

  /// Snapshot path: rehydrates tables saved with save() against the same
  /// graph (the caller guarantees `g` outlives the scheme, exactly as the
  /// build constructor does).
  Rtz3Scheme(SnapshotReader& r, const Digraph& g);
  void save(SnapshotWriter& w) const;

  /// Appends every table as typed arena sections under `prefix` (e.g.
  /// "scheme/" standalone, "scheme/s/" as the stretch6 substrate).
  void save_arena(ArenaWriter& w, const std::string& prefix) const;

  /// Rebuilds a scheme whose tables are zero-copy views into an arena.  `g`
  /// and `names` are the snapshot's own graph/name sections; the caller
  /// keeps `g` alive (exactly as the build constructor requires).  Only the
  /// O(n) address list is materialized.
  [[nodiscard]] static Rtz3Scheme from_arena(const ArenaView& a,
                                             const std::string& prefix,
                                             const Digraph& g,
                                             const NameAssignment& names);

  /// Incremental repair (ROADMAP: incremental epoch repair under churn):
  /// produces the scheme a from-scratch build against `new_graph` -- with
  /// the same names, options, and a fresh build rng -- would produce, but
  /// recomputes only the balls whose radius the churn can reach (certified
  /// by the rt/repair_oracle.h dirtiness oracle) and splices every other
  /// ball row, label, table, and up-port verbatim from `old_scheme`.  The
  /// global center phase is always recomputed (2|A| SSSPs, cheap next to the
  /// per-node ball work).  The caller must keep `new_graph` alive for the
  /// scheme's lifetime, exactly as with the build constructor.
  ///
  /// Returns nullptr whenever bitwise equivalence with the from-scratch
  /// build cannot be certified cheaply: greedy centers, a resampled old
  /// center set, a center draw that no longer matches the old one, changed
  /// node count or names, or spliced ball/cluster sizes exceeding the
  /// Lemma 2 budget (a rebuild would resample).  Callers fall back to a
  /// full build; nullptr is a policy outcome, not an error.
  [[nodiscard]] static std::shared_ptr<const Rtz3Scheme> repair(
      const Rtz3Scheme& old_scheme, const Digraph& old_graph,
      const Digraph& new_graph, const RoundtripMetric& new_metric,
      const NameAssignment& names, Rng& rng, const ChurnDelta& delta,
      Options options);

  // -- substrate interface consumed by the TINN schemes ---------------------

  /// R3(v) for any name (preprocessing-time lookup used to build tables).
  [[nodiscard]] const RtzAddress& address_of_name(NodeName v) const {
    return addresses_[static_cast<std::size_t>(names_.id_of(v))];
  }
  [[nodiscard]] const RtzAddress& own_address(NodeId v) const {
    return addresses_[static_cast<std::size_t>(v)];
  }

  /// Starts a leg at node `at` toward `target`; arrived=true iff at is the
  /// target already.  Uses only at's local tables.
  [[nodiscard]] LegStep start_leg(NodeId at, const RtzAddress& target,
                                  LegHeader& leg) const;

  /// One forwarding step; uses only at's local tables.
  [[nodiscard]] LegStep step_leg(NodeId at, LegHeader& leg) const;

  [[nodiscard]] std::int64_t leg_header_bits(const LegHeader& leg) const;
  [[nodiscard]] std::int64_t address_bits(const RtzAddress& a) const;

  // -- per-node dictionary probes (the per-hop hot lookups) -----------------
  // Exposed so the bench harness can drive the exact forwarding-time lookup
  // against the flat tables; start_leg/step_leg route through these.

  /// target's label in at's own ball out-tree, or nullopt (case 1 probe).
  /// The label is assembled from the flat CSR hop range; with <= 8 light
  /// hops (the dominant case, Lemma 14) no allocation happens.
  [[nodiscard]] std::optional<TreeLabel> find_ball_label(
      NodeId at, NodeName target) const {
    const auto vz = static_cast<std::size_t>(at);
    const NodeName* base = ball_key_.data();
    const NodeName* first = base + ball_off_[vz];
    const NodeName* last = base + ball_off_[vz + 1];
    const NodeName* it = std::lower_bound(first, last, target);
    if (it == last || *it != target) return std::nullopt;
    return label_at(static_cast<std::size_t>(it - base));
  }
  /// at's up-port in root's ball in-tree, or nullptr (case 2 probe).
  [[nodiscard]] const Port* find_member_up_port(NodeId at,
                                                NodeName root) const {
    const std::size_t e = member_entry(at, root);
    return e == kNoEntry ? nullptr : &member_up_[e];
  }
  /// at's table in root's ball out-tree, or nullptr (ball descent).
  [[nodiscard]] const TreeNodeTable* find_member_table(NodeId at,
                                                       NodeName root) const {
    const std::size_t e = member_entry(at, root);
    return e == kNoEntry ? nullptr : &member_tab_[e];
  }

  // -- standalone name-dependent roundtrip scheme ---------------------------

  enum class Mode : std::uint8_t { kNew, kOutbound, kReturn, kInbound };

  struct Header {
    Mode mode = Mode::kNew;
    NodeName dest = kNoNode;
    RtzAddress dest_addr;  // known up-front: this is the name-DEPENDENT model
    NodeName src = kNoNode;
    RtzAddress src_addr;
    LegHeader leg;
  };

  [[nodiscard]] Header make_packet(NodeName dest) const;
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] const BallSystem& balls() const { return balls_; }
  [[nodiscard]] int resamples_used() const { return resamples_used_; }
  [[nodiscard]] std::string name() const { return "rtz3(name-dep)"; }

  /// Lemma 2: every leg satisfies p(u,v) <= d(u,v) + r(u,v), so a roundtrip
  /// costs at most 3 r(s,t).
  [[nodiscard]] double stretch_bound() const { return 3.0; }

  /// Auditable: delegates to the ball system, then checks the address table
  /// (name/center consistency with the balls) and the flat per-node tables
  /// (CSR offsets framing the key arrays, sorted unique keys per row, center
  /// arrays sized to the center set, row populations matching ball/cluster
  /// sizes).
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;

  /// Staging shape used while building and while decoding a v1 stream; the
  /// dictionaries are flattened into the CSR arrays by adopt_tables().
  struct NodeTables {
    // Own ball: labels of members in this node's ball out-tree.
    NameDict<TreeLabel> ball_out_label;
    // Per ball containing this node (keyed by the ball root's name).
    NameDict<TreeNodeTable> member_out_tab;
    NameDict<Port> member_up_port;
  };

  /// Arena-load path: binds the references, everything else follows.
  Rtz3Scheme(const Digraph& g, const NameAssignment& names)
      : graph_(g), names_(names) {}

  /// Flattens finalized staging dictionaries into the CSR arrays (identical
  /// output for the build path and the v1 decode: both scatter in sorted-key
  /// order).
  void adopt_tables(std::vector<NodeTables>&& tables);

  [[nodiscard]] TreeLabel label_at(std::size_t entry) const;

  static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t member_entry(NodeId at, NodeName root) const {
    const auto vz = static_cast<std::size_t>(at);
    const NodeName* base = member_key_.data();
    const NodeName* first = base + member_off_[vz];
    const NodeName* last = base + member_off_[vz + 1];
    const NodeName* it = std::lower_bound(first, last, root);
    if (it == last || *it != root) return kNoEntry;
    return static_cast<std::size_t>(it - base);
  }

  [[nodiscard]] NodeId id_of(NodeName v) const { return names_.id_of(v); }

  const Digraph& graph_;
  NameAssignment names_;
  BallSystem balls_;
  std::vector<RtzAddress> addresses_;
  std::int64_t center_count_ = 0;
  // Global center structures, row-major n x center_count.
  FlatVec<Port> center_up_port_;            // next hop toward each center
  FlatVec<TreeNodeTable> center_tree_tab_;  // this node in each OutTree(a)
  // Own-ball label dictionary, CSR over nodes: row v's sorted member names
  // are ball_key_[ball_off_[v] .. ball_off_[v+1]); entry e's label is
  // (ball_dfs_[e], ball_hops_[ball_hop_off_[e] .. ball_hop_off_[e+1])).
  FlatVec<std::int64_t> ball_off_;   // n + 1
  FlatVec<NodeName> ball_key_;
  FlatVec<std::int32_t> ball_dfs_;   // parallel to ball_key_
  FlatVec<std::int64_t> ball_hop_off_;  // ball_key_.size() + 1
  FlatVec<LightHop> ball_hops_;
  // Membership dictionaries, CSR over nodes: row v's sorted ball-root names
  // are member_key_[member_off_[v] .. member_off_[v+1]); POD payloads are
  // parallel (entry e: out-tree table member_tab_[e], up-port member_up_[e]).
  FlatVec<std::int64_t> member_off_;  // n + 1
  FlatVec<NodeName> member_key_;
  FlatVec<TreeNodeTable> member_tab_;
  FlatVec<Port> member_up_;
  /// Keepalive when the arrays are views into a mapped arena.
  std::shared_ptr<const ArenaStorage> arena_;
  int resamples_used_ = 0;
  std::int64_t node_space_ = 0;
  std::int64_t port_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_RTZ_RTZ3_SCHEME_H
