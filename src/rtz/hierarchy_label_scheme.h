// The Section 4.4 remark, realized: "we remark that by using the sparse
// cover presented here, the name-dependent scheme in [35] can be improved".
//
// A name-dependent roundtrip scheme over the Theorem 13 double-tree
// hierarchy.  The globally valid label of v lists, per level, v's *home*
// double-tree id and v's Lemma 14 address inside it.  A source u (who knows
// its own tree memberships and its own addresses within them) scans levels
// bottom-up for the first home tree of v that contains u and routes the
// whole roundtrip through that tree's center.
//
// Guarantee: at level ceil(log2 r(u,v)) the home tree of v spans
// N-hat(v) which contains u, and every tree at level l has RTHeight
// <= (2k-1) 2^l, so the roundtrip costs at most 4 (2k-1) 2^l <= 8(2k-1)
// r(u,v).  (With the paper's unsubstituted RTZ covers this remark yields
// their improved 4k-2+eps; our beta follows the same construction with the
// Theorem 10 radius constant.)
#ifndef RTR_RTZ_HIERARCHY_LABEL_SCHEME_H
#define RTR_RTZ_HIERARCHY_LABEL_SCHEME_H

#include <memory>
#include <string>
#include <vector>

#include "core/names.h"
#include "net/simulator.h"
#include "rtz/handshake.h"

namespace rtr {

/// The globally valid, topology-dependent label of a node: one (home tree,
/// address) pair per level.  o(log^2 n log RTDiam) bits.
struct HierarchyLabel {
  NodeName name = kNoNode;
  std::vector<std::int32_t> home_tree;   // per level
  std::vector<TreeLabel> home_address;   // per level
};

class HierarchyLabelScheme {
 public:
  struct Options {
    int k = 3;
  };

  HierarchyLabelScheme(const Digraph& g, const RoundtripMetric& metric,
                       const NameAssignment& names, Options options);
  HierarchyLabelScheme(const Digraph& g, const RoundtripMetric& metric,
                       const NameAssignment& names)
      : HierarchyLabelScheme(g, metric, names, Options{}) {}

  enum class Mode : std::uint8_t { kNew, kOutbound, kReturn, kInbound };

  struct Header {
    Mode mode = Mode::kNew;
    NodeName dest = kNoNode;
    NodeName src = kNoNode;
    // Chosen at the source from the destination's label + the source's own
    // memberships: the common tree and both endpoints' addresses in it.
    TreeRef tree;
    TreeLabel dest_label;
    TreeLabel src_label;
    DtLeg leg;
  };

  /// Name-dependent model: the packet arrives with the destination's label.
  [[nodiscard]] Header make_packet(NodeName dest) const;
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] std::string name() const {
    return "hier-label(name-dep,k=" + std::to_string(k_) + ")";
  }

  /// Worst-case roundtrip stretch of the scheme: 8 (2k - 1).
  [[nodiscard]] double stretch_bound() const { return 8.0 * (2 * k_ - 1); }

  [[nodiscard]] const HierarchyLabel& label_of(NodeId v) const {
    return labels_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const CoverHierarchy& hierarchy() const { return *hierarchy_; }

  /// Auditable: delegates to the naming and cover hierarchy, then checks
  /// every node's label lists one (home tree, address) pair per level, each
  /// home tree containing the node and agreeing with the hierarchy's own
  /// home assignment.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  int k_;
  NameAssignment names_;
  std::shared_ptr<const CoverHierarchy> hierarchy_;
  std::vector<HierarchyLabel> labels_;
  std::int64_t node_space_ = 0;
  std::int64_t port_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_RTZ_HIERARCHY_LABEL_SCHEME_H
