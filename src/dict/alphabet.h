// Base-q digit machinery for the distributed dictionary (Sections 2, 3, 4).
//
// The paper writes each name u in {0..n-1} as <u>, its base n^{1/k}
// representation padded with leading zeros to exactly k digits over the
// alphabet Sigma = {0..n^{1/k}-1}; sigma^i(<u>) extracts the i most
// significant digits.  Blocks B_alpha group the names sharing a (k-1)-digit
// prefix; for k = 2 this is Section 2's flat partition of the address space
// into sqrt(n)-sized blocks B_i = { i*sqrt(n) .. (i+1)*sqrt(n)-1 }.
//
// The paper assumes n is a perfect k-th power; we generalize to arbitrary n
// with q = ceil(n^{1/k}), so some high blocks are partially filled or empty.
// Prefixes realizable by an existing name are the only ones routing can ever
// query (it always matches prefixes of an actual destination), and the only
// ones Lemma 4 coverage is required for.
#ifndef RTR_DICT_ALPHABET_H
#define RTR_DICT_ALPHABET_H

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;
class AuditReport;  // audit/audit.h

using BlockId = std::int64_t;
using PrefixValue = std::int64_t;

class Alphabet {
 public:
  /// Requires n >= 1 and 2 <= k <= 20; picks the smallest q with q^k >= n.
  Alphabet(NodeId n, int k);

  /// Snapshot path: an alphabet is fully determined by (n, k).
  static Alphabet load(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  [[nodiscard]] NodeId n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::int64_t q() const { return q_; }

  /// Digit i of <u> (i = 0 is most significant). Requires 0 <= i < k.
  [[nodiscard]] int digit(NodeName u, int i) const;

  /// Numeric value of sigma^i(<u>), i.e. the i most significant digits read
  /// as a base-q number.  prefix_value(u, 0) == 0 for every u.
  [[nodiscard]] PrefixValue prefix_value(NodeName u, int i) const;

  /// Length of the longest common prefix of <u> and <t>, in digits (0..k).
  [[nodiscard]] int lcp(NodeName u, NodeName t) const;

  /// Block of u: value of its (k-1)-digit prefix.
  [[nodiscard]] BlockId block_of(NodeName u) const {
    return prefix_value(u, k_ - 1);
  }

  /// Number of blocks containing at least one existing name.
  [[nodiscard]] std::int64_t relevant_block_count() const {
    return (static_cast<std::int64_t>(n_) + q_ - 1) / q_;
  }

  /// sigma^i of a block (its first i digits as a value). Requires i <= k-1.
  [[nodiscard]] PrefixValue block_prefix_value(BlockId b, int i) const;

  /// Existing names in block b (those < n), ascending.
  [[nodiscard]] std::vector<NodeName> block_members(BlockId b) const;

  /// Number of length-i prefixes realizable by an existing name.  Realizable
  /// prefix values are exactly 0 .. realizable_prefix_count(i)-1 because
  /// names are dense in [0, n).
  [[nodiscard]] std::int64_t realizable_prefix_count(int i) const;

  /// The name formed by block b followed by last digit tau, or kNoNode if
  /// that name does not exist (>= n).
  [[nodiscard]] NodeName compose(BlockId b, int tau) const;

  /// q^i (i <= k).
  [[nodiscard]] std::int64_t power(int i) const {
    return powers_[static_cast<std::size_t>(i)];
  }

  /// Auditable: parameter ranges (n >= 1, 2 <= k <= 20), q minimal with
  /// q^k >= n, and the cached power table exactly q^0 .. q^k.  Matters on
  /// the snapshot path, where (n, k) arrive from untrusted bytes.
  void audit(AuditReport& report) const;

 private:
  NodeId n_;
  int k_;
  std::int64_t q_;
  std::vector<std::int64_t> powers_;  // q^0 .. q^k
};

}  // namespace rtr

#endif  // RTR_DICT_ALPHABET_H
