#include "dict/block_assignment.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/snapshot_format.h"
#include "util/parallel.h"

namespace rtr {

void save_block_assignment(SnapshotWriter& w, const BlockAssignment& a) {
  w.vec(a.blocks_of,
        [](SnapshotWriter& ww, const std::vector<BlockId>& blocks) {
          ww.vec_i64(blocks);
        });
  w.i32(static_cast<std::int32_t>(a.randomized_tries));
  w.i64(a.greedy_repairs);
}

BlockAssignment load_block_assignment(SnapshotReader& r) {
  BlockAssignment a;
  a.blocks_of = r.vec<std::vector<BlockId>>(
      [](SnapshotReader& rr) { return rr.vec_i64(); }, 8);
  a.randomized_tries = static_cast<int>(r.i32());
  a.greedy_repairs = r.i64();
  return a;
}

void BlockAssignment::audit(AuditReport& report, const Alphabet& alpha) const {
  auto scope = report.scope("blocks");
  report.check("one-row-per-node",
               blocks_of.size() == static_cast<std::size_t>(alpha.n()),
               "blocks_of must have one S_v per node");

  const std::int64_t block_count = alpha.relevant_block_count();
  bool rows_ok = true;
  std::string rows_detail;
  for (std::size_t v = 0; rows_ok && v < blocks_of.size(); ++v) {
    const auto& row = blocks_of[v];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] < 0 || row[i] >= block_count ||
          (i > 0 && row[i - 1] >= row[i])) {
        rows_ok = false;
        rows_detail = "S_" + std::to_string(v) +
                      " not sorted/unique/in-range at index " +
                      std::to_string(i);
        break;
      }
    }
  }
  report.check("rows-sorted-unique", rows_ok, std::move(rows_detail));

  // Lemma 1 / Lemma 4: O(log n) blocks per node.  The builder starts at
  // 1.25 log2 n and densifies 1.5x per retry; block_slack covers every
  // assignment it can realize.
  const double budget =
      report.budgets().block_slack *
      std::log2(std::max<double>(2.0, static_cast<double>(alpha.n())));
  report.measure("blocks-per-node", static_cast<double>(max_blocks_per_node()),
                 budget, "max |S_v| vs block_slack * log2 n");
}

Neighborhoods compute_neighborhoods(const RoundtripMetric& m,
                                    const NameAssignment& names,
                                    NodeId max_size, int threads) {
  Neighborhoods hoods;
  const NodeId n = m.node_count();
  const NodeId want = (max_size <= 0) ? n : std::min<NodeId>(max_size, n);
  m.prepare_neighborhoods(want, threads);
  hoods.order.resize(static_cast<std::size_t>(n));
  parallel_tickets(n, resolve_apsp_threads(threads), [&] {
    return [&](std::int64_t v) {
      hoods.order[static_cast<std::size_t>(v)] =
          m.neighborhood(static_cast<NodeId>(v), want, names.names());
    };
  });
  return hoods;
}

bool BlockAssignment::holds(NodeId v, BlockId b) const {
  const auto& s = blocks_of[static_cast<std::size_t>(v)];
  return std::binary_search(s.begin(), s.end(), b);
}

std::int64_t BlockAssignment::max_blocks_per_node() const {
  std::int64_t mx = 0;
  for (const auto& s : blocks_of) {
    mx = std::max(mx, static_cast<std::int64_t>(s.size()));
  }
  return mx;
}

namespace {

// Does node v hold any block whose i-digit prefix equals tau?
bool node_covers(const Alphabet& alpha, const BlockAssignment& a, NodeId v,
                 int i, PrefixValue tau) {
  for (BlockId b : a.blocks_of[static_cast<std::size_t>(v)]) {
    if (alpha.block_prefix_value(b, i) == tau) return true;
  }
  return false;
}

// Neighborhood size at level i: q^i clamped to n (the paper's n^{i/k} under
// n = q^k).
NodeId level_size(const Alphabet& alpha, int i) {
  return static_cast<NodeId>(
      std::min<std::int64_t>(alpha.power(i), alpha.n()));
}

}  // namespace

bool verify_coverage(const Alphabet& alpha, const Neighborhoods& hoods,
                     const NameAssignment& names,
                     const BlockAssignment& assignment) {
  (void)names;
  const NodeId n = alpha.n();
  for (NodeId v = 0; v < n; ++v) {
    const auto& order = hoods.order[static_cast<std::size_t>(v)];
    for (int i = 1; i < alpha.k(); ++i) {
      const NodeId m = level_size(alpha, i);
      const std::int64_t prefixes = alpha.realizable_prefix_count(i);
      // Mark which prefixes are covered by the first m neighbors.
      std::vector<char> covered(static_cast<std::size_t>(prefixes), 0);
      std::int64_t remaining = prefixes;
      for (NodeId idx = 0; idx < m && remaining > 0; ++idx) {
        NodeId w = order[static_cast<std::size_t>(idx)];
        for (BlockId b : assignment.blocks_of[static_cast<std::size_t>(w)]) {
          PrefixValue tau = alpha.block_prefix_value(b, i);
          if (tau < prefixes && !covered[static_cast<std::size_t>(tau)]) {
            covered[static_cast<std::size_t>(tau)] = 1;
            --remaining;
          }
        }
      }
      if (remaining > 0) return false;
    }
  }
  return true;
}

BlockAssignment assign_blocks(const Alphabet& alpha,
                              const RoundtripMetric& metric,
                              const NameAssignment& names,
                              const Neighborhoods& hoods, Rng& rng,
                              BlockAssignmentOptions options) {
  (void)metric;
  const NodeId n = alpha.n();
  const std::int64_t blocks = alpha.relevant_block_count();
  BlockAssignment result;

  double factor = options.log_factor;
  for (int attempt = 1; attempt <= options.max_tries; ++attempt) {
    result.blocks_of.assign(static_cast<std::size_t>(n), {});
    const auto per_node = static_cast<std::int64_t>(std::ceil(
        factor * std::log2(std::max<double>(2.0, static_cast<double>(n)))));
    for (NodeId v = 0; v < n; ++v) {
      auto& s = result.blocks_of[static_cast<std::size_t>(v)];
      const std::int64_t want = std::min<std::int64_t>(per_node, blocks);
      if (blocks <= per_node) {
        // Tiny instance: everyone can hold everything.
        for (BlockId b = 0; b < blocks; ++b) s.push_back(b);
      } else {
        while (static_cast<std::int64_t>(s.size()) < want) {
          auto b = static_cast<BlockId>(rng.index(blocks));
          if (!std::binary_search(s.begin(), s.end(), b)) {
            s.insert(std::upper_bound(s.begin(), s.end(), b), b);
          }
        }
      }
    }
    result.randomized_tries = attempt;
    if (verify_coverage(alpha, hoods, names, result)) return result;
    factor *= 1.5;  // densify and retry, as the probabilistic proof allows
  }

  // Greedy repair: patch every remaining hole deterministically.  For each
  // uncovered (v, i, tau), give a tau-prefixed block to the least-loaded
  // member of N_i(v).
  for (NodeId v = 0; v < n; ++v) {
    const auto& order = hoods.order[static_cast<std::size_t>(v)];
    for (int i = 1; i < alpha.k(); ++i) {
      const NodeId m = level_size(alpha, i);
      const std::int64_t prefixes = alpha.realizable_prefix_count(i);
      for (PrefixValue tau = 0; tau < prefixes; ++tau) {
        bool covered = false;
        for (NodeId idx = 0; idx < m && !covered; ++idx) {
          covered = node_covers(alpha, result, order[static_cast<std::size_t>(idx)], i, tau);
        }
        if (covered) continue;
        // Pick the least-loaded neighbor and hand it the first relevant
        // block with prefix tau (one must exist: tau is realizable).
        NodeId best = order[0];
        for (NodeId idx = 1; idx < m; ++idx) {
          NodeId w = order[static_cast<std::size_t>(idx)];
          if (result.blocks_of[static_cast<std::size_t>(w)].size() <
              result.blocks_of[static_cast<std::size_t>(best)].size()) {
            best = w;
          }
        }
        const BlockId block = tau * alpha.power(alpha.k() - 1 - i);
        auto& s = result.blocks_of[static_cast<std::size_t>(best)];
        s.insert(std::upper_bound(s.begin(), s.end(), block), block);
        ++result.greedy_repairs;
      }
    }
  }
  return result;
}

}  // namespace rtr
