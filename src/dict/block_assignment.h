// The block-distribution lemmas (Lemma 1 for k = 2, Lemma 4 in general).
//
// Lemma 4: there is an assignment of O(log n) blocks S_v to each node v such
// that for every node v, every level 1 <= i < k and every realizable prefix
// tau in Sigma^i, some node w in the neighborhood N_i(v) (the first q^i nodes
// of Init_v) holds a block whose name-prefix matches tau.
//
// The paper's proof is probabilistic and "yields a simple randomized
// procedure": sample the sets, verify, retry.  We implement exactly that,
// plus a deterministic greedy repair pass that patches any residual holes
// (adding a matching block to the least-loaded neighborhood member), so
// construction always terminates; tests record that repairs are rare and the
// O(log n) per-node bound holds with the constants below.
#ifndef RTR_DICT_BLOCK_ASSIGNMENT_H
#define RTR_DICT_BLOCK_ASSIGNMENT_H

#include <vector>

#include "core/names.h"
#include "dict/alphabet.h"
#include "rt/metric.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;
class AuditReport;  // audit/audit.h

/// Per-node neighborhood prefixes of Init_v, precomputed once and shared by
/// the assignment and by the TINN schemes.
struct Neighborhoods {
  /// order[v] = the leading prefix of Init_v (nearest first; order[v][0] ==
  /// v).  Rows hold the full permutation when compute_neighborhoods was
  /// called with max_size 0, and exactly min(max_size, n) nodes otherwise --
  /// the Lemma 4 machinery only ever reads the first q^{k-1} positions, and
  /// truncated rows are what keep the sparse metric's memory O~(n sqrt n).
  std::vector<std::vector<NodeId>> order;

  /// First m nodes of Init_v.  m must not exceed the computed row length.
  [[nodiscard]] std::vector<NodeId> prefix(NodeId v, NodeId m) const {
    auto copy = order[static_cast<std::size_t>(v)];
    copy.resize(static_cast<std::size_t>(std::min<NodeId>(
        m, static_cast<NodeId>(copy.size()))));
    return copy;
  }
};

/// Builds Init prefixes for every node.  `max_size` 0 keeps the historical
/// full permutation per row; a positive value truncates every row to
/// min(max_size, n) entries, which is all the block lemmas need and avoids
/// materializing n^2 ids.  `threads` fans the per-node metric queries out
/// over the APSP thread-pool shape (<= 0 resolves the process default); the
/// result is a pure function of (m, names, max_size) for any thread count.
[[nodiscard]] Neighborhoods compute_neighborhoods(const RoundtripMetric& m,
                                                  const NameAssignment& names,
                                                  NodeId max_size = 0,
                                                  int threads = 1);

struct BlockAssignmentOptions {
  /// Initial blocks per node = ceil(log_factor * log2(max(n,2))).  Kept
  /// small enough that the dictionary genuinely *distributes* at laptop
  /// sizes (a large constant would have every node hold every block up to
  /// n ~ 2000, silently degrading tables to linear); verification retries
  /// densify by 1.5x whenever coverage fails, so Lemma 4 always holds.
  double log_factor = 1.25;
  /// Randomized retries before greedy repair kicks in.
  int max_tries = 6;
};

struct BlockAssignment {
  /// S_v, sorted ascending, by internal node id.
  std::vector<std::vector<BlockId>> blocks_of;
  /// Diagnostics for the Lemma 1 / Fig. 2 experiment.
  int randomized_tries = 0;
  std::int64_t greedy_repairs = 0;

  [[nodiscard]] bool holds(NodeId v, BlockId b) const;
  [[nodiscard]] std::int64_t max_blocks_per_node() const;

  /// Auditable: one row per node, every S_v sorted + unique with block ids
  /// inside the alphabet's realizable range, and the Lemma 1 / Lemma 4
  /// O(log n) bound (block_slack * log2 n blocks per node).  Coverage itself
  /// (every realizable prefix held in every neighborhood) stays with
  /// verify_coverage(), which needs the metric; the audit checks the shape
  /// the serving path depends on.
  void audit(AuditReport& report, const Alphabet& alpha) const;
};

/// Snapshot encoding (io/snapshot_format.h) of a finished assignment,
/// including its diagnostics so a loaded scheme reports identical stats.
void save_block_assignment(SnapshotWriter& w, const BlockAssignment& a);
[[nodiscard]] BlockAssignment load_block_assignment(SnapshotReader& r);

/// Builds an assignment satisfying Lemma 4 for the given alphabet (levels
/// 1..k-1, realizable prefixes).  Deterministic given the rng state.
[[nodiscard]] BlockAssignment assign_blocks(const Alphabet& alpha,
                                            const RoundtripMetric& metric,
                                            const NameAssignment& names,
                                            const Neighborhoods& hoods,
                                            Rng& rng,
                                            BlockAssignmentOptions options = {});

/// Verification predicate used by assign_blocks and exposed for tests:
/// true iff every (v, level i, realizable tau) has a holder in N_i(v).
[[nodiscard]] bool verify_coverage(const Alphabet& alpha,
                                   const Neighborhoods& hoods,
                                   const NameAssignment& names,
                                   const BlockAssignment& assignment);

}  // namespace rtr

#endif  // RTR_DICT_BLOCK_ASSIGNMENT_H
