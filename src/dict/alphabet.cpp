#include "dict/alphabet.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "io/snapshot_format.h"

namespace rtr {

Alphabet Alphabet::load(SnapshotReader& r) {
  const NodeId n = r.i32();
  const int k = static_cast<int>(r.i32());
  return Alphabet(n, k);
}

void Alphabet::save(SnapshotWriter& w) const {
  w.i32(n_);
  w.i32(static_cast<std::int32_t>(k_));
}

Alphabet::Alphabet(NodeId n, int k) : n_(n), k_(k) {
  if (n < 1) throw std::invalid_argument("Alphabet: n >= 1");
  if (k < 2 || k > 20) throw std::invalid_argument("Alphabet: 2 <= k <= 20");
  // Smallest q with q^k >= n; start from the floating-point estimate and
  // correct for rounding both ways.
  auto est = static_cast<std::int64_t>(
      std::llround(std::pow(static_cast<double>(n), 1.0 / k)));
  auto pow_ge_n = [&](std::int64_t q) {
    std::int64_t p = 1;
    for (int i = 0; i < k; ++i) {
      p *= q;
      if (p >= n) return true;
    }
    return p >= n;
  };
  std::int64_t q = std::max<std::int64_t>(1, est - 2);
  while (!pow_ge_n(q)) ++q;
  q_ = std::max<std::int64_t>(q, 2);  // degenerate n=1: keep a sane alphabet

  powers_.resize(static_cast<std::size_t>(k_) + 1);
  powers_[0] = 1;
  for (int i = 1; i <= k_; ++i) powers_[static_cast<std::size_t>(i)] = powers_[static_cast<std::size_t>(i - 1)] * q_;
}

void Alphabet::audit(AuditReport& report) const {
  auto scope = report.scope("alphabet");
  report.check("params-in-range", n_ >= 1 && k_ >= 2 && k_ <= 20,
               "n=" + std::to_string(n_) + ", k=" + std::to_string(k_));
  bool powers_ok = powers_.size() == static_cast<std::size_t>(k_) + 1 &&
                   !powers_.empty() && powers_[0] == 1;
  for (std::size_t i = 1; powers_ok && i < powers_.size(); ++i) {
    powers_ok = powers_[i] == powers_[i - 1] * q_;
  }
  report.check("power-table-consistent", powers_ok,
               "powers_ must cache exactly q^0 .. q^k");
  // Minimal q with q^k >= n (modulo the degenerate-n floor of q = 2): the
  // whole digit decomposition reads through this, so a drifted q silently
  // re-addresses every name.
  bool q_ok = q_ >= 2 && powers_ok &&
              powers_[static_cast<std::size_t>(k_)] >= n_;
  if (q_ok && q_ > 2) {
    std::int64_t p = 1;
    bool covers = false;
    for (int i = 0; i < k_ && !covers; ++i) {
      p *= q_ - 1;
      covers = p >= n_;
    }
    q_ok = !covers;
  }
  report.check("q-minimal", q_ok,
               "q=" + std::to_string(q_) + " must be the smallest radix with "
               "q^k >= n");
}

int Alphabet::digit(NodeName u, int i) const {
  if (i < 0 || i >= k_) throw std::out_of_range("Alphabet::digit");
  return static_cast<int>((u / powers_[static_cast<std::size_t>(k_ - 1 - i)]) % q_);
}

PrefixValue Alphabet::prefix_value(NodeName u, int i) const {
  if (i < 0 || i > k_) throw std::out_of_range("Alphabet::prefix_value");
  return u / powers_[static_cast<std::size_t>(k_ - i)];
}

int Alphabet::lcp(NodeName u, NodeName t) const {
  int len = 0;
  while (len < k_ && digit(u, len) == digit(t, len)) ++len;
  return len;
}

PrefixValue Alphabet::block_prefix_value(BlockId b, int i) const {
  if (i < 0 || i > k_ - 1) throw std::out_of_range("Alphabet::block_prefix_value");
  // A block is a (k-1)-digit string; drop its (k-1-i) least significant digits.
  return b / powers_[static_cast<std::size_t>(k_ - 1 - i)];
}

std::vector<NodeName> Alphabet::block_members(BlockId b) const {
  std::vector<NodeName> members;
  const std::int64_t lo = b * q_;
  for (std::int64_t u = lo; u < lo + q_ && u < n_; ++u) {
    members.push_back(static_cast<NodeName>(u));
  }
  return members;
}

std::int64_t Alphabet::realizable_prefix_count(int i) const {
  if (i < 0 || i > k_) throw std::out_of_range("Alphabet::realizable_prefix_count");
  const std::int64_t denom = powers_[static_cast<std::size_t>(k_ - i)];
  return (static_cast<std::int64_t>(n_) + denom - 1) / denom;
}

NodeName Alphabet::compose(BlockId b, int tau) const {
  const std::int64_t name = b * q_ + tau;
  if (tau < 0 || tau >= q_ || name >= n_) return kNoNode;
  return static_cast<NodeName>(name);
}

}  // namespace rtr
