#include "spanner/roundtrip_spanner.h"

#include <set>
#include <stdexcept>

#include "graph/apsp.h"
#include "graph/dijkstra.h"

namespace rtr {

namespace {

// Collects the parent->child arcs of an out-tree into the edge set.
void add_out_tree_edges(const OutTree& tree,
                        std::set<std::pair<NodeId, NodeId>>& edges) {
  for (NodeId v = 0; v < static_cast<NodeId>(tree.dist.size()); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (tree.parent[idx] == kNoNode) continue;
    edges.emplace(tree.parent[idx], v);
  }
}

}  // namespace

SpannerResult extract_roundtrip_spanner(const Digraph& g,
                                        const RoundtripMetric& metric,
                                        const CoverHierarchy& hierarchy) {
  const NodeId n = g.node_count();
  std::set<std::pair<NodeId, NodeId>> edges;
  for (std::int32_t level = 0; level < hierarchy.level_count(); ++level) {
    for (const DoubleTree& tree : hierarchy.level(level).trees) {
      // Out-tree arcs: center -> members.  Re-derive the tree inside the
      // member mask (DoubleTree keeps routers, not raw parent arrays, so we
      // rebuild; costs one restricted Dijkstra per tree).
      std::vector<char> mask(static_cast<std::size_t>(n), 0);
      for (NodeId v : tree.members()) mask[static_cast<std::size_t>(v)] = 1;
      OutTree out = dijkstra_out_tree_within(g, tree.center(), mask);
      add_out_tree_edges(out, edges);
      // In-tree arcs: members -> center (next-hop edges).
      for (NodeId v : tree.members()) {
        if (v == tree.center()) continue;
        NodeId next = kNoNode;
        Port p = tree.up_port(v);
        const Edge* e = g.edge_by_port(v, p);
        if (e == nullptr) {
          throw std::logic_error("extract_roundtrip_spanner: dangling up-port");
        }
        next = e->to;
        edges.emplace(v, next);
      }
    }
  }

  SpannerResult result;
  GraphBuilder subgraph(n);
  for (const auto& [u, v] : edges) {
    // Weight from the original graph (unique edge u->v).
    for (const Edge& e : g.out_edges(u)) {
      if (e.to == v) {
        subgraph.add_edge(u, v, e.weight);
        break;
      }
    }
  }
  result.subgraph = subgraph.freeze();
  result.edges = result.subgraph.edge_count();
  result.stretch_bound = 4.0 * (2 * hierarchy.k() - 1);

  DistMatrix sub = all_pairs_shortest_paths(result.subgraph);
  double worst = 1.0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const Dist rh = sub.at(u, v) + sub.at(v, u);
      const Dist rg = metric.r(u, v);
      if (rh >= kInfDist) {
        throw std::logic_error(
            "extract_roundtrip_spanner: subgraph not strongly connected");
      }
      if (rg > 0) {
        worst = std::max(worst, static_cast<double>(rh) / static_cast<double>(rg));
      }
    }
  }
  result.measured_stretch = worst;
  return result;
}

SpannerResult build_roundtrip_spanner(const Digraph& g,
                                      const RoundtripMetric& metric, int k) {
  const Digraph reversed = g.reversed();
  CoverHierarchy hierarchy(g, reversed, metric, k);
  return extract_roundtrip_spanner(g, metric, hierarchy);
}

}  // namespace rtr
