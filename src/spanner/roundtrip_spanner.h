// Roundtrip spanners (the object behind Lemma 5, after Cowen-Wagner [11,13]
// and Roditty-Thorup-Zwick [35]).
//
// A subgraph H of G is an alpha-roundtrip spanner if r_H(u,v) <= alpha *
// r_G(u,v) for every pair.  The paper's §1 narrative leans on the fact
// (Cowen-Wagner) that sparse roundtrip spanners exist for digraphs even
// though sparse one-way spanners do not.
//
// We extract the spanner carried by our Theorem 13 double-tree hierarchy:
// the union of every in-tree and out-tree edge over every level.  Its
// guarantee follows from the handshake bound: routing any pair through the
// first common tree costs <= 4(2k-1) r(u,v) and uses tree edges only, so H
// is a 4(2k-1)-roundtrip spanner with
// O(n * levels * max-membership) = O~(k n^{1+1/k} log RTDiam) edges --
// the same shape as Lemma 5's O~ bound.
#ifndef RTR_SPANNER_ROUNDTRIP_SPANNER_H
#define RTR_SPANNER_ROUNDTRIP_SPANNER_H

#include <cstdint>

#include "cover/hierarchy.h"
#include "graph/digraph.h"
#include "rt/metric.h"

namespace rtr {

struct SpannerResult {
  Digraph subgraph{0};
  std::int64_t edges = 0;
  /// max over pairs of r_H(u,v) / r_G(u,v); 1.0 for H = G.
  double measured_stretch = 0;
  /// The guarantee the construction promises: 4(2k-1).
  double stretch_bound = 0;
};

/// Extracts the double-tree union spanner from a hierarchy and measures its
/// roundtrip stretch exactly (APSP on the subgraph).  The hierarchy must
/// come from `g`.
[[nodiscard]] SpannerResult extract_roundtrip_spanner(
    const Digraph& g, const RoundtripMetric& metric,
    const CoverHierarchy& hierarchy);

/// Convenience: build hierarchy with parameter k and extract.
[[nodiscard]] SpannerResult build_roundtrip_spanner(const Digraph& g,
                                                    const RoundtripMetric& metric,
                                                    int k);

}  // namespace rtr

#endif  // RTR_SPANNER_ROUNDTRIP_SPANNER_H
