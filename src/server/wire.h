// rtr-wire/1: the length-prefixed binary protocol rtr_routed speaks next to
// HTTP (docs/protocol.md is the normative spec; this header must match it).
//
// A binary session starts with the 8-byte preamble "RTRWIRE1" (so the server
// can sniff the protocol from the first byte -- no HTTP method starts with
// 'R'), then carries framed request/response pairs:
//
//   request  = u32le len (== 8)  | i32le src_name | i32le dst_name
//   response = u32le len (== 36) | u32le error    | u64le epoch
//            | i64le roundtrip_length | i32le out_hops | i32le back_hops
//            | i64le max_header_bits
//
// `error` is the ServingError enumerator value; serving_error_name() gives
// the token HTTP responses carry for the same code.  All integers are
// little-endian, assembled byte-by-byte (no memcpy, no aliasing).
#ifndef RTR_SERVER_WIRE_H
#define RTR_SERVER_WIRE_H

#include <cstdint>
#include <string>

#include "net/serving.h"
#include "util/types.h"

namespace rtr {

inline constexpr char kWirePreamble[] = "RTRWIRE1";  // 8 bytes + NUL
inline constexpr std::size_t kWirePreambleBytes = 8;
inline constexpr std::uint32_t kWireRequestPayloadBytes = 8;
inline constexpr std::uint32_t kWireResponsePayloadBytes = 36;

struct WireRequest {
  NodeName src = 0;
  NodeName dst = 0;
};

struct WireResponse {
  std::uint32_t error = 0;  ///< ServingError enumerator value
  std::uint64_t epoch = 0;
  std::int64_t roundtrip_length = 0;
  std::int32_t out_hops = 0;
  std::int32_t back_hops = 0;
  std::int64_t max_header_bits = 0;

  [[nodiscard]] bool ok() const { return error == 0; }
};

void append_u32le(std::string& out, std::uint32_t v);
void append_u64le(std::string& out, std::uint64_t v);
[[nodiscard]] std::uint32_t read_u32le(const std::string& buffer,
                                       std::size_t offset);
[[nodiscard]] std::uint64_t read_u64le(const std::string& buffer,
                                       std::size_t offset);

/// One framed request (preamble NOT included; it is per-session).
[[nodiscard]] std::string encode_wire_request(const WireRequest& request);

/// One framed response carrying the ServingResult's typed code and route.
[[nodiscard]] std::string encode_wire_response(const ServingResult& result);

enum class WireParseStatus {
  kNeedMore,   ///< Incomplete frame; read more bytes and retry.
  kOk,         ///< One frame parsed and consumed from the buffer.
  kMalformed,  ///< Bad length; the only recovery is closing the connection.
};

/// Parses one request frame from the front of `buffer`, consuming it on kOk
/// (pipelined frames stay in the buffer for the next call).
[[nodiscard]] WireParseStatus parse_wire_request(std::string& buffer,
                                                 WireRequest& out);

/// Parses one response frame (the loadgen/test side of the connection).
[[nodiscard]] WireParseStatus parse_wire_response(std::string& buffer,
                                                  WireResponse& out);

}  // namespace rtr

#endif  // RTR_SERVER_WIRE_H
