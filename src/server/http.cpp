#include "server/http.h"

#include <algorithm>
#include <cctype>

namespace rtr {

namespace {

[[nodiscard]] int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

[[nodiscard]] bool iequals(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

/// Splits "k1=v1&k2=v2" into decoded pairs; a key without '=' gets "".
void parse_query_string(const std::string& raw, HttpRequest& out) {
  std::size_t pos = 0;
  while (pos <= raw.size()) {
    std::size_t amp = raw.find('&', pos);
    if (amp == std::string::npos) amp = raw.size();
    const std::string piece = raw.substr(pos, amp - pos);
    if (!piece.empty()) {
      const std::size_t eq = piece.find('=');
      if (eq == std::string::npos) {
        out.query.emplace_back(percent_decode(piece), "");
      } else {
        out.query.emplace_back(percent_decode(piece.substr(0, eq)),
                               percent_decode(piece.substr(eq + 1)));
      }
    }
    if (amp == raw.size()) break;
    pos = amp + 1;
  }
}

}  // namespace

std::string percent_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

HttpParseStatus parse_http_request(std::string& buffer, HttpRequest& out,
                                   const HttpLimits& limits) {
  // Bound the request line before looking for the full head, so a client
  // streaming an endless URI is rejected at the limit, not buffered forever.
  const std::size_t line_end = buffer.find("\r\n");
  if (line_end == std::string::npos) {
    return buffer.size() > limits.max_request_line
               ? HttpParseStatus::kUriTooLong
               : HttpParseStatus::kNeedMore;
  }
  if (line_end > limits.max_request_line) return HttpParseStatus::kUriTooLong;

  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return buffer.size() > limits.max_head_bytes
               ? HttpParseStatus::kHeadersTooLarge
               : HttpParseStatus::kNeedMore;
  }
  if (head_end + 4 > limits.max_head_bytes) {
    return HttpParseStatus::kHeadersTooLarge;
  }

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const std::string line = buffer.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0) {
    return HttpParseStatus::kBadRequest;
  }
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (target.empty() || target[0] != '/') return HttpParseStatus::kBadRequest;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return HttpParseStatus::kBadRequest;
  }

  HttpRequest request;
  request.method = line.substr(0, sp1);
  const std::size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request.path = percent_decode(target);
  } else {
    request.path = percent_decode(target.substr(0, qmark));
    parse_query_string(target.substr(qmark + 1), request);
  }

  // Headers: only Connection matters to us; everything else is skipped.
  request.keep_alive = version == "HTTP/1.1";
  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    std::size_t eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    const std::size_t colon = buffer.find(':', pos);
    if (colon == std::string::npos || colon >= eol) {
      return HttpParseStatus::kBadRequest;
    }
    std::string key = buffer.substr(pos, colon - pos);
    std::size_t vbegin = colon + 1;
    while (vbegin < eol && buffer[vbegin] == ' ') ++vbegin;
    std::string value = buffer.substr(vbegin, eol - vbegin);
    if (iequals(key, "connection")) {
      if (iequals(value, "close")) request.keep_alive = false;
      if (iequals(value, "keep-alive")) request.keep_alive = true;
    }
    pos = eol + 2;
  }

  buffer.erase(0, head_end + 4);
  out = std::move(request);
  return HttpParseStatus::kOk;
}

const std::string* find_query_param(const HttpRequest& request,
                                    const std::string& name) {
  for (const auto& [key, value] : request.query) {
    if (key == name) return &value;
  }
  return nullptr;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 414:
      return "URI Too Long";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string make_http_response(int status, const std::string& body,
                               bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_reason(status);
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace rtr
