#include "server/wire.h"

namespace rtr {

void append_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void append_u64le(std::string& out, std::uint64_t v) {
  append_u32le(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  append_u32le(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t read_u32le(const std::string& buffer, std::size_t offset) {
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer[offset + i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint64_t read_u64le(const std::string& buffer, std::size_t offset) {
  return static_cast<std::uint64_t>(read_u32le(buffer, offset)) |
         (static_cast<std::uint64_t>(read_u32le(buffer, offset + 4)) << 32);
}

std::string encode_wire_request(const WireRequest& request) {
  std::string out;
  out.reserve(4 + kWireRequestPayloadBytes);
  append_u32le(out, kWireRequestPayloadBytes);
  append_u32le(out, static_cast<std::uint32_t>(request.src));
  append_u32le(out, static_cast<std::uint32_t>(request.dst));
  return out;
}

std::string encode_wire_response(const ServingResult& result) {
  std::string out;
  out.reserve(4 + kWireResponsePayloadBytes);
  append_u32le(out, kWireResponsePayloadBytes);
  append_u32le(out, static_cast<std::uint32_t>(result.error));
  append_u64le(out, result.epoch);
  const RouteResult& r = result.route;
  append_u64le(out, static_cast<std::uint64_t>(
                        result.ok() ? r.roundtrip_length() : 0));
  append_u32le(out, static_cast<std::uint32_t>(r.out_hops));
  append_u32le(out, static_cast<std::uint32_t>(r.back_hops));
  append_u64le(out, static_cast<std::uint64_t>(r.max_header_bits));
  return out;
}

namespace {

/// Shared framing walk: a frame is u32le payload length + exactly that many
/// payload bytes; `expected` pins the only legal length for the frame type.
WireParseStatus parse_frame(std::string& buffer, std::uint32_t expected,
                            std::size_t& payload_offset) {
  if (buffer.size() < 4) return WireParseStatus::kNeedMore;
  const std::uint32_t len = read_u32le(buffer, 0);
  if (len != expected) return WireParseStatus::kMalformed;
  if (buffer.size() < 4 + static_cast<std::size_t>(len)) {
    return WireParseStatus::kNeedMore;
  }
  payload_offset = 4;
  return WireParseStatus::kOk;
}

}  // namespace

WireParseStatus parse_wire_request(std::string& buffer, WireRequest& out) {
  std::size_t at = 0;
  const WireParseStatus status =
      parse_frame(buffer, kWireRequestPayloadBytes, at);
  if (status != WireParseStatus::kOk) return status;
  out.src = static_cast<NodeName>(read_u32le(buffer, at));
  out.dst = static_cast<NodeName>(read_u32le(buffer, at + 4));
  buffer.erase(0, 4 + kWireRequestPayloadBytes);
  return WireParseStatus::kOk;
}

WireParseStatus parse_wire_response(std::string& buffer, WireResponse& out) {
  std::size_t at = 0;
  const WireParseStatus status =
      parse_frame(buffer, kWireResponsePayloadBytes, at);
  if (status != WireParseStatus::kOk) return status;
  out.error = read_u32le(buffer, at);
  out.epoch = read_u64le(buffer, at + 4);
  out.roundtrip_length = static_cast<std::int64_t>(read_u64le(buffer, at + 12));
  out.out_hops = static_cast<std::int32_t>(read_u32le(buffer, at + 20));
  out.back_hops = static_cast<std::int32_t>(read_u32le(buffer, at + 24));
  out.max_header_bits = static_cast<std::int64_t>(read_u64le(buffer, at + 28));
  buffer.erase(0, 4 + kWireResponsePayloadBytes);
  return WireParseStatus::kOk;
}

}  // namespace rtr
