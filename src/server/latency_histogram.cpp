#include "server/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rtr {

LatencyHistogram::LatencyHistogram()
    : counts_(static_cast<std::size_t>(kBuckets) * kSubBuckets, 0) {}

int LatencyHistogram::index_of(std::int64_t v) {
  // Bucket 0 holds [0, 64) exactly; bucket b >= 1 holds values whose top bit
  // is kSubBucketBits + b - 1, split into 64 equal sub-buckets, i.e. the
  // value right-shifted by (b - 1) lands in [64, 128).
  if (v < kSubBuckets) return static_cast<int>(v);
  const int width = std::bit_width(static_cast<std::uint64_t>(v));
  const int shift = width - kSubBucketBits - 1;
  const int bucket = shift + 1;
  const auto sub = static_cast<int>((static_cast<std::uint64_t>(v) >> shift) -
                                    kSubBuckets);
  return bucket * kSubBuckets + sub;
}

std::int64_t LatencyHistogram::value_of(int index) {
  const int bucket = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (bucket == 0) return sub;
  const int shift = bucket - 1;
  // Midpoint of the sub-bucket's value range.
  const auto base = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(kSubBuckets + sub) << shift);
  return base + ((std::int64_t{1} << shift) >> 1);
}

void LatencyHistogram::record(std::int64_t value_ns) {
  const std::int64_t v = std::max<std::int64_t>(value_ns, 0);
  ++counts_[static_cast<std::size_t>(index_of(v))];
  if (count_ == 0 || v < min_) min_ = v;
  max_ = std::max(max_, v);
  sum_ += v;
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

std::int64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p >= 1.0) return max_;
  const auto target = static_cast<std::int64_t>(
      std::ceil(std::max(p, 0.0) * static_cast<double>(count_)));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target && counts_[i] > 0) {
      return std::min(value_of(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

double LatencyHistogram::mean() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

}  // namespace rtr
