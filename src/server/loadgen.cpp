#include "server/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "server/wire.h"
#include "util/rng.h"

namespace rtr {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[nodiscard]] int connect_once(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

[[nodiscard]] int connect_with_retries(const LoadgenOptions& options) {
  for (int attempt = 0; attempt <= options.connect_retries; ++attempt) {
    const int fd = connect_once(options.host, options.port);
    if (fd >= 0) return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  throw std::runtime_error("loadgen: cannot connect to " + options.host + ":" +
                           std::to_string(options.port));
}

[[nodiscard]] bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Appends whatever the socket has; false on EOF or a hard error.
[[nodiscard]] bool recv_some(int fd, std::string& buffer) {
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

/// Reads one complete HTTP response off the front of `buffer` (receiving as
/// needed), leaving any pipelined follower bytes in place.
[[nodiscard]] bool read_http_response(int fd, std::string& buffer, int& status,
                                      std::string& body) {
  std::size_t head_end = std::string::npos;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (!recv_some(fd, buffer)) return false;
  }
  // Status line: HTTP/1.1 NNN reason
  const std::size_t sp = buffer.find(' ');
  if (sp == std::string::npos || sp + 4 > head_end) return false;
  status = 0;
  for (std::size_t i = sp + 1; i < sp + 4 && i < buffer.size(); ++i) {
    if (buffer[i] < '0' || buffer[i] > '9') return false;
    status = status * 10 + (buffer[i] - '0');
  }
  // Content-Length (the server always sends it).
  std::size_t content_length = 0;
  {
    const std::string head = buffer.substr(0, head_end);
    const char* kField = "Content-Length:";
    std::size_t at = head.find(kField);
    if (at == std::string::npos) return false;
    at += std::char_traits<char>::length(kField);
    while (at < head.size() && head[at] == ' ') ++at;
    while (at < head.size() && head[at] >= '0' && head[at] <= '9') {
      content_length = content_length * 10 +
                       static_cast<std::size_t>(head[at] - '0');
      ++at;
    }
  }
  const std::size_t total = head_end + 4 + content_length;
  while (buffer.size() < total) {
    if (!recv_some(fd, buffer)) return false;
  }
  body = buffer.substr(head_end + 4, content_length);
  buffer.erase(0, total);
  return true;
}

/// One GET /healthz round-trip to discover the served name space.
[[nodiscard]] NodeName discover_name_count(const LoadgenOptions& options) {
  const int fd = connect_with_retries(options);
  NodeName nodes = 0;
  std::string buffer;
  std::string body;
  int status = 0;
  if (send_all(fd, "GET /healthz HTTP/1.1\r\nHost: rtr\r\n\r\n") &&
      read_http_response(fd, buffer, status, body) && status == 200) {
    try {
      nodes = static_cast<NodeName>(Json::parse(body).at("nodes").as_int());
    } catch (const JsonError&) {
      nodes = 0;
    }
  }
  ::close(fd);
  if (nodes <= 1) {
    throw std::runtime_error("loadgen: /healthz did not report a usable node "
                             "count; pass name_count explicitly");
  }
  return nodes;
}

struct WorkerOutcome {
  std::int64_t requests = 0;
  std::int64_t ok = 0;
  std::int64_t transport_errors = 0;
  LatencyHistogram latency;
};

/// One keep-alive connection driving requests until its share is done or the
/// deadline passes.
void run_worker(const LoadgenOptions& options, NodeName names, int index,
                std::int64_t request_share, Clock::time_point start,
                WorkerOutcome& outcome) {
  int fd = -1;
  try {
    fd = connect_with_retries(options);
  } catch (const std::runtime_error&) {
    ++outcome.transport_errors;
    return;
  }
  if (options.binary &&
      !send_all(fd, std::string(kWirePreamble, kWirePreambleBytes))) {
    ++outcome.transport_errors;
    ::close(fd);
    return;
  }

  Rng rng(options.seed + static_cast<std::uint64_t>(index));
  std::string buffer;
  std::string body;
  const bool open_loop = options.target_qps > 0;
  const double per_conn_qps =
      open_loop ? options.target_qps / std::max(options.connections, 1) : 0;
  const auto interval =
      open_loop ? std::chrono::nanoseconds(static_cast<std::int64_t>(
                      1e9 / std::max(per_conn_qps, 1e-9)))
                : std::chrono::nanoseconds(0);
  const auto deadline =
      start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                  options.duration_s * 1e9));

  std::int64_t sent = 0;
  while (true) {
    if (request_share > 0) {
      if (sent >= request_share) break;
    } else if (Clock::now() >= deadline) {
      break;
    }

    // Open loop: launch on schedule, charge latency from the SCHEDULED time.
    Clock::time_point reference = Clock::now();
    if (open_loop) {
      const Clock::time_point scheduled = start + interval * sent;
      std::this_thread::sleep_until(scheduled);
      reference = scheduled;
    }

    const auto n = static_cast<std::int64_t>(names);
    NodeName src;
    NodeName dst;
    do {
      src = static_cast<NodeName>(rng.index(n));
      dst = static_cast<NodeName>(rng.index(n));
    } while (src == dst);

    bool ok = false;
    if (options.binary) {
      WireRequest request{src, dst};
      WireResponse response;
      if (!send_all(fd, encode_wire_request(request))) {
        ++outcome.transport_errors;
        break;
      }
      WireParseStatus status = WireParseStatus::kNeedMore;
      while ((status = parse_wire_response(buffer, response)) ==
             WireParseStatus::kNeedMore) {
        if (!recv_some(fd, buffer)) break;
      }
      if (status != WireParseStatus::kOk) {
        ++outcome.transport_errors;
        break;
      }
      ok = response.ok();
    } else {
      std::string request = "GET /route?src=";
      request += std::to_string(src);
      request += "&dst=";
      request += std::to_string(dst);
      request += " HTTP/1.1\r\nHost: rtr\r\n\r\n";
      int status = 0;
      if (!send_all(fd, request) ||
          !read_http_response(fd, buffer, status, body)) {
        ++outcome.transport_errors;
        break;
      }
      ok = status == 200 && body.find("\"ok\": true") != std::string::npos;
    }

    const auto latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - reference)
                                .count();
    outcome.latency.record(latency_ns);
    ++outcome.requests;
    if (ok) ++outcome.ok;
    ++sent;
  }
  ::close(fd);
}

}  // namespace

LoadgenResult run_loadgen(const LoadgenOptions& options) {
  const NodeName names =
      options.name_count > 1 ? options.name_count : discover_name_count(options);
  const int connections = std::max(options.connections, 1);

  std::vector<WorkerOutcome> outcomes(static_cast<std::size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(connections));
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < connections; ++c) {
    // Closed-loop bench mode splits the fixed request count; the remainder
    // goes to the first connections so every request is accounted for.
    std::int64_t share = 0;
    if (options.requests > 0) {
      share = options.requests / connections +
              (c < options.requests % connections ? 1 : 0);
    }
    workers.emplace_back([&options, names, c, share, start, &outcomes] {
      run_worker(options, names, c, share, start,
                 outcomes[static_cast<std::size_t>(c)]);
    });
  }
  for (auto& w : workers) w.join();

  LoadgenResult result;
  result.wall_seconds = elapsed_seconds(start);
  for (const auto& o : outcomes) {
    result.requests += o.requests;
    result.ok += o.ok;
    result.transport_errors += o.transport_errors;
    result.latency.merge(o.latency);
  }
  result.failures = (result.requests - result.ok) + result.transport_errors;
  result.qps = result.wall_seconds > 0
                   ? static_cast<double>(result.requests) / result.wall_seconds
                   : 0;
  result.availability =
      result.requests > 0
          ? static_cast<double>(result.ok) / static_cast<double>(result.requests)
          : 0;
  return result;
}

Json LoadgenResult::to_json() const {
  Json doc{JsonObject{}};
  doc.set("schema", "rtr-loadgen/1");
  doc.set("requests", requests);
  doc.set("ok", ok);
  doc.set("failures", failures);
  doc.set("transport_errors", transport_errors);
  doc.set("wall_seconds", wall_seconds);
  doc.set("qps", qps);
  doc.set("availability", availability);
  Json lat{JsonObject{}};
  lat.set("p50_ns", latency.percentile(0.50));
  lat.set("p90_ns", latency.percentile(0.90));
  lat.set("p99_ns", latency.percentile(0.99));
  lat.set("max_ns", latency.max());
  lat.set("mean_ns", latency.mean());
  doc.set("latency", std::move(lat));
  return doc;
}

}  // namespace rtr
