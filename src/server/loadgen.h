// The client side of the serving stack: drives rtr_routed over TCP with
// configurable concurrency in closed-loop (each connection fires its next
// request the moment the previous answer lands) or open-loop mode (requests
// are launched on a fixed schedule and latency is measured from the
// SCHEDULED send time, so server-side queueing is charged to the server --
// the coordinated-omission correction).  Speaks both protocols; per-
// connection latency histograms merge into one qps/p50/p99 summary emitted
// in the rtr-bench JSON style.
#ifndef RTR_SERVER_LOADGEN_H
#define RTR_SERVER_LOADGEN_H

#include <cstdint>
#include <string>

#include "server/latency_histogram.h"
#include "util/json.h"
#include "util/types.h"

namespace rtr {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Concurrent keep-alive connections, one client thread each.
  int connections = 4;
  /// Closed-loop: total requests split across connections (deterministic
  /// work, the bench mode).  0 switches to running until `duration_s`.
  std::int64_t requests = 0;
  /// Wall-clock budget when `requests` is 0.
  double duration_s = 2.0;
  /// Open-loop target rate across all connections; 0 = closed loop.
  double target_qps = 0;
  /// rtr-wire/1 binary framing instead of HTTP.
  bool binary = false;
  /// Query pair randomness (connection c draws from Rng(seed + c)).
  std::uint64_t seed = 1;
  /// Node-name space to draw from; 0 = discover via GET /healthz.
  NodeName name_count = 0;
  /// Connect attempts (100 ms apart) before giving up -- lets the loadgen
  /// start before the server finishes binding.
  int connect_retries = 50;
};

struct LoadgenResult {
  std::int64_t requests = 0;  ///< answers received and parsed
  std::int64_t ok = 0;        ///< of those, ok == true / error == 0
  /// Failed queries plus transport/protocol errors; the CI smoke gate
  /// requires 0.
  std::int64_t failures = 0;
  std::int64_t transport_errors = 0;
  double wall_seconds = 0;
  double qps = 0;
  /// ok / requests (0 when no requests completed).
  double availability = 0;
  LatencyHistogram latency;

  /// rtr-loadgen/1 summary document (qps, p50/p90/p99/max latency,
  /// availability, error counts).
  [[nodiscard]] Json to_json() const;
};

/// Runs the workload; throws std::runtime_error when the server cannot be
/// reached at all (individual request failures are counted, not thrown).
[[nodiscard]] LoadgenResult run_loadgen(const LoadgenOptions& options);

}  // namespace rtr

#endif  // RTR_SERVER_LOADGEN_H
