// The rtr_routed serving core: a TCP front end over the epoch serving stack.
//
// Connections speak either HTTP/1.1 (GET /route, /healthz, /stats --
// keep-alive and pipelining supported) or the rtr-wire/1 binary framing; the
// protocol is sniffed from the first byte of the connection (binary sessions
// open with the "RTRWIRE1" preamble, and no HTTP method starts with 'R').
//
// Request flow: connection threads parse and validate, then submit
// route queries to a coalescing batcher -- a dispatcher thread drains every
// in-flight query into ONE QueryEngine::serve_batch call against ONE pinned
// epoch, so concurrent clients amortize the dispatch overhead and an epoch
// swap never straddles a batch.  /healthz and /stats answer inline.
//
// The server reads its epochs through the ServingSource interface: the
// EpochManager adapter serves live-churn traffic (queries keep completing
// against the pinned epoch while the next one builds -- the availability
// property the net_serving bench gates at 1.0), and the static adapter
// serves one fixed epoch (e.g. rtr_routed --snapshot).
#ifndef RTR_SERVER_ROUTE_SERVER_H
#define RTR_SERVER_ROUTE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/epoch_manager.h"
#include "server/http.h"
#include "util/json.h"

namespace rtr {

/// Where the server gets the epoch it serves.  Implementations must be
/// thread-safe: every connection thread and the dispatcher call these.
class ServingSource {
 public:
  /// Epoch preprocessing counters surfaced through /stats: how the epochs
  /// this source serves came to be (full rebuilds vs incremental repairs)
  /// and what the most recent preprocess cost.
  struct RebuildStats {
    std::uint64_t epochs_built = 0;
    std::uint64_t repairs = 0;
    std::uint64_t repair_fallbacks = 0;
    double last_rebuild_ms = 0.0;
    double last_repair_ms = 0.0;
  };

  virtual ~ServingSource() = default;
  /// The epoch to answer from; nullptr means kEpochUnavailable.
  [[nodiscard]] virtual std::shared_ptr<const Epoch> current_epoch() const = 0;
  /// The fixed TINN naming queries are keyed by.
  [[nodiscard]] virtual const NameAssignment& names() const = 0;
  [[nodiscard]] virtual const std::string& scheme_name() const = 0;
  /// All-zero default: a static source never rebuilds.
  [[nodiscard]] virtual RebuildStats rebuild_stats() const { return {}; }
};

/// Serves whatever epoch the manager currently publishes (live churn).
class ManagerServingSource final : public ServingSource {
 public:
  explicit ManagerServingSource(const EpochManager& manager)
      : manager_(manager) {}
  [[nodiscard]] std::shared_ptr<const Epoch> current_epoch() const override {
    return manager_.current();
  }
  [[nodiscard]] const NameAssignment& names() const override {
    return manager_.names();
  }
  [[nodiscard]] const std::string& scheme_name() const override {
    return manager_.scheme_name();
  }
  [[nodiscard]] RebuildStats rebuild_stats() const override {
    const EpochManager::Counters c = manager_.counters();
    return RebuildStats{c.epochs_built, c.repairs, c.repair_fallbacks,
                        c.last_rebuild_ms, c.last_repair_ms};
  }

 private:
  const EpochManager& manager_;
};

/// Serves one fixed epoch forever (snapshot serving, tests).
class StaticServingSource final : public ServingSource {
 public:
  StaticServingSource(std::shared_ptr<const Epoch> epoch,
                      std::string scheme_name)
      : epoch_(std::move(epoch)), scheme_name_(std::move(scheme_name)) {}
  [[nodiscard]] std::shared_ptr<const Epoch> current_epoch() const override {
    return epoch_;
  }
  [[nodiscard]] const NameAssignment& names() const override {
    return epoch_->engine->names();
  }
  [[nodiscard]] const std::string& scheme_name() const override {
    return scheme_name_;
  }

 private:
  std::shared_ptr<const Epoch> epoch_;
  std::string scheme_name_;
};

struct RouteServerOptions {
  /// Loopback by default; the server is a trusted-network component.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; RouteServer::port() reports the actual one.
  int port = 0;
  /// Accept-loop threads sharing one listening socket (thread-per-core when
  /// set to the core count; every accepted connection still gets its own
  /// handler thread so keep-alive sessions cannot starve the accept loop).
  int acceptor_threads = 1;
  /// Per-batch worker cap handed to QueryEngine::serve_batch (0 = the
  /// engine's configured width).
  int batch_threads = 0;
  /// How often blocked reads re-check the stop flag.
  int poll_interval_ms = 50;
  HttpLimits http_limits;
};

struct RouteServerStats {
  std::uint64_t connections = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t wire_requests = 0;
  std::uint64_t queries_ok = 0;
  /// Indexed by ServingError enumerator value (0 unused -- that's kNone).
  std::uint64_t errors[6] = {0, 0, 0, 0, 0, 0};
  std::uint64_t batches = 0;
  std::uint64_t batched_queries = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t protocol_errors = 0;  ///< malformed HTTP/wire inputs
};

class RouteServer {
 public:
  /// Binds and starts serving immediately (acceptors + dispatcher running
  /// when the constructor returns).  Throws std::runtime_error when the
  /// socket cannot be bound.  `source` must outlive the server.
  RouteServer(const ServingSource& source, RouteServerOptions options = {});
  ~RouteServer();

  RouteServer(const RouteServer&) = delete;
  RouteServer& operator=(const RouteServer&) = delete;

  /// The bound TCP port (resolves option `port` 0 to the actual ephemeral
  /// port via getsockname).
  [[nodiscard]] int port() const { return port_; }

  /// Stops accepting, completes in-flight requests, joins every thread.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] RouteServerStats stats() const;

  /// The /stats JSON document (also what the endpoint serves).
  [[nodiscard]] Json stats_json() const;

 private:
  struct PendingQuery {
    RoundtripQuery query;
    std::promise<ServingResult> promise;
  };
  /// One live connection-handler thread; `done` lets the accept loop reap
  /// finished sessions instead of accumulating joinable threads forever.
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void handle_connection(int fd);
  void dispatch_loop();

  /// Validates names against the current naming and either answers
  /// immediately (invalid name, no epoch) or submits to the batcher.
  [[nodiscard]] ServingResult serve_query(NodeName src, NodeName dst);

  [[nodiscard]] std::string handle_http(const HttpRequest& request);
  void count_result(const ServingResult& result);

  const ServingSource& source_;
  RouteServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> stop_{false};

  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::vector<PendingQuery> pending_;
  std::thread dispatcher_;

  std::vector<std::thread> acceptors_;
  std::mutex connections_mutex_;
  std::vector<Conn> connections_;

  std::atomic<std::uint64_t> connections_count_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> wire_requests_{0};
  std::atomic<std::uint64_t> queries_ok_{0};
  std::atomic<std::uint64_t> error_counts_[6] = {};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_queries_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

/// The JSON body for one /route answer ({"ok", "error", "epoch", ...});
/// shared by the server and the golden-response tests.
[[nodiscard]] Json route_response_json(NodeName src, NodeName dst,
                                       const ServingResult& result);

/// HTTP status for a ServingResult: 200 for delivered AND for unreachable
/// (a valid query whose answer is "no route"), 400 for the caller's bad
/// input, 500 for a scheme failure, 503 when no epoch is available.
[[nodiscard]] int http_status_for(const ServingResult& result);

}  // namespace rtr

#endif  // RTR_SERVER_ROUTE_SERVER_H
