// HDR-style latency histogram: log2 major buckets with 64 linear sub-buckets
// each, so every recorded value lands in a bucket within ~1.6% of its true
// value while the whole structure stays a flat ~30 KB array -- O(1) record,
// no allocation after construction, mergeable across loadgen connections.
#ifndef RTR_SERVER_LATENCY_HISTOGRAM_H
#define RTR_SERVER_LATENCY_HISTOGRAM_H

#include <cstdint>
#include <vector>

namespace rtr {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one value (nanoseconds by convention); negatives clamp to 0.
  void record(std::int64_t value_ns);

  /// Folds `other` into this histogram (per-connection recording, one merge
  /// at the end -- no synchronization on the record path).
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return max_; }

  /// Value at quantile p in [0, 1] (bucket-midpoint representative, exact at
  /// p = 1 which returns the true max).  0 when empty.
  [[nodiscard]] std::int64_t percentile(double p) const;

  /// Mean of the recorded values (exact sum, not bucketized).
  [[nodiscard]] double mean() const;

 private:
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 64
  static constexpr int kBuckets = 58;  // covers the full int64 range

  [[nodiscard]] static int index_of(std::int64_t v);
  [[nodiscard]] static std::int64_t value_of(int index);

  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace rtr

#endif  // RTR_SERVER_LATENCY_HISTOGRAM_H
