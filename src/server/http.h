// Minimal HTTP/1.1 request parsing and response formatting for rtr_routed.
//
// Scope is exactly what the serving front end needs: GET requests with a
// query string, keep-alive / pipelining (the parser consumes one request head
// from the front of a growing buffer, leaving any pipelined followers in
// place), percent-decoding, and hard limits that map to 414 / 431 instead of
// unbounded buffering.  No body handling -- every endpoint is a GET.
#ifndef RTR_SERVER_HTTP_H
#define RTR_SERVER_HTTP_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rtr {

struct HttpLimits {
  /// Longest accepted request line (method + URI + version); 414 beyond.
  std::size_t max_request_line = 4096;
  /// Longest accepted request head (request line + all headers); 431 beyond.
  std::size_t max_head_bytes = 8192;
};

struct HttpRequest {
  std::string method;
  /// Percent-decoded path, query string stripped ("/route").
  std::string path;
  /// Percent-decoded query parameters in order of appearance.
  std::vector<std::pair<std::string, std::string>> query;
  /// False for HTTP/1.0 without "Connection: keep-alive" or any request
  /// carrying "Connection: close".
  bool keep_alive = true;
};

enum class HttpParseStatus {
  kNeedMore,        ///< Incomplete head; read more bytes and retry.
  kOk,              ///< One request parsed and consumed from the buffer.
  kBadRequest,      ///< Malformed request line/headers (400, close).
  kUriTooLong,      ///< Request line exceeds the limit (414, close).
  kHeadersTooLarge, ///< Head exceeds the limit (431, close).
};

/// Parses one request head from the front of `buffer`.  On kOk the head
/// (through its terminating CRLFCRLF) is erased from `buffer`, so pipelined
/// requests are handled by calling this again.  On any error status the
/// buffer is left untouched and the connection should be answered and closed.
[[nodiscard]] HttpParseStatus parse_http_request(std::string& buffer,
                                                 HttpRequest& out,
                                                 const HttpLimits& limits = {});

/// %XX-decoding ('+' is NOT treated as space; our tokens never contain it).
/// Malformed escapes are passed through verbatim.
[[nodiscard]] std::string percent_decode(const std::string& s);

/// First value of query parameter `name`, or nullptr when absent.
[[nodiscard]] const std::string* find_query_param(const HttpRequest& request,
                                                  const std::string& name);

[[nodiscard]] const char* http_status_reason(int status);

/// Formats a complete response: status line, Content-Type:
/// application/json, Content-Length, Connection header, then `body`.
[[nodiscard]] std::string make_http_response(int status,
                                             const std::string& body,
                                             bool keep_alive);

}  // namespace rtr

#endif  // RTR_SERVER_HTTP_H
