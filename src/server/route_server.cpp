#include "server/route_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <stdexcept>

#include "server/wire.h"

namespace rtr {

namespace {

/// Full-consumption integer parse for query parameters; rejects "", "12x",
/// and values outside NodeName's 32-bit range.
[[nodiscard]] bool parse_name(const std::string& s, NodeName& out) {
  std::int64_t v = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  out = static_cast<NodeName>(v);
  return true;
}

void set_recv_timeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Blocking send of the whole buffer; false on a broken connection.
[[nodiscard]] bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int http_status_for(const ServingResult& result) {
  switch (result.error) {
    case ServingError::kNone:
    case ServingError::kUnreachable:
      return 200;
    case ServingError::kInvalidName:
    case ServingError::kInvalidQuery:
      return 400;
    case ServingError::kSchemeFailure:
      return 500;
    case ServingError::kEpochUnavailable:
      return 503;
  }
  return 500;
}

Json route_response_json(NodeName src, NodeName dst,
                         const ServingResult& result) {
  Json body{JsonObject{}};
  body.set("ok", result.ok());
  body.set("error", serving_error_name(result.error));
  body.set("epoch", static_cast<std::int64_t>(result.epoch));
  body.set("src", static_cast<std::int64_t>(src));
  body.set("dst", static_cast<std::int64_t>(dst));
  if (result.ok()) {
    body.set("roundtrip_length",
             static_cast<std::int64_t>(result.route.roundtrip_length()));
    body.set("out_hops", static_cast<std::int64_t>(result.route.out_hops));
    body.set("back_hops", static_cast<std::int64_t>(result.route.back_hops));
    body.set("max_header_bits",
             static_cast<std::int64_t>(result.route.max_header_bits));
  } else {
    body.set("message", result.message);
  }
  return body;
}

RouteServer::RouteServer(const ServingSource& source,
                         RouteServerOptions options)
    : source_(source), options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("RouteServer: socket() failed");
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("RouteServer: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("RouteServer: cannot bind " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  dispatcher_ = std::thread([this] { dispatch_loop(); });
  const int acceptors = std::max(options_.acceptor_threads, 1);
  acceptors_.reserve(static_cast<std::size_t>(acceptors));
  for (int i = 0; i < acceptors; ++i) {
    acceptors_.emplace_back([this] { accept_loop(); });
  }
}

RouteServer::~RouteServer() { stop(); }

void RouteServer::stop() {
  if (stop_.exchange(true)) return;
  // Stop the intake first.  The acceptors still poll listen_fd_ until they
  // observe stop_, so only shut the socket down here (wakes any poller) and
  // defer close() until after the joins -- closing early would both race the
  // plain-int read of listen_fd_ and risk the kernel reusing the fd under a
  // concurrent accept().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& t : acceptors_) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connection threads notice stop_ at their next recv timeout, finish any
  // in-flight request (the dispatcher is still running), and exit.
  std::vector<Conn> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    conns.swap(connections_);
  }
  for (auto& c : conns) c.thread.join();
  // With every producer joined, let the dispatcher drain and exit.
  batch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void RouteServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (stop_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_recv_timeout(fd, options_.poll_interval_ms);
    connections_count_.fetch_add(1, std::memory_order_relaxed);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread handler([this, fd, done] {
      handle_connection(fd);
      done->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    // Reap finished sessions so a long-lived server does not accumulate one
    // joinable thread per connection it ever served.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    connections_.push_back(Conn{std::move(handler), std::move(done)});
  }
}

ServingResult RouteServer::serve_query(NodeName src, NodeName dst) {
  // Unknown names are rejected here, against the fixed naming, without a
  // round-trip through the batcher (mirrors EpochManager::roundtrip_by_name).
  const NodeName n = source_.names().node_count();
  ServingResult result;
  if (src < 0 || src >= n || dst < 0 || dst >= n) {
    result = ServingResult::failure(
        ServingError::kInvalidName,
        "unknown name " + std::to_string((src < 0 || src >= n) ? src : dst));
  } else {
    // The batcher works in node ids: translate through the fixed TINN
    // naming exactly as EpochManager::roundtrip_by_name does.
    std::future<ServingResult> answer;
    {
      std::lock_guard<std::mutex> lock(batch_mutex_);
      PendingQuery pending;
      pending.query =
          RoundtripQuery{source_.names().id_of(src), source_.names().id_of(dst)};
      answer = pending.promise.get_future();
      pending_.push_back(std::move(pending));
    }
    batch_cv_.notify_one();
    result = answer.get();
  }
  count_result(result);
  return result;
}

void RouteServer::count_result(const ServingResult& result) {
  if (result.ok()) {
    queries_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const auto code = static_cast<std::size_t>(result.error);
    error_counts_[code < 6 ? code : 0].fetch_add(1, std::memory_order_relaxed);
  }
}

void RouteServer::dispatch_loop() {
  while (true) {
    std::vector<PendingQuery> batch;
    {
      std::unique_lock<std::mutex> lock(batch_mutex_);
      batch_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) {
        // stop() only sets stop_ after joining every connection thread, so
        // an empty queue here means no producer can appear: safe to exit.
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      batch.swap(pending_);
    }

    // ONE epoch pin for the whole coalesced batch: every query in it is
    // answered by the same (graph, scheme, names) triple even if an epoch
    // swap lands mid-batch.
    const std::shared_ptr<const Epoch> epoch = source_.current_epoch();
    if (epoch == nullptr) {
      for (auto& p : batch) {
        p.promise.set_value(ServingResult::failure(
            ServingError::kEpochUnavailable, "no epoch available"));
      }
      continue;
    }
    std::vector<RoundtripQuery> queries;
    queries.reserve(batch.size());
    for (const auto& p : batch) queries.push_back(p.query);
    BatchOptions batch_options;
    batch_options.threads = options_.batch_threads;
    std::vector<ServingResult> results =
        epoch->engine->serve_batch(queries, batch_options);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      results[i].epoch = epoch->seq;
      batch[i].promise.set_value(std::move(results[i]));
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_queries_.fetch_add(batch.size(), std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (batch.size() > seen &&
           !max_batch_.compare_exchange_weak(seen, batch.size(),
                                             std::memory_order_relaxed)) {
    }
  }
}

std::string RouteServer::handle_http(const HttpRequest& request) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  if (request.method != "GET") {
    Json body{JsonObject{}};
    body.set("error", "method_not_allowed");
    return make_http_response(405, body.dump(), request.keep_alive);
  }

  if (request.path == "/healthz") {
    const auto epoch = source_.current_epoch();
    Json body{JsonObject{}};
    body.set("status", epoch != nullptr ? "ok" : "unavailable");
    body.set("scheme", source_.scheme_name());
    body.set("nodes", static_cast<std::int64_t>(source_.names().node_count()));
    if (epoch != nullptr) {
      body.set("epoch", static_cast<std::int64_t>(epoch->seq));
    }
    return make_http_response(epoch != nullptr ? 200 : 503, body.dump(),
                              request.keep_alive);
  }

  if (request.path == "/stats") {
    return make_http_response(200, stats_json().dump(), request.keep_alive);
  }

  if (request.path == "/route") {
    const std::string* src_raw = find_query_param(request, "src");
    const std::string* dst_raw = find_query_param(request, "dst");
    NodeName src = 0;
    NodeName dst = 0;
    if (src_raw == nullptr || dst_raw == nullptr ||
        !parse_name(*src_raw, src) || !parse_name(*dst_raw, dst)) {
      const auto bad = ServingResult::failure(
          ServingError::kInvalidQuery,
          "src and dst must be integer node names");
      count_result(bad);
      return make_http_response(http_status_for(bad),
                                route_response_json(0, 0, bad).dump(),
                                request.keep_alive);
    }
    // An explicit scheme selector must match what this process serves --
    // epochs of a different scheme live in a different rtr_routed.
    const std::string* scheme = find_query_param(request, "scheme");
    if (scheme != nullptr && *scheme != source_.scheme_name()) {
      const auto miss = ServingResult::failure(
          ServingError::kEpochUnavailable,
          "scheme " + *scheme + " not served (serving " +
              source_.scheme_name() + ")");
      count_result(miss);
      return make_http_response(http_status_for(miss),
                                route_response_json(src, dst, miss).dump(),
                                request.keep_alive);
    }
    const ServingResult result = serve_query(src, dst);
    return make_http_response(http_status_for(result),
                              route_response_json(src, dst, result).dump(),
                              request.keep_alive);
  }

  Json body{JsonObject{}};
  body.set("error", "not_found");
  return make_http_response(404, body.dump(), request.keep_alive);
}

void RouteServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool protocol_known = false;
  bool binary = false;

  const auto fail_protocol = [&] {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  };

  while (!stop_.load(std::memory_order_acquire)) {
    // Drain every complete request already buffered before reading more
    // (keep-alive pipelining), then block -- with a timeout so stop() is
    // honored -- for the next bytes.
    bool close_connection = false;
    bool need_more = false;
    while (!close_connection && !need_more) {
      if (!protocol_known) {
        if (buffer.empty()) {
          need_more = true;
          break;
        }
        if (buffer[0] == kWirePreamble[0]) {
          if (buffer.size() < kWirePreambleBytes) {
            need_more = true;
            break;
          }
          if (buffer.compare(0, kWirePreambleBytes, kWirePreamble,
                             kWirePreambleBytes) != 0) {
            fail_protocol();
            close_connection = true;
            break;
          }
          buffer.erase(0, kWirePreambleBytes);
          binary = true;
        }
        protocol_known = true;
      }

      if (binary) {
        WireRequest request;
        const WireParseStatus status = parse_wire_request(buffer, request);
        if (status == WireParseStatus::kNeedMore) {
          need_more = true;
        } else if (status == WireParseStatus::kMalformed) {
          fail_protocol();
          close_connection = true;
        } else {
          wire_requests_.fetch_add(1, std::memory_order_relaxed);
          const ServingResult result = serve_query(request.src, request.dst);
          if (!send_all(fd, encode_wire_response(result))) {
            close_connection = true;
          }
        }
        continue;
      }

      HttpRequest request;
      const HttpParseStatus status =
          parse_http_request(buffer, request, options_.http_limits);
      switch (status) {
        case HttpParseStatus::kNeedMore:
          need_more = true;
          break;
        case HttpParseStatus::kOk: {
          const std::string response = handle_http(request);
          if (!send_all(fd, response) || !request.keep_alive) {
            close_connection = true;
          }
          break;
        }
        case HttpParseStatus::kBadRequest:
        case HttpParseStatus::kUriTooLong:
        case HttpParseStatus::kHeadersTooLarge: {
          fail_protocol();
          const int code = status == HttpParseStatus::kUriTooLong     ? 414
                           : status == HttpParseStatus::kHeadersTooLarge ? 431
                                                                         : 400;
          Json body{JsonObject{}};
          body.set("error", "malformed_request");
          (void)send_all(fd, make_http_response(code, body.dump(), false));
          close_connection = true;
          break;
        }
      }
    }
    if (close_connection) break;

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;  // peer closed
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      continue;  // recv timeout: re-check stop_ and block again
    } else {
      break;
    }
  }
  ::close(fd);
}

RouteServerStats RouteServer::stats() const {
  RouteServerStats s;
  s.connections = connections_count_.load(std::memory_order_relaxed);
  s.http_requests = http_requests_.load(std::memory_order_relaxed);
  s.wire_requests = wire_requests_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < 6; ++i) {
    s.errors[i] = error_counts_[i].load(std::memory_order_relaxed);
  }
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

Json RouteServer::stats_json() const {
  const RouteServerStats s = stats();
  Json doc{JsonObject{}};
  doc.set("schema", "rtr-stats/1");
  doc.set("scheme", source_.scheme_name());
  doc.set("connections", static_cast<std::int64_t>(s.connections));
  doc.set("http_requests", static_cast<std::int64_t>(s.http_requests));
  doc.set("wire_requests", static_cast<std::int64_t>(s.wire_requests));
  doc.set("queries_ok", static_cast<std::int64_t>(s.queries_ok));
  Json errors{JsonObject{}};
  for (std::size_t i = 1; i < 6; ++i) {
    errors.set(serving_error_name(static_cast<ServingError>(i)),
               static_cast<std::int64_t>(s.errors[i]));
  }
  doc.set("errors", std::move(errors));
  doc.set("batches", static_cast<std::int64_t>(s.batches));
  doc.set("batched_queries", static_cast<std::int64_t>(s.batched_queries));
  doc.set("max_batch", static_cast<std::int64_t>(s.max_batch));
  doc.set("protocol_errors", static_cast<std::int64_t>(s.protocol_errors));
  const ServingSource::RebuildStats r = source_.rebuild_stats();
  doc.set("epochs_built", static_cast<std::int64_t>(r.epochs_built));
  doc.set("repairs", static_cast<std::int64_t>(r.repairs));
  doc.set("repair_fallbacks", static_cast<std::int64_t>(r.repair_fallbacks));
  doc.set("last_rebuild_ms", r.last_rebuild_ms);
  doc.set("last_repair_ms", r.last_repair_ms);
  const auto epoch = source_.current_epoch();
  if (epoch != nullptr) {
    doc.set("epoch", static_cast<std::int64_t>(epoch->seq));
  }
  return doc;
}

}  // namespace rtr
