// The unified runtime API for roundtrip routing schemes.
//
// The paper's execution model (Section 1.1.1) is one contract: per-node
// tables built at preprocessing time plus a local forwarding function
// F(table(x), header(P)).  This header expresses that contract once, for
// every scheme in the repo, behind a stable ABI the serving layer can batch
// and parallelize against:
//
//   * Packet          -- a type-erased, small-buffer box for a scheme's
//                        writable header.  The simulator moves Packets;
//                        schemes read their concrete Header back out with
//                        Packet::as<H>().
//   * Scheme          -- the abstract interface: make_packet / forward /
//                        prepare_return / header_bits / table_stats / name /
//                        stretch_bound.
//   * BuildContext    -- everything a factory needs to preprocess a graph:
//                        {graph, metric, names, rng, options}.
//   * SchemeRegistry  -- string name -> factory.  All in-repo schemes are
//                        pre-registered in the global() registry; adding a
//                        new scheme (or variant) is one add() line.
//   * SchemeHandle    -- a built scheme bound to its graph (shared
//                        ownership, so handles may outlive their builder).
//
// Perf note: the duck-typed template fast path (net/simulator.h) remains for
// perf-sensitive benches; the virtual path costs two indirect calls per hop
// and is what the QueryEngine (net/query_engine.h) and the CLI use.
#ifndef RTR_NET_SCHEME_H
#define RTR_NET_SCHEME_H

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/names.h"
#include "graph/digraph.h"
#include "net/simulator.h"
#include "net/table_stats.h"
#include "rt/metric.h"
#include "util/rng.h"
#include "util/types.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;
class AuditReport;   // audit/audit.h
class ArenaWriter;   // io/arena.h
class ArenaView;
struct ChurnDelta;   // graph/churn_delta.h

/// Type-erased box for a scheme's writable packet header.
///
/// Headers up to kInlineCapacity bytes live inline (no allocation on the
/// forwarding hot path); larger ones fall back to the heap.  Access is
/// type-checked: Packet::as<H>() throws std::bad_cast if the box holds a
/// different header type, which turns cross-scheme mix-ups into loud errors
/// instead of memory corruption.
class Packet {
 public:
  static constexpr std::size_t kInlineCapacity = 256;

  Packet() noexcept : ops_(nullptr) {}

  template <typename H, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<H>, Packet>>>
  explicit Packet(H&& header) : ops_(&OpsFor<std::decay_t<H>>::value) {
    using T = std::decay_t<H>;
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(inline_)) T(std::forward<H>(header));
    } else {
      heap_ = new T(std::forward<H>(header));
    }
  }

  Packet(const Packet& other) : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->copy_into(*this, other);
  }
  Packet(Packet&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->move_into(*this, other);
      other.ops_ = nullptr;
    }
  }
  Packet& operator=(const Packet& other) {
    if (this != &other) {
      Packet tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }
  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->move_into(*this, other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }
  ~Packet() { reset(); }

  [[nodiscard]] bool empty() const noexcept { return ops_ == nullptr; }

  /// The held header; throws std::bad_cast on a type mismatch and
  /// std::logic_error when empty.
  template <typename H>
  [[nodiscard]] H& as() {
    check_type<H>();
    return *static_cast<H*>(payload());
  }
  template <typename H>
  [[nodiscard]] const H& as() const {
    check_type<H>();
    return *static_cast<const H*>(payload());
  }

 private:
  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kInlineCapacity &&
           alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  struct Ops {
    const std::type_info* type;
    bool inline_storage;
    void (*destroy)(Packet&) noexcept;
    void (*copy_into)(Packet& dst, const Packet& src);
    void (*move_into)(Packet& dst, Packet& src) noexcept;
  };

  template <typename T>
  struct OpsFor {
    static void destroy(Packet& p) noexcept {
      if constexpr (fits_inline<T>()) {
        static_cast<T*>(static_cast<void*>(p.inline_))->~T();
      } else {
        delete static_cast<T*>(p.heap_);
      }
    }
    static void copy_into(Packet& dst, const Packet& src) {
      if constexpr (fits_inline<T>()) {
        ::new (static_cast<void*>(dst.inline_))
            T(*static_cast<const T*>(static_cast<const void*>(src.inline_)));
      } else {
        dst.heap_ = new T(*static_cast<const T*>(src.heap_));
      }
    }
    static void move_into(Packet& dst, Packet& src) noexcept {
      if constexpr (fits_inline<T>()) {
        T* from = static_cast<T*>(static_cast<void*>(src.inline_));
        ::new (static_cast<void*>(dst.inline_)) T(std::move(*from));
        from->~T();
      } else {
        dst.heap_ = src.heap_;
        src.heap_ = nullptr;
      }
    }
    static inline const Ops value{&typeid(T), fits_inline<T>(), &destroy,
                                  &copy_into, &move_into};
  };

  template <typename H>
  void check_type() const {
    // Fast path: every Packet holding H points at the same inline OpsFor<H>
    // instance, so one pointer compare decodes the box.  as<H>() runs twice
    // per forwarding hop (forward + header_bits), which made the full RTTI
    // comparison a measurable slice of the batch query path.  The typeid
    // fallback stays for the (shared-library) case of duplicated Ops
    // instances for one type.
    if (ops_ == &OpsFor<H>::value) return;
    if (ops_ == nullptr) {
      throw std::logic_error("Packet::as on an empty packet");
    }
    if (*ops_->type != typeid(H)) throw std::bad_cast();
  }

  [[nodiscard]] void* payload() noexcept {
    return ops_->inline_storage ? static_cast<void*>(inline_) : heap_;
  }
  [[nodiscard]] const void* payload() const noexcept {
    return ops_->inline_storage ? static_cast<const void*>(inline_) : heap_;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

  const Ops* ops_;
  union {
    alignas(std::max_align_t) unsigned char inline_[kInlineCapacity];
    void* heap_;
  };
};

/// No proven worst-case stretch guarantee.
[[nodiscard]] double unbounded_stretch();

/// The abstract roundtrip routing scheme: Section 1.1.1's contract with the
/// header type erased.  Tables are immutable after construction and every
/// method must be safe to call concurrently from many threads (the
/// QueryEngine pool does exactly that); per-packet state belongs in the
/// Packet, never in the scheme.
class Scheme {
 public:
  /// Satisfies the net/simulator.h duck-typed concept, so the template walk
  /// runs unchanged over the virtual interface (one walk, two paths).
  using Header = Packet;

  virtual ~Scheme() = default;

  /// Human-readable scheme identity, e.g. "stretch6(TINN)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// A fresh packet addressed to `dest`; carries the destination *name* only
  /// (TINN model).
  [[nodiscard]] virtual Packet make_packet(NodeName dest) const = 0;

  /// Host at the destination flips the packet into its acknowledgment.
  virtual void prepare_return(Packet& p) const = 0;

  /// The local forwarding function F(table(at), header(p)).
  [[nodiscard]] virtual Decision forward(NodeId at, Packet& p) const = 0;

  /// Honest encoded size of the current header, in bits.
  [[nodiscard]] virtual std::int64_t header_bits(const Packet& p) const = 0;

  [[nodiscard]] virtual TableStats table_stats() const = 0;

  /// Worst-case roundtrip stretch guarantee; unbounded_stretch() if none.
  [[nodiscard]] virtual double stretch_bound() const {
    return unbounded_stretch();
  }

  /// Auditable: deep-checks the scheme's own tables (dictionaries, trees,
  /// balls) against the paper's structural invariants, recording one typed
  /// entry per invariant.  The base implementation records a single passing
  /// placeholder entry so a scheme without a deep audit is visible in the
  /// report rather than silently skipped; every in-repo scheme overrides it.
  virtual void audit(AuditReport& report) const;

  /// Runs a whole src -> dst -> src walk against `g` (the graph the tables
  /// were built for).  The base implementation is the type-erased Packet
  /// walk (identical to free simulate_roundtrip); TemplateSchemeAdapter
  /// overrides it with the concrete-header template walk, which costs ONE
  /// virtual dispatch per roundtrip instead of two (plus a Packet decode)
  /// per forwarding hop.  Batch serving (QueryEngine::run_batch) goes
  /// through here; results are identical on both paths by construction --
  /// the two walks are the same template instantiated at different Header
  /// types.
  [[nodiscard]] virtual RouteResult simulate(const Digraph& g, NodeId src,
                                             NodeId dst, NodeName dst_name,
                                             SimOptions opt = {}) const;
};

/// Everything a scheme factory may consult at preprocessing time.
struct BuildContext {
  std::shared_ptr<const Digraph> graph;
  std::shared_ptr<const RoundtripMetric> metric;
  NameAssignment names = NameAssignment::identity(0);
  std::shared_ptr<Rng> rng;  // preprocessing-time randomness
  std::map<std::string, std::string> options;  // scheme-specific knobs

  /// Canonical experiment setup: assigns adversarial ports on the builder
  /// with Rng(seed), freezes it into the immutable CSR graph, assigns names,
  /// computes the roundtrip metric, and leaves `rng` seeded for the scheme
  /// build.  Throws if the graph is not strongly connected.
  static BuildContext for_graph(GraphBuilder g, std::uint64_t seed,
                                std::map<std::string, std::string> options = {});

  /// Wraps pre-built pieces (shared ownership; no mutation).
  static BuildContext wrap(std::shared_ptr<const Digraph> graph,
                           std::shared_ptr<const RoundtripMetric> metric,
                           NameAssignment names, std::uint64_t scheme_seed,
                           std::map<std::string, std::string> options = {});

  [[nodiscard]] int option_int(const std::string& key, int fallback) const;
  [[nodiscard]] bool option_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] double option_double(const std::string& key,
                                     double fallback) const;
};

/// Pieces a snapshot loader has already materialized (the "graph" and
/// "names" sections) by the time a scheme's loader hook runs.
struct SnapshotLoadContext {
  std::shared_ptr<const Digraph> graph;
  NameAssignment names = NameAssignment::identity(0);
};

class SchemeHandle;

/// Maps scheme names to factories.  The global() registry comes with every
/// in-repo scheme pre-registered: stretch6, stretch6-detour, exstretch,
/// polystretch, rtz3, fulltable, hashed64.
///
/// Each entry may additionally carry *snapshot hooks*: a saver that encodes
/// a built scheme's tables into a SnapshotWriter and a loader that rebuilds
/// the scheme from a SnapshotReader without touching the graph again.  All
/// built-ins register hooks; io/snapshot.h drives them.
class SchemeRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const Scheme>(const BuildContext&)>;
  /// Encodes a registry-built scheme's state; throws std::invalid_argument
  /// if handed a scheme of a different concrete type.
  using Saver = std::function<void(const Scheme&, SnapshotWriter&)>;
  /// Decodes a scheme from snapshot bytes against the already-loaded graph.
  using Loader = std::function<std::shared_ptr<const Scheme>(
      SnapshotReader&, const SnapshotLoadContext&)>;
  /// Writes a built scheme's tables as flat arena sections (v2 snapshots).
  using ArenaSaver = std::function<void(const Scheme&, ArenaWriter&)>;
  /// Reconstructs a scheme as zero-copy views over a v2 arena.
  using ArenaLoader = std::function<std::shared_ptr<const Scheme>(
      const ArenaView&, const SnapshotLoadContext&)>;
  /// Incrementally repairs a scheme built for `old_graph` onto ctx's graph
  /// (the post-churn epoch), recomputing only churn-affected substructures.
  /// The contract is strict: the result must be indistinguishable from
  /// build(name, ctx) -- identical routes, stats, and snapshot bytes.  A
  /// hook returns nullptr to decline (delta too invasive, equivalence not
  /// certifiable); the caller then falls back to a full build.
  using Repairer = std::function<std::shared_ptr<const Scheme>(
      const Scheme& old_scheme, const Digraph& old_graph,
      const BuildContext& ctx, const ChurnDelta& delta)>;

  /// Registers a factory; throws std::invalid_argument on a duplicate name.
  void add(std::string name, std::string summary, Factory factory);

  /// Attaches snapshot hooks to a registered name; throws for unknown names.
  void set_snapshot_hooks(const std::string& name, Saver saver, Loader loader);

  /// Attaches v2 arena hooks.  Optional: schemes without them still get v2
  /// snapshots via the generic blob fallback (their v1 byte encoding nested
  /// in one arena section), they just load by decoding instead of mapping.
  void set_arena_hooks(const std::string& name, ArenaSaver saver,
                       ArenaLoader loader);

  /// Attaches the incremental repair hook; throws for unknown names.
  void set_repair_hook(const std::string& name, Repairer repairer);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] bool snapshot_supported(const std::string& name) const;
  /// True when the scheme maps v2 arenas in place (no blob fallback).
  [[nodiscard]] bool arena_supported(const std::string& name) const;
  /// True when the scheme registered an incremental repair hook.
  [[nodiscard]] bool repair_supported(const std::string& name) const;

  /// Builds the named scheme; throws std::invalid_argument for unknown names
  /// (the message lists what is registered).
  [[nodiscard]] std::shared_ptr<const Scheme> build(
      const std::string& name, const BuildContext& ctx) const;

  /// Attempts incremental repair of `old_scheme` (built for `old_graph`)
  /// onto ctx's graph; throws for unknown names.  Returns nullptr when the
  /// scheme has no repair hook or the hook declines -- the caller falls back
  /// to build().  A successful repair passes the same RTR_AUDIT_ON_BUILD
  /// deep audit a registry build does.
  [[nodiscard]] std::shared_ptr<const Scheme> repair(
      const std::string& name, const Scheme& old_scheme,
      const Digraph& old_graph, const BuildContext& ctx,
      const ChurnDelta& delta) const;

  /// The snapshot hooks of a name; throw std::invalid_argument when the name
  /// is unknown or registered without hooks.
  [[nodiscard]] const Saver& saver(const std::string& name) const;
  [[nodiscard]] const Loader& loader(const std::string& name) const;
  [[nodiscard]] const ArenaSaver& arena_saver(const std::string& name) const;
  [[nodiscard]] const ArenaLoader& arena_loader(const std::string& name) const;

  /// How build_or_load materializes a cache hit.  kOwned decodes into
  /// owning buffers with full section-CRC verification (the historical
  /// behavior, works for every snapshot version).  kMapped first tries to
  /// mmap(2) a v2 arena in place -- the O(ms)-at-any-n warm start the epoch
  /// server uses; payload CRCs are NOT verified on this path -- and falls
  /// back to kOwned for v1 files or when the mapping fails.
  enum class SnapshotLoadMode { kOwned, kMapped };

  /// The serve-path entry point: if `path` holds a valid snapshot of `name`,
  /// load it and skip construction entirely (make_ctx is never called -- no
  /// APSP, no scheme build); otherwise build from make_ctx(), save the
  /// snapshot to `path` for the next process, and return the built handle.
  /// A stale or corrupt cache file is treated as a miss and overwritten.
  [[nodiscard]] SchemeHandle build_or_load(
      const std::string& name, const std::function<BuildContext()>& make_ctx,
      const std::string& path,
      SnapshotLoadMode mode = SnapshotLoadMode::kOwned) const;

  /// Convenience overload for callers that already paid for a BuildContext.
  [[nodiscard]] SchemeHandle build_or_load(
      const std::string& name, const BuildContext& ctx,
      const std::string& path,
      SnapshotLoadMode mode = SnapshotLoadMode::kOwned) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::string& summary(const std::string& name) const;

  /// The process-wide registry with built-ins pre-registered.
  static SchemeRegistry& global();

 private:
  struct Entry {
    std::string summary;
    Factory factory;
    Saver saver;    // empty when the scheme has no snapshot support
    Loader loader;  // empty when the scheme has no snapshot support
    ArenaSaver arena_saver;    // empty -> v2 uses the blob fallback
    ArenaLoader arena_loader;  // empty -> v2 uses the blob fallback
    Repairer repairer;         // empty -> epochs always rebuild from scratch
  };
  [[nodiscard]] const Entry& entry_or_throw(const std::string& name,
                                            const char* what) const;
  std::map<std::string, Entry> entries_;
};

/// Registers the repo's built-in schemes; called once by global(), exposed
/// for tests that want a private registry with the same contents.
void register_builtin_schemes(SchemeRegistry& registry);

/// Runs source -> destination -> source through the virtual interface; the
/// body delegates to the net/simulator.h template instantiated at Header =
/// Packet, so both paths are the same walk by construction.  This exact
/// (non-template) overload wins resolution for const Scheme& arguments;
/// derived types (adapters) match the template directly, which performs the
/// identical virtual-dispatch walk.
[[nodiscard]] RouteResult simulate_roundtrip(const Digraph& g,
                                             const Scheme& scheme, NodeId src,
                                             NodeId dst, NodeName dst_name,
                                             SimOptions opt = {});

/// A built scheme bound to its graph and naming.  Holds shared ownership of
/// both, so a handle may safely outlive the scope that built it.
class SchemeHandle {
 public:
  SchemeHandle(std::shared_ptr<const Digraph> graph, NameAssignment names,
               std::shared_ptr<const Scheme> scheme);

  [[nodiscard]] std::string name() const { return scheme_->name(); }
  /// Computed on first call and cached (shared across handle copies): the
  /// stats walk is O(n * tables), which would otherwise dominate a mapped
  /// O(ms) snapshot load if paid eagerly at construction.
  [[nodiscard]] const TableStats& table_stats() const;
  [[nodiscard]] const Scheme& scheme() const { return *scheme_; }
  [[nodiscard]] const std::shared_ptr<const Scheme>& scheme_ptr() const {
    return scheme_;
  }
  [[nodiscard]] const Digraph& graph() const { return *graph_; }
  [[nodiscard]] const std::shared_ptr<const Digraph>& graph_ptr() const {
    return graph_;
  }
  [[nodiscard]] const NameAssignment& names() const { return names_; }

  /// One roundtrip keyed by internal ids; the destination name is looked up
  /// from the bound NameAssignment.
  [[nodiscard]] RouteResult roundtrip(NodeId src, NodeId dst,
                                      SimOptions opt = {}) const;

 private:
  struct LazyStats {
    std::once_flag once;
    TableStats stats;
  };

  std::shared_ptr<const Digraph> graph_;
  NameAssignment names_;
  std::shared_ptr<const Scheme> scheme_;
  std::shared_ptr<LazyStats> stats_;
};

}  // namespace rtr

#endif  // RTR_NET_SCHEME_H
