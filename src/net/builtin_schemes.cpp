// Registration of every in-repo roundtrip routing scheme with the global
// SchemeRegistry.  Adding a scheme (or an option variant) is one add() line
// plus, when the scheme supports binary snapshots, one set_snapshot_hooks()
// line pairing its save()/snapshot-constructor.
#include <memory>
#include <utility>

#include "baseline/full_table.h"
#include "core/exstretch.h"
#include "core/hashed_stretch6.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "io/arena.h"
#include "io/snapshot_format.h"
#include "net/scheme.h"
#include "net/scheme_adapter.h"
#include "rtz/rtz3_scheme.h"

namespace rtr {
namespace {

/// The 64-bit self-chosen-name variant needs a bridge: the unified interface
/// addresses packets by TINN NodeName, while HashedStretch6Scheme's headers
/// carry the node's self-chosen 64-bit name.  The adapter owns the chosen
/// names it drew at build time and translates at injection only (forwarding
/// runs on the chosen names, as the paper's reduction prescribes).
class Hashed64Adapter final : public Scheme {
 public:
  explicit Hashed64Adapter(const BuildContext& ctx)
      : names_(ctx.names), graph_(ctx.graph), metric_(ctx.metric) {
    if (graph_ == nullptr || metric_ == nullptr || ctx.rng == nullptr) {
      throw std::invalid_argument("hashed64: incomplete BuildContext");
    }
    chosen_ = ChosenNames::random(graph_->node_count(), *ctx.rng);
    HashedStretch6Scheme::Options opts;
    opts.threads = ctx.option_int("threads", opts.threads);
    impl_ = std::make_shared<const HashedStretch6Scheme>(
        *graph_, *metric_, chosen_, *ctx.rng, opts);
  }

  /// Snapshot path: the metric is build-time only, so a loaded adapter
  /// carries none; the chosen names come out of the scheme payload (the
  /// scheme serializes them once for both of us).
  Hashed64Adapter(SnapshotReader& r, const SnapshotLoadContext& ctx)
      : names_(ctx.names),
        graph_(require_graph(ctx.graph)),
        impl_(std::make_shared<const HashedStretch6Scheme>(r, *graph_)) {
    chosen_ = impl_->chosen();
  }

  void save(SnapshotWriter& w) const { impl_->save(w); }

  [[nodiscard]] std::string name() const override { return impl_->name(); }

  [[nodiscard]] Packet make_packet(NodeName dest) const override {
    return Packet(impl_->make_packet(chosen_.of_id(names_.id_of(dest))));
  }

  void prepare_return(Packet& p) const override {
    impl_->prepare_return(p.as<ImplHeader>());
  }

  [[nodiscard]] Decision forward(NodeId at, Packet& p) const override {
    return impl_->forward(at, p.as<ImplHeader>());
  }

  [[nodiscard]] std::int64_t header_bits(const Packet& p) const override {
    return impl_->header_bits(p.as<ImplHeader>());
  }

  [[nodiscard]] TableStats table_stats() const override {
    return impl_->table_stats();
  }

  [[nodiscard]] double stretch_bound() const override {
    return impl_->stretch_bound();
  }

  void audit(AuditReport& report) const override { impl_->audit(report); }

 private:
  // Kept private so the inherited Scheme::Header (= Packet) stays the
  // generic-facing header type.
  using ImplHeader = HashedStretch6Scheme::Header;

  static std::shared_ptr<const Digraph> require_graph(
      std::shared_ptr<const Digraph> g) {
    if (g == nullptr) {
      throw std::invalid_argument("hashed64: snapshot context without graph");
    }
    return g;
  }

  NameAssignment names_;
  // Retained: the scheme references the graph/metric without owning them.
  std::shared_ptr<const Digraph> graph_;
  std::shared_ptr<const RoundtripMetric> metric_;
  ChosenNames chosen_;
  std::shared_ptr<const HashedStretch6Scheme> impl_;
};

void check_complete(const BuildContext& ctx, const char* scheme) {
  if (ctx.graph == nullptr || ctx.metric == nullptr || ctx.rng == nullptr) {
    throw std::invalid_argument(std::string(scheme) +
                                ": incomplete BuildContext");
  }
}

/// Schemes reference the context's graph/metric without owning them; the
/// adapter retains both so a registry-built scheme outlives its context.
std::vector<std::shared_ptr<const void>> context_deps(const BuildContext& ctx) {
  return {ctx.graph, ctx.metric};
}

template <TemplatedScheme S, typename... Args>
std::shared_ptr<const Scheme> build_adapted(const BuildContext& ctx,
                                            Args&&... args) {
  return adapt_scheme(std::make_shared<const S>(std::forward<Args>(args)...),
                      context_deps(ctx));
}

/// Snapshot saver for adapter-wrapped schemes: unwraps the adapter the
/// factory above produced and delegates to the concrete scheme's save().
template <TemplatedScheme S>
void save_adapted(const Scheme& scheme, SnapshotWriter& w) {
  const auto* adapter = dynamic_cast<const TemplateSchemeAdapter<S>*>(&scheme);
  if (adapter == nullptr) {
    throw std::invalid_argument(
        "snapshot save: scheme instance does not match this registry entry");
  }
  adapter->impl().save(w);
}

const Digraph& require_snapshot_graph(const SnapshotLoadContext& ctx) {
  if (ctx.graph == nullptr) {
    throw std::invalid_argument("snapshot load: context without graph");
  }
  return *ctx.graph;
}

}  // namespace

void register_builtin_schemes(SchemeRegistry& registry) {
  registry.add("stretch6", "Section 2 stretch-6 TINN scheme (O~(sqrt n) tables)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "stretch6");
                 Stretch6Scheme::Options opts;
                 opts.threads = ctx.option_int("threads", opts.threads);
                 return build_adapted<Stretch6Scheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng, opts);
               });
  registry.add("stretch6-detour",
               "Section 2.2 variant returning to the source after the "
               "dictionary lookup",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "stretch6-detour");
                 Stretch6Scheme::Options opts;
                 opts.detour_via_source = true;
                 opts.threads = ctx.option_int("threads", opts.threads);
                 return build_adapted<Stretch6Scheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng, opts);
               });
  registry.add("exstretch",
               "Section 3 exponential stretch/space tradeoff (option k, "
               "default 3)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "exstretch");
                 ExStretchScheme::Options opts;
                 opts.k = ctx.option_int("k", opts.k);
                 opts.threads = ctx.option_int("threads", opts.threads);
                 return build_adapted<ExStretchScheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng, opts);
               });
  registry.add("polystretch",
               "Section 4 polynomial stretch/space tradeoff (option k, "
               "default 3)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "polystretch");
                 PolyStretchScheme::Options opts;
                 opts.k = ctx.option_int("k", opts.k);
                 opts.threads = ctx.option_int("threads", opts.threads);
                 return build_adapted<PolyStretchScheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, opts);
               });
  registry.add("rtz3",
               "Lemma 2 name-dependent stretch-3 substrate (option "
               "greedy_centers)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "rtz3");
                 Rtz3Scheme::Options opts;
                 opts.greedy_centers =
                     ctx.option_bool("greedy_centers", opts.greedy_centers);
                 opts.threads = ctx.option_int("threads", opts.threads);
                 return build_adapted<Rtz3Scheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng, opts);
               });
  registry.add("fulltable",
               "Classical full next-hop tables, stretch 1, Theta(n log n) "
               "bits/node",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 if (ctx.graph == nullptr) {
                   throw std::invalid_argument("fulltable: incomplete BuildContext");
                 }
                 return adapt_scheme(std::make_shared<const FullTableScheme>(
                                         *ctx.graph, ctx.names),
                                     {ctx.graph});
               });
  registry.add("hashed64",
               "Section 1.1.2 reduction: self-chosen 64-bit names hashed onto "
               "buckets",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 return std::make_shared<const Hashed64Adapter>(ctx);
               });

  // --- snapshot hooks: save()/snapshot-constructor pairs per entry ----------
  const auto stretch6_loader =
      [](SnapshotReader& r,
         const SnapshotLoadContext& ctx) -> std::shared_ptr<const Scheme> {
    return adapt_scheme(
        std::make_shared<const Stretch6Scheme>(r, require_snapshot_graph(ctx)),
        {ctx.graph});
  };
  // The detour flag travels inside the payload, so both variants share one
  // saver/loader pair.
  registry.set_snapshot_hooks("stretch6", &save_adapted<Stretch6Scheme>,
                              stretch6_loader);
  registry.set_snapshot_hooks("stretch6-detour", &save_adapted<Stretch6Scheme>,
                              stretch6_loader);
  registry.set_snapshot_hooks(
      "exstretch", &save_adapted<ExStretchScheme>,
      [](SnapshotReader& r,
         const SnapshotLoadContext&) -> std::shared_ptr<const Scheme> {
        return adapt_scheme(std::make_shared<const ExStretchScheme>(r));
      });
  registry.set_snapshot_hooks(
      "polystretch", &save_adapted<PolyStretchScheme>,
      [](SnapshotReader& r,
         const SnapshotLoadContext&) -> std::shared_ptr<const Scheme> {
        return adapt_scheme(std::make_shared<const PolyStretchScheme>(r));
      });
  registry.set_snapshot_hooks(
      "rtz3", &save_adapted<Rtz3Scheme>,
      [](SnapshotReader& r,
         const SnapshotLoadContext& ctx) -> std::shared_ptr<const Scheme> {
        return adapt_scheme(
            std::make_shared<const Rtz3Scheme>(r, require_snapshot_graph(ctx)),
            {ctx.graph});
      });
  // --- v2 arena hooks: flat-table schemes map snapshots in place ------------
  // Scheme-owned sections live under the "scheme/" prefix (the substrate a
  // TINN scheme embeds nests one level deeper, e.g. "scheme/s/").
  registry.set_arena_hooks(
      "rtz3",
      [](const Scheme& scheme, ArenaWriter& w) {
        const auto* adapter =
            dynamic_cast<const TemplateSchemeAdapter<Rtz3Scheme>*>(&scheme);
        if (adapter == nullptr) {
          throw std::invalid_argument(
              "snapshot save: scheme instance does not match this registry "
              "entry");
        }
        adapter->impl().save_arena(w, "scheme/");
      },
      [](const ArenaView& a,
         const SnapshotLoadContext& ctx) -> std::shared_ptr<const Scheme> {
        return adapt_scheme(
            std::make_shared<const Rtz3Scheme>(Rtz3Scheme::from_arena(
                a, "scheme/", require_snapshot_graph(ctx), ctx.names)),
            {ctx.graph});
      });
  // As with the v1 hooks, the detour flag travels inside the scheme meta, so
  // both stretch6 variants share one arena saver/loader pair.
  const auto stretch6_arena_saver = [](const Scheme& scheme, ArenaWriter& w) {
    const auto* adapter =
        dynamic_cast<const TemplateSchemeAdapter<Stretch6Scheme>*>(&scheme);
    if (adapter == nullptr) {
      throw std::invalid_argument(
          "snapshot save: scheme instance does not match this registry entry");
    }
    adapter->impl().save_arena(w, "scheme/");
  };
  const auto stretch6_arena_loader =
      [](const ArenaView& a,
         const SnapshotLoadContext& ctx) -> std::shared_ptr<const Scheme> {
    return adapt_scheme(
        std::make_shared<const Stretch6Scheme>(Stretch6Scheme::from_arena(
            a, "scheme/", require_snapshot_graph(ctx), ctx.names)),
        {ctx.graph});
  };
  registry.set_arena_hooks("stretch6", stretch6_arena_saver,
                           stretch6_arena_loader);
  registry.set_arena_hooks("stretch6-detour", stretch6_arena_saver,
                           stretch6_arena_loader);

  registry.set_snapshot_hooks(
      "fulltable", &save_adapted<FullTableScheme>,
      [](SnapshotReader& r,
         const SnapshotLoadContext&) -> std::shared_ptr<const Scheme> {
        return adapt_scheme(std::make_shared<const FullTableScheme>(r));
      });
  // --- incremental repair hooks (ROADMAP: epoch repair under churn) ---------
  // Only schemes with a certified-equivalence repair path register one;
  // everything else silently falls back to a full rebuild.  Each hook
  // unwraps the adapter exactly like the snapshot savers and rewraps the
  // repaired implementation with the new context's retained deps.
  registry.set_repair_hook(
      "rtz3",
      [](const Scheme& old_scheme, const Digraph& old_graph,
         const BuildContext& ctx,
         const ChurnDelta& delta) -> std::shared_ptr<const Scheme> {
        const auto* adapter =
            dynamic_cast<const TemplateSchemeAdapter<Rtz3Scheme>*>(&old_scheme);
        if (adapter == nullptr) return nullptr;
        check_complete(ctx, "rtz3");
        Rtz3Scheme::Options opts;
        opts.greedy_centers =
            ctx.option_bool("greedy_centers", opts.greedy_centers);
        opts.threads = ctx.option_int("threads", opts.threads);
        auto repaired =
            Rtz3Scheme::repair(adapter->impl(), old_graph, *ctx.graph,
                               *ctx.metric, ctx.names, *ctx.rng, delta, opts);
        if (repaired == nullptr) return nullptr;
        return adapt_scheme(std::move(repaired), context_deps(ctx));
      });
  registry.set_repair_hook(
      "fulltable",
      [](const Scheme& old_scheme, const Digraph& old_graph,
         const BuildContext& ctx,
         const ChurnDelta& delta) -> std::shared_ptr<const Scheme> {
        const auto* adapter =
            dynamic_cast<const TemplateSchemeAdapter<FullTableScheme>*>(
                &old_scheme);
        if (adapter == nullptr || ctx.graph == nullptr) return nullptr;
        auto repaired = FullTableScheme::repair(adapter->impl(), old_graph,
                                                *ctx.graph, ctx.names, delta);
        if (repaired == nullptr) return nullptr;
        return adapt_scheme(std::move(repaired), {ctx.graph});
      });

  registry.set_snapshot_hooks(
      "hashed64",
      [](const Scheme& scheme, SnapshotWriter& w) {
        const auto* adapter = dynamic_cast<const Hashed64Adapter*>(&scheme);
        if (adapter == nullptr) {
          throw std::invalid_argument(
              "snapshot save: scheme instance does not match this registry "
              "entry");
        }
        adapter->save(w);
      },
      [](SnapshotReader& r,
         const SnapshotLoadContext& ctx) -> std::shared_ptr<const Scheme> {
        require_snapshot_graph(ctx);
        return std::make_shared<const Hashed64Adapter>(r, ctx);
      });
}

}  // namespace rtr
