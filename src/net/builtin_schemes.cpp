// Registration of every in-repo roundtrip routing scheme with the global
// SchemeRegistry.  Adding a scheme (or an option variant) is one add() line.
#include <memory>
#include <utility>

#include "baseline/full_table.h"
#include "core/exstretch.h"
#include "core/hashed_stretch6.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "net/scheme.h"
#include "net/scheme_adapter.h"
#include "rtz/rtz3_scheme.h"

namespace rtr {
namespace {

/// The 64-bit self-chosen-name variant needs a bridge: the unified interface
/// addresses packets by TINN NodeName, while HashedStretch6Scheme's headers
/// carry the node's self-chosen 64-bit name.  The adapter owns the chosen
/// names it drew at build time and translates at injection only (forwarding
/// runs on the chosen names, as the paper's reduction prescribes).
class Hashed64Adapter final : public Scheme {
 public:
  explicit Hashed64Adapter(const BuildContext& ctx)
      : names_(ctx.names), graph_(ctx.graph), metric_(ctx.metric) {
    if (graph_ == nullptr || metric_ == nullptr || ctx.rng == nullptr) {
      throw std::invalid_argument("hashed64: incomplete BuildContext");
    }
    chosen_ = ChosenNames::random(graph_->node_count(), *ctx.rng);
    impl_ = std::make_shared<const HashedStretch6Scheme>(*graph_, *metric_,
                                                         chosen_, *ctx.rng);
  }

  [[nodiscard]] std::string name() const override { return impl_->name(); }

  [[nodiscard]] Packet make_packet(NodeName dest) const override {
    return Packet(impl_->make_packet(chosen_.of_id(names_.id_of(dest))));
  }

  void prepare_return(Packet& p) const override {
    impl_->prepare_return(p.as<ImplHeader>());
  }

  [[nodiscard]] Decision forward(NodeId at, Packet& p) const override {
    return impl_->forward(at, p.as<ImplHeader>());
  }

  [[nodiscard]] std::int64_t header_bits(const Packet& p) const override {
    return impl_->header_bits(p.as<ImplHeader>());
  }

  [[nodiscard]] TableStats table_stats() const override {
    return impl_->table_stats();
  }

  [[nodiscard]] double stretch_bound() const override {
    return impl_->stretch_bound();
  }

 private:
  // Kept private so the inherited Scheme::Header (= Packet) stays the
  // generic-facing header type.
  using ImplHeader = HashedStretch6Scheme::Header;

  NameAssignment names_;
  // Retained: the scheme references the graph/metric without owning them.
  std::shared_ptr<const Digraph> graph_;
  std::shared_ptr<const RoundtripMetric> metric_;
  ChosenNames chosen_;
  std::shared_ptr<const HashedStretch6Scheme> impl_;
};

void check_complete(const BuildContext& ctx, const char* scheme) {
  if (ctx.graph == nullptr || ctx.metric == nullptr || ctx.rng == nullptr) {
    throw std::invalid_argument(std::string(scheme) +
                                ": incomplete BuildContext");
  }
}

/// Schemes reference the context's graph/metric without owning them; the
/// adapter retains both so a registry-built scheme outlives its context.
std::vector<std::shared_ptr<const void>> context_deps(const BuildContext& ctx) {
  return {ctx.graph, ctx.metric};
}

template <TemplatedScheme S, typename... Args>
std::shared_ptr<const Scheme> build_adapted(const BuildContext& ctx,
                                            Args&&... args) {
  return adapt_scheme(std::make_shared<const S>(std::forward<Args>(args)...),
                      context_deps(ctx));
}

}  // namespace

void register_builtin_schemes(SchemeRegistry& registry) {
  registry.add("stretch6", "Section 2 stretch-6 TINN scheme (O~(sqrt n) tables)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "stretch6");
                 return build_adapted<Stretch6Scheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng);
               });
  registry.add("stretch6-detour",
               "Section 2.2 variant returning to the source after the "
               "dictionary lookup",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "stretch6-detour");
                 Stretch6Scheme::Options opts;
                 opts.detour_via_source = true;
                 return build_adapted<Stretch6Scheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng, opts);
               });
  registry.add("exstretch",
               "Section 3 exponential stretch/space tradeoff (option k, "
               "default 3)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "exstretch");
                 ExStretchScheme::Options opts;
                 opts.k = ctx.option_int("k", opts.k);
                 return build_adapted<ExStretchScheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng, opts);
               });
  registry.add("polystretch",
               "Section 4 polynomial stretch/space tradeoff (option k, "
               "default 3)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "polystretch");
                 PolyStretchScheme::Options opts;
                 opts.k = ctx.option_int("k", opts.k);
                 return build_adapted<PolyStretchScheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, opts);
               });
  registry.add("rtz3",
               "Lemma 2 name-dependent stretch-3 substrate (option "
               "greedy_centers)",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 check_complete(ctx, "rtz3");
                 Rtz3Scheme::Options opts;
                 opts.greedy_centers =
                     ctx.option_bool("greedy_centers", opts.greedy_centers);
                 return build_adapted<Rtz3Scheme>(
                     ctx, *ctx.graph, *ctx.metric, ctx.names, *ctx.rng, opts);
               });
  registry.add("fulltable",
               "Classical full next-hop tables, stretch 1, Theta(n log n) "
               "bits/node",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 if (ctx.graph == nullptr) {
                   throw std::invalid_argument("fulltable: incomplete BuildContext");
                 }
                 return adapt_scheme(std::make_shared<const FullTableScheme>(
                                         *ctx.graph, ctx.names),
                                     {ctx.graph});
               });
  registry.add("hashed64",
               "Section 1.1.2 reduction: self-chosen 64-bit names hashed onto "
               "buckets",
               [](const BuildContext& ctx) -> std::shared_ptr<const Scheme> {
                 return std::make_shared<const Hashed64Adapter>(ctx);
               });
}

}  // namespace rtr
