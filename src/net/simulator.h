// The packet-walk simulator (Section 1.1.1's execution model).
//
// A roundtrip routing scheme must provide:
//   (1) per-node routing tables (built at preprocessing),
//   (2) a forwarding function F(table(x), header(P)) evaluated locally,
//       returning the outgoing port and mutating the writable header.
//
// The simulator injects a packet at the source carrying only the destination
// *name* (TINN model), repeatedly applies the forwarding function, resolves
// ports against the graph "hardware", and measures: weighted path length out
// and back, hop counts, and the maximum header size in bits.  A hop budget
// guards against forwarding loops (a scheme bug, reported as a failure, never
// an infinite loop).
//
// Scheme concept:
//   using Header = ...;                               // writable header
//   Header make_packet(NodeName dest) const;          // name-only header
//   void prepare_return(Header&) const;               // host flips to ReturnPacket
//   Decision forward(NodeId at, Header&) const;       // local function F
//   std::int64_t header_bits(const Header&) const;    // encoded size
//
// This header keeps the duck-typed *template* fast path (no vtable on the
// forwarding hot path, for perf-sensitive benches).  The type-erased virtual
// path -- rtr::Scheme, SchemeRegistry, SchemeHandle and the non-template
// simulate_roundtrip overload -- lives in net/scheme.h.
#ifndef RTR_NET_SIMULATOR_H
#define RTR_NET_SIMULATOR_H

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/digraph.h"
#include "net/table_stats.h"
#include "util/types.h"

namespace rtr {

/// What the forwarding function tells the router to do.
struct Decision {
  bool deliver = false;  // hand the packet to the host at this node
  Port port = kNoPort;   // otherwise: forward on this port
  /// False promises that this step did not change the header's *encoded
  /// size* (content may still have changed).  With
  /// SimOptions::trust_header_size_hints the simulator then skips the
  /// per-hop header_bits re-measurement -- the dominant per-hop cost for
  /// label-carrying schemes -- without altering the reported max (the
  /// serial-vs-batch report-equality tests pin that the hint is honest).
  /// The default (true) re-measures every hop, the seed behavior.
  bool header_resized = true;
  static Decision deliver_here() { return Decision{true, kNoPort, true}; }
  static Decision forward_on(Port p) { return Decision{false, p, true}; }
  /// Forward, promising the header's encoded size is unchanged.
  static Decision forward_same_size(Port p) { return Decision{false, p, false}; }
};

/// Outcome of one roundtrip simulation.
struct RouteResult {
  bool delivered_out = false;   // packet reached the destination host
  bool delivered_back = false;  // acknowledgment reached the source host
  Dist out_length = 0;          // weighted length of the forward route
  Dist back_length = 0;         // weighted length of the return route
  std::int64_t out_hops = 0;
  std::int64_t back_hops = 0;
  std::int64_t max_header_bits = 0;
  std::vector<NodeId> out_path;  // filled when SimOptions::record_paths
  std::vector<NodeId> back_path;

  [[nodiscard]] bool ok() const { return delivered_out && delivered_back; }
  [[nodiscard]] Dist roundtrip_length() const { return out_length + back_length; }
};

struct SimOptions {
  std::int64_t max_hops_per_leg = 0;  // 0: auto (16n + 64)
  bool record_paths = false;
  /// Honor Decision::header_resized == false by skipping the header_bits
  /// re-measurement for that hop.  Off by default (measure every hop, the
  /// seed behavior); the QueryEngine batch path turns it on.
  bool trust_header_size_hints = false;
};

/// Satisfied by the duck-typed scheme concept (a concrete Header type);
/// abstract rtr::Scheme arguments fall through to the net/scheme.h overload.
template <typename S>
concept TemplatedScheme = requires { typename S::Header; };

/// Runs source -> destination -> source.  `src` / `dst` are internal ids (the
/// injection points); the header the scheme sees carries names only.
template <TemplatedScheme Scheme>
RouteResult simulate_roundtrip(const Digraph& g, const Scheme& scheme,
                               NodeId src, NodeId dst, NodeName dst_name,
                               SimOptions opt = {}) {
  RouteResult res;
  const std::int64_t budget = opt.max_hops_per_leg > 0
                                  ? opt.max_hops_per_leg
                                  : 16 * static_cast<std::int64_t>(g.node_count()) + 64;
  typename Scheme::Header header = scheme.make_packet(dst_name);
  res.max_header_bits = scheme.header_bits(header);

  auto run_leg = [&](NodeId from, NodeId expect, Dist& length,
                     std::int64_t& hops, std::vector<NodeId>& path) {
    NodeId at = from;
    if (opt.record_paths) path.push_back(at);
    for (std::int64_t step = 0; step <= budget; ++step) {
      Decision d = scheme.forward(at, header);
      if (d.header_resized || !opt.trust_header_size_hints) {
        res.max_header_bits =
            std::max(res.max_header_bits, scheme.header_bits(header));
      }
      if (d.deliver) return at == expect;
      const Edge* e = g.edge_by_port(at, d.port);
      if (e == nullptr) {
        throw std::logic_error("simulate_roundtrip: scheme emitted unknown port");
      }
      length += e->weight;
      ++hops;
      at = e->to;
      if (opt.record_paths) path.push_back(at);
    }
    return false;  // hop budget exhausted: forwarding loop
  };

  res.delivered_out = run_leg(src, dst, res.out_length, res.out_hops, res.out_path);
  if (!res.delivered_out) return res;

  scheme.prepare_return(header);
  res.max_header_bits = std::max(res.max_header_bits, scheme.header_bits(header));
  res.delivered_back =
      run_leg(dst, src, res.back_length, res.back_hops, res.back_path);
  return res;
}

}  // namespace rtr

#endif  // RTR_NET_SIMULATOR_H
