// The single error taxonomy of the serving stack.
//
// Every layer that answers a roundtrip query -- QueryEngine::serve,
// EpochManager::roundtrip_by_name, and the rtr_routed wire protocol -- speaks
// ServingResult: a typed error code plus the RouteResult and the epoch that
// answered.  Callers branch on *why* a query failed (invalid name vs
// unreachable vs scheme bug vs no epoch yet) instead of inferring it from a
// swallowed exception or a default-constructed RouteResult.
#ifndef RTR_NET_SERVING_H
#define RTR_NET_SERVING_H

#include <cstdint>
#include <string>

#include "net/simulator.h"

namespace rtr {

enum class ServingError : std::uint8_t {
  kNone = 0,          ///< Delivered out and back; `route` is meaningful.
  kInvalidName = 1,   ///< src/dst is not a name this epoch's assignment knows.
  kInvalidQuery = 2,  ///< Structurally bad query (src == dst, id range).
  kUnreachable = 3,   ///< Simulation ran but a leg was not delivered.
  kSchemeFailure = 4, ///< The scheme threw while routing (a bug, not a miss).
  kEpochUnavailable = 5,  ///< No epoch is ready (or unknown scheme requested).
};

/// Wire-stable lowercase token for each code; `docs/protocol.md` freezes
/// these under rtr-wire/1 -- append-only, never renumber or rename.
[[nodiscard]] const char* serving_error_name(ServingError e);

struct ServingResult {
  ServingError error = ServingError::kEpochUnavailable;
  /// Valid iff `ok()`; default-constructed (undelivered) otherwise.
  RouteResult route;
  /// Sequence number of the epoch that answered (0 when none was pinned).
  std::uint64_t epoch = 0;
  /// Human-readable detail for failures; empty on success.
  std::string message;

  [[nodiscard]] bool ok() const { return error == ServingError::kNone; }

  [[nodiscard]] static ServingResult success(RouteResult r,
                                             std::uint64_t epoch_seq) {
    ServingResult s;
    s.error = ServingError::kNone;
    s.route = std::move(r);
    s.epoch = epoch_seq;
    return s;
  }
  [[nodiscard]] static ServingResult failure(ServingError e,
                                             std::string message,
                                             std::uint64_t epoch_seq = 0) {
    ServingResult s;
    s.error = e;
    s.epoch = epoch_seq;
    s.message = std::move(message);
    return s;
  }
};

}  // namespace rtr

#endif  // RTR_NET_SERVING_H
