#include "net/serving.h"

namespace rtr {

const char* serving_error_name(ServingError e) {
  switch (e) {
    case ServingError::kNone:
      return "none";
    case ServingError::kInvalidName:
      return "invalid_name";
    case ServingError::kInvalidQuery:
      return "invalid_query";
    case ServingError::kUnreachable:
      return "unreachable";
    case ServingError::kSchemeFailure:
      return "scheme_failure";
    case ServingError::kEpochUnavailable:
      return "epoch_unavailable";
  }
  return "unknown";
}

}  // namespace rtr
