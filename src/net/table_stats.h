// Per-node routing-table size accounting.
//
// Every scheme reports, for each node, the number of table entries and an
// honest encoded size in bits (names cost ceil(log2 n) bits, ports
// ceil(log2 port_space), tree labels their measured size, ...).  The
// experiment harness compares these against the paper's O~(sqrt n),
// O~(n^{1/k}) and O~(k^2 n^{2/k} log RTDiam) bounds.
#ifndef RTR_NET_TABLE_STATS_H
#define RTR_NET_TABLE_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace rtr {

class TableStats {
 public:
  TableStats() = default;
  explicit TableStats(NodeId n) : entries_(static_cast<std::size_t>(n), 0),
                                  bits_(static_cast<std::size_t>(n), 0) {}

  void add(NodeId v, std::int64_t entries, std::int64_t bits) {
    entries_[static_cast<std::size_t>(v)] += entries;
    bits_[static_cast<std::size_t>(v)] += bits;
  }

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(entries_.size());
  }
  [[nodiscard]] std::int64_t entries(NodeId v) const {
    return entries_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::int64_t bits(NodeId v) const {
    return bits_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::int64_t max_entries() const;
  [[nodiscard]] std::int64_t max_bits() const;
  [[nodiscard]] double mean_entries() const;
  [[nodiscard]] double mean_bits() const;

  /// "max_entries=... mean_entries=... max_KiB=..." one-liner.
  [[nodiscard]] std::string brief() const;

 private:
  std::vector<std::int64_t> entries_;
  std::vector<std::int64_t> bits_;
};

}  // namespace rtr

#endif  // RTR_NET_TABLE_STATS_H
