#include "net/scheme.h"

#include <limits>
#include <sstream>

#include "graph/scc.h"

namespace rtr {

double unbounded_stretch() { return std::numeric_limits<double>::infinity(); }

// ------------------------------------------------------------ BuildContext --

BuildContext BuildContext::for_graph(Digraph g, std::uint64_t seed,
                                     std::map<std::string, std::string> options) {
  if (!is_strongly_connected(g)) {
    throw std::runtime_error("BuildContext::for_graph: graph is not strongly connected");
  }
  BuildContext ctx;
  ctx.rng = std::make_shared<Rng>(seed);
  g.assign_adversarial_ports(*ctx.rng);
  ctx.names = NameAssignment::random(g.node_count(), *ctx.rng);
  auto graph = std::make_shared<Digraph>(std::move(g));
  ctx.metric = std::make_shared<RoundtripMetric>(*graph);
  ctx.graph = std::move(graph);
  ctx.options = std::move(options);
  return ctx;
}

BuildContext BuildContext::wrap(std::shared_ptr<const Digraph> graph,
                                std::shared_ptr<const RoundtripMetric> metric,
                                NameAssignment names, std::uint64_t scheme_seed,
                                std::map<std::string, std::string> options) {
  BuildContext ctx;
  ctx.graph = std::move(graph);
  ctx.metric = std::move(metric);
  ctx.names = std::move(names);
  ctx.rng = std::make_shared<Rng>(scheme_seed);
  ctx.options = std::move(options);
  return ctx;
}

int BuildContext::option_int(const std::string& key, int fallback) const {
  auto it = options.find(key);
  return it == options.end() ? fallback : std::stoi(it->second);
}

bool BuildContext::option_bool(const std::string& key, bool fallback) const {
  auto it = options.find(key);
  if (it == options.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

double BuildContext::option_double(const std::string& key,
                                   double fallback) const {
  auto it = options.find(key);
  return it == options.end() ? fallback : std::stod(it->second);
}

// ---------------------------------------------------------- SchemeRegistry --

void SchemeRegistry::add(std::string name, std::string summary,
                         Factory factory) {
  auto [it, inserted] = entries_.emplace(
      std::move(name), std::make_pair(std::move(summary), std::move(factory)));
  if (!inserted) {
    throw std::invalid_argument("SchemeRegistry::add: duplicate scheme name '" +
                                it->first + "'");
  }
}

bool SchemeRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::shared_ptr<const Scheme> SchemeRegistry::build(
    const std::string& name, const BuildContext& ctx) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream msg;
    msg << "SchemeRegistry: unknown scheme '" << name << "' (registered:";
    for (const auto& [known, entry] : entries_) msg << ' ' << known;
    msg << ')';
    throw std::invalid_argument(msg.str());
  }
  return it->second.second(ctx);
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

const std::string& SchemeRegistry::summary(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("SchemeRegistry::summary: unknown scheme '" +
                                name + "'");
  }
  return it->second.first;
}

SchemeRegistry& SchemeRegistry::global() {
  static SchemeRegistry* registry = [] {
    auto* r = new SchemeRegistry();
    register_builtin_schemes(*r);
    return r;
  }();
  return *registry;
}

// --------------------------------------------- virtual-path roundtrip walk --

RouteResult simulate_roundtrip(const Digraph& g, const Scheme& scheme,
                               NodeId src, NodeId dst, NodeName dst_name,
                               SimOptions opt) {
  // Explicit template-argument call: the simulator.h walk instantiated over
  // the abstract interface (Header = Packet, virtual dispatch per hop).
  return simulate_roundtrip<Scheme>(g, scheme, src, dst, dst_name, opt);
}

// ------------------------------------------------------------ SchemeHandle --

SchemeHandle::SchemeHandle(std::shared_ptr<const Digraph> graph,
                           NameAssignment names,
                           std::shared_ptr<const Scheme> scheme)
    : graph_(std::move(graph)),
      names_(std::move(names)),
      scheme_(std::move(scheme)),
      stats_(scheme_->table_stats()) {
  if (graph_ == nullptr || scheme_ == nullptr) {
    throw std::invalid_argument("SchemeHandle: null graph or scheme");
  }
}

RouteResult SchemeHandle::roundtrip(NodeId src, NodeId dst,
                                    SimOptions opt) const {
  return simulate_roundtrip(*graph_, *scheme_, src, dst, names_.name_of(dst),
                            opt);
}

}  // namespace rtr
