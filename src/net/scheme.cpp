#include "net/scheme.h"

#include <limits>
#include <sstream>

#include "audit/audit.h"
#include "graph/scc.h"
#include "io/snapshot.h"

namespace rtr {

double unbounded_stretch() { return std::numeric_limits<double>::infinity(); }

void Scheme::audit(AuditReport& report) const {
  auto scope = report.scope("scheme");
  report.check("deep-audit-implemented", true,
               name() + " has no scheme-specific deep audit (base Scheme)");
}

#ifdef RTR_AUDIT_ON_BUILD
namespace {

// Debug-build hook: every registry build (and snapshot load on the
// build_or_load path) is audited, so the whole test suite exercises the
// invariant catalogue for free.  A violation is a programming error, not an
// input error, hence std::logic_error.
void throw_if_audit_fails(const AuditReport& report, const std::string& what) {
  if (report.ok()) return;
  throw std::logic_error("RTR_AUDIT_ON_BUILD: " + what +
                         " failed its invariant audit\n" + report.summary());
}

void audit_built_scheme(const BuildContext& ctx, const Scheme& scheme) {
  AuditReport report;
  ctx.graph->audit(report);
  {
    auto s = report.scope("names");
    ctx.names.audit(report);
  }
  scheme.audit(report);
  throw_if_audit_fails(report, "scheme '" + scheme.name() + "'");
}

}  // namespace
#endif  // RTR_AUDIT_ON_BUILD

// ------------------------------------------------------------ BuildContext --

BuildContext BuildContext::for_graph(GraphBuilder g, std::uint64_t seed,
                                     std::map<std::string, std::string> options) {
  BuildContext ctx;
  ctx.options = std::move(options);
  ctx.rng = std::make_shared<Rng>(seed);
  g.assign_adversarial_ports(*ctx.rng);
  Digraph frozen = g.freeze();
  if (!is_strongly_connected(frozen)) {
    throw std::runtime_error("BuildContext::for_graph: graph is not strongly connected");
  }
  ctx.names = NameAssignment::random(frozen.node_count(), *ctx.rng);
  auto graph = std::make_shared<Digraph>(std::move(frozen));
  // The "metric" option picks the backend: dense APSP matrix or bounded-
  // Dijkstra sparse rows ("auto" switches on node count); "threads" feeds
  // the dense APSP fan-out and the schemes' parallel build loops.
  const auto mode_it = ctx.options.find("metric");
  const MetricMode mode = mode_it == ctx.options.end()
                              ? MetricMode::kAuto
                              : parse_metric_mode(mode_it->second);
  ctx.metric =
      make_roundtrip_metric(graph, mode, ctx.option_int("threads", 0));
  ctx.graph = std::move(graph);
  return ctx;
}

BuildContext BuildContext::wrap(std::shared_ptr<const Digraph> graph,
                                std::shared_ptr<const RoundtripMetric> metric,
                                NameAssignment names, std::uint64_t scheme_seed,
                                std::map<std::string, std::string> options) {
  BuildContext ctx;
  ctx.graph = std::move(graph);
  ctx.metric = std::move(metric);
  ctx.names = std::move(names);
  ctx.rng = std::make_shared<Rng>(scheme_seed);
  ctx.options = std::move(options);
  return ctx;
}

int BuildContext::option_int(const std::string& key, int fallback) const {
  auto it = options.find(key);
  return it == options.end() ? fallback : std::stoi(it->second);
}

bool BuildContext::option_bool(const std::string& key, bool fallback) const {
  auto it = options.find(key);
  if (it == options.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

double BuildContext::option_double(const std::string& key,
                                   double fallback) const {
  auto it = options.find(key);
  return it == options.end() ? fallback : std::stod(it->second);
}

// ---------------------------------------------------------- SchemeRegistry --

void SchemeRegistry::add(std::string name, std::string summary,
                         Factory factory) {
  auto [it, inserted] = entries_.emplace(
      std::move(name),
      Entry{std::move(summary), std::move(factory), {}, {}, {}, {}, {}});
  if (!inserted) {
    throw std::invalid_argument("SchemeRegistry::add: duplicate scheme name '" +
                                it->first + "'");
  }
}

void SchemeRegistry::set_snapshot_hooks(const std::string& name, Saver saver,
                                        Loader loader) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument(
        "SchemeRegistry::set_snapshot_hooks: unknown scheme '" + name + "'");
  }
  if (saver == nullptr || loader == nullptr) {
    throw std::invalid_argument(
        "SchemeRegistry::set_snapshot_hooks: null hook for '" + name + "'");
  }
  it->second.saver = std::move(saver);
  it->second.loader = std::move(loader);
}

void SchemeRegistry::set_arena_hooks(const std::string& name, ArenaSaver saver,
                                     ArenaLoader loader) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument(
        "SchemeRegistry::set_arena_hooks: unknown scheme '" + name + "'");
  }
  if (saver == nullptr || loader == nullptr) {
    throw std::invalid_argument(
        "SchemeRegistry::set_arena_hooks: null hook for '" + name + "'");
  }
  it->second.arena_saver = std::move(saver);
  it->second.arena_loader = std::move(loader);
}

void SchemeRegistry::set_repair_hook(const std::string& name,
                                     Repairer repairer) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument(
        "SchemeRegistry::set_repair_hook: unknown scheme '" + name + "'");
  }
  if (repairer == nullptr) {
    throw std::invalid_argument(
        "SchemeRegistry::set_repair_hook: null hook for '" + name + "'");
  }
  it->second.repairer = std::move(repairer);
}

bool SchemeRegistry::contains(const std::string& name) const {
  return entries_.contains(name);
}

bool SchemeRegistry::snapshot_supported(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.saver != nullptr;
}

bool SchemeRegistry::arena_supported(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.arena_saver != nullptr;
}

bool SchemeRegistry::repair_supported(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.repairer != nullptr;
}

const SchemeRegistry::Entry& SchemeRegistry::entry_or_throw(
    const std::string& name, const char* what) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream msg;
    msg << "SchemeRegistry::" << what << ": unknown scheme '" << name
        << "' (registered:";
    for (const auto& [known, entry] : entries_) msg << ' ' << known;
    msg << ')';
    throw std::invalid_argument(msg.str());
  }
  return it->second;
}

std::shared_ptr<const Scheme> SchemeRegistry::build(
    const std::string& name, const BuildContext& ctx) const {
  std::shared_ptr<const Scheme> scheme = entry_or_throw(name, "build").factory(ctx);
#ifdef RTR_AUDIT_ON_BUILD
  audit_built_scheme(ctx, *scheme);
#endif
  return scheme;
}

std::shared_ptr<const Scheme> SchemeRegistry::repair(
    const std::string& name, const Scheme& old_scheme,
    const Digraph& old_graph, const BuildContext& ctx,
    const ChurnDelta& delta) const {
  const Entry& e = entry_or_throw(name, "repair");
  if (e.repairer == nullptr) return nullptr;
  std::shared_ptr<const Scheme> scheme =
      e.repairer(old_scheme, old_graph, ctx, delta);
#ifdef RTR_AUDIT_ON_BUILD
  if (scheme != nullptr) audit_built_scheme(ctx, *scheme);
#endif
  return scheme;
}

const SchemeRegistry::Saver& SchemeRegistry::saver(
    const std::string& name) const {
  const Entry& e = entry_or_throw(name, "saver");
  if (e.saver == nullptr) {
    throw std::invalid_argument("SchemeRegistry: scheme '" + name +
                                "' has no snapshot hooks");
  }
  return e.saver;
}

const SchemeRegistry::Loader& SchemeRegistry::loader(
    const std::string& name) const {
  const Entry& e = entry_or_throw(name, "loader");
  if (e.loader == nullptr) {
    throw std::invalid_argument("SchemeRegistry: scheme '" + name +
                                "' has no snapshot hooks");
  }
  return e.loader;
}

const SchemeRegistry::ArenaSaver& SchemeRegistry::arena_saver(
    const std::string& name) const {
  const Entry& e = entry_or_throw(name, "arena_saver");
  if (e.arena_saver == nullptr) {
    throw std::invalid_argument("SchemeRegistry: scheme '" + name +
                                "' has no arena hooks");
  }
  return e.arena_saver;
}

const SchemeRegistry::ArenaLoader& SchemeRegistry::arena_loader(
    const std::string& name) const {
  const Entry& e = entry_or_throw(name, "arena_loader");
  if (e.arena_loader == nullptr) {
    throw std::invalid_argument("SchemeRegistry: scheme '" + name +
                                "' has no arena hooks");
  }
  return e.arena_loader;
}

SchemeHandle SchemeRegistry::build_or_load(
    const std::string& name, const std::function<BuildContext()>& make_ctx,
    const std::string& path, SnapshotLoadMode mode) const {
  // Fail fast -- before any build cost -- on unknown names AND on entries
  // registered without snapshot hooks (neither the load nor the save leg
  // could ever work for those).
  const Entry& entry = entry_or_throw(name, "build_or_load");
  if (entry.saver == nullptr) {
    throw std::invalid_argument("SchemeRegistry::build_or_load: scheme '" +
                                name +
                                "' has no snapshot hooks; use build() or "
                                "register hooks via set_snapshot_hooks()");
  }
  if (mode == SnapshotLoadMode::kMapped) {
    try {
      SchemeHandle mapped = map_snapshot(path, name, *this);
#ifdef RTR_AUDIT_ON_BUILD
      AuditReport report;
      audit_handle(mapped, report);
      throw_if_audit_fails(report, "mapped snapshot '" + path + "'");
#endif
      return mapped;
    } catch (const SnapshotError&) {
      // v1 cache file or unusable mapping: the owned path below still
      // applies (and, failing that too, the rebuild leg).
    }
  }
  try {
    SchemeHandle loaded = load_snapshot(path, name, *this);
#ifdef RTR_AUDIT_ON_BUILD
    AuditReport report;
    audit_handle(loaded, report);
    throw_if_audit_fails(report, "snapshot '" + path + "'");
#endif
    return loaded;
  } catch (const SnapshotError&) {
    // Absent, stale, corrupt, or mismatched cache: build and re-save below.
  }
  BuildContext ctx = make_ctx();
  SchemeHandle handle(ctx.graph, ctx.names, entry.factory(ctx));
  try {
    save_snapshot(path, name, handle, *this);
  } catch (const SnapshotError& e) {
    // A full disk or read-only cache directory must not take down serving:
    // the freshly built handle is usable regardless; the next process just
    // pays the build again.
    warn_snapshot_cache_save_failed_once("SchemeRegistry::build_or_load", e);
  }
  return handle;
}

SchemeHandle SchemeRegistry::build_or_load(const std::string& name,
                                           const BuildContext& ctx,
                                           const std::string& path,
                                           SnapshotLoadMode mode) const {
  return build_or_load(
      name, [&ctx]() -> BuildContext { return ctx; }, path, mode);
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

const std::string& SchemeRegistry::summary(const std::string& name) const {
  return entry_or_throw(name, "summary").summary;
}

SchemeRegistry& SchemeRegistry::global() {
  static SchemeRegistry* registry = [] {
    auto* r = new SchemeRegistry();
    register_builtin_schemes(*r);
    return r;
  }();
  return *registry;
}

// --------------------------------------------- virtual-path roundtrip walk --

RouteResult simulate_roundtrip(const Digraph& g, const Scheme& scheme,
                               NodeId src, NodeId dst, NodeName dst_name,
                               SimOptions opt) {
  // Explicit template-argument call: the simulator.h walk instantiated over
  // the abstract interface (Header = Packet, virtual dispatch per hop).
  return simulate_roundtrip<Scheme>(g, scheme, src, dst, dst_name, opt);
}

RouteResult Scheme::simulate(const Digraph& g, NodeId src, NodeId dst,
                             NodeName dst_name, SimOptions opt) const {
  return simulate_roundtrip(g, *this, src, dst, dst_name, opt);
}

// ------------------------------------------------------------ SchemeHandle --

SchemeHandle::SchemeHandle(std::shared_ptr<const Digraph> graph,
                           NameAssignment names,
                           std::shared_ptr<const Scheme> scheme)
    : graph_(std::move(graph)),
      names_(std::move(names)),
      scheme_(std::move(scheme)),
      stats_(std::make_shared<LazyStats>()) {
  if (graph_ == nullptr || scheme_ == nullptr) {
    throw std::invalid_argument("SchemeHandle: null graph or scheme");
  }
}

const TableStats& SchemeHandle::table_stats() const {
  std::call_once(stats_->once, [this] { stats_->stats = scheme_->table_stats(); });
  return stats_->stats;
}

RouteResult SchemeHandle::roundtrip(NodeId src, NodeId dst,
                                    SimOptions opt) const {
  return simulate_roundtrip(*graph_, *scheme_, src, dst, names_.name_of(dst),
                            opt);
}

}  // namespace rtr
