#include "net/query_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/stats.h"

namespace rtr {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

struct QueryEngine::WorkerTally {
  std::int64_t pairs = 0;
  std::int64_t failures = 0;
  std::int64_t max_header_bits = 0;
  Summary stretch;
};

QueryEngine::QueryEngine(std::shared_ptr<const Digraph> graph,
                         std::shared_ptr<const RoundtripMetric> metric,
                         NameAssignment names,
                         std::shared_ptr<const Scheme> scheme,
                         QueryEngineOptions options)
    : graph_(std::move(graph)),
      metric_(std::move(metric)),
      names_(std::move(names)),
      scheme_(std::move(scheme)),
      options_(options) {
  if (graph_ == nullptr || scheme_ == nullptr) {
    throw std::invalid_argument("QueryEngine: null graph or scheme");
  }
  if (names_.node_count() != graph_->node_count()) {
    throw std::invalid_argument("QueryEngine: names do not match the graph");
  }
  threads_ = options_.threads > 0
                 ? options_.threads
                 : std::max(1, static_cast<int>(
                                   std::thread::hardware_concurrency()));
}

QueryEngine QueryEngine::from_registry(const SchemeRegistry& registry,
                                       const std::string& scheme_name,
                                       const BuildContext& ctx,
                                       QueryEngineOptions options) {
  auto scheme = registry.build(scheme_name, ctx);
  return QueryEngine(ctx.graph, ctx.metric, ctx.names, std::move(scheme),
                     options);
}

RouteResult QueryEngine::roundtrip(NodeId src, NodeId dst) const {
  return simulate_roundtrip(*graph_, *scheme_, src, dst, names_.name_of(dst),
                            options_.sim);
}

void QueryEngine::run_one(NodeId src, NodeId dst, WorkerTally& tally) const {
  ++tally.pairs;
  RouteResult res;
  try {
    res = simulate_roundtrip(*graph_, *scheme_, src, dst, names_.name_of(dst),
                             options_.sim);
  } catch (const std::exception&) {
    // Scheme bug (unknown port, header-type mix-up): a failed query, never
    // an exception escaping a worker thread.
    ++tally.failures;
    return;
  }
  if (!res.ok()) {
    ++tally.failures;
    return;
  }
  tally.max_header_bits = std::max(tally.max_header_bits, res.max_header_bits);
  if (metric_ != nullptr && src != dst) {
    const auto r = metric_->r(src, dst);
    if (r > 0) {
      tally.stretch.add(static_cast<double>(res.roundtrip_length()) /
                        static_cast<double>(r));
    }
  }
}

void QueryEngine::run_range(const std::vector<RoundtripQuery>& queries,
                            std::size_t begin, std::size_t end,
                            WorkerTally& tally) const {
  for (std::size_t i = begin; i < end; ++i) {
    run_one(queries[i].src, queries[i].dst, tally);
  }
}

StretchReport QueryEngine::finalize(std::vector<WorkerTally> tallies,
                                    double wall_seconds) const {
  StretchReport report;
  report.wall_seconds = wall_seconds;
  Summary stretch;
  for (auto& t : tallies) {
    report.pairs += t.pairs;
    report.failures += t.failures;
    report.max_header_bits = std::max(report.max_header_bits, t.max_header_bits);
    stretch.merge(t.stretch);
  }
  if (stretch.count() > 0) {
    report.mean_stretch = stretch.stable_mean();
    report.p99_stretch = stretch.percentile(0.99);
    report.max_stretch = stretch.max();
  }
  return report;
}

StretchReport QueryEngine::run_batch(
    const std::vector<RoundtripQuery>& queries) const {
  const auto start = std::chrono::steady_clock::now();
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(threads_), std::max<std::size_t>(queries.size(), 1)));
  std::vector<WorkerTally> tallies(static_cast<std::size_t>(workers));
  if (workers <= 1) {
    run_range(queries, 0, queries.size(), tallies[0]);
    return finalize(std::move(tallies), elapsed_seconds(start));
  }
  // Static sharding: contiguous slices, so the aggregate is independent of
  // the worker count and no queue synchronization touches the hot loop.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  const std::size_t per = queries.size() / static_cast<std::size_t>(workers);
  const std::size_t extra = queries.size() % static_cast<std::size_t>(workers);
  std::size_t begin = 0;
  for (int w = 0; w < workers; ++w) {
    const std::size_t share = per + (static_cast<std::size_t>(w) < extra ? 1 : 0);
    const std::size_t end = begin + share;
    pool.emplace_back([this, &queries, begin, end,
                       &tally = tallies[static_cast<std::size_t>(w)]] {
      run_range(queries, begin, end, tally);
    });
    begin = end;
  }
  for (auto& t : pool) t.join();
  return finalize(std::move(tallies), elapsed_seconds(start));
}

StretchReport QueryEngine::run_serial(
    const std::vector<RoundtripQuery>& queries) const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<WorkerTally> tallies(1);
  run_range(queries, 0, queries.size(), tallies[0]);
  return finalize(std::move(tallies), elapsed_seconds(start));
}

StretchReport QueryEngine::run_sampled(std::int64_t pair_budget,
                                       std::uint64_t seed) const {
  const auto n = static_cast<std::int64_t>(graph_->node_count());
  if (n < 2 || pair_budget <= 0) return StretchReport{};
  const std::int64_t all = n * (n - 1);
  if (all <= pair_budget) {
    // Exhaustive: enumerate every ordered pair once and shard the batch.
    std::vector<RoundtripQuery> queries;
    queries.reserve(static_cast<std::size_t>(all));
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s != t) queries.push_back({s, t});
      }
    }
    return run_batch(queries);
  }

  // Sampled: draw the whole pair list from one Rng(seed) up front, then
  // shard it like any explicit batch.  Sampling this way is what makes the
  // report a function of (budget, seed) alone -- the same pairs are routed
  // no matter how many workers the pool has -- and the drawing loop is a
  // negligible fraction of actually routing the packets.
  std::vector<RoundtripQuery> queries;
  queries.reserve(static_cast<std::size_t>(pair_budget));
  Rng rng(seed);
  for (std::int64_t i = 0; i < pair_budget; ++i) {
    auto s = static_cast<NodeId>(rng.index(n));
    auto t = static_cast<NodeId>(rng.index(n));
    if (s == t) t = static_cast<NodeId>((t + 1) % n);
    queries.push_back({s, t});
  }
  return run_batch(queries);
}

}  // namespace rtr
