#include "net/query_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/stats.h"

namespace rtr {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

struct QueryEngine::WorkerTally {
  std::int64_t pairs = 0;
  std::int64_t failures = 0;
  std::int64_t invalid = 0;
  std::int64_t max_header_bits = 0;
  Summary stretch;
  // Earliest failure this worker saw, keyed by the query's batch index so
  // finalize() can pick the batch-wide first deterministically regardless of
  // how the batch was sharded.
  std::size_t first_error_index = SIZE_MAX;
  std::string first_error;

  /// `make_message` is only invoked when this failure is the earliest the
  /// worker has seen, so an all-fail batch does not allocate a message
  /// string per query.
  template <typename MakeMessage>
  void note_failure(std::size_t index, MakeMessage&& make_message) {
    ++failures;
    if (index < first_error_index) {
      first_error_index = index;
      first_error = make_message();
    }
  }
};

QueryEngine::QueryEngine(std::shared_ptr<const Digraph> graph,
                         std::shared_ptr<const RoundtripMetric> metric,
                         NameAssignment names,
                         std::shared_ptr<const Scheme> scheme,
                         QueryEngineOptions options)
    : graph_(std::move(graph)),
      metric_(std::move(metric)),
      names_(std::move(names)),
      scheme_(std::move(scheme)),
      options_(options) {
  if (graph_ == nullptr || scheme_ == nullptr) {
    throw std::invalid_argument("QueryEngine: null graph or scheme");
  }
  if (names_.node_count() != graph_->node_count()) {
    throw std::invalid_argument("QueryEngine: names do not match the graph");
  }
  threads_ = options_.threads > 0
                 ? options_.threads
                 : std::max(1, static_cast<int>(
                                   std::thread::hardware_concurrency()));
}

QueryEngine QueryEngine::from_registry(const SchemeRegistry& registry,
                                       const std::string& scheme_name,
                                       const BuildContext& ctx,
                                       QueryEngineOptions options) {
  auto scheme = registry.build(scheme_name, ctx);
  return QueryEngine(ctx.graph, ctx.metric, ctx.names, std::move(scheme),
                     options);
}

RouteResult QueryEngine::roundtrip(NodeId src, NodeId dst) const {
  const NodeId n = graph_->node_count();
  if (src < 0 || src >= n || dst < 0 || dst >= n) {
    throw std::out_of_range("QueryEngine::roundtrip: node id out of range");
  }
  return simulate_roundtrip(*graph_, *scheme_, src, dst, names_.name_of(dst),
                            options_.sim);
}

void QueryEngine::run_one(std::size_t index, NodeId src, NodeId dst,
                          WorkerTally& tally) const {
  // Validate before touching names_/the simulator: an out-of-range id would
  // index past the name table (UB), and src == dst is not a roundtrip.  Both
  // are the caller's data, so they count as typed failures, never UB/throw.
  const NodeId n = graph_->node_count();
  if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
    ++tally.pairs;
    ++tally.invalid;
    tally.note_failure(index, [&] {
      return "invalid query (" + std::to_string(src) + ", " +
             std::to_string(dst) + "): " +
             (src == dst ? "src == dst" : "node id out of range");
    });
    return;
  }
  run_one_resolved(index, src, dst, names_.name_of(dst), /*fast_walk=*/false,
                   tally);
}

void QueryEngine::run_one_resolved(std::size_t index, NodeId src, NodeId dst,
                                   NodeName dst_name, bool fast_walk,
                                   WorkerTally& tally) const {
  ++tally.pairs;
  RouteResult res;
  try {
    if (fast_walk) {
      // Batch fast path: one virtual dispatch for the whole walk (the
      // adapter's concrete-header loop) and header re-measurement only on
      // hops whose Decision reports a size change.  Reported values are
      // identical to the reference walk; RunSerialAndBatch tests pin it.
      SimOptions sim = options_.sim;
      sim.trust_header_size_hints = true;
      res = scheme_->simulate(*graph_, src, dst, dst_name, sim);
    } else {
      res = simulate_roundtrip(*graph_, *scheme_, src, dst, dst_name,
                               options_.sim);
    }
  } catch (const std::exception& e) {
    // Scheme bug (unknown port, header-type mix-up): a failed query, never
    // an exception escaping a worker thread.  The message is kept so the
    // batch report can surface what broke.
    tally.note_failure(index, [&] { return std::string(e.what()); });
    return;
  }
  if (!res.ok()) {
    tally.note_failure(index, [&] {
      return "roundtrip (" + std::to_string(src) + ", " + std::to_string(dst) +
             ") undelivered (out " + (res.delivered_out ? "ok" : "lost") +
             ", back " + (res.delivered_back ? "ok" : "lost") + ")";
    });
    return;
  }
  tally.max_header_bits = std::max(tally.max_header_bits, res.max_header_bits);
  if (metric_ != nullptr) {
    const auto r = metric_->r(src, dst);
    if (r > 0) {
      tally.stretch.add(static_cast<double>(res.roundtrip_length()) /
                        static_cast<double>(r));
    }
  }
}

void QueryEngine::run_range(const std::vector<RoundtripQuery>& queries,
                            std::size_t begin, std::size_t end,
                            WorkerTally& tally) const {
  for (std::size_t i = begin; i < end; ++i) {
    run_one(i, queries[i].src, queries[i].dst, tally);
  }
}

StretchReport QueryEngine::finalize(std::vector<WorkerTally> tallies,
                                    double wall_seconds) const {
  StretchReport report;
  report.wall_seconds = wall_seconds;
  Summary stretch;
  std::size_t first_error_index = SIZE_MAX;
  for (auto& t : tallies) {
    report.pairs += t.pairs;
    report.failures += t.failures;
    report.invalid += t.invalid;
    report.max_header_bits = std::max(report.max_header_bits, t.max_header_bits);
    stretch.merge(t.stretch);
    if (t.first_error_index < first_error_index) {
      first_error_index = t.first_error_index;
      report.first_error = std::move(t.first_error);
    }
  }
  if (stretch.count() > 0) {
    report.mean_stretch = stretch.stable_mean();
    report.p99_stretch = stretch.percentile(0.99);
    report.max_stretch = stretch.max();
  }
  return report;
}

// The batch transposed to structure-of-arrays form by the run_batch prepass:
// parallel contiguous arrays the worker hot loop streams through.  `index`
// keeps each entry's position in the caller's batch so first_error stays
// deterministic (lowest batch index) after invalid entries are compacted out.
struct QueryEngine::BatchPlan {
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  std::vector<NodeName> dst_name;
  std::vector<std::size_t> index;

  [[nodiscard]] std::size_t size() const { return src.size(); }
};

void QueryEngine::run_span(const BatchPlan& plan, std::size_t begin,
                           std::size_t end, WorkerTally& tally) const {
  tally.stretch.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    run_one_resolved(plan.index[i], plan.src[i], plan.dst[i], plan.dst_name[i],
                     /*fast_walk=*/true, tally);
  }
}

int QueryEngine::effective_workers(int cap, std::size_t work) const {
  const int width = cap > 0 ? cap : threads_;
  return static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(std::max(width, 1)),
      std::max<std::size_t>(work, 1)));
}

ServingResult QueryEngine::serve(NodeId src, NodeId dst) const {
  const NodeId n = graph_->node_count();
  if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
    return ServingResult::failure(
        ServingError::kInvalidQuery,
        "invalid query (" + std::to_string(src) + ", " + std::to_string(dst) +
            "): " + (src == dst ? "src == dst" : "node id out of range"));
  }
  RouteResult res;
  try {
    // Same fast path as the batch workers: one virtual dispatch per walk.
    SimOptions sim = options_.sim;
    sim.trust_header_size_hints = true;
    res = scheme_->simulate(*graph_, src, dst, names_.name_of(dst), sim);
  } catch (const std::exception& e) {
    // A scheme that throws mid-walk is broken, not an unreachable pair; the
    // distinction is exactly what ServingError exists to carry.
    return ServingResult::failure(ServingError::kSchemeFailure, e.what());
  }
  if (!res.ok()) {
    return ServingResult::failure(
        ServingError::kUnreachable,
        "roundtrip (" + std::to_string(src) + ", " + std::to_string(dst) +
            ") undelivered (out " + (res.delivered_out ? "ok" : "lost") +
            ", back " + (res.delivered_back ? "ok" : "lost") + ")");
  }
  return ServingResult::success(std::move(res), /*epoch_seq=*/0);
}

std::vector<ServingResult> QueryEngine::serve_batch(
    const std::vector<RoundtripQuery>& queries,
    const BatchOptions& options) const {
  std::vector<ServingResult> results(queries.size());
  const int workers = effective_workers(options.threads, queries.size());
  // results[i] is written by exactly one worker (contiguous disjoint slices),
  // so no synchronization is needed beyond the joins.
  const auto run = [this, &queries, &results](std::size_t begin,
                                              std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = serve(queries[i].src, queries[i].dst);
    }
  };
  if (workers <= 1 || queries.size() <= 1) {
    run(0, queries.size());
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  const std::size_t per = queries.size() / static_cast<std::size_t>(workers);
  const std::size_t extra = queries.size() % static_cast<std::size_t>(workers);
  std::size_t begin = 0;
  for (int w = 0; w < workers; ++w) {
    const std::size_t share =
        per + (static_cast<std::size_t>(w) < extra ? 1 : 0);
    const std::size_t end = begin + share;
    pool.emplace_back([&run, begin, end] { run(begin, end); });
    begin = end;
  }
  for (auto& t : pool) t.join();
  return results;
}

StretchReport QueryEngine::run_batch(const std::vector<RoundtripQuery>& queries,
                                     const BatchOptions& options) const {
  const auto start = std::chrono::steady_clock::now();

  // Serial prepass: validate each query once and transpose the survivors
  // into the SoA plan.  Invalid entries are tallied here (typed failures,
  // keyed by their batch index) and never reach a worker.
  const NodeId n = graph_->node_count();
  BatchPlan plan;
  plan.src.reserve(queries.size());
  plan.dst.reserve(queries.size());
  plan.dst_name.reserve(queries.size());
  plan.index.reserve(queries.size());
  WorkerTally prepass;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const NodeId src = queries[i].src;
    const NodeId dst = queries[i].dst;
    if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
      ++prepass.pairs;
      ++prepass.invalid;
      prepass.note_failure(i, [&] {
        return "invalid query (" + std::to_string(src) + ", " +
               std::to_string(dst) + "): " +
               (src == dst ? "src == dst" : "node id out of range");
      });
      continue;
    }
    plan.src.push_back(src);
    plan.dst.push_back(dst);
    plan.dst_name.push_back(names_.name_of(dst));
    plan.index.push_back(i);
  }

  const int workers = effective_workers(options.threads, plan.size());
  std::vector<WorkerTally> tallies(static_cast<std::size_t>(workers) + 1);
  tallies.back() = std::move(prepass);
  if (workers <= 1) {
    run_span(plan, 0, plan.size(), tallies[0]);
    return finalize(std::move(tallies), elapsed_seconds(start));
  }
  // Static sharding: contiguous slices, so the aggregate is independent of
  // the worker count and no queue synchronization touches the hot loop.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  const std::size_t per = plan.size() / static_cast<std::size_t>(workers);
  const std::size_t extra = plan.size() % static_cast<std::size_t>(workers);
  std::size_t begin = 0;
  for (int w = 0; w < workers; ++w) {
    const std::size_t share = per + (static_cast<std::size_t>(w) < extra ? 1 : 0);
    const std::size_t end = begin + share;
    pool.emplace_back([this, &plan, begin, end,
                       &tally = tallies[static_cast<std::size_t>(w)]] {
      run_span(plan, begin, end, tally);
    });
    begin = end;
  }
  for (auto& t : pool) t.join();
  return finalize(std::move(tallies), elapsed_seconds(start));
}

StretchReport QueryEngine::run_serial(
    const std::vector<RoundtripQuery>& queries) const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<WorkerTally> tallies(1);
  run_range(queries, 0, queries.size(), tallies[0]);
  return finalize(std::move(tallies), elapsed_seconds(start));
}

std::vector<RoundtripQuery> QueryEngine::sample_pairs(NodeId n,
                                                      std::int64_t pair_budget,
                                                      std::uint64_t seed) {
  std::vector<RoundtripQuery> queries;
  const auto nodes = static_cast<std::int64_t>(n);
  if (nodes < 2 || pair_budget <= 0) return queries;
  const std::int64_t all = nodes * (nodes - 1);
  if (all <= pair_budget) {
    // Exhaustive: enumerate every ordered pair once.
    queries.reserve(static_cast<std::size_t>(all));
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s != t) queries.push_back({s, t});
      }
    }
    return queries;
  }
  // Rejection sampling: a draw that collides (s == t) is thrown away and the
  // whole pair redrawn, so the sample is uniform over ordered pairs.  (The
  // previous remap `t = (t + 1) % n` double-weighted every pair
  // (s, s+1 mod n).)  Expected redraws per pair are 1/(n-1), negligible next
  // to routing the packet.
  queries.reserve(static_cast<std::size_t>(pair_budget));
  Rng rng(seed);
  for (std::int64_t i = 0; i < pair_budget; ++i) {
    NodeId s, t;
    do {
      s = static_cast<NodeId>(rng.index(nodes));
      t = static_cast<NodeId>(rng.index(nodes));
    } while (s == t);
    queries.push_back({s, t});
  }
  return queries;
}

StretchReport QueryEngine::run_sampled(const BatchOptions& options) const {
  // The pair list is drawn from one Rng(seed) up front, then sharded like
  // any explicit batch.  Sampling this way is what makes the report a
  // function of (budget, seed) alone -- the same pairs are routed no matter
  // how many workers the pool has.
  return run_batch(
      sample_pairs(graph_->node_count(), options.pair_budget, options.seed),
      options);
}

}  // namespace rtr
