// Batched, parallel execution of roundtrip queries against one built scheme.
//
// The serving model the ROADMAP aims at: a scheme is preprocessed once, then
// answers heavy streams of (src, dst) roundtrip queries.  The engine shards a
// batch across a std::thread worker pool (scheme tables are immutable after
// construction, so forwarding is embarrassingly parallel), gives every worker
// its own deterministic Rng for pair sampling, and folds the per-worker
// stretch summaries into one StretchReport.
//
// Every batch entry point takes one BatchOptions knob bag (pair budget,
// sampling seed, per-call worker cap):
//
//   * run_batch(queries, opts)  -- explicit batch; result independent of the
//                                  worker count (static sharding).
//   * run_sampled(opts)         -- samples `opts.pair_budget` ordered pairs,
//                                  exhaustive when the budget covers all
//                                  n(n-1) pairs.  The pair list is drawn from
//                                  Rng(opts.seed) before sharding, so the
//                                  report is a function of (budget, seed)
//                                  alone -- identical for every worker count
//                                  (the determinism regression test pins it).
//   * serve(src, dst)           -- one query, typed ServingResult, never
//                                  throws; the serving stack's entry point.
//   * serve_batch(queries, opts)-- per-query ServingResults (the rtr_routed
//                                  request-coalescing path), sharded like
//                                  run_batch.
//   * roundtrip(src, dst)       -- one query, on the caller's thread; throws
//                                  on bad ids (measurement/debug use).
//
// All members are const; one engine may be shared by many caller threads.
#ifndef RTR_NET_QUERY_ENGINE_H
#define RTR_NET_QUERY_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/names.h"
#include "net/scheme.h"
#include "net/serving.h"
#include "net/simulator.h"
#include "rt/metric.h"

namespace rtr {

/// Aggregated stretch measurements for one batch of roundtrip queries.
struct StretchReport {
  std::int64_t pairs = 0;
  std::int64_t failures = 0;
  /// Queries rejected before simulation (src == dst, or a NodeId outside
  /// [0, n)).  Also counted in `failures`, so failures == 0 still means
  /// "everything routed".
  std::int64_t invalid = 0;
  double mean_stretch = 0;
  double p99_stretch = 0;
  double max_stretch = 0;
  std::int64_t max_header_bits = 0;
  double wall_seconds = 0;  // batch execution time (excludes preprocessing)
  /// Message of the earliest failure in the batch (lowest query index, so it
  /// is independent of the worker count); empty when failures == 0.  This is
  /// how scheme bugs surface in bench/CLI output instead of being an
  /// anonymous failure count.
  std::string first_error;
};

struct RoundtripQuery {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
};

struct QueryEngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  int threads = 0;
  SimOptions sim;
};

/// The one knob bag every batch entry point shares (and the server's
/// coalescing path reuses).  Replaces the former loose (budget, seed)
/// parameter overloads.
struct BatchOptions {
  /// Pairs run_sampled draws; ignored by run_batch/serve_batch (the caller's
  /// batch is the pair list there).
  std::int64_t pair_budget = 0;
  /// Sampling seed for run_sampled's pair list.
  std::uint64_t seed = 0;
  /// Per-call worker cap; 0 uses the engine's configured width.  The report
  /// never depends on this (static sharding), only the wall time does.
  int threads = 0;
};

class QueryEngine {
 public:
  /// The metric is optional (stretch denominators); without it reports carry
  /// delivery/failure counts and header sizes but zero stretch figures.
  QueryEngine(std::shared_ptr<const Digraph> graph,
              std::shared_ptr<const RoundtripMetric> metric,
              NameAssignment names, std::shared_ptr<const Scheme> scheme,
              QueryEngineOptions options = {});

  /// Builds the named scheme from the registry over ctx and binds an engine.
  static QueryEngine from_registry(const SchemeRegistry& registry,
                                   const std::string& scheme_name,
                                   const BuildContext& ctx,
                                   QueryEngineOptions options = {});

  [[nodiscard]] const Scheme& scheme() const { return *scheme_; }
  [[nodiscard]] const std::shared_ptr<const Scheme>& scheme_ptr() const {
    return scheme_;
  }
  [[nodiscard]] const Digraph& graph() const { return *graph_; }
  [[nodiscard]] const NameAssignment& names() const { return names_; }
  [[nodiscard]] int worker_count() const { return threads_; }

  /// One roundtrip on the caller's thread; throws std::out_of_range for ids
  /// outside [0, n) (batch entry points count those as failures instead).
  [[nodiscard]] RouteResult roundtrip(NodeId src, NodeId dst) const;

  /// The pair list run_sampled routes: every ordered pair once when the
  /// budget covers all n(n-1) of them, otherwise `pair_budget` pairs drawn
  /// from Rng(seed) by rejection sampling (a draw with s == t is redrawn
  /// whole, so every ordered pair s != t is equally likely -- remapping the
  /// collision to a neighbour would double-weight the pairs (s, s+1 mod n)).
  [[nodiscard]] static std::vector<RoundtripQuery> sample_pairs(
      NodeId n, std::int64_t pair_budget, std::uint64_t seed);

  /// One roundtrip as a typed ServingResult; never throws.  Out-of-range ids
  /// and src == dst come back kInvalidQuery, a scheme exception
  /// kSchemeFailure (message = e.what()), an undelivered leg kUnreachable.
  /// `epoch` is left 0 -- the serving layer that pinned an epoch fills it in.
  [[nodiscard]] ServingResult serve(NodeId src, NodeId dst) const;

  /// serve() over a batch, sharded across the worker pool like run_batch
  /// (contiguous slices into a preallocated result vector; disjoint writes,
  /// no locks).  results[i] always answers queries[i].  This is the server's
  /// request-coalescing path.
  [[nodiscard]] std::vector<ServingResult> serve_batch(
      const std::vector<RoundtripQuery>& queries,
      const BatchOptions& options = {}) const;

  /// Executes the batch across the worker pool.
  ///
  /// Layout: a serial prepass validates every query once and transposes the
  /// batch into structure-of-arrays form (src / dst / resolved destination
  /// name in separate contiguous arrays), so the worker hot loop runs the
  /// simulator back-to-back with no per-query validation branches, no name
  /// lookups, and sequential operand reads.  The report is identical to the
  /// reference loop for any worker count.
  [[nodiscard]] StretchReport run_batch(
      const std::vector<RoundtripQuery>& queries,
      const BatchOptions& options = {}) const;

  /// Reference single-thread loop over the same batch, in the seed's
  /// array-of-structs layout (per-query validate + name lookup inline).
  /// Kept as the perf baseline the SoA path is measured against.
  [[nodiscard]] StretchReport run_serial(
      const std::vector<RoundtripQuery>& queries) const;

  /// Samples `options.pair_budget` ordered pairs (exhaustive if the budget
  /// covers all of them).  The sample is drawn from Rng(options.seed) up
  /// front and sharded via run_batch, so the report does not depend on the
  /// worker count.
  [[nodiscard]] StretchReport run_sampled(const BatchOptions& options) const;

 private:
  struct WorkerTally;
  struct BatchPlan;

  void run_range(const std::vector<RoundtripQuery>& queries, std::size_t begin,
                 std::size_t end, WorkerTally& tally) const;
  void run_one(std::size_t index, NodeId src, NodeId dst,
               WorkerTally& tally) const;
  /// `fast_walk` selects Scheme::simulate (one dispatch per roundtrip; the
  /// batch path) vs the per-hop Packet walk (the seed reference loop).
  void run_one_resolved(std::size_t index, NodeId src, NodeId dst,
                        NodeName dst_name, bool fast_walk,
                        WorkerTally& tally) const;
  void run_span(const BatchPlan& plan, std::size_t begin, std::size_t end,
                WorkerTally& tally) const;
  [[nodiscard]] StretchReport finalize(std::vector<WorkerTally> tallies,
                                       double wall_seconds) const;
  /// Worker count for a batch of `work` items under a per-call cap.
  [[nodiscard]] int effective_workers(int cap, std::size_t work) const;

  std::shared_ptr<const Digraph> graph_;
  std::shared_ptr<const RoundtripMetric> metric_;
  NameAssignment names_;
  std::shared_ptr<const Scheme> scheme_;
  QueryEngineOptions options_;
  int threads_;
};

}  // namespace rtr

#endif  // RTR_NET_QUERY_ENGINE_H
