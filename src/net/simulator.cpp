#include "net/simulator.h"

// simulate_roundtrip is a template (schemes are concrete types, no vtables on
// the forwarding fast path); this translation unit exists to hold future
// non-template helpers and to give the header a home in the build graph.

namespace rtr {}  // namespace rtr
