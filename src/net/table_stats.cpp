#include "net/table_stats.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace rtr {

std::int64_t TableStats::max_entries() const {
  if (entries_.empty()) return 0;
  return *std::max_element(entries_.begin(), entries_.end());
}

std::int64_t TableStats::max_bits() const {
  if (bits_.empty()) return 0;
  return *std::max_element(bits_.begin(), bits_.end());
}

double TableStats::mean_entries() const {
  if (entries_.empty()) return 0;
  auto total = std::accumulate(entries_.begin(), entries_.end(), std::int64_t{0});
  return static_cast<double>(total) / static_cast<double>(entries_.size());
}

double TableStats::mean_bits() const {
  if (bits_.empty()) return 0;
  auto total = std::accumulate(bits_.begin(), bits_.end(), std::int64_t{0});
  return static_cast<double>(total) / static_cast<double>(bits_.size());
}

std::string TableStats::brief() const {
  std::ostringstream os;
  os << "max_entries=" << max_entries() << " mean_entries=" << mean_entries()
     << " max_KiB=" << static_cast<double>(max_bits()) / 8192.0;
  return os.str();
}

}  // namespace rtr
