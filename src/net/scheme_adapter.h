// Bridges the duck-typed template scheme concept (net/simulator.h) onto the
// abstract rtr::Scheme interface (net/scheme.h).
//
// Any type providing the template concept -- a concrete Header, make_packet,
// prepare_return, forward, header_bits, table_stats, name -- can be wrapped
// without modification; stretch_bound() is picked up when the wrapped type
// provides it.  The wrapped instance is shared, so the same preprocessing
// output can serve both the template fast path and the virtual path (the
// equivalence test in tests/scheme_registry_test.cpp relies on this).
#ifndef RTR_NET_SCHEME_ADAPTER_H
#define RTR_NET_SCHEME_ADAPTER_H

#include <memory>
#include <string>
#include <utility>

#include "net/scheme.h"

namespace rtr {

template <TemplatedScheme S>
class TemplateSchemeAdapter final : public Scheme {
 public:
  /// `retained` pins anything the wrapped scheme references but does not own
  /// (typically the BuildContext's graph and metric), so the adapter is safe
  /// to use after its builder scope is gone.
  explicit TemplateSchemeAdapter(
      std::shared_ptr<const S> impl,
      std::vector<std::shared_ptr<const void>> retained = {})
      : impl_(std::move(impl)), retained_(std::move(retained)) {
    if (impl_ == nullptr) {
      throw std::invalid_argument("TemplateSchemeAdapter: null scheme");
    }
  }

  [[nodiscard]] std::string name() const override { return impl_->name(); }

  [[nodiscard]] Packet make_packet(NodeName dest) const override {
    return Packet(impl_->make_packet(dest));
  }

  void prepare_return(Packet& p) const override {
    impl_->prepare_return(p.as<ImplHeader>());
  }

  [[nodiscard]] Decision forward(NodeId at, Packet& p) const override {
    return impl_->forward(at, p.as<ImplHeader>());
  }

  [[nodiscard]] std::int64_t header_bits(const Packet& p) const override {
    return impl_->header_bits(p.as<ImplHeader>());
  }

  [[nodiscard]] TableStats table_stats() const override {
    return impl_->table_stats();
  }

  [[nodiscard]] RouteResult simulate(const Digraph& g, NodeId src, NodeId dst,
                                     NodeName dst_name,
                                     SimOptions opt = {}) const override {
    // The duck-typed template walk over the wrapped scheme: the header stays
    // concrete on the stack, so the per-hop forward/header_bits calls are
    // direct (and inlinable) instead of virtual-plus-Packet-decode.
    return simulate_roundtrip(g, *impl_, src, dst, dst_name, opt);
  }

  [[nodiscard]] double stretch_bound() const override {
    if constexpr (requires(const S& s) { s.stretch_bound(); }) {
      return impl_->stretch_bound();
    } else {
      return unbounded_stretch();
    }
  }

  void audit(AuditReport& report) const override {
    if constexpr (requires(const S& s, AuditReport& r) { s.audit(r); }) {
      impl_->audit(report);
    } else {
      Scheme::audit(report);  // visible placeholder entry
    }
  }

  /// The wrapped concrete scheme (template fast path over the same tables).
  [[nodiscard]] const S& impl() const { return *impl_; }
  [[nodiscard]] const std::shared_ptr<const S>& impl_ptr() const {
    return impl_;
  }

 private:
  // Not exposed: the inherited Scheme::Header (= Packet) is what generic
  // code must see, so unqualified template walks over an adapter dispatch
  // virtually instead of mis-deducing the wrapped header type.
  using ImplHeader = typename S::Header;

  std::shared_ptr<const S> impl_;
  std::vector<std::shared_ptr<const void>> retained_;
};

/// Wraps a concrete scheme into a shared abstract one; `retained` pins the
/// graph/metric the scheme references (see the adapter constructor).
template <TemplatedScheme S>
[[nodiscard]] std::shared_ptr<const TemplateSchemeAdapter<S>> adapt_scheme(
    std::shared_ptr<const S> impl,
    std::vector<std::shared_ptr<const void>> retained = {}) {
  return std::make_shared<const TemplateSchemeAdapter<S>>(std::move(impl),
                                                          std::move(retained));
}

/// Builds S in place and wraps it.
template <TemplatedScheme S, typename... Args>
[[nodiscard]] std::shared_ptr<const TemplateSchemeAdapter<S>> make_adapted_scheme(
    Args&&... args) {
  return adapt_scheme(std::make_shared<const S>(std::forward<Args>(args)...));
}

}  // namespace rtr

#endif  // RTR_NET_SCHEME_ADAPTER_H
