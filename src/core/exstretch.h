// Algorithm ExStretch: the generalized TINN scheme with an exponential
// stretch/space tradeoff (paper Section 3, pseudocode Figs. 4 and 6).
//
// Names are written in base q = ceil(n^{1/k}); blocks group names by their
// (k-1)-digit prefix; Lemma 4 distributes O(log n) blocks per node so that
// every neighborhood N_i(v) holds every realizable i-digit prefix.  Each node
// u stores, per held block and per (level i, next digit tau), the *nearest*
// node (by roundtrip distance) holding a block whose prefix extends the
// match, together with the handshake label R2(u, that node); plus R2(u, v)
// for its immediate neighborhood N_1(u).
//
// A packet for t visits waypoints s = v_0, v_1, ..., v_k = t whose held
// blocks match ever longer prefixes of t, pushing each leg's R2 label onto a
// header stack; the acknowledgment pops the stack to retrace waypoints
// (Fig. 4's second loop).  Lemma 8: r(v_i, v_{i+1}) <= 2^i r(s, t); with our
// R2 legs costing at most beta(k) = 4(2k-1) times their pair's roundtrip
// distance (our substitution for the paper's 2k+eps spanner), the
// total roundtrip is <= beta(k) (2^k - 1) r(s,t).
#ifndef RTR_CORE_EXSTRETCH_H
#define RTR_CORE_EXSTRETCH_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/names.h"
#include "dict/alphabet.h"
#include "dict/block_assignment.h"
#include "net/simulator.h"
#include "rtz/handshake.h"

namespace rtr {

class ExStretchScheme {
 public:
  struct Options {
    int k = 3;  // tradeoff parameter (>= 2)
    BlockAssignmentOptions blocks;
    /// Construction fan-out (cover trees, neighborhoods, per-node tables);
    /// <= 0 resolves the process default.  Bit-identical for any value.
    int threads = 0;
  };

  ExStretchScheme(const Digraph& g, const RoundtripMetric& metric,
                  const NameAssignment& names, Rng& rng, Options options);
  ExStretchScheme(const Digraph& g, const RoundtripMetric& metric,
                  const NameAssignment& names, Rng& rng)
      : ExStretchScheme(g, metric, names, rng, Options{}) {}

  /// Snapshot path: rehydrates tables and the cover hierarchy saved with
  /// save(); self-contained (forwarding never consults the graph).
  explicit ExStretchScheme(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  enum class Mode : std::uint8_t { kNew, kOutbound, kReturn, kInbound };

  /// One pushed leg: enough to retrace it backwards (Fig. 4's pop loop).
  struct StackEntry {
    TreeRef tree;
    TreeLabel back_label;  // label of the leg's tail in that tree
  };

  struct Header {
    Mode mode = Mode::kNew;
    NodeName dest = kNoNode;
    NodeName src = kNoNode;
    std::int32_t hop = 0;          // index i of the current waypoint v_i
    NodeName waypoint = kNoNode;   // head of the in-flight leg
    std::vector<StackEntry> stack; // WaypointStack of Fig. 6
    DtLeg leg;
  };

  [[nodiscard]] Header make_packet(NodeName dest) const {
    Header h;
    h.dest = dest;
    return h;
  }
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] std::string name() const {
    return "exstretch(k=" + std::to_string(alphabet_.k()) + ")";
  }

  /// The end-to-end stretch bound with our substituted R2 provider:
  /// beta(k) * (2^k - 1).
  [[nodiscard]] double stretch_bound() const;

  [[nodiscard]] const Alphabet& alphabet() const { return alphabet_; }
  [[nodiscard]] const CoverHierarchy& hierarchy() const { return *hierarchy_; }
  [[nodiscard]] const BlockAssignment& block_assignment() const {
    return assignment_;
  }

  /// Auditable: delegates to the naming, alphabet, cover hierarchy, and
  /// block assignment, then checks every per-node dictionary key decodes to
  /// a valid (level, prefix) pair with an in-range waypoint name.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  struct DictEntry {
    NodeName node = kNoNode;
    R2Label r2;
  };
  struct NodeTables {
    // (2): R2(u, v) for v in N_1(u), keyed by name.
    std::unordered_map<NodeName, R2Label> nbr_r2;
    // (3a)+(3b): keyed by pack(level i, value of the (i+1)-digit target
    // prefix); value = nearest holder of a matching block and R2 to it.
    std::unordered_map<std::int64_t, DictEntry> dict;
  };

  [[nodiscard]] std::int64_t pack(int i, PrefixValue p) const {
    return static_cast<std::int64_t>(i) * alphabet_.power(alphabet_.k()) + p;
  }

  /// Local waypoint advancement at the current waypoint node; either sets up
  /// the next leg (returns its first port) or concludes delivery.
  [[nodiscard]] Decision advance(NodeId at, Header& h) const;

  NameAssignment names_;
  Alphabet alphabet_;
  std::shared_ptr<const CoverHierarchy> hierarchy_;
  BlockAssignment assignment_;
  std::vector<NodeTables> tables_;
  std::int64_t node_space_ = 0;
  std::int64_t port_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_CORE_EXSTRETCH_H
