// The TINN name layer (Section 1.1.2).
//
// Node names are an adversarial permutation of {0..n-1}, decoupled from
// topology.  Schemes key *all* dictionary structures by name; the permutation
// is only consulted at preprocessing time (a real deployment's node knows its
// own name).  Tests verify routing behaviour is invariant under renaming.
#ifndef RTR_CORE_NAMES_H
#define RTR_CORE_NAMES_H

#include <memory>
#include <stdexcept>
#include <vector>

#include "util/flat_vec.h"
#include "util/rng.h"
#include "util/types.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;
class AuditReport;  // audit/audit.h
class ArenaStorage;  // io/arena.h
class ArenaView;
class ArenaWriter;

/// Bijection internal NodeId <-> TINN NodeName.
class NameAssignment {
 public:
  /// Identity naming (name == id).
  static NameAssignment identity(NodeId n);

  /// Adversarial (uniformly random) naming.
  static NameAssignment random(NodeId n, Rng& rng);

  /// From an explicit permutation; throws if not a permutation of [0, n).
  explicit NameAssignment(std::vector<NodeName> name_of_id);

  /// Snapshot path: the permutation as bytes (load re-validates it).
  static NameAssignment load(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  /// Arena (v2) path: both permutation arrays as "names/..." sections, so a
  /// mapped load views them in place (a cheap linear inverse check replaces
  /// the constructor's rebuild).
  void save_arena(ArenaWriter& w) const;
  [[nodiscard]] static NameAssignment from_arena(const ArenaView& a);

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(name_of_.size());
  }
  [[nodiscard]] NodeName name_of(NodeId id) const {
    return name_of_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] NodeId id_of(NodeName name) const {
    if (name < 0 || name >= node_count()) {
      throw std::out_of_range("NameAssignment::id_of: unknown name");
    }
    return id_of_[static_cast<std::size_t>(name)];
  }
  [[nodiscard]] const FlatVec<NodeName>& names() const { return name_of_; }

  /// Auditable: name_of_/id_of_ are mutually inverse permutations of [0, n)
  /// (the TINN bijection the constructor enforces, re-verified in case the
  /// vectors were rebuilt by a snapshot load or mutated through a peer).
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  NameAssignment() = default;  // from_arena fills the views
  FlatVec<NodeName> name_of_;
  FlatVec<NodeId> id_of_;
  // Non-null iff the FlatVecs view a mapped/owned arena region.
  std::shared_ptr<const ArenaStorage> arena_;
};

}  // namespace rtr

#endif  // RTR_CORE_NAMES_H
