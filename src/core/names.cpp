#include "core/names.h"

#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "io/snapshot_format.h"

namespace rtr {

NameAssignment NameAssignment::load(SnapshotReader& r) {
  return NameAssignment(r.vec_i32());
}

void NameAssignment::save(SnapshotWriter& w) const { w.vec_i32(name_of_); }

NameAssignment NameAssignment::identity(NodeId n) {
  std::vector<NodeName> names(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) names[static_cast<std::size_t>(i)] = i;
  return NameAssignment(std::move(names));
}

NameAssignment NameAssignment::random(NodeId n, Rng& rng) {
  return NameAssignment(rng.permutation(n));
}

NameAssignment::NameAssignment(std::vector<NodeName> name_of_id)
    : name_of_(std::move(name_of_id)) {
  const auto n = static_cast<NodeId>(name_of_.size());
  id_of_.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId id = 0; id < n; ++id) {
    NodeName name = name_of_[static_cast<std::size_t>(id)];
    if (name < 0 || name >= n) {
      throw std::invalid_argument("NameAssignment: name out of range");
    }
    if (id_of_[static_cast<std::size_t>(name)] != kNoNode) {
      throw std::invalid_argument("NameAssignment: duplicate name");
    }
    id_of_[static_cast<std::size_t>(name)] = id;
  }
}

void NameAssignment::audit(AuditReport& report) const {
  const NodeId n = node_count();
  report.check("inverse-sized", id_of_.size() == name_of_.size(),
               "id_of/name_of size mismatch");
  bool bijective = id_of_.size() == name_of_.size();
  std::string detail;
  for (NodeId id = 0; bijective && id < n; ++id) {
    const NodeName name = name_of_[static_cast<std::size_t>(id)];
    if (name < 0 || name >= n) {
      bijective = false;
      detail = "name " + std::to_string(name) + " of id " + std::to_string(id) +
               " outside [0, " + std::to_string(n) + ")";
    } else if (id_of_[static_cast<std::size_t>(name)] != id) {
      bijective = false;
      detail = "id_of[name_of[" + std::to_string(id) + "]] != " +
               std::to_string(id) + " (not a bijection)";
    }
  }
  report.check("name-bijection", bijective, std::move(detail));
}

}  // namespace rtr
