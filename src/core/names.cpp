#include "core/names.h"

#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "io/arena.h"
#include "io/snapshot_format.h"

namespace rtr {

NameAssignment NameAssignment::load(SnapshotReader& r) {
  return NameAssignment(r.vec_i32());
}

void NameAssignment::save(SnapshotWriter& w) const {
  w.vec_i32(name_of_.to_vector());
}

void NameAssignment::save_arena(ArenaWriter& w) const {
  w.add("names/name_of", name_of_);
  w.add("names/id_of", id_of_);
}

NameAssignment NameAssignment::from_arena(const ArenaView& a) {
  const std::uint64_t n = a.header().node_count;
  NameAssignment names;
  names.name_of_ = a.vec<NodeName>("names/name_of", n);
  names.id_of_ = a.vec<NodeId>("names/id_of", n);
  // One linear pass replaces the constructor's inverse rebuild: both arrays
  // must be mutually inverse permutations of [0, n).
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    const NodeName name = names.name_of_[static_cast<std::size_t>(id)];
    if (name < 0 || name >= static_cast<NodeName>(n) ||
        names.id_of_[static_cast<std::size_t>(name)] != id) {
      throw SnapshotArenaError(
          "arena: names sections are not mutually inverse permutations");
    }
  }
  names.arena_ = a.storage();
  return names;
}

NameAssignment NameAssignment::identity(NodeId n) {
  std::vector<NodeName> names(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) names[static_cast<std::size_t>(i)] = i;
  return NameAssignment(std::move(names));
}

NameAssignment NameAssignment::random(NodeId n, Rng& rng) {
  return NameAssignment(rng.permutation(n));
}

NameAssignment::NameAssignment(std::vector<NodeName> name_of_id)
    : name_of_(std::move(name_of_id)) {
  const auto n = static_cast<NodeId>(name_of_.size());
  std::vector<NodeId> id_of(static_cast<std::size_t>(n), kNoNode);
  for (NodeId id = 0; id < n; ++id) {
    NodeName name = name_of_[static_cast<std::size_t>(id)];
    if (name < 0 || name >= n) {
      throw std::invalid_argument("NameAssignment: name out of range");
    }
    if (id_of[static_cast<std::size_t>(name)] != kNoNode) {
      throw std::invalid_argument("NameAssignment: duplicate name");
    }
    id_of[static_cast<std::size_t>(name)] = id;
  }
  id_of_ = std::move(id_of);
}

void NameAssignment::audit(AuditReport& report) const {
  const NodeId n = node_count();
  report.check("inverse-sized", id_of_.size() == name_of_.size(),
               "id_of/name_of size mismatch");
  bool bijective = id_of_.size() == name_of_.size();
  std::string detail;
  for (NodeId id = 0; bijective && id < n; ++id) {
    const NodeName name = name_of_[static_cast<std::size_t>(id)];
    if (name < 0 || name >= n) {
      bijective = false;
      detail = "name " + std::to_string(name) + " of id " + std::to_string(id) +
               " outside [0, " + std::to_string(n) + ")";
    } else if (id_of_[static_cast<std::size_t>(name)] != id) {
      bijective = false;
      detail = "id_of[name_of[" + std::to_string(id) + "]] != " +
               std::to_string(id) + " (not a bijection)";
    }
  }
  report.check("name-bijection", bijective, std::move(detail));
}

}  // namespace rtr
