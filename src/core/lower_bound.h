// Section 5: the stretch lower bound for TINN roundtrip routing.
//
// Theorem 15 reduces to the Gavoille-Gengler one-way bound: take an
// undirected network hard for stretch < 3, replace every edge by two opposite
// arcs (so d(u,v) = d(v,u) and r(u,v) = 2 d(u,v)); a roundtrip scheme of
// stretch < 2 with o(n) tables would induce a one-way scheme of stretch < 3,
// a contradiction.  The reduction's only structural requirement is the
// bidirected property, which our gadget generators guarantee; this module
// provides the verification predicate and the measurement used by the
// lower-bound experiment (the stretch-vs-table-size frontier a scheme
// achieves on the gadget family).
#ifndef RTR_CORE_LOWER_BOUND_H
#define RTR_CORE_LOWER_BOUND_H

#include "rt/metric.h"

namespace rtr {

/// True iff d(u,v) == d(v,u) for all pairs (the bidirected regime in which
/// Theorem 15's reduction operates).
[[nodiscard]] bool is_distance_symmetric(const RoundtripMetric& metric);

/// The Theorem 15 threshold: any TINN roundtrip scheme whose every table is
/// o(n) bits must have stretch >= 2 on some bidirected network.
inline constexpr double kRoundtripStretchLowerBound = 2.0;

}  // namespace rtr

#endif  // RTR_CORE_LOWER_BOUND_H
